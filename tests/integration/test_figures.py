"""Integration: the paper's two figures, end to end on the full simulator.

These are the strictest reproduction tests: they elaborate the figure
topologies into complete data-carrying LID systems, simulate them, and
check the exact published numbers — throughput 4/5 with one invalid
datum every 5 cycles for Figure 1, S/(S+R) for Figure 2 — plus latency
equivalence against the zero-latency reference.
"""

from fractions import Fraction

import pytest

from repro.analysis import analyze_reconvergence
from repro.graph import figure1, figure2, ring
from repro.lid.reference import is_prefix
from repro.skeleton import SkeletonSim, system_throughput


class TestFigure1:
    @pytest.fixture
    def ran_system(self):
        system = figure1().elaborate()
        system.run(200)
        return system

    def test_throughput_is_four_fifths(self, ran_system):
        sink = ran_system.sinks["out"]
        assert sink.steady_throughput(50, 200) == pytest.approx(0.8)

    def test_one_void_every_five_cycles(self, ran_system):
        sink = ran_system.sinks["out"]
        steady_voids = [c for c in sink.void_cycles if c >= 50]
        gaps = [b - a for a, b in zip(steady_voids, steady_voids[1:])]
        assert gaps and all(gap == 5 for gap in gaps)

    def test_formula_parameters(self):
        i, m, rate = analyze_reconvergence(figure1(), "A", "C")
        assert (i, m) == (1, 5)
        assert rate == Fraction(4, 5)

    def test_latency_equivalence(self, ran_system):
        ref = ran_system.reference_outputs(200)["out"]
        assert is_prefix(ran_system.sinks["out"].payloads, ref)

    def test_skeleton_agrees_with_full_sim(self):
        skeleton = SkeletonSim(figure1()).run()
        assert skeleton.throughput("out") == Fraction(4, 5)
        assert skeleton.period == 5

    def test_all_three_shells_fire_at_same_rate(self):
        result = SkeletonSim(figure1()).run()
        rates = {result.throughput(n) for n in ("A", "B0", "C")}
        assert rates == {Fraction(4, 5)}


class TestFigure2:
    @pytest.mark.parametrize("relays_per_arc,expected", [
        (1, Fraction(1, 2)),
        (2, Fraction(1, 3)),
        (3, Fraction(1, 4)),
    ])
    def test_throughput_formula(self, relays_per_arc, expected):
        graph = figure2(relays_per_arc)
        assert system_throughput(graph) == expected

    def test_full_simulation_matches(self):
        system = figure2().elaborate()
        system.run(120)
        sink = system.sinks["out"]
        assert sink.steady_throughput(20, 120) == pytest.approx(0.5)

    def test_at_most_s_valid_tokens_circulate(self):
        """Paper: 'A maximum of S valid data can be present at a time'."""
        sim = SkeletonSim(figure2())
        for _ in range(100):
            sim.step()
            circulating = (sum(sim.shell_reg) + sum(sim.rs_main)
                           + sum(sim.rs_aux))
            assert circulating <= 2 + 1  # S plus one in-flight absorber

    def test_loop_token_count_is_conserved(self):
        sim = SkeletonSim(ring(3, relays_per_arc=1, tap_sink=False))
        counts = set()
        for _ in range(60):
            sim.step()
            counts.add(sum(sim.shell_reg) + sum(sim.rs_main)
                       + sum(sim.rs_aux))
        assert counts == {3}  # exactly S tokens forever

    def test_latency_equivalence_of_loop(self):
        system = figure2().elaborate()
        system.run(80)
        ref = system.reference_outputs(80)["out"]
        assert is_prefix(system.sinks["out"].payloads, ref)

"""Randomized topology generation for fuzzing and property-based tests.

The paper validates its protocol on "many proof-of-concept examples that
comprise various combinations of feedforward and feedback topologies".
This module is the generator of such examples: seeded, reproducible
random DAGs and loopy graphs with configurable relay mixes.  The
latency-equivalence property tests and the deadlock study sweep over
these.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..pearls.arithmetic import Adder, Identity, Maximum
from .model import SystemGraph

_JOIN_FACTORIES = (Adder, Maximum)


def random_dag(
    seed: int,
    shells: int = 6,
    max_fanin: int = 2,
    max_relays: int = 3,
    half_probability: float = 0.0,
) -> SystemGraph:
    """A random layered feed-forward system.

    Every shell draws 1..``max_fanin`` inputs from strictly earlier
    shells or fresh sources, each through 1..``max_relays`` relay
    stations (half with probability *half_probability*); every shell
    with no consumer feeds the sink through a join tree... more simply,
    each dangling output gets its own sink.  The graph is therefore
    always legal (acyclic, relay station on every shell-shell channel).
    """
    rng = random.Random(seed)
    g = SystemGraph(f"dag_seed{seed}")
    names: List[str] = []
    consumed = set()
    source_count = 0
    for index in range(shells):
        fanin = rng.randint(1, max_fanin)
        pearl = Identity if fanin == 1 else rng.choice(_JOIN_FACTORIES)
        name = f"S{index}"
        g.add_shell(name, pearl)
        ports = ("a",) if fanin == 1 else ("a", "b")
        for port in ports:
            use_shell = names and rng.random() < 0.6
            chain = _random_chain(rng, 1, max_relays, half_probability)
            if use_shell:
                src = rng.choice(names)
                g.add_edge(src, name, relays=chain, dst_port=port)
                consumed.add(src)
            else:
                src = f"src{source_count}"
                source_count += 1
                g.add_source(src)
                g.add_edge(src, name, relays=chain, dst_port=port)
        names.append(name)
    sink_count = 0
    for name in names:
        if name not in consumed:
            sink = f"out{sink_count}"
            sink_count += 1
            g.add_sink(sink)
            g.add_edge(name, sink)
    return g


def random_loopy(
    seed: int,
    shells: int = 5,
    extra_back_edges: int = 1,
    max_relays: int = 2,
    half_probability: float = 0.0,
    ensure_full_on_loops: bool = True,
) -> SystemGraph:
    """A random strongly-connected-ish system with feedback.

    Builds a ring through all shells (guaranteeing at least one loop),
    then adds *extra_back_edges* random chords.  Join shells get their
    second input from the loop; singletons use Identity.  When
    *ensure_full_on_loops* is set every arc carries at least one full
    relay station, keeping the stop network cycle-free (the legal
    regime); switch it off to generate the hazardous half-in-loop
    systems the deadlock study needs.
    """
    rng = random.Random(seed)
    g = SystemGraph(f"loopy_seed{seed}")
    names = [f"S{i}" for i in range(shells)]
    # Ring arcs: every shell takes its 'a' input from its predecessor.
    for name in names:
        g.add_shell(name, Adder)
    for i, name in enumerate(names):
        chain = _random_chain(rng, 1, max_relays, half_probability)
        if ensure_full_on_loops:
            # The paper's hazard criterion flags ANY half relay station
            # on a loop, so the legal regime keeps loop arcs all-full.
            chain = ("full",) * len(chain)
        g.add_edge(name, names[(i + 1) % shells], relays=chain, dst_port="a")
    # Each shell's 'b' input: a chord from a random shell or a source.
    chord_budget = extra_back_edges
    for i, name in enumerate(names):
        if chord_budget > 0 and rng.random() < 0.5:
            src = rng.choice(names)
            chain = _random_chain(rng, 1, max_relays, half_probability)
            if ensure_full_on_loops:
                chain = ("full",) * len(chain)
            g.add_edge(src, name, relays=chain, dst_port="b")
            chord_budget -= 1
        else:
            src = f"src{i}"
            g.add_source(src)
            g.add_edge(src, name, relays=(), dst_port="b")
    g.add_sink("out")
    g.add_edge(names[0], "out")
    return g


def _random_chain(
    rng: random.Random,
    min_relays: int,
    max_relays: int,
    half_probability: float,
) -> tuple:
    count = rng.randint(min_relays, max_relays)
    chain = tuple(
        "half" if rng.random() < half_probability else "full"
        for _ in range(count)
    )
    return chain


def random_suite(
    seeds: Sequence[int],
    loopy: bool = False,
    **kwargs,
) -> List[SystemGraph]:
    """A list of random graphs, one per seed (convenience for sweeps)."""
    builder = random_loopy if loopy else random_dag
    return [builder(seed, **kwargs) for seed in seeds]

"""In-flight request coalescing for the asyncio service.

:class:`AsyncSingleFlight` is the event-loop twin of
:class:`repro.exec.SingleFlight`: the first caller for a key becomes
the **leader** and actually runs the work; every caller that arrives
while the leader is in flight becomes a **follower** and awaits the
leader's future instead of spawning a duplicate execution.  For the
campaign service the key is the run's span id (kind x design
fingerprint x canonical params), so N clients POSTing the identical
manifest concurrently cost exactly one golden simulation.

Single event loop, no locks: the flight table is only touched between
awaits, so membership checks and inserts are atomic by construction.
Followers await through :func:`asyncio.shield` — cancelling one
follower's request must not cancel the shared computation the leader
and the other followers still depend on.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Hashable, Tuple


class AsyncSingleFlight:
    """Keyed duplicate-suppression for coroutines (leader/follower)."""

    def __init__(self) -> None:
        self._flights: Dict[Hashable, "asyncio.Future[Any]"] = {}

    def inflight(self) -> int:
        """Number of keys currently being computed."""
        return len(self._flights)

    def leading(self, key: Hashable) -> bool:
        """True if a leader is already in flight for *key* (a caller
        arriving now would coalesce rather than add work)."""
        return key in self._flights

    async def run(self, key: Hashable,
                  factory: Callable[[], Awaitable[Any]],
                  ) -> Tuple[Any, bool]:
        """Return ``(value, leader)`` for *key*.

        The leader invokes ``factory()`` and publishes its result (or
        exception) to every follower.  The key is retired before the
        future resolves, so a request arriving after completion starts
        a fresh flight — coalescing only ever merges *concurrent*
        work, it is not a cache.
        """
        existing = self._flights.get(key)
        if existing is not None:
            return await asyncio.shield(existing), False
        future: "asyncio.Future[Any]" = (
            asyncio.get_running_loop().create_future())
        # A leader with zero followers never awaits the future; retrieve
        # its exception so set_exception can't warn at GC time.
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None)
        self._flights[key] = future
        try:
            value = await factory()
        except BaseException as exc:
            self._flights.pop(key, None)
            future.set_exception(exc)
            raise
        else:
            self._flights.pop(key, None)
            future.set_result(value)
            return value, True

"""Bit-plane packing views over lowered-IR signal vectors.

The bit-parallel skeleton engine (:mod:`repro.skeleton.bitsim`) stores
one Python integer per IR signal (hop valid, hop stop, register), where
bit *p* is the value of that signal in experiment plane *p* — the
classic SBFI layout: plane 0 is the golden run, planes 1..N-1 are fault
experiments, and one bitwise operation advances every plane at once.

These helpers are the single definition of that layout.  They work for
arbitrary plane counts (Python integers are arbitrary-width, so a batch
is not limited to the machine word; ``repro.exec.plane_chunks`` keeps
campaign batches word-sized for speed, not correctness).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = ["pack_planes", "unpack_planes", "plane_words"]


def pack_planes(bits: Sequence[bool]) -> int:
    """Pack one boolean per plane into a plane word (bit p = plane p)."""
    word = 0
    for plane, bit in enumerate(bits):
        if bit:
            word |= 1 << plane
    return word


def unpack_planes(word: int, planes: int) -> Tuple[bool, ...]:
    """Inverse of :func:`pack_planes` for a *planes*-wide batch.

    Bits at or above *planes* are ignored, so a masked engine word
    round-trips even when intermediate ops left high garbage bits.
    """
    if word < 0:
        raise ValueError("plane words are unsigned; mask before unpacking")
    return tuple(bool((word >> p) & 1) for p in range(planes))


def plane_words(columns: Iterable[Sequence[bool]]) -> List[int]:
    """Transpose per-plane boolean columns into per-row plane words.

    ``columns[p][i]`` is signal *i* in plane *p*; the result is one
    packed word per signal — the shape the bitsim engine keeps its
    script tables in.  All columns must have equal length.
    """
    cols = [tuple(col) for col in columns]
    if not cols:
        return []
    length = len(cols[0])
    if any(len(col) != length for col in cols):
        raise ValueError("plane columns must have equal length")
    return [
        pack_planes([col[i] for col in cols])
        for i in range(length)
    ]

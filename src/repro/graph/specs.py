"""Textual topology specs: ``name[:key=value,...]`` -> SystemGraph.

The spec grammar the CLI exposes (``repro-lid analyze figure2:relays=3``)
also names graphs in :class:`repro.exec.graphs.GraphRef` payloads, so
parsing lives here in the topology layer — ``repro.exec`` materializes
refs without importing the CLI, and scripts can build graphs from the
same strings the command line accepts.

Examples: ``ring:shells=3,relays=2``, ``reconvergent:long=2+1,short=1``,
``dag:shells=6,half=0.25`` (seeded via the *seed* argument).
``feedback`` is an alias for the paper's Figure 2 loop.
"""

from __future__ import annotations

from typing import Dict

from .model import SystemGraph
from .topologies import figure1, figure2, pipeline, reconvergent, ring, tree

TOPOLOGY_CHOICES = (
    "figure1", "figure2", "feedback", "ring", "tree", "pipeline",
    "reconvergent", "composed", "self_loop", "butterfly", "dag", "loopy",
    "gals-chain", "gals-ring",
)


def _parse_rates(text: str) -> tuple:
    """``"1+1/2+1/3"`` -> rate strings (``+`` separates; ``,`` is taken
    by the spec grammar's parameter separator)."""
    return tuple(part.strip() for part in text.split("+") if part.strip())


def parse_topology(spec: str, seed: int = 0) -> SystemGraph:
    """Build the graph a ``name[:key=value,...]`` spec describes.

    *seed* feeds the randomized families (``dag:``/``loopy:``).  Unknown
    names raise ``SystemExit`` with the full choice list — the CLI
    relies on this as its argument diagnostic.
    """
    name, _sep, args_text = spec.partition(":")
    params: Dict[str, str] = {}
    if args_text:
        for item in args_text.split(","):
            key, _eq, value = item.partition("=")
            params[key.strip()] = value.strip()
    if name == "figure1":
        return figure1()
    if name in ("figure2", "feedback"):
        return figure2(int(params.get("relays", 1)))
    if name == "ring":
        return ring(int(params.get("shells", 2)),
                    relays_per_arc=int(params.get("relays", 1)))
    if name == "tree":
        return tree(int(params.get("depth", 3)),
                    relays_per_hop=int(params.get("relays", 1)))
    if name == "pipeline":
        return pipeline(int(params.get("stages", 3)),
                        relays_per_hop=int(params.get("relays", 1)))
    if name == "reconvergent":
        long_relays = tuple(
            int(x) for x in params.get("long", "1+1").split("+"))
        return reconvergent(long_relays=long_relays,
                            short_relays=int(params.get("short", 1)))
    if name == "composed":
        from .topologies import composed

        return composed(
            reconv_imbalance=int(params.get("imbalance", 1)),
            loop_relays=int(params.get("loop_relays", 2)))
    if name == "self_loop":
        from .topologies import self_loop

        return self_loop(relays=int(params.get("relays", 1)))
    if name == "butterfly":
        from .topologies import butterfly_network

        return butterfly_network(
            lanes=int(params.get("lanes", 8)),
            relays_per_hop=int(params.get("relays", 1)))
    if name == "dag":
        from .random_gen import random_dag

        return random_dag(
            seed,
            shells=int(params.get("shells", 6)),
            max_fanin=int(params.get("fanin", 2)),
            max_relays=int(params.get("relays", 3)),
            half_probability=float(params.get("half", 0.0)))
    if name == "loopy":
        from .random_gen import random_loopy

        return random_loopy(
            seed,
            shells=int(params.get("shells", 5)),
            extra_back_edges=int(params.get("chords", 1)),
            max_relays=int(params.get("relays", 2)),
            half_probability=float(params.get("half", 0.0)))
    if name == "gals-chain":
        from .topologies import gals_chain

        return gals_chain(
            rates=_parse_rates(params.get("rates", "1+1/2")),
            stages_per_domain=int(params.get("stages", 1)),
            depth=int(params.get("depth", 2)),
            relays_per_hop=int(params.get("relays", 0)))
    if name == "gals-ring":
        from .topologies import gals_ring

        return gals_ring(
            rates=_parse_rates(params.get("rates", "1+1/2")),
            shells_per_domain=int(params.get("shells", 1)),
            depth=int(params.get("depth", 2)),
            relays_per_arc=int(params.get("relays", 0)))
    raise SystemExit(
        f"unknown topology {name!r} (choices: "
        + ", ".join(TOPOLOGY_CHOICES) + ")"
    )

"""Protocol variants: Carloni's original LIP vs. the paper's refinement.

The paper's key protocol change (DESIGN.md §1.2): *"in previous works the
stop signal is back-propagated regardless of the signals validity, in our
implementation stops on invalid signals are discarded"*.

Concretely the variant affects three decisions:

* whether a shell stalls when a stop arrives on an output that currently
  carries a **void** (nothing would be lost, so the refined protocol
  ignores it);
* whether a shell asserts back pressure on an input that currently
  carries a **void** (no datum to protect, so the refined protocol does
  not);
* whether a relay station holding a **void** in its output register may
  overwrite it while its downstream stop is asserted (the refined
  protocol lets voids be swallowed under stop).

``CASU`` is the paper's variant; ``CARLONI`` reproduces the original
behaviour and serves as the baseline in the speedup bench (EXP-T6).
"""

from __future__ import annotations

import enum


class ProtocolVariant(enum.Enum):
    """Which stop-handling discipline the blocks follow."""

    #: Original protocol: stops propagate regardless of validity.
    CARLONI = "carloni"

    #: The paper's refinement: stops on invalid (void) signals are
    #: discarded, giving higher locality of void/stop management and a
    #: throughput gain during transients.
    CASU = "casu"

    # -- capability flags (consumed by the simulation backends) --------

    @property
    def discards_void_stops(self) -> bool:
        """True when stops landing on void signals are discarded.

        This is the single semantic switch between the variants; both
        the scalar and the vectorized skeleton engines branch on this
        flag (never on enum identity) so that a future variant only has
        to declare its flags to be simulatable by every backend.
        """
        return self is ProtocolVariant.CASU

    @property
    def capabilities(self) -> frozenset:
        """Semantic capability tags for backend selection.

        ``repro.skeleton.backend.select`` checks these against what an
        engine implements instead of hard-coding variant lists.
        """
        tags = {"skeleton-scalar", "skeleton-vectorized",
                "skeleton-bitsim", "skeleton-codegen"}
        if self.discards_void_stops:
            tags.add("discards-void-stops")
        return frozenset(tags)

    # -- decision helpers (used by shell and relay stations) -----------

    def output_blocked(self, stop: bool, output_valid: bool) -> bool:
        """Does an asserted *stop* on an output with validity
        *output_valid* stall the producer?"""
        if self is ProtocolVariant.CASU:
            return stop and output_valid
        return stop

    def back_pressure(self, stalled: bool, input_valid: bool) -> bool:
        """Should a stalled consumer assert stop on an input whose
        current token has validity *input_valid*?

        Original protocol: yes, regardless — the stop wave spreads over
        void channels too.  Refinement: a stop landing on an invalid
        signal is discarded, so it is never generated in the first
        place.
        """
        if self is ProtocolVariant.CASU:
            return stalled and input_valid
        return stalled

    def slot_consumed(self, slot_valid: bool, stop: bool) -> bool:
        """Is a relay-station output slot free to be overwritten, given
        its validity and the downstream stop?

        A valid slot is consumed exactly when the downstream did not
        stop.  A void slot is always replaceable — in both protocols:
        voids carry no information, and a relay station that froze voids
        under stop could never be primed (the stop means "do not advance
        valid data", not "hold bubbles").
        """
        return not slot_valid or not stop

    def __str__(self) -> str:
        return self.value


#: Default variant used by builders when none is given.
DEFAULT_VARIANT = ProtocolVariant.CASU

"""Integration: the butterfly (Walsh-Hadamard) network at scale."""

import numpy as np
import pytest

from repro.errors import StructuralError
from repro.graph import butterfly_network
from repro.lid.reference import is_prefix
from repro.lid.token import Token
from repro.skeleton import check_deadlock, system_throughput


class TestStructure:
    def test_shell_count(self):
        graph = butterfly_network(8)
        assert len(graph.shells()) == 12  # 3 stages x 4 butterflies

    def test_power_of_two_required(self):
        with pytest.raises(StructuralError):
            butterfly_network(6)

    def test_minimum_size(self):
        graph = butterfly_network(2)
        assert len(graph.shells()) == 1

    def test_balanced_by_construction(self):
        from repro.graph import imbalance

        assert imbalance(butterfly_network(8)) == 0


class TestBehaviour:
    @pytest.mark.parametrize("lanes", [2, 4, 8])
    def test_full_throughput(self, lanes):
        assert system_throughput(butterfly_network(lanes)) == 1

    @pytest.mark.parametrize("relays", [1, 2])
    def test_latency_equivalence(self, relays):
        graph = butterfly_network(4, relays_per_hop=relays)
        system = graph.elaborate()
        system.run(40)
        reference = system.reference_outputs(40)
        for lane in range(4):
            sink = system.sinks[f"out{lane}"]
            assert is_prefix(sink.payloads, reference[f"out{lane}"])
            assert len(sink.payloads) > 25

    def test_deadlock_free(self):
        verdict = check_deadlock(butterfly_network(8))
        assert verdict.live

    def test_transform_is_hadamard(self):
        """Impulse responses recover a genuine Hadamard matrix."""
        lanes = 4
        W = np.zeros((lanes, lanes), dtype=int)
        for col in range(lanes):
            graph = butterfly_network(lanes)
            for lane in range(lanes):
                value = 1 if lane == col else 0
                graph.nodes[f"in{lane}"].stream_factory = (
                    lambda value=value: iter(
                        Token(value) for _ in range(40)))
            system = graph.elaborate()
            ref = system.reference_outputs(12)
            for row in range(lanes):
                W[row, col] = ref[f"out{row}"][-1]
        assert set(np.unique(W)) == {-1, 1}
        assert np.array_equal(W @ W.T, lanes * np.eye(lanes, dtype=int))

    def test_survives_partial_backpressure(self):
        graph = butterfly_network(4)
        # Stop one output lane periodically; the others keep a
        # consistent view (multicast discipline under pressure).
        graph.nodes["out0"].stop_script = lambda c: c % 2 == 0
        system = graph.elaborate()
        system.run(60)
        reference = system.reference_outputs(60)
        for lane in range(4):
            sink = system.sinks[f"out{lane}"]
            assert is_prefix(sink.payloads, reference[f"out{lane}"])

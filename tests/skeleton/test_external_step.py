"""Tests for externally driven skeleton stepping and state snapshots."""

import pytest

from repro.graph import figure1, figure2, pipeline
from repro.skeleton import SkeletonSim


class TestRegisterState:
    def test_roundtrip(self):
        sim = SkeletonSim(figure1())
        for _ in range(7):
            sim.step()
        snapshot = sim.register_state()
        for _ in range(5):
            sim.step()
        sim.set_register_state(snapshot)
        assert sim.register_state() == snapshot

    def test_restored_state_evolves_identically(self):
        sim = SkeletonSim(figure1(), detect_ambiguity=False)
        for _ in range(4):
            sim.step()
        snapshot = sim.register_state()
        first = [sim.step()[0] for _ in range(6)]
        sim.set_register_state(snapshot)
        second = [sim.step()[0] for _ in range(6)]
        assert first == second

    def test_snapshot_is_hashable(self):
        sim = SkeletonSim(pipeline(2))
        assert hash(sim.register_state()) == hash(sim.register_state())


class TestExternalStep:
    def test_argument_validation(self):
        sim = SkeletonSim(pipeline(2))
        with pytest.raises(ValueError, match="source"):
            sim.external_step([], [False])
        with pytest.raises(ValueError, match="sink"):
            sim.external_step([True], [])

    def test_withholding_source_stalls_first_shell(self):
        sim = SkeletonSim(pipeline(2))
        fires, _accepts, _stops = sim.external_step([False], [False])
        assert fires[0] is False  # no input offered

    def test_offering_source_fires(self):
        sim = SkeletonSim(pipeline(2))
        fires, _accepts, _stops = sim.external_step([True], [False])
        assert fires[0] is True

    def test_matches_scripted_step(self):
        """Driving the same env externally reproduces step() exactly."""
        pattern_src = (True, True, False)
        pattern_sink = (False, True)
        scripted = SkeletonSim(
            pipeline(3),
            source_patterns={"src": pattern_src},
            sink_patterns={"out": pattern_sink},
            detect_ambiguity=False,
        )
        external = SkeletonSim(pipeline(3), detect_ambiguity=False)
        src_pos = 0
        for cycle in range(40):
            # The scripted source presents pattern[phase]; when held
            # under stop the phase freezes, so re-reading the phase
            # after each step mirrors the hold contract exactly.
            offer = pattern_src[src_pos % len(pattern_src)]
            stop = pattern_sink[cycle % len(pattern_sink)]
            fires_a, accepts_a = scripted.step()
            fires_b, accepts_b, _src_stops = external.external_step(
                [offer], [stop])
            assert fires_a == fires_b, cycle
            assert accepts_a == accepts_b, cycle
            assert scripted.register_state() == \
                external.register_state(), cycle
            src_pos = scripted.src_phase[0]

    def test_override_cleared_after_step(self):
        sim = SkeletonSim(figure2())
        sim.external_step([], [False])
        assert sim._src_override is None
        assert sim._sink_override is None

    def test_stop_report_matches_hold_contract(self):
        # A permanently stopped sink eventually pushes back to the src.
        sim = SkeletonSim(pipeline(2))
        held_seen = False
        for _ in range(15):
            _f, _a, src_stops = sim.external_step([True], [True])
            held_seen = held_seen or src_stops[0]
        assert held_seen

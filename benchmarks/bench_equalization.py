"""EXP-T3: path equalization restores throughput 1.

Paper: "To get the maximum T from a feedforward arrangement, it is
necessary to insert enough spare relay stations to make all converging
paths of the same length (path equalization)."
"""

from fractions import Fraction

from repro.bench.runner import run_equalization
from repro.graph import equalization_plan, equalize, figure1, reconvergent
from repro.skeleton import system_throughput


def test_bench_equalization_table(benchmark, emit):
    table, rows = benchmark(run_equalization)
    emit("EXP-T3-equalization", table)
    assert all(row[-1] for row in rows)  # every system reaches T=1


def test_bench_equalize_transform(benchmark):
    graph = reconvergent(long_relays=(3, 2), short_relays=1)

    def run():
        return equalize(graph)

    balanced = benchmark(run)
    assert system_throughput(balanced) == Fraction(1)


def test_bench_plan_computation(benchmark):
    graph = figure1()

    def run():
        return equalization_plan(graph)

    plan = benchmark(run)
    ((edge, extra),) = plan
    assert extra == 1 and (edge.src, edge.dst) == ("A", "C")

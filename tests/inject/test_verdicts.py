"""All five campaign verdict classes, exercised on real systems.

The figure 2 feedback loop at 100 cycles is the reference workload:
its golden run delivers 50 tokens to the tap sink and keeps firing
through the tail window, so every verdict class has a concrete,
deterministic witness fault.
"""

import pytest

from repro.errors import InjectionError
from repro.graph import figure2
from repro.inject import (
    FaultInjector,
    FaultSpec,
    GoldenRun,
    VERDICTS,
    default_corruptor,
    run_campaign,
    run_experiment,
    tail_window,
)
from repro.lid.variant import ProtocolVariant

CYCLES = 100


@pytest.fixture(scope="module")
def golden():
    return GoldenRun.capture(figure2(), ProtocolVariant.CASU, CYCLES)


def run_one(spec, golden, **kwargs):
    return run_experiment(figure2(), spec, golden,
                          variant=ProtocolVariant.CASU, **kwargs)


class TestVerdictClasses:
    """One witness fault per verdict class."""

    def test_masked(self, golden):
        # Forcing an already-low stop low changes nothing.
        result = run_one(
            FaultSpec("stop-stuck-0", "S1->S0#3", 10, 0), golden)
        assert result.verdict == "masked"

    def test_detected_by_strict_monitor(self, golden):
        # Under Casu a stop may only answer a valid token; sticking the
        # tap stop high asserts it against voids, which the strict
        # stop-shape monitor rejects.
        result = run_one(
            FaultSpec("stop-stuck-1", "S0->out#5", 5, 0), golden,
            strict=True)
        assert result.verdict == "detected"
        assert "stop-shape" in result.detail

    def test_silent_corruption(self, golden):
        # Lowering a settled stop for one cycle lets a token through
        # that the golden run held back: the sink sees an extra token.
        result = run_one(
            FaultSpec("stop-glitch", "S0->out#5", 30), golden)
        assert result.verdict == "silent-corruption"
        assert "extra token" in result.detail

    def test_deadlock(self, golden):
        # Starving the forward ring arc forever wedges the loop.
        result = run_one(
            FaultSpec("valid-stuck-0", "S0->S1#1", 10, 0), golden)
        assert result.verdict == "deadlock"
        assert "no shell fired in the tail window" in result.detail

    def test_timeout(self, golden):
        # One swallowed token costs throughput but the system stays
        # live: a correct-but-short prefix at the end of the budget.
        result = run_one(
            FaultSpec("void-glitch", "S0->S1#1", 20), golden)
        assert result.verdict == "timeout"
        assert "still live" in result.detail

    def test_strictness_is_the_only_difference(self, golden):
        # The same fault without the strict monitor corrupts silently:
        # the detected/silent split is exactly the monitor's doing.
        spec = FaultSpec("stop-stuck-1", "S0->out#5", 5, 0)
        loud = run_one(spec, golden, strict=True)
        quiet = run_one(spec, golden, strict=False)
        assert loud.verdict == "detected"
        assert quiet.verdict == "silent-corruption"


class TestGoldenRun:
    def test_capture_figure2(self, golden):
        assert golden.cycles == CYCLES
        assert len(golden.sink_payloads["out"]) == 50
        assert golden.tail_fires > 0

    def test_tail_window_floor(self):
        assert tail_window(16) == 8
        assert tail_window(100) == 12
        assert tail_window(800) == 100


class TestInjectorMechanics:
    def test_unknown_channel_rejected(self):
        system = figure2().elaborate()
        with pytest.raises(InjectionError, match="no channel named"):
            FaultInjector(FaultSpec("stop-glitch", "nope", 0), system)

    def test_unknown_relay_rejected(self):
        system = figure2().elaborate()
        with pytest.raises(InjectionError, match="no relay station"):
            FaultInjector(FaultSpec("relay-drop", "nope", 0), system)

    def test_fired_cycles_recorded(self, golden):
        result = run_one(
            FaultSpec("stop-glitch", "S0->out#5", 30), golden)
        assert result.fired
        assert result.fire_cycles == 1

    def test_masked_noop_never_fires(self, golden):
        result = run_one(
            FaultSpec("stop-stuck-0", "S1->S0#3", 10, 0), golden)
        assert not result.fired
        assert result.fire_cycles == 0

    def test_default_corruptor(self):
        assert default_corruptor(True) is False
        assert default_corruptor(6) == 7
        assert default_corruptor("x") == ("corrupt", "x")


class TestCampaign:
    def test_report_counts_cover_all_classes(self):
        report = run_campaign(
            figure2(), variant=ProtocolVariant.CASU,
            classes=("stop", "void"), cycles=CYCLES, samples=48,
            seed=7, strict=True)
        counts = report.counts()
        assert set(counts) == set(VERDICTS)
        # This seed exercises every verdict class at least once.
        assert all(counts[v] > 0 for v in VERDICTS), counts
        assert sum(counts.values()) == len(report.results) == 48

    def test_report_json_reproducible(self):
        kwargs = dict(variant=ProtocolVariant.CASU, cycles=60,
                      samples=12, seed=3)
        a = run_campaign(figure2(), **kwargs).to_json()
        b = run_campaign(figure2(), **kwargs).to_json()
        assert a == b
        assert a.endswith("\n")

    def test_headline_claim(self):
        """Strict Casu detects >= what Carloni silently corrupts."""
        kwargs = dict(classes=("stop", "void"), cycles=CYCLES,
                      samples=48, seed=7)
        casu = run_campaign(figure2(), variant=ProtocolVariant.CASU,
                            strict=True, **kwargs)
        carloni = run_campaign(figure2(),
                               variant=ProtocolVariant.CARLONI,
                               **kwargs)
        assert (casu.counts()["detected"]
                >= carloni.counts()["silent-corruption"] > 0)

    def test_table_lists_every_fault(self):
        report = run_campaign(figure2(), cycles=40, samples=6, seed=1)
        table = report.format_table()
        for result in report.results:
            assert result.spec.label() in table

"""BENCH: one lowered plan per campaign — the IR memo pays its way.

Before the canonical IR existed, every per-fault experiment in a
campaign re-walked the topology from scratch (lid elaboration, the
skeleton engines and the analysis walkers each had their own private
walk).  Now every construction path consumes ``repro.ir.lower(graph)``,
which is memoized per graph object, so a campaign lowers its topology
once and the remaining experiments hit the memo.

This bench runs the EXP-R1-shaped campaign (48 sampled stop/void
faults on the figure2 feedback loop) and checks the contract from two
sides:

* **counters** — ``repro.ir.STATS`` must show a handful of distinct
  lowerings (the shared plan, not one per fault) and at least one memo
  hit per fault;
* **wall clock** — the cost of re-lowering a fresh copy of the graph
  once per fault (the pre-IR behaviour, measured directly) is reported
  as a share of the campaign wall; with the memo the campaign itself
  pays that cost roughly once.

It also re-asserts the EXP-M1 scalar floor through the IR path: a
``SkeletonSim`` built from an explicit ``LoweredSystem`` must still
clear half the pinned pre-refactor figure2 throughput, so the single
construction path cannot quietly tax the hot loop.  Emits
``BENCH_EXP-IR1-plan-reuse.json``.
"""

from time import perf_counter

from repro.bench.tables import format_table
from repro.graph import figure2
from repro.inject import run_campaign
from repro.ir import STATS, lower
from repro.lid.variant import ProtocolVariant
from repro.skeleton.sim import SkeletonSim

CYCLES = 100
SAMPLES = 48
SEED = 7
CLASSES = ("stop", "void")

# EXP-M1's pinned pre-refactor figure2 throughput (cycles/s) on the
# dev container; the IR path must clear the same halved floor.
M1_FIGURE2_BEFORE = 139_574
M1_CYCLES = 4000
M1_ROUNDS = 3


def _campaign():
    graph = figure2()
    return run_campaign(
        graph, variant=ProtocolVariant.CASU, classes=CLASSES,
        cycles=CYCLES, samples=SAMPLES, seed=SEED, strict=True)


def _ir_throughput() -> float:
    """Best-of-rounds scalar throughput, built from a LoweredSystem."""
    best = 0.0
    for _ in range(M1_ROUNDS):
        sim = SkeletonSim(lower(figure2()))
        started = perf_counter()
        for _ in range(M1_CYCLES):
            sim.step()
        elapsed = perf_counter() - started
        best = max(best, M1_CYCLES / elapsed)
    return best


def test_bench_ir_plan_reuse(benchmark, emit):
    # -- campaign with the shared plan ------------------------------
    STATS.reset()
    started = perf_counter()
    report = _campaign()
    campaign_wall = perf_counter() - started
    lowerings, memo_hits = STATS.lowerings, STATS.memo_hits
    benchmark.pedantic(_campaign, rounds=1, iterations=1)

    faults = len(report.results)
    assert faults >= SAMPLES
    # The plan is shared: a handful of distinct lowerings (the
    # campaign topology and its derived views), not one per fault...
    assert lowerings <= 4, (
        f"campaign lowered the topology {lowerings} times for "
        f"{faults} faults: the shared-plan contract regressed")
    # ...and the per-fault construction paths hit the memo.
    assert memo_hits >= faults, (
        f"only {memo_hits} memo hits across {faults} faults: "
        f"per-fault paths are not reusing the lowered plan")

    # -- what re-lowering per fault would have cost -----------------
    started = perf_counter()
    for _ in range(faults):
        lower(figure2().copy())  # fresh object: memo cannot help
    relower_wall = perf_counter() - started
    build_share = relower_wall / campaign_wall

    # -- EXP-M1 floor through the IR construction path --------------
    rate = _ir_throughput()
    floor = M1_FIGURE2_BEFORE / 2
    assert rate >= floor, (
        f"figure2 via LoweredSystem fell to {rate:,.0f} cycles/s, "
        f"below the {floor:,.0f} EXP-M1 regression floor")

    rows = [
        ("campaign wall", f"{campaign_wall:.3f}s"),
        ("distinct lowerings", str(lowerings)),
        ("memo hits", str(memo_hits)),
        (f"re-lowering x{faults} (pre-IR cost)", f"{relower_wall:.3f}s"),
        ("avoided build share", f"{build_share:.1%}"),
        ("figure2 via IR", f"{rate:,.0f} cycles/s"),
        ("EXP-M1 floor", f"{floor:,.0f} cycles/s"),
    ]
    table = format_table(
        ("quantity", "value"),
        rows,
        title=f"IR plan reuse on the EXP-R1 campaign shape "
              f"({faults} faults, {CYCLES} cycles, seed {SEED}): "
              f"one lowered plan, memo-served per fault",
    )
    emit("EXP-IR1-plan-reuse", table, rows=rows,
         wall_seconds=campaign_wall + relower_wall,
         params={"cycles": CYCLES, "samples": SAMPLES, "seed": SEED,
                 "classes": list(CLASSES), "topology": "figure2",
                 "m1_floor_cycles_per_s": floor},
         counters={"faults": faults,
                   "lowerings": lowerings,
                   "memo_hits": memo_hits,
                   "build_share_x10000": int(build_share * 10_000),
                   "ir_cycles_per_s": int(rate)})

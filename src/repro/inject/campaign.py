"""Campaign runner: execute fault lists and classify the outcomes.

Each experiment elaborates a fresh system, arms one
:class:`~repro.inject.injector.FaultInjector`, runs a fixed number of
cycles and compares the result against a *golden* (fault-free) run of
the same system.  Outcomes fall into five verdict classes:

* ``detected`` — a runtime protocol monitor (or any other check) raised
  before the run finished; the fault was caught loudly;
* ``silent-corruption`` — the run finished but some sink consumed a
  payload stream that is *not* a prefix of the golden stream (wrong
  data, reordering, duplication): the failure mode latency-insensitive
  design must never exhibit;
* ``masked`` — every sink stream is exactly the golden stream; the
  protocol absorbed the fault completely;
* ``deadlock`` — the streams are a correct prefix but no shell fired at
  all during the tail window (while the golden run kept firing): the
  system wedged;
* ``timeout`` — a correct prefix and still-live shells: the run budget
  expired before latency equivalence was re-established (e.g. the fault
  cost a cycle of throughput).

Verdict priority is detected > silent-corruption > masked / deadlock /
timeout (the last three are mutually exclusive by construction).

Reports are **byte-reproducible**: no wall-clock times are recorded,
keys are sorted, and the experiment order is the deterministic order of
:func:`~repro.inject.faults.generate_faults` — running the same
campaign twice produces identical JSON.

For control-only faults at the system boundary (stop faults on a sink's
input channel, valid faults on a source's output channel) the campaign
can also run on the skeleton engine (:func:`skeleton_campaign`): every
experiment becomes one *column* of a batched
:func:`repro.skeleton.backend.select` run, with the fault expressed as
a per-cycle script pattern.  With sink-boundary payload faults
(classified from the golden column) and ``strict`` stop-shape
detection, the skeleton path witnesses all five verdict classes;
``backend="bitsim"`` additionally packs the columns into bit planes —
one word-level run per ~64 experiments.
"""

from __future__ import annotations

import dataclasses
import functools
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import InjectionError, ProtocolViolationError, ReproError
from ..exec import GraphRef, ResultCache, map_deterministic
from ..graph.model import SystemGraph
from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant
from .faults import FaultSpec, generate_faults
from .injector import FaultInjector

SCHEMA = "repro-inject-campaign/v2"

#: The five verdict classes, in report order.
VERDICTS = ("detected", "silent-corruption", "masked", "deadlock",
            "timeout")


def tail_window(cycles: int) -> int:
    """Liveness observation window at the end of a run."""
    return max(8, cycles // 8)


@dataclasses.dataclass
class GoldenRun:
    """Fault-free reference: sink streams and shell activity."""

    cycles: int
    sink_payloads: Dict[str, List[Any]]
    shell_fires: Dict[str, int]
    tail_fires: int  # total shell firings inside the tail window

    @classmethod
    def capture(cls, graph: SystemGraph, variant: ProtocolVariant,
                cycles: int) -> "GoldenRun":
        system = graph.elaborate(variant=variant)
        system.run(cycles)
        tail_start = cycles - tail_window(cycles)
        tail_fires = sum(
            sum(1 for c in shell.fired_cycles if c >= tail_start)
            for shell in system.shells.values()
        )
        return cls(
            cycles=cycles,
            sink_payloads={name: list(sink.payloads)
                           for name, sink in system.sinks.items()},
            shell_fires={name: shell.fire_count
                         for name, shell in system.shells.items()},
            tail_fires=tail_fires,
        )


@dataclasses.dataclass
class ExperimentResult:
    """One fault, one verdict."""

    spec: FaultSpec
    verdict: str
    detail: str
    fired: bool
    fire_cycles: int  # number of cycles the injector perturbed state

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fault": self.spec.to_dict(),
            "label": self.spec.label(),
            "verdict": self.verdict,
            "detail": self.detail,
            "fired": self.fired,
            "fire_cycles": self.fire_cycles,
        }


def _stream_verdict(
    golden: GoldenRun,
    sink_payloads: Dict[str, List[Any]],
    faulty_tail_fires: int,
) -> Tuple[str, str]:
    """Classify a finished run against the golden streams."""
    corrupt_detail = None
    short_detail = None
    for name in sorted(golden.sink_payloads):
        want = golden.sink_payloads[name]
        got = sink_payloads.get(name, [])
        common = min(len(got), len(want))
        if got[:common] != want[:common]:
            index = next(i for i in range(common)
                         if got[i] != want[i])
            corrupt_detail = (
                f"sink {name!r} diverges at token {index}: "
                f"got {got[index]!r}, expected {want[index]!r}")
            break
        if len(got) > len(want):
            corrupt_detail = (
                f"sink {name!r} received {len(got) - len(want)} extra "
                f"token(s) beyond the golden stream")
            break
        if len(got) < len(want) and short_detail is None:
            short_detail = (
                f"sink {name!r} delivered {len(got)}/{len(want)} "
                f"golden tokens")
    if corrupt_detail is not None:
        return "silent-corruption", corrupt_detail
    if short_detail is None:
        return "masked", "all sink streams identical to golden"
    if golden.tail_fires > 0 and faulty_tail_fires == 0:
        return "deadlock", (
            f"{short_detail}; no shell fired in the tail window "
            f"(golden fired {golden.tail_fires} times)")
    return "timeout", (
        f"{short_detail}; shells still live at end of budget")


def run_experiment(
    graph: SystemGraph,
    spec: FaultSpec,
    golden: GoldenRun,
    *,
    variant: ProtocolVariant = DEFAULT_VARIANT,
    strict: bool = False,
    monitors: bool = True,
    telemetry=None,
) -> ExperimentResult:
    """Run one fault on the scalar LID engine and classify it."""
    from ..lid.monitor import watch_system

    cycles = golden.cycles
    system = graph.elaborate(variant=variant)
    if telemetry is not None:
        system.attach_telemetry(telemetry)
    if monitors:
        watch_system(system, strict_stop_shape=strict)
    injector = FaultInjector(spec, system).attach()

    try:
        system.run(cycles)
    except ProtocolViolationError as exc:
        return ExperimentResult(
            spec, "detected",
            f"monitor {exc.invariant!r} tripped at cycle {exc.cycle} "
            f"on channel {exc.channel!r}",
            injector.fired, len(injector.fired_cycles))
    except ReproError as exc:
        return ExperimentResult(
            spec, "detected",
            f"{type(exc).__name__}: {exc}",
            injector.fired, len(injector.fired_cycles))
    except Exception as exc:  # noqa: BLE001 - a crash is loud detection
        return ExperimentResult(
            spec, "detected",
            f"crash: {type(exc).__name__}: {exc}",
            injector.fired, len(injector.fired_cycles))

    tail_start = cycles - tail_window(cycles)
    faulty_tail_fires = sum(
        sum(1 for c in shell.fired_cycles if c >= tail_start)
        for shell in system.shells.values()
    )
    verdict, detail = _stream_verdict(
        golden,
        {name: list(sink.payloads)
         for name, sink in system.sinks.items()},
        faulty_tail_fires,
    )
    return ExperimentResult(spec, verdict, detail, injector.fired,
                            len(injector.fired_cycles))


@dataclasses.dataclass
class CampaignReport:
    """Aggregated campaign outcome; renders as JSON or a table."""

    topology: str
    variant: str
    engine: str
    backend: str
    cycles: int
    seed: int
    classes: Tuple[str, ...]
    exhaustive: bool
    samples: int
    window: Optional[Tuple[int, int]]
    strict: bool
    results: List[ExperimentResult]
    skipped: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    #: Audit header for parallel/cached runs: ``backend``, ``jobs``,
    #: ``workers`` and cache hit/miss counts (sorted keys, no wall
    #: times).  Excluded from the default payload so reports stay
    #: byte-identical across ``--jobs`` values **and across simulation
    #: backends** (schema v2 moved ``backend`` here from the payload
    #: body: the engines are bit-exact, so which one produced a report
    #: is provenance, not content) — the determinism contract of
    #: ``docs/parallelism.md``; pass ``execution=True`` to include it.
    execution: Optional[Dict[str, Any]] = None

    def counts(self) -> Dict[str, int]:
        counts = {verdict: 0 for verdict in VERDICTS}
        for result in self.results:
            counts[result.verdict] += 1
        return counts

    def counts_by_kind(self) -> Dict[str, Dict[str, int]]:
        by_kind: Dict[str, Dict[str, int]] = {}
        for result in self.results:
            slot = by_kind.setdefault(
                result.spec.kind, {verdict: 0 for verdict in VERDICTS})
            slot[result.verdict] += 1
        return by_kind

    def to_payload(self, execution: bool = False) -> Dict[str, Any]:
        payload = {
            "schema": SCHEMA,
            "topology": self.topology,
            "variant": self.variant,
            "engine": self.engine,
            "cycles": self.cycles,
            "tail_window": tail_window(self.cycles),
            "seed": self.seed,
            "classes": list(self.classes),
            "exhaustive": self.exhaustive,
            "samples": self.samples,
            "window": list(self.window) if self.window else None,
            "strict": self.strict,
            "experiments": [r.to_dict() for r in self.results],
            "skipped": self.skipped,
            "summary": self.counts(),
            "summary_by_kind": self.counts_by_kind(),
        }
        if execution:
            payload["execution"] = self.execution
        return payload

    def to_json(self, execution: bool = False) -> str:
        """Deterministic rendering: byte-identical across reruns.

        The default payload omits the :attr:`execution` audit header
        so that the bytes are also identical across ``--jobs`` values
        and cache states; ``execution=True`` opts into the header for
        audit trails that do not need jobs-invariance.
        """
        return json.dumps(self.to_payload(execution=execution),
                          indent=2, sort_keys=True) + "\n"

    def format_table(self) -> str:
        counts = self.counts()
        header = (
            f"fault campaign: {self.topology} ({self.variant}, "
            f"engine={self.engine}/{self.backend}, cycles={self.cycles}, "
            f"seed={self.seed})")
        label_width = max([len("fault")]
                          + [len(r.spec.label()) for r in self.results])
        verdict_width = max(len(v) for v in VERDICTS)
        lines = [header, "-" * len(header),
                 f"{'fault':<{label_width}}  "
                 f"{'verdict':<{verdict_width}}  detail"]
        for result in self.results:
            lines.append(
                f"{result.spec.label():<{label_width}}  "
                f"{result.verdict:<{verdict_width}}  {result.detail}")
        lines.append("-" * len(header))
        lines.append("  ".join(
            f"{verdict}={counts[verdict]}" for verdict in VERDICTS))
        if self.skipped:
            lines.append(f"skipped={len(self.skipped)} "
                         f"(not expressible on this engine)")
        return "\n".join(lines)


def _record_verdicts(telemetry, report: CampaignReport) -> None:
    if telemetry is None or telemetry.metrics is None:
        return
    for verdict, count in report.counts().items():
        if count:
            telemetry.metrics.counter(
                f"inject/verdict/{verdict}").inc(count)


@dataclasses.dataclass(frozen=True)
class _WorkerContext:
    """Everything a campaign worker needs, in picklable form."""

    graph_ref: GraphRef
    golden: GoldenRun
    variant: ProtocolVariant
    strict: bool
    monitors: bool
    collect_metrics: bool


def _experiment_worker(
    ctx: _WorkerContext,
    spec: FaultSpec,
) -> Tuple[ExperimentResult, Optional[Dict[str, Any]]]:
    """Run one experiment in a worker process.

    Returns the result plus this experiment's metrics snapshot (when
    the parent carries a metrics registry) so the parent can merge the
    per-worker registries in canonical order — the serial-equivalence
    guarantee for ``--metrics-out``.

    Under a traced fan-out (``map_deterministic(trace=...)``) the
    chunk-local :func:`repro.exec.worker_telemetry` bundle supplies the
    event stream and profiler, so every experiment's simulation events
    land in this worker's lane of the merged Chrome trace.  Metrics
    stay per-experiment regardless: the parent merges the returned
    snapshots in submission order, which keeps ``--metrics-out`` equal
    to the serial run whether or not tracing is on.
    """
    from ..exec import worker_telemetry

    chunk_telemetry = worker_telemetry()
    telemetry = None
    if ctx.collect_metrics or chunk_telemetry is not None:
        from ..obs import MetricsRegistry, Telemetry

        telemetry = Telemetry(
            events=(chunk_telemetry.events
                    if chunk_telemetry is not None else None),
            metrics=MetricsRegistry() if ctx.collect_metrics else None,
            profiler=(chunk_telemetry.profiler
                      if chunk_telemetry is not None else None))
        if telemetry.events is not None:
            telemetry.events.emit("run", "experiment", 0,
                                  label=spec.label())
    result = run_experiment(
        ctx.graph_ref.materialize(), spec, ctx.golden,
        variant=ctx.variant, strict=ctx.strict, monitors=ctx.monitors,
        telemetry=telemetry)
    snapshot = (telemetry.metrics.snapshot()
                if telemetry is not None and telemetry.metrics is not None
                else None)
    return result, snapshot


def _cached_golden(
    graph: SystemGraph,
    variant: ProtocolVariant,
    cycles: int,
    seed: int,
    cache: Optional[ResultCache],
) -> GoldenRun:
    """Golden run, via the content-addressed cache when one is given."""
    if cache is None:
        return GoldenRun.capture(graph, variant, cycles)
    from ..exec import graph_fingerprint

    key = cache.key("golden", graph_fingerprint(graph, cycles),
                    variant, cycles, seed)
    golden = cache.get(key)
    if not isinstance(golden, GoldenRun) or golden.cycles != cycles:
        golden = GoldenRun.capture(graph, variant, cycles)
        cache.put(key, golden)
    return golden


def _execution_header(backend: str, jobs: int, workers: int,
                      cache: Optional[ResultCache]) -> Dict[str, Any]:
    return {
        "backend": backend,
        "jobs": jobs,
        "workers": workers,
        "cache": cache.stats.to_dict() if cache is not None else None,
    }


def run_campaign(
    graph: SystemGraph,
    *,
    variant: ProtocolVariant = DEFAULT_VARIANT,
    classes: Sequence[str] = ("stop", "void"),
    cycles: int = 200,
    window: Optional[Tuple[int, int]] = None,
    exhaustive: bool = False,
    samples: int = 64,
    seed: int = 0,
    strict: bool = False,
    monitors: bool = True,
    telemetry=None,
    faults: Optional[Sequence[FaultSpec]] = None,
    jobs: int = 1,
    graph_ref: Optional[GraphRef] = None,
    cache: Optional[ResultCache] = None,
    progress=None,
    trace=None,
) -> CampaignReport:
    """Full campaign on the scalar LID engine (token-level, monitored).

    ``jobs`` fans the independent experiments across worker processes
    via :func:`repro.exec.map_deterministic`; the report is
    byte-identical for every value (see ``docs/parallelism.md``).  With
    ``jobs > 1`` the graph must be reachable from workers: pass a
    *graph_ref* (any graph with lambdas is unpicklable), or rely on the
    automatic :meth:`GraphRef.from_graph` capture for plain graphs.
    ``cache`` skips the fault-free golden simulation on repeat runs.

    The whole campaign shares one lowered plan: fault generation, the
    golden run and every experiment elaborate from the memoized
    :func:`repro.ir.lower` tables instead of re-walking the graph per
    fault (workers re-lower once per process — the memo deliberately
    does not travel inside GraphRef pickles).

    *progress* (a :class:`repro.obs.ProgressReporter`) is advanced as
    experiments complete; *trace* (a :class:`repro.exec.TraceCollection`)
    collects per-worker event/profiler lanes on the parallel path.
    Both are side channels: the report bytes are identical with or
    without them.
    """
    from ..ir import lower

    low = lower(graph)  # prime the shared plan before any fan-out
    if not low.single_clock:
        raise InjectionError(
            f"{graph.name}: the token-level LID engine models "
            f"single-clock systems only (capability flags: "
            f"single_clock={low.single_clock}, "
            f"has_bridges={low.has_bridges}); run GALS campaigns on "
            "the skeleton engine (repro-lid inject --engine skeleton)")
    if faults is None:
        faults = generate_faults(
            graph, variant=variant, classes=classes, cycles=cycles,
            window=window, exhaustive=exhaustive, samples=samples,
            seed=seed)
    golden = _cached_golden(graph, variant, cycles, seed, cache)

    if progress is not None:
        progress.set_total(len(faults))
    workers = 1
    if jobs > 1 and len(faults) > 1:
        ref = graph_ref if graph_ref is not None \
            else GraphRef.from_graph(graph)
        collect = telemetry is not None and telemetry.metrics is not None
        ctx = _WorkerContext(ref, golden, variant, strict, monitors,
                             collect)
        workers = min(jobs, len(faults))
        pairs = map_deterministic(
            functools.partial(_experiment_worker, ctx), faults, jobs,
            trace=trace, progress=progress)
        results = [result for result, _snapshot in pairs]
        if collect:
            # Canonical-order merge: counters add, gauges last-write-
            # wins, histograms add — exactly the serial accumulation.
            for _result, snapshot in pairs:
                if snapshot:
                    telemetry.metrics.merge_snapshot(snapshot)
    else:
        results = []
        for spec in faults:
            results.append(
                run_experiment(graph, spec, golden, variant=variant,
                               strict=strict, monitors=monitors,
                               telemetry=telemetry))
            if progress is not None:
                progress.advance(1)
    if progress is not None:
        progress.finish()
    report = CampaignReport(
        topology=graph.name, variant=str(variant), engine="lid",
        backend="scalar", cycles=cycles, seed=seed,
        classes=tuple(classes), exhaustive=exhaustive, samples=samples,
        window=window, strict=strict, results=results,
        execution=_execution_header("scalar", jobs, workers, cache))
    _record_verdicts(telemetry, report)
    return report


# -- skeleton (batched) campaigns -----------------------------------------

def endpoint_scripts(
    graph: SystemGraph,
    variant: ProtocolVariant,
) -> Tuple[Dict[str, str], Dict[str, str]]:
    """Map boundary channel names to their sink / source block names.

    A stop fault on the channel feeding a sink is exactly a perturbed
    sink back-pressure script; a valid fault on the channel leaving a
    source is a perturbed source availability script.  Faults anywhere
    else need wire-level access the skeleton does not expose.

    Multi-clock graphs resolve through the skeleton lowering's hop
    names instead of the (single-clock-only) LID elaboration — the same
    names :func:`repro.inject.faults.enumerate_targets` hands out for
    GALS graphs, so the generated fault lists resolve here exactly.
    """
    from ..ir import SINK, SRC, lower

    low = lower(graph)
    if not low.single_clock:
        sink_channels = {
            hop.name: low.edges[hop.edge].dst_name
            for hop in low.hops if hop.consumer_kind == SINK}
        source_channels = {
            hop.name: low.edges[hop.edge].src_name
            for hop in low.hops if hop.producer_kind == SRC}
        return sink_channels, source_channels

    system = graph.elaborate(variant=variant)
    sink_channels = {sink.input.name: name
                     for name, sink in system.sinks.items()}
    source_channels = {source.output.name: name
                       for name, source in system.sources.items()}
    return sink_channels, source_channels


def _pattern_for(spec: FaultSpec,
                 baseline: Sequence[bool]) -> Optional[Tuple[bool, ...]]:
    """Faulted per-cycle script, or None when the fault is a no-op
    against the unfaulted *baseline* script."""
    baseline = tuple(baseline)
    start = spec.cycle
    stop = len(baseline) if spec.stuck else min(
        len(baseline), start + spec.duration)
    if start >= stop:
        return None
    window = list(baseline[start:stop])
    changed = False
    if spec.kind == "stop-glitch":
        window = [not v for v in window]
        changed = True
    elif spec.kind == "delayed-stop":
        # The delayed value propagates through the window: each faulted
        # cycle replays the (already faulted) previous cycle, so the
        # whole window holds the value entering it.
        held = bool(baseline[start - 1]) if start else False
        for i, value in enumerate(window):
            if bool(value) != held:
                window[i] = held
                changed = True
    else:
        forced = spec.kind in ("stop-stuck-1", "valid-stuck-1")
        for i, value in enumerate(window):
            if bool(value) != forced:
                window[i] = forced
                changed = True
    if not changed:
        return None
    return baseline[:start] + tuple(window) + baseline[stop:]


_SINK_KINDS = ("stop-stuck-1", "stop-stuck-0", "stop-glitch",
               "delayed-stop")
_SOURCE_KINDS = ("void-glitch", "valid-stuck-0", "valid-stuck-1")


def skeleton_campaign(
    graph: SystemGraph,
    *,
    variant: ProtocolVariant = DEFAULT_VARIANT,
    classes: Sequence[str] = ("stop", "void"),
    cycles: int = 200,
    window: Optional[Tuple[int, int]] = None,
    exhaustive: bool = False,
    samples: int = 64,
    seed: int = 0,
    backend: str = "auto",
    strict: bool = False,
    telemetry=None,
    faults: Optional[Sequence[FaultSpec]] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress=None,
    trace=None,
) -> CampaignReport:
    """Batched campaign on the skeleton engine.

    Every expressible fault becomes one column of a single
    :func:`repro.skeleton.backend.select` batch (plus a golden column
    0); the whole campaign is two ``run_cycles`` calls.  Faults that
    are not boundary control faults are reported as ``skipped``.

    ``backend="bitsim"`` packs the same columns into bit planes of
    Python integers instead (one experiment per bit): the fault list is
    chunked into word-sized groups by :func:`repro.exec.plane_chunks`,
    each group carrying its own golden plane 0.  Every group replays
    identical golden dynamics, so classification — and therefore the
    report bytes — is independent of the chunking and of the backend.

    ``backend="codegen"`` runs each column on a per-topology compiled
    cycle function (:mod:`repro.skeleton.codegen`); the columns stay
    per-instance simulators, only the inner loop changes, so the report
    bytes again match the scalar ones exactly.

    ``strict`` arms the skeleton analogue of the LID strict stop-shape
    monitor: under a variant that discards void stops (the paper's
    refinement), a column whose cumulative stop-on-void count exceeds
    the golden column's saw a protocol-illegal stop land on a void
    token — the fault is classified ``detected`` (highest verdict
    priority) instead of masked/deadlock/timeout.  Validity-blind
    variants have no such invariant, so ``strict`` is a no-op there,
    exactly as the LID monitor never trips under ``CARLONI``.

    ``jobs`` is accepted for CLI symmetry and recorded in the
    execution header, but the engine itself is already data-parallel:
    the whole campaign is one vectorized batch, so there is nothing
    left to fan across processes.  ``cache`` is likewise recorded; the
    golden run here is column 0 of the same batch, not a separate
    simulation to skip.  ``trace`` is accepted for symmetry too — with
    no process fan-out there are no worker lanes to collect, and the
    *telemetry* passthrough already captures the batch's events.
    ``progress`` advances per plane group (the engine's unit of
    forward progress) and per classified payload fault.

    Payload corruption on a *sink-boundary* channel rides the same
    batch instead of falling back to the scalar LID engine: a payload
    fault never perturbs the valid/stop dynamics, so its verdict is
    decided entirely by the golden column — the corrupted slot is
    consumed iff the sink accepts (valid and not stopped) during an
    active fault cycle, which classifies the fault as
    ``silent-corruption``; otherwise the producer re-presents the
    clean held value next cycle and the fault is ``masked``.  This
    mirrors the LID injector exactly (it corrupts the wire only while
    the presented token is valid, and the sink samples only on
    accept), and verdict parity with :func:`run_campaign` is pinned in
    the conformance suite.  Source-boundary payload faults stay
    ``skipped``: their corrupted token takes a topology-dependent path
    through the pearls that a data-free engine cannot follow.

    Skeleton sources advance a script *phase* only when unstopped, so a
    source-side fault at cycle ``c`` perturbs the c-th *presented* slot
    rather than wall-clock cycle ``c`` — same fault universe, slightly
    different alignment; verdicts are computed per column against the
    golden column, so the classification stays exact.

    The skeleton also models the fault at a different point than the
    LID engine: it rewrites the endpoint's *script*, so producer and
    consumer coherently see the faulted control value, whereas the LID
    injector forces the *wire* after settle and the endpoint's own
    behaviour is untouched.  A stuck stop on a sink channel therefore
    wedges the skeleton (the sink really stops consuming) but shows up
    as duplication on the LID engine (the sink re-reads the held
    token); both are faithful readings of the same physical fault.

    CDC faults (``bridge-overflow`` / ``bridge-underflow``) ride the
    same batch on GALS graphs: each becomes a column with the baseline
    scripts plus an armed occupancy poke
    (:meth:`~repro.skeleton.backend._Backend.poke_bridge`) on its
    bridge — a ±1 nudge per active cycle, clamped to ``[0, depth]``,
    modelling a synchronizer resolving a cycle early (phantom write)
    or late (lost token).  Verdicts come from the same
    golden-column comparison; a nudge absorbed by clamping (overflow
    on a full bridge, underflow on an empty one) classifies
    ``masked`` exactly like a no-op script fault.

    The fault batch consumes one lowered plan: every column of the
    :func:`~repro.skeleton.backend.select` batch reads the same
    memoized :func:`repro.ir.lower` tables.
    """
    from ..ir import lower
    from ..skeleton.backend import select
    from .faults import BRIDGE_KINDS

    low = lower(graph)  # prime the shared plan for the whole batch
    bridge_names = set(low.bridge_names)
    if faults is None:
        faults = generate_faults(
            graph, variant=variant, classes=classes, cycles=cycles,
            window=window, exhaustive=exhaustive, samples=samples,
            seed=seed)
    sink_channels, source_channels = endpoint_scripts(graph, variant)

    baseline_sink = {}
    for node in graph.sinks():
        if node.stop_script is not None:
            baseline_sink[node.name] = tuple(
                bool(node.stop_script(c)) for c in range(cycles))
        else:
            baseline_sink[node.name] = (False,) * cycles
    baseline_source = {n.name: (True,) * cycles for n in graph.sources()}

    expressible: List[Tuple[FaultSpec, Dict, Dict]] = []
    payload_specs: List[Tuple[FaultSpec, str]] = []
    skipped: List[Dict[str, Any]] = []
    noop: List[FaultSpec] = []
    #: id(spec) -> (bridge, cycle, delta, active-cycle count) for the
    #: CDC columns; armed on the handle right after select().
    bridge_pokes: Dict[int, Tuple[str, int, int, int]] = {}
    for spec in faults:
        sink = sink_channels.get(spec.target)
        source = source_channels.get(spec.target)
        if spec.kind in BRIDGE_KINDS:
            if spec.target not in bridge_names:
                skipped.append({
                    "fault": spec.to_dict(),
                    "label": spec.label(),
                    "reason": f"no bridge named {spec.target!r} in "
                              f"{graph.name!r}",
                })
                continue
            delta = 1 if spec.kind == "bridge-overflow" else -1
            span = cycles - spec.cycle if spec.stuck else spec.duration
            bridge_pokes[id(spec)] = (
                spec.target, spec.cycle, delta, max(span, 0))
            expressible.append(
                (spec, dict(baseline_source), dict(baseline_sink)))
        elif spec.kind == "payload" and sink is not None:
            payload_specs.append((spec, sink))
        elif spec.kind in _SINK_KINDS and sink is not None:
            pattern = _pattern_for(spec, baseline_sink[sink])
            if pattern is None:
                noop.append(spec)
            else:
                sinks = dict(baseline_sink)
                sinks[sink] = pattern
                expressible.append((spec, dict(baseline_source), sinks))
        elif spec.kind in _SOURCE_KINDS and source is not None:
            pattern = _pattern_for(spec, baseline_source[source])
            if pattern is None:
                noop.append(spec)
            else:
                sources = dict(baseline_source)
                sources[source] = pattern
                expressible.append((spec, sources, dict(baseline_sink)))
        else:
            skipped.append({
                "fault": spec.to_dict(),
                "label": spec.label(),
                "reason": "not a boundary control fault "
                          "(skeleton engine has no wire-level access)",
            })

    results: List[ExperimentResult] = [
        ExperimentResult(spec, "masked",
                         "fault forces the script's existing value",
                         False, 0)
        for spec in noop
    ]

    backend_name = "scalar"
    strict_detect = strict and variant.discards_void_stops
    if expressible or payload_specs:
        # The bit-plane engine is fastest at machine-word batches, so
        # chunk the fault list into word-sized plane groups (each with
        # its own golden plane 0 — identical dynamics in every group,
        # so the classification cannot depend on the chunking).  The
        # other backends take the whole list as one batch.
        if backend == "bitsim" and expressible:
            from ..exec import plane_chunks

            groups = plane_chunks(expressible)
        else:
            groups = [expressible]
        if progress is not None:
            progress.set_total(len(expressible) + len(payload_specs))
        accept_hist = None
        sink_index: Dict[str, int] = {}
        tail = tail_window(cycles)
        for group in groups:
            source_patterns = [dict(baseline_source)] + [
                src for _spec, src, _snk in group]
            sink_patterns = [dict(baseline_sink)] + [
                snk for _spec, _src, snk in group]
            handle = select(
                graph, variant=variant, batch=len(group) + 1,
                source_patterns=source_patterns,
                sink_patterns=sink_patterns,
                detect_ambiguity=False, backend=backend,
                telemetry=telemetry)
            backend_name = handle.name
            for column, (spec, _src, _snk) in enumerate(group, start=1):
                poke = bridge_pokes.get(id(spec))
                if poke is not None:
                    bridge, at, delta, span = poke
                    handle.poke_bridge(column, bridge, at, delta,
                                       duration=span)
            handle.run_cycles(cycles - tail)
            head_fires = handle.fire_counts()
            handle.run_cycles(tail)
            fires = handle.fire_counts()
            accepts = handle.accept_counts()
            tail_fires = fires - head_fires
            voids = handle.void_stop_counts()

            golden_fires = [int(x) for x in fires[:, 0]]
            golden_accepts = [int(x) for x in accepts[:, 0]]
            golden_tail = int(tail_fires[:, 0].sum())
            golden_voids = int(voids[0])
            for column, (spec, _src, _snk) in enumerate(group, start=1):
                col_fires = [int(x) for x in fires[:, column]]
                col_accepts = [int(x) for x in accepts[:, column]]
                col_tail = int(tail_fires[:, column].sum())
                col_voids = int(voids[column])
                if strict_detect and col_voids > golden_voids:
                    verdict, detail = "detected", (
                        f"strict stop-shape monitor: "
                        f"{col_voids - golden_voids} stop(s) landed on "
                        f"void tokens beyond the golden run")
                elif (col_fires == golden_fires
                        and col_accepts == golden_accepts):
                    verdict, detail = "masked", (
                        "fire and accept counts match the golden column")
                elif col_tail == 0 and golden_tail > 0:
                    verdict, detail = "deadlock", (
                        f"no shell fired in the tail window (golden "
                        f"fired {golden_tail} times)")
                else:
                    verdict, detail = "timeout", (
                        f"activity diverged from golden "
                        f"(fires {sum(col_fires)} vs "
                        f"{sum(golden_fires)}, "
                        f"accepts {sum(col_accepts)} vs "
                        f"{sum(golden_accepts)}); shells still live")
                results.append(ExperimentResult(spec, verdict, detail,
                                                True, 0))
            if progress is not None:
                progress.advance(len(group))
            if accept_hist is None:
                # Golden accepts are identical in every group; keep the
                # first group's history for payload classification.
                accept_hist = handle.accept_history()
                sink_index = {name: i
                              for i, name in enumerate(handle.sink_names)}

        if payload_specs:
            # Payload corruption is control-transparent: classify it
            # from the golden column's per-cycle accepts (column 0).
            for spec, sink_name in payload_specs:
                accepts_at = accept_hist[:, sink_index[sink_name], 0]
                stop_at = cycles if spec.stuck else min(
                    cycles, spec.cycle + spec.duration)
                hits = [c for c in range(spec.cycle, stop_at)
                        if accepts_at[c]]
                if hits:
                    verdict = "silent-corruption"
                    detail = (f"sink {sink_name!r} consumed a corrupted "
                              f"payload at cycle {hits[0]}")
                else:
                    verdict = "masked"
                    detail = ("corrupted slot never consumed (void or "
                              "back-pressured throughout the fault "
                              "window)")
                results.append(ExperimentResult(spec, verdict, detail,
                                                bool(hits), len(hits)))
                if progress is not None:
                    progress.advance(1)
    if progress is not None:
        progress.finish()

    # Restore the deterministic fault-list order for the report.
    order = {id(spec): i for i, spec in enumerate(faults)}
    results.sort(key=lambda r: order[id(r.spec)])

    report = CampaignReport(
        topology=graph.name, variant=str(variant), engine="skeleton",
        backend=backend_name, cycles=cycles, seed=seed,
        classes=tuple(classes), exhaustive=exhaustive, samples=samples,
        window=window, strict=strict, results=results, skipped=skipped,
        execution=_execution_header(backend_name, jobs, 1, cache))
    _record_verdicts(telemetry, report)
    return report

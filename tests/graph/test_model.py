"""Unit tests for the abstract system graph."""

import pytest

from repro.errors import StructuralError
from repro.graph import SystemGraph
from repro.pearls import Adder, Identity


def small_graph():
    g = SystemGraph("g")
    g.add_source("src")
    g.add_shell("A", Identity)
    g.add_sink("out")
    g.add_edge("src", "A")
    g.add_edge("A", "out", relays=2)
    return g


class TestConstruction:
    def test_duplicate_node_rejected(self):
        g = SystemGraph()
        g.add_shell("A", Identity)
        with pytest.raises(StructuralError):
            g.add_source("A")

    def test_shell_requires_factory(self):
        g = SystemGraph()
        with pytest.raises(StructuralError):
            from repro.graph.model import Node

            Node("A", "shell")

    def test_unknown_node_kind(self):
        from repro.graph.model import Node

        with pytest.raises(StructuralError):
            Node("A", "widget")

    def test_edge_to_unknown_node(self):
        g = SystemGraph()
        g.add_source("src")
        with pytest.raises(StructuralError):
            g.add_edge("src", "nope")

    def test_sink_cannot_produce(self):
        g = SystemGraph()
        g.add_sink("out")
        g.add_shell("A", Identity)
        with pytest.raises(StructuralError):
            g.add_edge("out", "A")

    def test_source_cannot_consume(self):
        g = SystemGraph()
        g.add_source("src")
        g.add_shell("A", Identity)
        with pytest.raises(StructuralError):
            g.add_edge("A", "src")

    def test_int_relays_become_full(self):
        g = small_graph()
        edge = g.edges[1]
        assert edge.relays == ("full", "full")

    def test_bad_relay_spec(self):
        g = SystemGraph()
        g.add_source("s")
        g.add_sink("o")
        with pytest.raises(StructuralError):
            g.add_edge("s", "o", relays=("quarter",))


class TestQueries:
    def test_kind_accessors(self):
        g = small_graph()
        assert [n.name for n in g.shells()] == ["A"]
        assert [n.name for n in g.sources()] == ["src"]
        assert [n.name for n in g.sinks()] == ["out"]

    def test_in_out_edges(self):
        g = small_graph()
        assert len(g.out_edges("A")) == 1
        assert len(g.in_edges("A")) == 1

    def test_relay_count(self):
        g = small_graph()
        assert g.relay_count() == 2
        assert g.relay_count("full") == 2
        assert g.relay_count("half") == 0

    def test_feedforward_detection(self):
        assert small_graph().is_feedforward()

    def test_cycle_detection(self):
        g = SystemGraph()
        g.add_shell("A", Identity)
        g.add_shell("B", Identity)
        g.add_edge("A", "B", relays=1)
        g.add_edge("B", "A", relays=1)
        cycles = g.shell_cycles()
        assert len(cycles) == 1
        assert set(cycles[0]) == {"A", "B"}

    def test_loop_census(self):
        g = SystemGraph()
        g.add_shell("A", Identity)
        g.add_shell("B", Identity)
        g.add_edge("A", "B", relays=2)
        g.add_edge("B", "A", relays=1)
        (cycle,) = g.shell_cycles()
        shells, relays = g.loop_census(cycle)
        assert (shells, relays) == (2, 3)

    def test_to_networkx(self):
        g = small_graph()
        nxg = g.to_networkx()
        assert set(nxg.nodes) == {"src", "A", "out"}
        assert nxg.number_of_edges() == 2


class TestValidateAndElaborate:
    def test_validate_happy(self):
        small_graph().validate()

    def test_validate_unconnected_port(self):
        g = SystemGraph()
        g.add_source("src")
        g.add_shell("A", Adder)
        g.add_sink("out")
        g.add_edge("src", "A", dst_port="a")
        g.add_edge("A", "out")
        with pytest.raises(StructuralError, match="unconnected"):
            g.validate()

    def test_validate_requires_port_name_on_multiport(self):
        g = SystemGraph()
        g.add_source("src")
        g.add_shell("A", Adder)
        with pytest.raises(StructuralError, match="port name required"):
            g.add_edge("src", "A")
            g.validate()

    def test_elaborate_runs(self):
        g = small_graph()
        system = g.elaborate()
        system.run(10)
        assert system.sinks["out"].payloads

    def test_elaborate_is_repeatable(self):
        g = small_graph()
        s1 = g.elaborate()
        s2 = g.elaborate()
        s1.run(5)
        s2.run(5)
        assert s1.sinks["out"].payloads == s2.sinks["out"].payloads

    def test_copy_is_independent(self):
        g = small_graph()
        dup = g.copy("dup")
        dup.edges[1].relays = ("full",)
        assert g.edges[1].relays == ("full", "full")
        assert dup.name == "dup"

"""Tests for the zero-latency reference model."""

import pytest

from repro import LidSystem, pearls
from repro.errors import StructuralError
from repro.lid.reference import POISON, is_prefix, run_reference

from ..conftest import build_pipeline


class TestIsPrefix:
    def test_empty_is_prefix(self):
        assert is_prefix([], [1, 2])

    def test_proper_prefix(self):
        assert is_prefix([1, 2], [1, 2, 3])

    def test_equal(self):
        assert is_prefix([1, 2], [1, 2])

    def test_longer_not_prefix(self):
        assert not is_prefix([1, 2, 3], [1, 2])

    def test_mismatch(self):
        assert not is_prefix([1, 9], [1, 2, 3])


class TestRunReference:
    def test_identity_pipeline(self):
        system, _sink = build_pipeline(stages=2, relays=2)
        ref = run_reference(system, 6)
        # cycle 0: S1 initial; cycle 1: S1 sees S0 initial; cycle 2:
        # S1 sees S0(src 0)=0; then the counting stream shifted by 2.
        assert ref["out"] == [0, 0, 0, 1, 2, 3]

    def test_relay_stations_are_zero_latency(self):
        shallow, _ = build_pipeline(stages=2, relays=1)
        deep, _ = build_pipeline(stages=2, relays=5)
        assert run_reference(shallow, 8) == run_reference(deep, 8)

    def test_stateful_pearl(self):
        system, _sink = build_pipeline(stages=1, relays=1,
                                       pearl_factory=pearls.Accumulator)
        ref = run_reference(system, 6)
        # init 0, then partial sums of 0,1,2,...
        assert ref["out"] == [0, 0, 1, 3, 6, 10]

    def test_finite_source_poisons(self):
        system, _sink = build_pipeline(stages=1, relays=1)
        system.sources["src"]._make_stream = \
            lambda: iter([])  # dry source
        ref = run_reference(system, 5)
        # Only the initial shell output is ever observable.
        assert ref["out"] == [0]

    def test_scripted_voids_are_projected_out(self):
        system = LidSystem("p")
        src = system.add_source("src", stream=[7, None, None, 8, 9])
        a = system.add_shell("A", pearls.Identity())
        sink = system.add_sink("out")
        system.connect(src, a)
        system.connect(a, sink, relays=1)
        ref = run_reference(system, 5)
        assert ref["out"] == [0, 7, 8, 9]

    def test_loop_reference(self):
        system = LidSystem("loop")
        fib = system.add_shell("F", pearls.Fibonacci(seed=1))
        src = system.add_source("src", stream=[0] * 20)
        sink = system.add_sink("out")
        system.connect(fib, fib, producer_port="out",
                       consumer_port="loop_in", relays=2)
        system.connect(src, fib, consumer_port="ext")
        system.connect(fib, sink, producer_port="out")
        ref = run_reference(system, 6)
        assert len(ref["out"]) == 6
        assert ref["out"][0] == 1  # the seed

    def test_reference_outputs_wrapper(self):
        system, sink = build_pipeline(stages=1, relays=2)
        assert system.reference_outputs(4)["out"] == \
            run_reference(system, 4)["out"]


class TestLatencyEquivalence:
    """The paper's safety definition, on concrete systems."""

    def test_pipeline_equivalence(self):
        system, sink = build_pipeline(stages=3, relays=2)
        system.run(40)
        ref = system.reference_outputs(40)["out"]
        assert is_prefix(sink.payloads, ref)
        assert len(sink.payloads) >= 30  # made real progress

    def test_equivalence_under_backpressure(self):
        system, sink = build_pipeline(
            stages=2, relays=1, stop_script=lambda c: c % 3 == 0)
        system.run(40)
        ref = system.reference_outputs(40)["out"]
        assert is_prefix(sink.payloads, ref)

    def test_equivalence_with_stateful_pearls(self):
        system, sink = build_pipeline(
            stages=2, relays=2, pearl_factory=pearls.Accumulator,
            stop_script=lambda c: (c // 4) % 2 == 0)
        system.run(50)
        ref = system.reference_outputs(50)["out"]
        assert is_prefix(sink.payloads, ref)

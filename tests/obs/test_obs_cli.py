"""End-to-end CLI tests for cross-run observability.

Drives ``repro-lid`` through :func:`repro.cli.main` with the ledger
redirected into a temp directory: campaign runs append records, the
``obs`` subcommand reads them back, and the byte-determinism contract
(serial vs ``--jobs N`` canonical payloads) is checked at the same
level the CI obs-smoke step checks it.
"""

import json

import pytest

from repro.cli import main
from repro.obs import canonical_payload_bytes, make_record, read_ledger
from repro.obs.ledger import append_record


@pytest.fixture()
def ledger(tmp_path, monkeypatch):
    path = tmp_path / "ledger.jsonl"
    monkeypatch.setenv("REPRO_LID_LEDGER", str(path))
    return path


def _smoke(*extra):
    return main(["inject", "--smoke", "--no-cache", *extra])


class TestLedgerAppend:
    def test_inject_appends_and_notes_on_stderr(self, ledger, capsys):
        assert _smoke("--ledger") == 0
        records = read_ledger(str(ledger))
        assert len(records) == 1
        payload = records[0]["payload"]
        assert payload["kind"] == "inject-campaign"
        assert payload["topology"] == "feedback"
        assert payload["verdict"]
        assert "jobs" not in payload["params"]
        assert records[0]["meta"]["jobs"] == 1
        assert records[0]["meta"]["wall_seconds"] > 0
        captured = capsys.readouterr()
        assert "ledger: appended inject-campaign" in captured.err
        assert "ledger" not in captured.out

    def test_serial_and_parallel_payloads_are_byte_identical(
            self, ledger, capsys):
        assert _smoke("--ledger") == 0
        assert _smoke("--ledger", "--jobs", "2") == 0
        first, second = read_ledger(str(ledger))
        assert canonical_payload_bytes(first) \
            == canonical_payload_bytes(second)
        assert first["run_id"] == second["run_id"]
        assert second["meta"]["jobs"] == 2

    def test_stdout_is_unchanged_by_ledger_and_progress(
            self, ledger, capsys):
        assert _smoke() == 0
        plain = capsys.readouterr().out
        assert _smoke("--ledger", "--progress") == 0
        assert capsys.readouterr().out == plain

    def test_explicit_ledger_file_wins_over_env(self, ledger, tmp_path,
                                                capsys):
        other = tmp_path / "other.jsonl"
        assert _smoke("--ledger", str(other)) == 0
        assert not ledger.exists()
        assert len(read_ledger(str(other))) == 1

    def test_deadlock_record_and_metrics_out(self, ledger, tmp_path,
                                             capsys):
        metrics = tmp_path / "dm.json"
        assert main(["deadlock", "feedback", "--ledger",
                     "--metrics-out", str(metrics)]) == 0
        record, = read_ledger(str(ledger))
        assert record["payload"]["kind"] == "deadlock-check"
        assert record["payload"]["verdict"]["deadlocked"] is False
        assert record["payload"]["metrics_digest"]
        snapshot = json.loads(metrics.read_text())
        assert snapshot["schema"] == "repro-metrics/v1"
        assert any(name.startswith("deadlock/optimistic/")
                   for name in snapshot["metrics"])

    def test_series_record(self, ledger, capsys):
        assert main(["series", "loop", "--ledger"]) == 0
        record, = read_ledger(str(ledger))
        assert record["payload"]["kind"] == "series"
        assert record["payload"]["params"]["which"] == "loop"
        assert record["payload"]["verdict"]["lines"] > 0


class TestTraceOut:
    def test_parallel_campaign_exports_worker_lanes(self, tmp_path,
                                                    capsys):
        trace = tmp_path / "trace.json"
        assert _smoke("--jobs", "2", "--trace-out", str(trace)) == 0
        payload = json.loads(trace.read_text())
        other = payload["otherData"]
        assert other["worker_lanes"] >= 2
        assert other["run_id"]
        lanes = {(e["pid"], e["tid"]) for e in payload["traceEvents"]
                 if e.get("ph") == "i" and e["tid"] >= 1000}
        assert len(lanes) == other["worker_lanes"]
        assert "worker lane(s)" in capsys.readouterr().out

    def test_serial_campaign_trace_has_parent_lane_only(self, tmp_path,
                                                        capsys):
        trace = tmp_path / "trace.json"
        assert _smoke("--trace-out", str(trace)) == 0
        payload = json.loads(trace.read_text())
        assert payload["otherData"]["worker_lanes"] == 0
        assert payload["otherData"]["emitted"] > 0


class TestObsCommands:
    def _seed_two_runs(self, ledger):
        assert _smoke("--ledger") == 0
        assert _smoke("--ledger", "--jobs", "2") == 0

    def test_ls(self, ledger, capsys):
        self._seed_two_runs(ledger)
        capsys.readouterr()
        assert main(["obs", "ls"]) == 0
        out = capsys.readouterr().out
        assert "run ledger: 2 record(s)" in out
        assert "@0" in out and "@1" in out

    def test_ls_empty(self, ledger, capsys):
        assert main(["obs", "ls"]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_show_canonical_matches_ledger_bytes(self, ledger, capsys):
        self._seed_two_runs(ledger)
        capsys.readouterr()
        assert main(["obs", "show", "@0", "--canonical"]) == 0
        first = capsys.readouterr().out
        assert main(["obs", "show", "@1", "--canonical"]) == 0
        second = capsys.readouterr().out
        assert first == second
        record = read_ledger(str(ledger))[0]
        assert first.encode() == canonical_payload_bytes(record)

    def test_show_full_record(self, ledger, capsys):
        self._seed_two_runs(ledger)
        capsys.readouterr()
        assert main(["obs", "show", "@-1"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["payload"]["kind"] == "inject-campaign"
        assert record["meta"]["jobs"] == 2

    def test_show_bad_ref_exits_with_message(self, ledger):
        self._seed_two_runs(ledger)
        with pytest.raises(SystemExit, match="no ledger record"):
            main(["obs", "show", "zzzz"])

    def test_diff_identical_runs(self, ledger, capsys):
        self._seed_two_runs(ledger)
        capsys.readouterr()
        assert main(["obs", "diff", "@0", "@1"]) == 0
        out = capsys.readouterr().out
        assert "no deltas: canonical payloads are byte-identical" in out

    def test_diff_divergent_runs(self, ledger, capsys):
        assert _smoke("--ledger") == 0
        assert main(["inject", "--smoke", "--no-cache", "--ledger",
                     "--seed", "7"]) == 0
        capsys.readouterr()
        assert main(["obs", "diff", "@0", "@1"]) == 0
        out = capsys.readouterr().out
        assert "diverged components" in out
        assert "params" in out


class TestObsRegress:
    def _append(self, ledger, wall, cycles=64):
        append_record(str(ledger), make_record(
            "inject-campaign", fingerprint="f", variant="casu",
            params={"cycles": cycles}, git_rev="r",
            meta={"wall_seconds": wall}))

    def test_two_x_slowdown_exits_one(self, ledger, capsys):
        self._append(ledger, 1.0)
        self._append(ledger, 2.0)
        assert main(["obs", "regress"]) == 1
        out = capsys.readouterr().out
        assert "regression(s) beyond 1.50x" in out

    def test_clean_trajectory_exits_zero(self, ledger, capsys):
        self._append(ledger, 1.0)
        self._append(ledger, 1.2)
        assert main(["obs", "regress"]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_threshold_is_honoured(self, ledger, capsys):
        self._append(ledger, 1.0)
        self._append(ledger, 2.0)
        assert main(["obs", "regress", "--threshold", "3.0"]) == 0

    def test_bench_directories(self, ledger, tmp_path, capsys):
        from repro.bench.runner import experiment_record, write_record

        old, new = tmp_path / "old", tmp_path / "new"
        for directory, wall in ((old, 1.0), (new, 2.5)):
            write_record(str(directory), experiment_record(
                "EXP-X", wall_seconds=wall))
        assert main(["obs", "regress", "--no-ledger",
                     "--bench", str(old), "--bench", str(new)]) == 1
        assert "EXP-X wall_seconds rose" in capsys.readouterr().out

"""Floorplan-driven relay insertion: from wire lengths to stations.

The paper's opening problem: *"The performance of future Systems-on-
Chip will be limited by the latency of long interconnects requiring
more than one clock cycle for the signals to propagate."*  This module
closes the loop from physical design to the protocol:

1. place each block of a :class:`~repro.graph.model.SystemGraph` on a
   grid (:class:`Placement` — explicit coordinates, or the layered
   auto-placer);
2. derive every channel's Manhattan wire length and, given the signal
   *reach* (grid units per clock cycle), the number of relay stations
   the wire needs (:func:`required_relays`);
3. annotate the graph (:func:`apply_floorplan`), optionally re-balance
   reconvergent paths, and report the throughput consequences.

The result is exactly the methodology the paper prescribes: take the
zero-delay design, let the floorplan dictate the pipelining, and let
the protocol absorb it — with the toolkit quantifying what each
centimetre of wire costs.
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..errors import AnalysisError, StructuralError
from .equalize import equalize
from .model import Edge, SystemGraph

Coordinate = Tuple[float, float]


@dataclasses.dataclass
class Placement:
    """Block coordinates on an abstract grid."""

    positions: Dict[str, Coordinate]

    def require(self, graph: SystemGraph) -> None:
        missing = sorted(set(graph.nodes) - set(self.positions))
        if missing:
            raise StructuralError(
                f"placement misses blocks: {missing}")

    def distance(self, a: str, b: str) -> float:
        """Manhattan distance between two placed blocks."""
        ax, ay = self.positions[a]
        bx, by = self.positions[b]
        return abs(ax - bx) + abs(ay - by)


def layered_placement(graph: SystemGraph, row_pitch: float = 1.0,
                      column_pitch: float = 1.0) -> Placement:
    """Deterministic auto-placement by topological layer.

    Sources sit in column 0; every other block goes one column right of
    its deepest producer (feedback edges are ignored for layering, so
    loops share a column and their feedback wire spans it).  Rows are
    assigned in name order within a column — crude, deterministic, and
    good enough to exercise wire-length effects.
    """
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(graph.nodes)
    for edge in graph.edges:
        g.add_edge(edge.src, edge.dst)
    # Break cycles for layering purposes only.
    removed = []
    while not nx.is_directed_acyclic_graph(g):
        cycle = nx.find_cycle(g)
        g.remove_edge(*cycle[-1][:2])
        removed.append(cycle[-1][:2])
    column: Dict[str, int] = {}
    for node in nx.topological_sort(g):
        preds = [column[p] for p in g.predecessors(node)]
        column[node] = max(preds) + 1 if preds else 0
    rows: Dict[int, int] = {}
    positions: Dict[str, Coordinate] = {}
    for name in sorted(graph.nodes):
        col = column[name]
        row = rows.get(col, 0)
        rows[col] = row + 1
        positions[name] = (col * column_pitch, row * row_pitch)
    return Placement(positions)


def required_relays(length: float, reach: float) -> int:
    """Stations needed so every wire segment is crossable in one cycle.

    A wire of *length* grid units split by k stations has k+1 segments;
    the protocol needs ``ceil(length / reach) - 1`` stations (zero for
    wires within reach).
    """
    if reach <= 0:
        raise AnalysisError("reach must be positive")
    if length <= 0:
        return 0
    segments = -(-length // reach)  # ceil for floats with // trick
    return max(int(segments) - 1, 0)


@dataclasses.dataclass
class FloorplanReport:
    """Outcome of :func:`apply_floorplan`."""

    graph: SystemGraph
    wire_lengths: Dict[Tuple[str, str], float]
    relays_added: int
    spare_for_balance: int
    throughput: Fraction

    def rows(self) -> List[Tuple[str, float, int]]:
        """(edge, length, relay count) rows for reporting."""
        out = []
        seen = set()
        for edge in self.graph.edges:
            key = (edge.src, edge.dst)
            if key in seen:
                continue
            seen.add(key)
            out.append((f"{edge.src} -> {edge.dst}",
                        self.wire_lengths[key], edge.relay_count))
        return out


def apply_floorplan(
    graph: SystemGraph,
    placement: Placement,
    reach: float,
    balance: bool = True,
    name: Optional[str] = None,
) -> FloorplanReport:
    """Annotate *graph* with the relay stations its floorplan demands.

    Every edge gets at least ``required_relays(length, reach)`` full
    stations (existing stations are kept — they count toward the
    requirement).  With ``balance=True`` the result is then path-
    equalized so the physically forced imbalances don't linger as
    throughput loss (loops are never padded).  Returns the annotated
    graph plus the accounting.
    """
    from .._registry import resolve

    system_throughput = resolve("skeleton.system_throughput")
    placement.require(graph)
    annotated = graph.copy(name or f"{graph.name}_placed")
    lengths: Dict[Tuple[str, str], float] = {}
    added = 0
    for edge in annotated.edges:
        length = placement.distance(edge.src, edge.dst)
        lengths[(edge.src, edge.dst)] = length
        need = required_relays(length, reach)
        if (annotated.nodes[edge.src].kind == "shell"
                and annotated.nodes[edge.dst].kind == "shell"):
            # The paper's minimum-memory rule: the simplified shell
            # does not register stops, so every shell-to-shell wire
            # carries at least one station even when physically short.
            need = max(need, 1)
        if need > len(edge.relays):
            added += need - len(edge.relays)
            edge.relays = edge.relays + ("full",) * (
                need - len(edge.relays))
    before_balance = annotated.relay_count()
    if balance:
        annotated = equalize(annotated, name or f"{graph.name}_placed")
    spare = annotated.relay_count() - before_balance
    return FloorplanReport(
        graph=annotated,
        wire_lengths=lengths,
        relays_added=added,
        spare_for_balance=spare,
        throughput=system_throughput(annotated),
    )


def shrink_sweep(
    graph: SystemGraph,
    placement: Placement,
    reaches: List[float],
    balance: bool = True,
) -> List[Tuple[float, int, Fraction]]:
    """(reach, total relay stations, throughput) across process shrinks.

    Smaller reach models a faster clock or a bigger die: wires span
    more cycles, relay stations multiply, and — with balancing — the
    feed-forward throughput stays at 1 while loops degrade as
    S/(S+R), exactly the trade the paper's theory prices.
    """
    rows: List[Tuple[float, int, Fraction]] = []
    for reach in reaches:
        report = apply_floorplan(graph, placement, reach,
                                 balance=balance)
        rows.append((reach, report.graph.relay_count(),
                     report.throughput))
    return rows

"""The paper's verification campaign, reproduced.

The paper checked, with SMV:

* for shells — coherent elaboration, correct output order, no skipped
  valid output, under the assumption that inputs keep their values on
  asserted stops;
* for relay stations — correct output order, no skipped valid output,
  output held on asserted stops, under the assumption that valid inputs
  are ordered.

:func:`verify_shell`, :func:`verify_relay_station` and
:func:`verify_all` run those exact checks by exhaustive product
exploration (block spec × constrained environment × monitor).  Each
returns :class:`PropertyResult` rows suitable for the EXP-V1 bench
table.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterable, List, Optional, Tuple

from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant
from . import fsm
from .env import PAYLOAD_MODULUS, DownstreamState, UpstreamState
from .monitors import (
    CoherenceMonitor,
    HoldMonitor,
    NoSpuriousValidMonitor,
    OrderMonitor,
)
from .reach import Counterexample, ReachResult, explore


@dataclasses.dataclass
class PropertyResult:
    """One row of the verification results table."""

    block: str
    prop: str
    holds: bool
    states_explored: int
    counterexample: Optional[Counterexample] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        verdict = "PASS" if self.holds else "FAIL"
        return (
            f"PropertyResult({self.block}: {self.prop} = {verdict}, "
            f"{self.states_explored} states)"
        )


# -- relay-station products -------------------------------------------------


def _rs_product(
    kind: str,
    variant: ProtocolVariant,
    monitor_names: Tuple[str, ...],
    max_states: int = 200_000,
) -> ReachResult:
    """Explore one relay station against its environment."""
    registered = kind == "half-registered"
    is_full = kind == "full"

    monitors0: Tuple = tuple(
        {"order": OrderMonitor(),
         "hold": HoldMonitor(),
         "balance": NoSpuriousValidMonitor(balance=0, limit=3),
         }[name]
        for name in monitor_names
    )
    if is_full:
        initial = (fsm.FullRsState(), UpstreamState(), monitors0)
    else:
        initial = (fsm.HalfRsState(), UpstreamState(), monitors0)

    def successors(state):
        rs, up, monitors = state
        for present in up.choices():
            for stop_in in DownstreamState.choices():
                if is_full:
                    out_tok, stop_out = fsm.full_rs_outputs(rs)
                    accepted = present is not None and not rs.stop_reg
                    next_rs = fsm.full_rs_step(rs, present, stop_in, variant)
                else:
                    out_tok = rs.main
                    stop_out = fsm.half_rs_stop_out(
                        rs, stop_in, variant, registered)
                    accepted = present is not None and not stop_out
                    next_rs = fsm.half_rs_step(
                        rs, present, stop_in, variant, registered)
                emitted = out_tok is not None and not stop_in
                next_monitors = []
                for mon in monitors:
                    if isinstance(mon, OrderMonitor):
                        next_monitors.append(mon.advance(out_tok, stop_in))
                    elif isinstance(mon, HoldMonitor):
                        next_monitors.append(mon.advance(out_tok, stop_in))
                    else:
                        next_monitors.append(mon.advance(accepted, emitted))
                next_up = up.after(present, stop_out)
                label = f"in={present} stop_in={int(stop_in)}"
                yield label, (next_rs, next_up, tuple(next_monitors))

    return explore([initial], successors, max_states=max_states)


def verify_relay_station(
    kind: str = "full",
    variant: ProtocolVariant = DEFAULT_VARIANT,
) -> List[PropertyResult]:
    """The paper's three relay-station properties for one flavour."""
    block = f"{kind} relay station ({variant})"
    rows: List[PropertyResult] = []
    for prop, monitors in (
        ("produces outputs in the correct order", ("order",)),
        ("does not skip any valid output", ("order", "balance")),
        ("keeps its output on asserted stops", ("hold",)),
    ):
        result = _rs_product(kind, variant, monitors)
        rows.append(PropertyResult(
            block=block,
            prop=prop,
            holds=result.holds,
            states_explored=result.states_explored,
            counterexample=result.counterexample,
        ))
    return rows


# -- shell products -----------------------------------------------------------


def _shell_product(
    n_inputs: int,
    n_outputs: int,
    variant: ProtocolVariant,
    monitor_names: Tuple[str, ...],
    max_states: int = 400_000,
) -> ReachResult:
    init_payload = PAYLOAD_MODULUS - 1
    monitors0: Tuple = tuple(
        {"order": OrderMonitor(expected=init_payload),
         "hold": HoldMonitor(),
         "coherence": CoherenceMonitor(),
         "balance": NoSpuriousValidMonitor(balance=1, limit=3),
         }[name]
        for name in monitor_names
    )
    shell0 = fsm.ShellState(out=(init_payload,) * n_outputs, fired=0)
    # ``fired`` grows unboundedly; quotient it out of the stored state.
    shell0 = dataclasses.replace(shell0, fired=0)
    ups0 = tuple(UpstreamState() for _ in range(n_inputs))
    initial = (shell0, ups0, monitors0)

    def successors(state):
        shell, ups, monitors = state
        present_choices = [up.choices() for up in ups]
        for presents in itertools.product(*present_choices):
            for stops in itertools.product((False, True), repeat=n_outputs):
                in_toks = tuple(presents)
                input_stops = fsm.shell_input_stops(
                    shell, in_toks, stops, variant)
                fired = fsm.shell_fire(shell, in_toks, stops, variant)
                next_shell = fsm.shell_step(
                    shell, in_toks, stops, variant, PAYLOAD_MODULUS)
                next_shell = dataclasses.replace(next_shell, fired=0)
                next_ups = tuple(
                    up.after(present, stop)
                    for up, present, stop in zip(ups, presents, input_stops)
                )
                accepted0 = presents[0] is not None and not input_stops[0]
                next_monitors = []
                for mon in monitors:
                    if isinstance(mon, OrderMonitor):
                        next_monitors.append(
                            mon.advance(shell.out[0], stops[0]))
                    elif isinstance(mon, HoldMonitor):
                        next_monitors.append(
                            mon.advance(shell.out[0], stops[0]))
                    elif isinstance(mon, CoherenceMonitor):
                        next_monitors.append(
                            mon.advance(tuple(u.k for u in next_ups)))
                    else:
                        emitted0 = shell.out[0] is not None and not stops[0]
                        next_monitors.append(
                            mon.advance(accepted0, emitted0))
                label = (
                    f"in={presents} out_stops="
                    f"{tuple(int(s) for s in stops)} fire={int(fired)}"
                )
                yield label, (next_shell, next_ups, tuple(next_monitors))

    return explore([initial], successors, max_states=max_states)


def verify_shell(
    n_inputs: int = 2,
    n_outputs: int = 2,
    variant: ProtocolVariant = DEFAULT_VARIANT,
) -> List[PropertyResult]:
    """The paper's three shell properties."""
    block = f"shell {n_inputs}x{n_outputs} ({variant})"
    rows: List[PropertyResult] = []
    for prop, monitors in (
        ("elaborates coherent data", ("coherence",)),
        ("produces outputs in the correct order", ("order",)),
        ("does not skip any valid output", ("order", "balance")),
        ("keeps its output on asserted stops", ("hold",)),
    ):
        result = _shell_product(n_inputs, n_outputs, variant, monitors)
        rows.append(PropertyResult(
            block=block,
            prop=prop,
            holds=result.holds,
            states_explored=result.states_explored,
            counterexample=result.counterexample,
        ))
    return rows


def _queued_shell_product(
    n_outputs: int,
    depth: int,
    variant: ProtocolVariant,
    monitor_names: Tuple[str, ...],
    max_states: int = 400_000,
) -> ReachResult:
    init_payload = PAYLOAD_MODULUS - 1
    monitors0: Tuple = tuple(
        {"order": OrderMonitor(expected=init_payload),
         "hold": HoldMonitor(),
         "balance": NoSpuriousValidMonitor(balance=1, limit=depth + 2),
         }[name]
        for name in monitor_names
    )
    shell0 = fsm.QueuedShellState(
        queue=(), out=(init_payload,) * n_outputs, depth=depth)
    initial = (shell0, UpstreamState(), monitors0)

    def successors(state):
        shell, up, monitors = state
        for present in up.choices():
            for stops in itertools.product((False, True),
                                           repeat=n_outputs):
                stop_out = shell.stop_reg  # registered back pressure
                next_shell = fsm.queued_shell_step(
                    shell, present, stops, variant, PAYLOAD_MODULUS)
                next_up = up.after(present, stop_out)
                next_monitors = []
                for mon in monitors:
                    if isinstance(mon, (OrderMonitor, HoldMonitor)):
                        next_monitors.append(
                            mon.advance(shell.out[0], stops[0]))
                    else:
                        accepted = (present is not None
                                    and not stop_out)
                        emitted = (shell.out[0] is not None
                                   and not stops[0])
                        next_monitors.append(
                            mon.advance(accepted, emitted))
                label = f"in={present} stops={stops}"
                yield label, (next_shell, next_up,
                              tuple(next_monitors))

    return explore([initial], successors, max_states=max_states)


def verify_queued_shell(
    n_outputs: int = 1,
    depth: int = 2,
    variant: ProtocolVariant = DEFAULT_VARIANT,
) -> List[PropertyResult]:
    """The shell properties for the queued (FIFO-input) shell."""
    block = f"queued shell depth={depth} ({variant})"
    rows: List[PropertyResult] = []
    for prop, monitors in (
        ("produces outputs in the correct order", ("order",)),
        ("does not skip any valid output", ("order", "balance")),
        ("keeps its output on asserted stops", ("hold",)),
    ):
        result = _queued_shell_product(n_outputs, depth, variant,
                                       monitors)
        rows.append(PropertyResult(
            block=block,
            prop=prop,
            holds=result.holds,
            states_explored=result.states_explored,
            counterexample=result.counterexample,
        ))
    return rows


def verify_all(
    variant: ProtocolVariant = DEFAULT_VARIANT,
) -> List[PropertyResult]:
    """The full campaign: all shells and all relay-station flavours."""
    rows: List[PropertyResult] = []
    rows.extend(verify_shell(1, 1, variant))
    rows.extend(verify_shell(2, 2, variant))
    rows.extend(verify_queued_shell(1, 2, variant))
    for kind in ("full", "half", "half-registered"):
        rows.extend(verify_relay_station(kind, variant))
    return rows


def results_table(rows: Iterable[PropertyResult]) -> str:
    """Render verification rows as an aligned text table."""
    rows = list(rows)
    widths = (
        max(len(r.block) for r in rows),
        max(len(r.prop) for r in rows),
    )
    lines = []
    header = (
        f"{'block'.ljust(widths[0])}  {'property'.ljust(widths[1])}  "
        f"verdict  states"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        verdict = "PASS" if r.holds else "FAIL"
        lines.append(
            f"{r.block.ljust(widths[0])}  {r.prop.ljust(widths[1])}  "
            f"{verdict:7s}  {r.states_explored}"
        )
    return "\n".join(lines)

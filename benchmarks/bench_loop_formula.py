"""EXP-T4: the feedback-loop formula T = S/(S+R).

Paper: "A maximum of S valid data can be present at a time, out of S+R
positions ... This justifies the number S/(S+R) for the maximum
throughput.  This result is fundamentally the same discussed by Carloni
in [5]."
"""

from fractions import Fraction

from repro.bench.runner import run_loop_formula
from repro.graph import ring
from repro.skeleton import SkeletonSim, system_throughput


def test_bench_loop_table(benchmark, emit):
    table, rows = benchmark(run_loop_formula)
    emit("EXP-T4-loops", table)
    assert all(row[-1] for row in rows)


def test_bench_large_ring(benchmark):
    graph = ring(shells=6, relays_per_arc=2)

    def run():
        return system_throughput(graph)

    rate = benchmark(run)
    assert rate == Fraction(6, 18)


def test_bench_token_conservation(benchmark):
    """S tokens circulate forever — the mechanism behind the formula."""
    graph = ring(shells=3, relays_per_arc=1, tap_sink=False)

    def run():
        sim = SkeletonSim(graph)
        counts = set()
        for _ in range(120):
            sim.step()
            counts.add(sum(sim.shell_reg) + sum(sim.rs_main)
                       + sum(sim.rs_aux))
        return counts

    counts = benchmark(run)
    assert counts == {3}

"""Regression-detector tests: trends, directions, baselines."""

import pytest

from repro.bench.runner import experiment_record, write_record
from repro.obs import (
    TrendPoint,
    bench_trend,
    find_regressions,
    format_report,
    ledger_trend,
    make_record,
)
from repro.obs.regress import metric_direction


class TestMetricDirection:
    def test_lower_is_better(self):
        assert metric_direction("wall_seconds") == "lower"
        assert metric_direction("overhead_ratio") == "lower"
        assert metric_direction("latency_us") == "lower"

    def test_higher_is_better(self):
        assert metric_direction("cycles_per_sec") == "higher"
        assert metric_direction("speedup") == "higher"
        assert metric_direction("cache_hits") == "higher"

    def test_rate_hint_wins_over_time_hint(self):
        assert metric_direction("wall_cycles_per_sec") == "higher"

    def test_unknown(self):
        assert metric_direction("rows") is None


def _point(label, metric, value, position):
    return TrendPoint(label, metric, value, f"src@{position}", position)


class TestFindRegressions:
    def test_slowdown_is_flagged(self):
        points = [_point("b", "wall_seconds", 1.0, 0),
                  _point("b", "wall_seconds", 2.1, 1)]
        found = find_regressions(points, threshold=1.5)
        assert len(found) == 1
        regression = found[0]
        assert regression.label == "b"
        assert regression.ratio == pytest.approx(2.1)
        assert "rose" in regression.describe()

    def test_within_threshold_is_clean(self):
        points = [_point("b", "wall_seconds", 1.0, 0),
                  _point("b", "wall_seconds", 1.4, 1)]
        assert find_regressions(points, threshold=1.5) == []

    def test_rate_drop_is_flagged(self):
        points = [_point("b", "cycles_per_sec", 100.0, 0),
                  _point("b", "cycles_per_sec", 40.0, 1)]
        found = find_regressions(points, threshold=1.5)
        assert len(found) == 1
        assert found[0].ratio == pytest.approx(2.5)
        assert "fell" in found[0].describe()

    def test_best_baseline_is_stricter_than_first(self):
        points = [_point("b", "wall_seconds", 2.0, 0),
                  _point("b", "wall_seconds", 1.0, 1),
                  _point("b", "wall_seconds", 2.2, 2)]
        assert find_regressions(points, baseline="first") == []
        best = find_regressions(points, baseline="best")
        assert len(best) == 1
        assert best[0].baseline_value == pytest.approx(1.0)

    def test_single_point_and_unknown_metric_skipped(self):
        points = [_point("b", "wall_seconds", 1.0, 0),
                  _point("b", "rows", 10, 0),
                  _point("b", "rows", 100, 1)]
        assert find_regressions(points) == []

    def test_bad_baseline_raises(self):
        with pytest.raises(ValueError, match="first.*best"):
            find_regressions([], baseline="median")

    def test_improvement_is_not_flagged(self):
        points = [_point("b", "wall_seconds", 2.0, 0),
                  _point("b", "wall_seconds", 0.5, 1)]
        assert find_regressions(points) == []


class TestBenchTrend:
    def _write(self, directory, exp_id, wall, counters=None):
        record = experiment_record(exp_id, wall_seconds=wall,
                                   counters=counters or {})
        write_record(str(directory), record)

    def test_directories_are_trajectory_positions(self, tmp_path):
        old, new = tmp_path / "old", tmp_path / "new"
        self._write(old, "EXP-X", 1.0, {"cycles_per_sec": 100.0})
        self._write(new, "EXP-X", 2.5, {"cycles_per_sec": 40.0})
        points = bench_trend([str(old), str(new)])
        walls = [p for p in points if p.metric == "wall_seconds"]
        assert [p.position for p in walls] == [0, 1]
        assert [p.value for p in walls] == [1.0, 2.5]
        # Both the slowdown and the rate drop are flagged.
        found = find_regressions(points, threshold=1.5)
        assert {(r.label, r.metric) for r in found} == {
            ("EXP-X", "wall_seconds"), ("EXP-X", "cycles_per_sec")}

    def test_clean_trajectory_passes(self, tmp_path):
        old, new = tmp_path / "old", tmp_path / "new"
        self._write(old, "EXP-X", 1.0)
        self._write(new, "EXP-X", 1.1)
        points = bench_trend([str(old), str(new)])
        assert find_regressions(points, threshold=1.5) == []

    def test_boolean_counters_are_ignored(self, tmp_path):
        directory = tmp_path / "d"
        self._write(directory, "EXP-X", 1.0, {"ok": True})
        points = bench_trend([str(directory)])
        assert all(p.metric != "ok" for p in points)


class TestLedgerTrend:
    def _ledger_record(self, cycles, wall):
        return make_record(
            "inject-campaign", fingerprint="f", variant="casu",
            params={"cycles": cycles}, git_rev="r",
            meta={"wall_seconds": wall})

    def test_same_span_forms_one_series(self):
        records = [self._ledger_record(64, 1.0),
                   self._ledger_record(128, 5.0),   # different span
                   self._ledger_record(64, 2.5)]
        points = ledger_trend(records)
        series = {p.label for p in points}
        assert len(series) == 2
        found = find_regressions(points, threshold=1.5)
        assert len(found) == 1
        assert found[0].ratio == pytest.approx(2.5)

    def test_records_without_wall_are_skipped(self):
        record = self._ledger_record(64, 1.0)
        record["meta"] = {}
        assert ledger_trend([record]) == []


class TestFormatReport:
    def test_clean(self):
        assert "no regressions beyond 1.50x" \
            in format_report([], threshold=1.5)

    def test_flagged(self):
        points = [_point("b", "wall_seconds", 1.0, 0),
                  _point("b", "wall_seconds", 3.0, 1)]
        report = format_report(find_regressions(points), threshold=1.5)
        assert "1 regression(s) beyond 1.50x" in report
        assert "b wall_seconds rose" in report

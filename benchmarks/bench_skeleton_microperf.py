"""BENCH: scalar skeleton hot-loop micro-optimisation record.

The scalar :class:`~repro.skeleton.sim.SkeletonSim` is the reference
engine behind every analysis path that cannot batch (single-instance
probes, the exhaustive liveness explorer, scalar conformance runs), so
its per-cycle constant factor matters.  The hot loops used to re-derive
structural facts every cycle: ``_settle_stops`` re-classified every
relay station per call, ``_shell_fire`` chased ``hops[h].producer_edge``
per output, ``_apply_edge`` re-looked-up ``variant.slot_consumed`` per
station, and ``step()`` bumped instance counters per asserted stop
wire.  All of that is now precomputed at build time (fixed-stop hop
tables, shell ``(hop, reg)`` pairs, relay in/out triples, an
``_is_casu`` pre-bound flag) or hoisted to locals.

Reference throughput on the development container (single core, see
the machine caveat in the emitted record) before the refactor, best of
three 4000-cycle runs:

* ``figure2``:   139,574 cycles/s
* ``pipeline6``: 56,686 cycles/s (``pipeline(6, relays_per_hop=2)``)

This bench re-measures both topologies and asserts the engine still
clears a conservative floor (half the *before* numbers, so the bench
stays robust on slower CI machines while still catching an
order-of-magnitude regression), then emits
``BENCH_EXP-M1-skeleton-microperf.json`` with the measured after
numbers alongside the pinned before baseline.  Bit-exactness of the
refactor is enforced elsewhere — by the differential conformance suite
(``tests/skeleton/test_backend_conformance.py``).
"""

from time import perf_counter

from repro.bench.tables import format_table
from repro.graph import figure2, pipeline
from repro.skeleton.sim import SkeletonSim

CYCLES = 4000
ROUNDS = 3

# Pinned pre-refactor throughput (cycles/s) on the dev container; the
# emitted record carries both so the speedup is auditable per machine.
BEFORE = {"figure2": 139_574, "pipeline6": 56_686}

TOPOLOGIES = {
    "figure2": figure2,
    "pipeline6": lambda: pipeline(6, relays_per_hop=2),
}


def _throughput(factory) -> float:
    """Best-of-ROUNDS steady throughput in cycles/s."""
    best = 0.0
    for _ in range(ROUNDS):
        sim = SkeletonSim(factory())
        started = perf_counter()
        for _ in range(CYCLES):
            sim.step()
        elapsed = perf_counter() - started
        best = max(best, CYCLES / elapsed)
    return best


def test_bench_skeleton_microperf(benchmark, emit):
    started = perf_counter()
    after = {name: _throughput(factory)
             for name, factory in TOPOLOGIES.items()}
    wall = perf_counter() - started
    benchmark.pedantic(_throughput, args=(TOPOLOGIES["figure2"],),
                       rounds=1, iterations=1)

    for name, rate in after.items():
        floor = BEFORE[name] / 2
        assert rate >= floor, (
            f"{name}: scalar skeleton fell to {rate:,.0f} cycles/s, "
            f"below the {floor:,.0f} regression floor (before-refactor "
            f"baseline was {BEFORE[name]:,})")

    rows = [
        (name, f"{BEFORE[name]:,}", f"{after[name]:,.0f}",
         f"{after[name] / BEFORE[name]:.2f}x")
        for name in TOPOLOGIES
    ]
    table = format_table(
        ("topology", "before (cycles/s)", "after (cycles/s)", "ratio"),
        rows,
        title=f"Scalar skeleton hot-loop micro-optimisation "
              f"({CYCLES} cycles, best of {ROUNDS}; 'before' pinned on "
              f"the dev container — ratios are not comparable across "
              f"machines)",
    )
    emit("EXP-M1-skeleton-microperf", table, rows=rows,
         wall_seconds=wall,
         params={"cycles": CYCLES, "rounds": ROUNDS,
                 "topologies": sorted(TOPOLOGIES),
                 "before_baseline_machine": "dev container, pinned"},
         counters={f"{name}_{kind}": int(value)
                   for name in TOPOLOGIES
                   for kind, value in (("before_cps", BEFORE[name]),
                                       ("after_cps", after[name]))})

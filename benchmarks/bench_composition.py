"""EXP-T5: compositions slow to the slowest sub-topology, no
equalization needed.

Paper: "The most general topology is a feed-forward combination of
self-interacting loops.  It is possible to prove that the slowest
subtopology ... will force the system to slow down to its speed.  The
protocol itself will adapt to such a speed without any need for path
equalization."
"""

from fractions import Fraction

from repro.analysis import min_cycle_ratio_throughput, static_system_throughput
from repro.bench.runner import run_composition
from repro.graph import composed, loop_with_tail
from repro.skeleton import system_throughput


def test_bench_composition_table(benchmark, emit):
    table, rows = benchmark(run_composition)
    emit("EXP-T5-composition", table)
    assert all(row[-1] for row in rows)


def test_bench_slowest_subtopology_wins(benchmark):
    graph = composed(reconv_imbalance=2, loop_relays=2)

    def run():
        return system_throughput(graph)

    rate = benchmark(run)
    # Reconvergence alone allows 2/3; the loop forces 1/3.
    assert rate == Fraction(1, 3)
    assert static_system_throughput(graph) == Fraction(1, 3)


def test_bench_protocol_adapts_without_equalization(benchmark):
    """The unbalanced reconvergence costs nothing once the loop is the
    bottleneck — equalizing it would not raise system throughput."""
    from repro.graph import equalize

    graph = composed(reconv_imbalance=2, loop_relays=2)

    def run():
        balanced = equalize(graph)
        return system_throughput(balanced)

    balanced_rate = benchmark(run)
    assert balanced_rate == system_throughput(graph) == Fraction(1, 3)


def test_bench_tail_runs_at_loop_speed(benchmark):
    graph = loop_with_tail(loop_shells=2, loop_relays=3)

    def run():
        return min_cycle_ratio_throughput(graph)

    result = benchmark(run)
    assert result.throughput == Fraction(2, 5)
    assert result.critical_cycle  # the loop is the binding cycle

"""The campaign service HTTP front end (``repro-lid serve``).

A deliberately small HTTP/1.1 server on raw :mod:`asyncio` streams —
no web framework, no new dependencies, ``Connection: close`` per
request.  Routes:

* ``GET /healthz`` — liveness probe;
* ``GET /v1/stats`` — scheduler/cache counters (JSON);
* ``POST /v1/run`` — execute a campaign manifest (JSON body; see
  :mod:`repro.serve.manifest`); ``/v1/campaign``, ``/v1/deadlock`` and
  ``/v1/series`` are aliases that inject the ``kind`` field.

Completed runs always answer 200 with the *offline-identical* report
bytes as the body; the CLI exit code the equivalent offline command
would have returned rides in ``X-Repro-Exit`` (deadlock verdicts are
data, not transport errors).  ``X-Repro-Cache`` says how the run was
served (``hit`` / ``miss`` / ``coalesced``), ``X-Repro-Run-Id`` /
``X-Repro-Span`` carry the ledger identities.

Backpressure is explicit: token-bucket rate limiting answers 429 with
``Retry-After``; a full scheduler queue answers 503.  A manifest with
``"stream": true`` switches the response to ``application/x-ndjson``:
one JSON line per progress tick (fanned out of the worker's
:class:`~repro.obs.ProgressReporter`), then a final ``result`` line
embedding the report text.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from typing import Any, Dict, Optional, Tuple

from .dispatch import DispatchError
from .manifest import Manifest, ManifestError
from .ratelimit import RateLimiter
from .scheduler import CampaignScheduler, ServeRejected

#: Largest accepted request body (manifests are tiny; 1 MiB is lavish).
DEFAULT_MAX_BODY = 1 << 20

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Route aliases that pin the manifest kind.
_KIND_ROUTES = {
    "/v1/run": None,
    "/v1/campaign": "campaign",
    "/v1/deadlock": "deadlock",
    "/v1/series": "series",
}


def _response(status: int, body: bytes, content_type: str,
              extra: Optional[Dict[str, str]] = None) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             "Connection: close"]
    for name, value in (extra or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


def _error_body(message: str) -> bytes:
    return (json.dumps({"error": message}) + "\n").encode()


class CampaignServer:
    """One listening socket in front of a :class:`CampaignScheduler`."""

    def __init__(
        self,
        scheduler: CampaignScheduler,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        rate: float = 0.0,
        burst: Optional[float] = None,
        max_body: int = DEFAULT_MAX_BODY,
    ) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self.limiter = RateLimiter(rate, burst)
        self.max_body = max_body
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.scheduler.close()

    # -- request handling ----------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            payload = await self._respond(reader, writer)
            if payload is not None:
                writer.write(payload)
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(
        self, reader: asyncio.StreamReader,
    ) -> Tuple[str, str, Dict[str, str], bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            raise ValueError(f"malformed request line {request_line!r}")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > self.max_body:
            raise _TooLarge(length)
        body = await reader.readexactly(length) if length > 0 else b""
        return method, target, headers, body

    async def _respond(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> Optional[bytes]:
        """Build the full response, or ``None`` if already streamed."""
        try:
            method, target, headers, body = await self._read_request(
                reader)
        except _TooLarge as exc:
            return _response(413, _error_body(str(exc)),
                             "application/json")
        except (ValueError, UnicodeDecodeError) as exc:
            return _response(400, _error_body(str(exc)),
                             "application/json")
        path = target.partition("?")[0]

        if path == "/healthz":
            if method != "GET":
                return _response(405, _error_body("GET only"),
                                 "application/json")
            return _response(200, b'{"status":"ok"}\n',
                             "application/json")
        if path == "/v1/stats":
            if method != "GET":
                return _response(405, _error_body("GET only"),
                                 "application/json")
            text = json.dumps(self.scheduler.stats_payload(),
                              indent=2, sort_keys=True) + "\n"
            return _response(200, text.encode(), "application/json")
        if path not in _KIND_ROUTES:
            return _response(404, _error_body(f"no route {path}"),
                             "application/json")
        if method != "POST":
            return _response(405, _error_body("POST only"),
                             "application/json")

        client = headers.get("x-repro-client")
        if client is None:
            peer = writer.get_extra_info("peername")
            client = peer[0] if peer else "unknown"
        if not self.limiter.allow(client):
            self.scheduler.stats.rejected_rate += 1
            retry = self.limiter.retry_after()
            return _response(
                429, _error_body(f"rate limit exceeded for {client}"),
                "application/json", {"Retry-After": f"{retry:.3f}"})

        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            return _response(400, _error_body(f"bad JSON body: {exc}"),
                             "application/json")
        kind = _KIND_ROUTES[path]
        if kind is not None:
            if not isinstance(payload, dict):
                return _response(400, _error_body(
                    "manifest must be a JSON object"), "application/json")
            payload = dict(payload, kind=kind)
        try:
            manifest = Manifest.from_dict(payload)
        except ManifestError as exc:
            return _response(400, _error_body(str(exc)),
                             "application/json")

        if manifest.stream:
            await self._stream(manifest, writer)
            return None
        try:
            outcome, source = await self.scheduler.submit(manifest)
        except ServeRejected as exc:
            extra = ({"Retry-After": f"{exc.retry_after:.3f}"}
                     if exc.retry_after else None)
            return _response(exc.status, _error_body(str(exc)),
                             "application/json", extra)
        except (ManifestError, DispatchError) as exc:
            return _response(400, _error_body(str(exc)),
                             "application/json")
        except Exception as exc:  # worker/pool failure
            return _response(500, _error_body(
                f"{type(exc).__name__}: {exc}"), "application/json")
        return _response(200, outcome.body, outcome.content_type, {
            "X-Repro-Cache": source,
            "X-Repro-Span": outcome.span,
            "X-Repro-Run-Id": outcome.run_id or "",
            "X-Repro-Exit": str(outcome.exit_code),
        })

    async def _stream(self, manifest: Manifest,
                      writer: asyncio.StreamWriter) -> None:
        """NDJSON response: progress lines, then one ``result`` line."""
        queue: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()
        task = asyncio.ensure_future(
            self.scheduler.submit(manifest, queue.put_nowait))
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")

        async def write_line(obj: Dict[str, Any]) -> None:
            writer.write((json.dumps(obj, sort_keys=True) + "\n")
                         .encode())
            await writer.drain()

        while not task.done():
            getter = asyncio.ensure_future(queue.get())
            await asyncio.wait({getter, task},
                               return_when=asyncio.FIRST_COMPLETED)
            if getter.done():
                await write_line(dict(getter.result(),
                                      event="progress"))
            else:
                getter.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await getter
        while not queue.empty():
            await write_line(dict(queue.get_nowait(), event="progress"))
        try:
            outcome, source = task.result()
        except ServeRejected as exc:
            await write_line({"event": "error", "status": exc.status,
                              "message": str(exc)})
            return
        except Exception as exc:
            await write_line({"event": "error", "status": 500,
                              "message": f"{type(exc).__name__}: {exc}"})
            return
        await write_line({
            "event": "result",
            "cache": source,
            "span": outcome.span,
            "run_id": outcome.run_id,
            "exit_code": outcome.exit_code,
            "content_type": outcome.content_type,
            "body": outcome.body.decode("utf-8"),
        })


class _TooLarge(Exception):
    def __init__(self, length: int) -> None:
        super().__init__(f"request body of {length} bytes exceeds limit")


# -- embedding helpers (tests, benchmarks, the CLI) --------------------


async def _run_async(server: CampaignServer, announce=None) -> None:
    await server.start()
    if announce is not None:
        announce(server)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()


def run_server(server: CampaignServer, announce=None) -> int:
    """Blocking foreground entry point (the ``serve`` subcommand).

    *announce* is called with the started server (bound port resolved)
    before entering the accept loop.
    """
    try:
        asyncio.run(_run_async(server, announce))
    except KeyboardInterrupt:
        pass
    return 0


class ServerHandle:
    """A server running on a dedicated daemon thread + event loop.

    For tests and benchmarks that need a live endpoint in-process:
    ``handle = start_in_thread(...)``, talk HTTP to
    ``handle.address``, then ``handle.stop()``.
    """

    def __init__(self, server: CampaignServer,
                 loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> Tuple[str, int]:
        return (self.server.host, self.server.port)

    def stop(self, timeout: float = 10.0) -> None:
        async def _close() -> None:
            await self.server.close()

        future = asyncio.run_coroutine_threadsafe(_close(), self._loop)
        with contextlib.suppress(Exception):
            future.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)


def start_in_thread(scheduler: Optional[CampaignScheduler] = None,
                    **server_kwargs: Any) -> ServerHandle:
    """Start a :class:`CampaignServer` on a background thread and wait
    until it is accepting connections; returns a :class:`ServerHandle`.
    """
    if scheduler is None:
        scheduler = CampaignScheduler(mode="thread")
    server = CampaignServer(scheduler, **server_kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: Dict[str, BaseException] = {}

    def _main() -> None:
        asyncio.set_event_loop(loop)

        async def _start() -> None:
            try:
                await server.start()
            except BaseException as exc:  # propagate bind errors
                failure["error"] = exc
            finally:
                started.set()

        loop.run_until_complete(_start())
        if "error" not in failure:
            loop.run_forever()
        loop.close()

    thread = threading.Thread(target=_main, name="repro-serve",
                              daemon=True)
    thread.start()
    started.wait(30.0)
    if "error" in failure:
        thread.join(5.0)
        raise failure["error"]
    return ServerHandle(server, loop, thread)

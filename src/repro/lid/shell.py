"""The shell: the wrapper that makes a stallable module latency insensitive.

Per the paper, the shell performs three functions:

* **data validation** — each output channel signals whether the datum on
  it has still to be consumed (the ``valid`` wire);
* **back pressure** — when the pearl is stopped the shell asserts
  ``stop`` in the opposite direction of its inputs;
* **clock gating** — a module waiting for new data and/or stopped keeps
  its present state (the pearl's ``step`` simply isn't called).

The Casu/Macchiarulo shell is *simplified*: it does **not** register
incoming stop signals.  Its stall logic and its back-pressure outputs are
combinational, which is why the methodology requires at least one (half
or full) relay station between any two shells — that relay station
provides the memory element that saves the stop (see
:mod:`repro.lid.lint`).

Firing rule (single-rate, as in the LID theory): the shell fires when
**all** inputs carry valid tokens and **no** output is blocked.  Under
the :class:`~repro.lid.variant.ProtocolVariant.CASU` refinement an
output is blocked only when its stop arrives on a *valid* token — stops
on voids are discarded.

Fan-out: an output *port* may feed several channels.  Each channel gets
its own output register; on fire all of them load the same token, and a
channel whose token was consumed turns void while a stopped channel
holds.  This reproduces the multicast behaviour of the RTL shell without
ever duplicating a token.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from ..errors import StructuralError
from ..kernel.component import Component
from .channel import Channel
from .token import Token, VOID
from .variant import DEFAULT_VARIANT, ProtocolVariant


class Shell(Component):
    """Latency-insensitive wrapper around a pearl.

    Parameters
    ----------
    name:
        Instance name.
    pearl:
        Any object with ``input_ports``/``output_ports`` name sequences,
        a ``reset() -> {port: payload}`` method returning the initial
        (valid) output payloads, and a ``step({port: payload}) ->
        {port: payload}`` method implementing one synchronous transition.
    variant:
        Stop-handling discipline (defaults to the paper's refinement).
    """

    def __init__(self, name: str, pearl, variant: ProtocolVariant = DEFAULT_VARIANT):
        super().__init__(name)
        self.pearl = pearl
        self.variant = variant
        self._inputs: Dict[str, Channel] = {}
        self._outputs: Dict[str, List[Channel]] = {p: [] for p in pearl.output_ports}
        self._out_regs: Dict[Channel, Token] = {}
        self.fired_cycles: List[int] = []
        self.fire_count = 0

    # -- wiring ------------------------------------------------------------

    def connect_input(self, port: str, channel: Channel) -> None:
        """Bind *channel* as the source of pearl input *port*."""
        if port not in self.pearl.input_ports:
            raise StructuralError(
                f"{self.name}: pearl has no input port {port!r} "
                f"(ports: {list(self.pearl.input_ports)})"
            )
        if port in self._inputs:
            raise StructuralError(f"{self.name}: input {port!r} already connected")
        channel.bind_consumer(self.name)
        self._inputs[port] = channel

    def connect_output(self, port: str, channel: Channel) -> None:
        """Bind *channel* as one sink of pearl output *port* (fan-out ok)."""
        if port not in self._outputs:
            raise StructuralError(
                f"{self.name}: pearl has no output port {port!r} "
                f"(ports: {list(self.pearl.output_ports)})"
            )
        channel.bind_producer(self.name)
        self._outputs[port].append(channel)

    def check_wiring(self) -> None:
        """Raise :class:`StructuralError` if any pearl port is unbound."""
        missing_in = [p for p in self.pearl.input_ports if p not in self._inputs]
        missing_out = [p for p, chans in self._outputs.items() if not chans]
        if missing_in or missing_out:
            raise StructuralError(
                f"{self.name}: unconnected ports "
                f"(inputs {missing_in}, outputs {missing_out})"
            )

    @property
    def input_channels(self) -> Mapping[str, Channel]:
        return dict(self._inputs)

    @property
    def output_channels(self) -> Mapping[str, Sequence[Channel]]:
        return {p: list(chans) for p, chans in self._outputs.items()}

    # -- simulation --------------------------------------------------------

    def reset(self) -> None:
        initial = self.pearl.reset()
        self._out_regs = {}
        for port, chans in self._outputs.items():
            # Paper, footnote 1: shell outputs are initialized with
            # valid data (relay stations, by contrast, start void).
            token = Token(initial[port])
            for chan in chans:
                self._out_regs[chan] = token
        self.fired_cycles = []
        self.fire_count = 0

    def publish(self) -> None:
        for chans in self._outputs.values():
            for chan in chans:
                chan.drive(self._out_regs[chan])

    def _can_fire(self) -> bool:
        """Combinational firing condition on current (settling) values."""
        for chan in self._inputs.values():
            if not chan.valid.value:
                return False
        for chans in self._outputs.values():
            for chan in chans:
                if self.variant.output_blocked(
                    chan.stop_asserted(), self._out_regs[chan].valid
                ):
                    return False
        return True

    def settle(self) -> None:
        stalled = not self._can_fire()
        for chan in self._inputs.values():
            stop = self.variant.back_pressure(stalled, bool(chan.valid.value))
            if stop:
                # Monotone: only ever raise stops during settle.
                chan.set_stop(True)

    def tick(self) -> None:
        if self._can_fire():
            payloads = {
                port: chan.read().value for port, chan in self._inputs.items()
            }
            produced = self.pearl.step(payloads)
            for port, chans in self._outputs.items():
                token = Token(produced[port])
                for chan in chans:
                    self._out_regs[chan] = token
            self.fired_cycles.append(self.cycle)
            self.fire_count += 1
            telemetry = self._sim.telemetry if self._sim else None
            if telemetry is not None and telemetry.events is not None:
                telemetry.events.emit("token", "fire", self.cycle,
                                      block=self.name)
        else:
            for chans in self._outputs.values():
                for chan in chans:
                    reg = self._out_regs[chan]
                    if reg.valid and chan.stop_asserted():
                        continue  # held under back pressure
                    self._out_regs[chan] = VOID

    # -- fault injection -----------------------------------------------------

    def inject_corrupt_outputs(self, mutate) -> bool:
        """Corrupt every valid output register through *mutate(value)*.

        Models an SEU in the shell's output flip-flops: the payload bits
        flip but the validity bit survives, so downstream still consumes
        the (now wrong) token.  Returns whether any register held a
        valid token to corrupt.  Legal only from a scheduler
        *state*-injection hook (see :mod:`repro.inject`).
        """
        corrupted = False
        for chan, reg in self._out_regs.items():
            if reg.valid:
                self._out_regs[chan] = Token(mutate(reg.value))
                corrupted = True
        return corrupted

    # -- metrics -------------------------------------------------------------

    def throughput(self, cycles: int) -> float:
        """Fraction of the first *cycles* cycles in which the shell fired."""
        if cycles <= 0:
            return 0.0
        return sum(1 for c in self.fired_cycles if c < cycles) / cycles

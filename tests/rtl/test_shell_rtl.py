"""Gate-level shell vs the verified shell spec."""

import random

import pytest

from repro.lid.variant import ProtocolVariant
from repro.rtl import NetlistSimulator, identity_shell_netlist, shell_netlist
from repro.verify import fsm


class TestIdentityShellGateLevel:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("variant", list(ProtocolVariant))
    def test_random_trace_conformance(self, seed, variant):
        rng = random.Random(seed)
        sim = NetlistSimulator(identity_shell_netlist(width=8,
                                                      variant=variant))
        spec = fsm.ShellState(out=(0,))
        k = 1
        for cycle in range(300):
            offer = rng.random() < 0.7
            stop = rng.random() < 0.4
            outs = sim.settle({
                "in_data_0": k if offer else 0,
                "in_valid_0": int(offer),
                "stop_0": int(stop),
            })
            in_toks = (k if offer else None,)
            stops = (stop,)
            expected_fire = fsm.shell_fire(spec, in_toks, stops, variant)
            expected_stop_up = fsm.shell_input_stops(
                spec, in_toks, stops, variant)[0]
            assert outs["fire"] == int(expected_fire), cycle
            assert outs["stop_to_input_0"] == int(expected_stop_up), cycle
            assert outs["out_valid_0"] == int(spec.out[0] is not None)
            if spec.out[0] is not None:
                assert outs["out_data_0"] == spec.out[0], cycle
            spec = fsm.shell_step(spec, in_toks, stops, variant,
                                  modulus=1 << 30)
            sim.tick()
            if expected_fire:
                k += 1

    def test_initial_output_valid(self):
        sim = NetlistSimulator(identity_shell_netlist())
        outs = sim.settle({"in_data_0": 0, "in_valid_0": 0, "stop_0": 0})
        assert outs["out_valid_0"] == 1

    def test_clock_gating_visible_as_fire(self):
        sim = NetlistSimulator(identity_shell_netlist())
        outs = sim.settle({"in_data_0": 5, "in_valid_0": 0, "stop_0": 0})
        assert outs["fire"] == 0  # waiting for data


class TestGenericShellNetlist:
    @pytest.mark.parametrize("n_in,n_out", [(1, 1), (2, 1), (2, 2), (3, 2)])
    def test_elaborates(self, n_in, n_out):
        nl = shell_netlist(n_in, n_out)
        sim = NetlistSimulator(nl)
        inputs = {}
        for k in range(n_in):
            inputs[f"in_data_{k}"] = k
            inputs[f"in_valid_{k}"] = 1
        for j in range(n_out):
            inputs[f"stop_{j}"] = 0
            inputs[f"pearl_out_{j}"] = 7
        outs = sim.settle(inputs)
        assert outs["fire"] == 1

    def test_fire_needs_all_inputs(self):
        sim = NetlistSimulator(shell_netlist(2, 1))
        outs = sim.settle({
            "in_data_0": 1, "in_valid_0": 1,
            "in_data_1": 0, "in_valid_1": 0,
            "stop_0": 0, "pearl_out_0": 0,
        })
        assert outs["fire"] == 0
        assert outs["stop_to_input_0"] == 1  # protect the valid input
        assert outs["stop_to_input_1"] == 0  # casu discards on void

    def test_pearl_output_loaded_on_fire(self):
        sim = NetlistSimulator(shell_netlist(1, 1))
        sim.step({"in_data_0": 1, "in_valid_0": 1, "stop_0": 0,
                  "pearl_out_0": 55})
        outs = sim.settle({"in_data_0": 0, "in_valid_0": 0, "stop_0": 0,
                           "pearl_out_0": 0})
        assert outs["out_data_0"] == 55 and outs["out_valid_0"] == 1

    def test_output_held_under_stop(self):
        sim = NetlistSimulator(shell_netlist(1, 1))
        sim.step({"in_data_0": 1, "in_valid_0": 1, "stop_0": 0,
                  "pearl_out_0": 9})
        # Stalled (no input) + stop: the valid output must hold.
        sim.step({"in_data_0": 0, "in_valid_0": 0, "stop_0": 1,
                  "pearl_out_0": 0})
        outs = sim.settle({"in_data_0": 0, "in_valid_0": 0, "stop_0": 1,
                           "pearl_out_0": 0})
        assert outs["out_valid_0"] == 1 and outs["out_data_0"] == 9

    def test_output_consumed_without_stop(self):
        sim = NetlistSimulator(shell_netlist(1, 1))
        sim.step({"in_data_0": 1, "in_valid_0": 1, "stop_0": 0,
                  "pearl_out_0": 9})
        sim.step({"in_data_0": 0, "in_valid_0": 0, "stop_0": 0,
                  "pearl_out_0": 0})
        outs = sim.settle({"in_data_0": 0, "in_valid_0": 0, "stop_0": 0,
                           "pearl_out_0": 0})
        assert outs["out_valid_0"] == 0

"""EXP-D1: the deadlock study (simulate to transient extinction).

Paper claims reproduced:
- any feed-forward LID (possibly with reconvergence) is deadlock free;
- any LID using only full relay stations is deadlock free;
- half relay stations in loops create *potential* deadlock;
- skeleton simulation up to the transient's extinction decides it:
  "either the deadlock will show, or will be forever avoided".
"""

import pytest

from repro.bench.runner import run_deadlock_study
from repro.graph import random_dag, random_loopy, ring
from repro.lid.variant import ProtocolVariant
from repro.skeleton import check_deadlock


def test_bench_deadlock_table(benchmark, emit):
    table, rows = benchmark.pedantic(run_deadlock_study, rounds=1,
                                     iterations=1)
    emit("EXP-D1-deadlock-study", table)
    for system, family, variant, _expectation, status in rows:
        if variant == "casu":
            assert status == "live", system
        elif "half RS" in family:
            assert status == "deadlock", system
        else:
            assert status == "live", system


def test_bench_feedforward_sweep(benchmark):
    """Claim 1, fuzzed: 20 random DAGs, all live under both variants."""

    def sweep():
        verdicts = []
        for seed in range(20):
            graph = random_dag(seed, shells=5)
            verdicts.append(check_deadlock(graph).live)
        return verdicts

    verdicts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(verdicts)


def test_bench_full_relay_loop_sweep(benchmark):
    """Claim 2, fuzzed: loopy systems with full relay stations only."""

    def sweep():
        verdicts = []
        for seed in range(20):
            graph = random_loopy(seed, shells=4)
            for variant in ProtocolVariant:
                verdicts.append(
                    check_deadlock(graph, variant=variant).live)
        return verdicts

    verdicts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(verdicts)


def test_bench_half_in_loop_hazard(benchmark):
    """Claim 3: the hazard class, decided by skeleton simulation."""
    graph = ring(2, relays_per_arc=[["half"], ["full"]])

    def decide():
        return (
            check_deadlock(graph, variant=ProtocolVariant.CARLONI),
            check_deadlock(graph, variant=ProtocolVariant.CASU),
        )

    original, refined = benchmark(decide)
    assert original.deadlocked       # shows during the transient
    assert not refined.deadlocked    # forever avoided (discard rule)


def test_bench_decision_is_exact(benchmark):
    """The verdict is reached at periodicity — no open-ended search."""
    graph = ring(3, relays_per_arc=[["half"], ["full"], ["full"]])

    def decide():
        return check_deadlock(graph)

    verdict = benchmark(decide)
    assert verdict.period > 0
    assert verdict.optimistic.cycles_run <= 10_000

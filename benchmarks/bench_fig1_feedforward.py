"""EXP-F1: regenerate the paper's Figure 1 (feed-forward evolution).

The paper's Figure 1 walks a reconvergent 3-shell system cycle by
cycle: after the transient, the output utters one invalid datum every 5
cycles, for a throughput of 4/5 (i = 1 unbalanced relay station, m = 5
storage positions on the implicit loop).  The bench regenerates the
evolution table, checks the exact published numbers, and times both the
skeleton and the full data-carrying simulation of the figure's system.
"""

from fractions import Fraction

import pytest

from repro.bench.runner import run_figure1
from repro.graph import figure1
from repro.skeleton import SkeletonSim


def test_bench_figure1_table(benchmark, emit):
    table, rows = benchmark(run_figure1, 40)
    emit("EXP-F1-evolution", table)
    # Steady regime: exactly one 'N' in any five consecutive outputs.
    steady = [row[-1] for row in rows[20:40]]
    assert steady.count("N") == 4
    assert "predicted T=4/5" in table
    assert "simulated T=4/5" in table


def test_bench_figure1_skeleton(benchmark):
    def run():
        return SkeletonSim(figure1()).run()

    result = benchmark(run)
    assert result.throughput("out") == Fraction(4, 5)
    assert result.period == 5
    assert result.transient == 2


def test_bench_figure1_full_simulation(benchmark):
    def run():
        system = figure1().elaborate()
        system.run(200)
        return system

    system = benchmark(run)
    sink = system.sinks["out"]
    assert sink.steady_throughput(50, 200) == pytest.approx(0.8)

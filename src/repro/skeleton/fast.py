"""Cost accounting: skeleton vs. full simulation.

The paper claims skeleton simulation cost is "absolutely negligible"
compared to simulating the real system.  These helpers measure both on
the same topology and number of cycles, so the EXP-D2 bench can report
the ratio (and convenience wrappers expose throughput measurement via
the skeleton, which the analysis cross-validation uses heavily).
"""

from __future__ import annotations

import dataclasses
import time
from fractions import Fraction
from typing import Dict

from ..graph.model import SystemGraph
from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant
from .backend import select
from .sim import SkeletonSim


def measure_throughput(
    graph: SystemGraph,
    variant: ProtocolVariant = DEFAULT_VARIANT,
    max_cycles: int = 10_000,
    **skeleton_kwargs,
) -> Dict[str, Fraction]:
    """Exact steady-state throughput of every shell and sink.

    Runs the skeleton to periodicity (through whichever backend
    :func:`repro.skeleton.backend.select` picks) and returns firings
    (acceptances) per cycle as exact fractions — the numbers the
    paper's formulas predict.
    """
    result = select(graph, variant, **skeleton_kwargs) \
        .run(max_cycles=max_cycles)[0]
    rates: Dict[str, Fraction] = {}
    for name, fires in result.shell_fires.items():
        rates[name] = Fraction(fires, result.period)
    for name, accepts in result.sink_accepts.items():
        rates[name] = Fraction(accepts, result.period)
    return rates


def system_throughput(
    graph: SystemGraph,
    variant: ProtocolVariant = DEFAULT_VARIANT,
    max_cycles: int = 10_000,
    **skeleton_kwargs,
) -> Fraction:
    """Minimum shell throughput — the paper's "System Throughput"."""
    result = select(graph, variant, **skeleton_kwargs) \
        .run(max_cycles=max_cycles)[0]
    return result.min_shell_throughput()


@dataclasses.dataclass
class CostComparison:
    """Wall-clock comparison between skeleton and full simulation."""

    cycles: int
    skeleton_seconds: float
    full_seconds: float

    @property
    def speedup(self) -> float:
        if self.skeleton_seconds <= 0:
            return float("inf")
        return self.full_seconds / self.skeleton_seconds


def compare_cost(
    graph: SystemGraph,
    cycles: int = 2_000,
    variant: ProtocolVariant = DEFAULT_VARIANT,
    strict: bool = True,
) -> CostComparison:
    """Time *cycles* cycles of skeleton vs. full-data simulation."""
    sim = SkeletonSim(graph, variant=variant, detect_ambiguity=False)
    start = time.perf_counter()
    for _ in range(cycles):
        sim.step()
    skeleton_seconds = time.perf_counter() - start

    system = graph.elaborate(variant=variant, strict=strict)
    start = time.perf_counter()
    system.run(cycles)
    full_seconds = time.perf_counter() - start

    return CostComparison(
        cycles=cycles,
        skeleton_seconds=skeleton_seconds,
        full_seconds=full_seconds,
    )

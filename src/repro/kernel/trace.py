"""Waveform tracing for the simulation kernel.

A :class:`Trace` samples a chosen set of signals at the end of every
settle phase (i.e. the stable value for that cycle) and stores them in
memory.  Traces are the raw material for the figure-regeneration benches
(the paper's Figures 1 and 2 are cycle-by-cycle evolution tables) and
can be exported to VCD via :mod:`repro.kernel.vcd`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

from .scheduler import Simulator
from .signal import Signal


class Trace:
    """Record per-cycle values of selected signals.

    Parameters
    ----------
    sim:
        The simulator to attach to.  The trace registers itself as a
        cycle hook; every subsequent ``sim.step()`` appends one sample.
    signals:
        Signals (or names of signals already created on *sim*) to record.
    """

    def __init__(self, sim: Simulator, signals: Iterable):
        self._signals: List[Signal] = []
        for sig in signals:
            if isinstance(sig, str):
                found = sim.find_signal(sig)
                if found is None:
                    raise KeyError(f"no signal named {sig!r} in {sim.name}")
                sig = found
            self._signals.append(sig)
        self._rows: List[List[Any]] = []
        self._cycles: List[int] = []
        sim.add_cycle_hook(self._sample)

    def _sample(self, sim: Simulator) -> None:
        self._cycles.append(sim.cycle)
        self._rows.append([sig.value for sig in self._signals])

    # -- access ----------------------------------------------------------

    @property
    def names(self) -> List[str]:
        return [sig.name for sig in self._signals]

    @property
    def cycles(self) -> List[int]:
        return list(self._cycles)

    def __len__(self) -> int:
        return len(self._rows)

    def column(self, name: str) -> List[Any]:
        """All recorded values of one signal, oldest first."""
        try:
            idx = self.names.index(name)
        except ValueError:
            available = ", ".join(repr(n) for n in self.names) or "none"
            raise KeyError(
                f"signal {name!r} is not traced "
                f"(traced signals: {available})") from None
        return [row[idx] for row in self._rows]

    def row(self, cycle: int) -> Dict[str, Any]:
        """Mapping of signal name to value at the given cycle."""
        try:
            idx = self._cycles.index(cycle)
        except ValueError:
            if self._cycles:
                span = (f"recorded cycles span "
                        f"{self._cycles[0]}..{self._cycles[-1]}")
            else:
                span = "no cycles recorded yet"
            raise KeyError(
                f"cycle {cycle} was not traced ({span})") from None
        return dict(zip(self.names, self._rows[idx]))

    def rows(self) -> List[Dict[str, Any]]:
        """All samples as a list of name->value dictionaries."""
        return [dict(zip(self.names, row)) for row in self._rows]

    # -- pretty printing ---------------------------------------------------

    def format_table(self, max_rows: int | None = None) -> str:
        """Render the trace as an aligned text table (cycles as rows).

        When *max_rows* truncates the trace, a ``... N more rows``
        footer says how much was elided.
        """
        header = ["cycle"] + self.names
        body: List[Sequence[str]] = []
        rows = list(zip(self._cycles, self._rows))
        elided = 0
        if max_rows is not None and len(rows) > max_rows:
            elided = len(rows) - max_rows
            rows = rows[:max_rows]
        for cyc, row in rows:
            body.append([str(cyc)] + [_fmt(v) for v in row])
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for r in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
        if elided:
            lines.append(f"... {elided} more rows")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "."
    if value is True:
        return "1"
    if value is False:
        return "0"
    return str(value)

"""Integration: the two protocol variants compared at system level."""

import pytest

from repro.graph import figure1, pipeline, reconvergent, ring, tree
from repro.lid.reference import is_prefix
from repro.lid.variant import ProtocolVariant
from repro.skeleton import SkeletonSim, check_deadlock, system_throughput

CASU = ProtocolVariant.CASU
CARLONI = ProtocolVariant.CARLONI


def tokens_delivered(graph, variant, cycles, sink_patterns=None,
                     source_patterns=None):
    sim = SkeletonSim(graph, variant=variant, sink_patterns=sink_patterns,
                      source_patterns=source_patterns,
                      detect_ambiguity=False)
    total = 0
    for _ in range(cycles):
        _fires, accepts = sim.step()
        total += sum(accepts)
    return total


class TestSteadyStateAgreement:
    """Both variants reach the same steady throughput on clean systems
    (the refinement is about transients and stop locality)."""

    @pytest.mark.parametrize("graph", [
        figure1(), pipeline(3), tree(2), ring(2, relays_per_arc=2),
    ])
    def test_same_steady_throughput(self, graph):
        assert system_throughput(graph, variant=CASU) == \
            system_throughput(graph, variant=CARLONI)

    def test_refinement_can_win_asymptotically(self):
        """A reproduction finding: on some multi-level reconvergent
        topologies the refinement beats the original protocol in
        STEADY STATE, not just during transients — the original keeps
        re-freezing the voids that the imbalance regenerates every
        period (found by sweeping random DAGs; this seed is the
        smallest witness we keep as a regression)."""
        from repro.graph import random_dag

        graph = random_dag(22, shells=5)
        refined = system_throughput(graph, variant=CASU)
        original = system_throughput(graph, variant=CARLONI)
        assert refined > original
        assert (str(refined), str(original)) == ("3/4", "2/3")

    def test_refinement_never_loses_steady_state(self):
        """Deterministic sweep: the refined protocol's steady rate is
        >= the original's on every graph tested."""
        from repro.graph import random_dag, random_loopy

        graphs = [random_dag(seed, shells=5) for seed in range(15)]
        graphs += [random_loopy(seed, shells=4) for seed in range(15)]
        for graph in graphs:
            assert system_throughput(graph, variant=CASU) >= \
                system_throughput(graph, variant=CARLONI), graph.name


class TestSpeedupClaims:
    """Paper: 'The overall computation can get a significant speedup'."""

    def test_refined_never_slower(self):
        bp = {"out": (False, True, True)}
        gap = {"src": (True, True, False)}
        for graph in (figure1(), pipeline(3),
                      reconvergent(long_relays=(2, 1), short_relays=1)):
            old = tokens_delivered(graph, CARLONI, 150,
                                   sink_patterns=bp, source_patterns=gap)
            new = tokens_delivered(graph, CASU, 150,
                                   sink_patterns=bp, source_patterns=gap)
            assert new >= old

    def test_significant_speedup_with_half_relays(self):
        graph = pipeline(3)
        for edge in graph.edges:
            if edge.relays:
                edge.relays = ("half",) * len(edge.relays)
        bp = {"out": (False, False, True, True)}
        old = tokens_delivered(graph, CARLONI, 150, sink_patterns=bp)
        new = tokens_delivered(graph, CASU, 150, sink_patterns=bp)
        assert new > 10 * old  # the original protocol wedges

    def test_speedup_on_bursty_reconvergence(self):
        graph = reconvergent(long_relays=(2, 1), short_relays=1)
        bp = {"out": (False, False, True, True)}
        gap = {"src": (True, False, True, True, False)}
        old = tokens_delivered(graph, CARLONI, 200, sink_patterns=bp,
                               source_patterns=gap)
        new = tokens_delivered(graph, CASU, 200, sink_patterns=bp,
                               source_patterns=gap)
        assert new > old


class TestVariantSafety:
    """Both variants remain latency equivalent — the refinement does
    not trade correctness for speed."""

    @pytest.mark.parametrize("variant", [CASU, CARLONI])
    def test_equivalence_under_backpressure(self, variant):
        graph = figure1()
        graph.nodes["out"].stop_script = lambda c: c % 4 == 1
        system = graph.elaborate(variant=variant)
        system.run(120)
        ref = system.reference_outputs(120)["out"]
        assert is_prefix(system.sinks["out"].payloads, ref)


class TestVariantLiveness:
    def test_half_in_loop_diverges_between_variants(self):
        graph = ring(2, relays_per_arc=[["half"], ["full"]])
        assert check_deadlock(graph, variant=CASU).live
        assert check_deadlock(graph, variant=CARLONI).deadlocked

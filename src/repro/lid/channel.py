"""Point-to-point LID channels.

A channel is the wire bundle the paper adds to every connection:

* ``data``  — forward payload (don't-care when invalid);
* ``valid`` — forward validity flag (the complement of the papers' "void");
* ``stop``  — backward back-pressure flag.

A channel has exactly one producer port and one consumer port; fan-out is
expressed with one channel per sink (the shell replicates its output
token onto each of them), which matches the RTL the paper describes and
keeps the single-driver discipline trivial.
"""

from __future__ import annotations

from typing import Optional

from ..kernel.scheduler import Simulator
from ..kernel.signal import Signal
from .token import Token, VOID


class Channel:
    """A data/valid/stop wire bundle between two LID blocks.

    Create channels through :meth:`Channel.create` so the underlying
    signals are registered with the simulator (and therefore participate
    in the settle fixpoint and in traces).
    """

    def __init__(self, name: str, data: Signal, valid: Signal, stop: Signal):
        self.name = name
        self.data = data
        self.valid = valid
        self.stop = stop
        self.producer: Optional[str] = None
        self.consumer: Optional[str] = None

    @classmethod
    def create(cls, sim: Simulator, name: str) -> "Channel":
        """Instantiate the three signals on *sim* and wrap them."""
        data = sim.signal(f"{name}.data", default=None)
        valid = sim.signal(f"{name}.valid", default=False)
        stop = sim.signal(f"{name}.stop", default=False)
        return cls(name, data, valid, stop)

    # -- producer side ---------------------------------------------------

    def drive(self, token: Token) -> None:
        """Publish *token* on the forward wires (producer, Moore)."""
        if token.valid:
            self.data.set(token.value)
            self.valid.set(True)
        else:
            self.data.set(None)
            self.valid.set(False)

    def stop_asserted(self) -> bool:
        """Settled value of the backward stop wire (producer reads)."""
        return bool(self.stop.value)

    # -- consumer side ---------------------------------------------------

    def read(self) -> Token:
        """Current forward token (consumer, after publish phase)."""
        if self.valid.value:
            return Token(self.data.value)
        return VOID

    def set_stop(self, value: bool) -> None:
        """Drive the backward stop wire (consumer).

        Combinational consumers call this during settle; registered
        consumers (full relay stations) call it during publish.
        """
        self.stop.set(bool(value))

    # -- fault injection ---------------------------------------------------
    #
    # The force_* helpers are the targetable surface used by
    # :mod:`repro.inject`.  They overwrite *settled* wire values and are
    # only legal from a scheduler wire-injection hook (after the settle
    # fixpoint, before the cycle hooks): calling them during settle
    # would break the monotonicity the fixpoint relies on.

    def force_stop(self, value: bool) -> None:
        """Overwrite the settled stop wire (stuck-at / glitch faults)."""
        self.stop.set(bool(value))

    def force_valid(self, value: bool, data=None) -> None:
        """Overwrite the settled valid wire.

        Forcing ``False`` turns the presented token into a void (the
        paper's void fault); forcing ``True`` fabricates a phantom token
        whose payload is *data*.
        """
        self.valid.set(bool(value))
        self.data.set(data if value else None)

    def force_payload(self, value) -> None:
        """Corrupt the payload of the currently presented token.

        A no-op on a void token: the data wire is a don't-care when
        ``valid`` is low, so there is nothing to corrupt.
        """
        if self.valid.value:
            self.data.set(value)

    # -- bookkeeping -------------------------------------------------------

    def bind_producer(self, block_name: str) -> None:
        if self.producer is not None and self.producer != block_name:
            from ..errors import StructuralError

            raise StructuralError(
                f"channel {self.name!r} already driven by {self.producer!r}; "
                f"cannot also be driven by {block_name!r}"
            )
        self.producer = block_name

    def bind_consumer(self, block_name: str) -> None:
        if self.consumer is not None and self.consumer != block_name:
            from ..errors import StructuralError

            raise StructuralError(
                f"channel {self.name!r} already consumed by {self.consumer!r}; "
                f"cannot also feed {block_name!r}"
            )
        self.consumer = block_name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel({self.name!r}, {self.producer!r} -> {self.consumer!r})"
        )

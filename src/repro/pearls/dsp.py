"""DSP pearls: the workloads the paper's motivation implies.

Latency-insensitive design targets large SoCs whose functional blocks —
filters, MACs, decimators — sit far apart on the die.  These pearls
provide realistic multi-tap datapaths for the examples and the
integration tests; their numerically checkable outputs make end-to-end
verification easy.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from .base import Pearl


class Mac(Pearl):
    """Multiply-accumulate: acc += a * b; out = acc."""

    input_ports = ("a", "b")
    output_ports = ("out",)

    def __init__(self, initial: Any = 0):
        self.initial = initial
        self._acc = initial

    def reset(self) -> Dict[str, Any]:
        self._acc = self.initial
        return {"out": self._acc}

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        self._acc = self._acc + inputs["a"] * inputs["b"]
        return {"out": self._acc}


class FirFilter(Pearl):
    """Direct-form FIR filter: out[n] = sum(taps[k] * a[n-k]).

    The tap delay line freezes with the shell's clock gating, so the
    filter output under any stop/void pattern matches the zero-latency
    reference exactly — a strong latency-equivalence witness.
    """

    input_ports = ("a",)
    output_ports = ("out",)

    def __init__(self, taps: Sequence[float], initial: Any = 0):
        if not taps:
            raise ValueError("FirFilter needs at least one tap")
        self.taps = tuple(taps)
        self.initial = initial
        self._line: List[Any] = []

    def reset(self) -> Dict[str, Any]:
        self._line = [0] * len(self.taps)
        return {"out": self.initial}

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        self._line.insert(0, inputs["a"])
        self._line.pop()
        out = sum(t * x for t, x in zip(self.taps, self._line))
        return {"out": out}


class IirFilter(Pearl):
    """One-pole IIR: y[n] = a * y[n-1] + b * x[n]."""

    input_ports = ("x",)
    output_ports = ("out",)

    def __init__(self, a: float = 0.5, b: float = 0.5, initial: float = 0.0):
        self.a = a
        self.b = b
        self.initial = initial
        self._y = initial

    def reset(self) -> Dict[str, Any]:
        self._y = self.initial
        return {"out": self._y}

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        self._y = self.a * self._y + self.b * inputs["x"]
        return {"out": self._y}


class MovingAverage(Pearl):
    """Sliding-window mean over the last *window* samples."""

    input_ports = ("a",)
    output_ports = ("out",)

    def __init__(self, window: int = 4, initial: Any = 0):
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window
        self.initial = initial
        self._samples: List[Any] = []

    def reset(self) -> Dict[str, Any]:
        self._samples = []
        return {"out": self.initial}

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        self._samples.append(inputs["a"])
        if len(self._samples) > self.window:
            self._samples.pop(0)
        return {"out": sum(self._samples) / len(self._samples)}


class Butterfly(Pearl):
    """Radix-2 butterfly: (a, b) -> (a + b, a - b).

    A two-output pearl; exercises shell multicast and multi-channel
    output-register handling.
    """

    input_ports = ("a", "b")
    output_ports = ("sum", "diff")

    def __init__(self, initial_sum: Any = 0, initial_diff: Any = 0):
        self.initial = {"sum": initial_sum, "diff": initial_diff}

    def reset(self) -> Dict[str, Any]:
        return dict(self.initial)

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "sum": inputs["a"] + inputs["b"],
            "diff": inputs["a"] - inputs["b"],
        }


class Decimator(Pearl):
    """Keep every *factor*-th sample's value, repeating it in between.

    (A true down-sampler changes token rates, which single-rate LID
    forbids; this rate-preserving variant keeps the protocol single
    rate while still exercising decimation-style state.)
    """

    input_ports = ("a",)
    output_ports = ("out",)

    def __init__(self, factor: int = 2, initial: Any = 0):
        if factor < 1:
            raise ValueError("factor must be positive")
        self.factor = factor
        self.initial = initial
        self._held = initial
        self._phase = 0

    def reset(self) -> Dict[str, Any]:
        self._held = self.initial
        self._phase = 0
        return {"out": self._held}

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        if self._phase == 0:
            self._held = inputs["a"]
        self._phase = (self._phase + 1) % self.factor
        return {"out": self._held}

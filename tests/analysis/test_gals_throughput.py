"""Mixed-rate throughput: formula-vs-simulation agreement.

The GALS extension's contract: ``static_system_throughput`` is exact
on feed-forward mixed-rate compositions (the slowest domain throttles
everything through bridge back-pressure) and a certified upper bound
on cyclic ones (schedule alignment can only slow a loop down);
``simulated_throughput`` is the exact oracle either way.
"""

from fractions import Fraction

import pytest

from repro.analysis import (
    analyze,
    classify,
    domain_rate_bound,
    min_cycle_ratio_throughput,
    simulated_throughput,
    static_system_throughput,
)
from repro.errors import AnalysisError
from repro.graph import parse_topology

#: Feed-forward mixed-rate topologies where the formula is exact.
EXACT_CASES = [
    ("gals-chain:rates=1+1/2", Fraction(1, 2)),            # 2:1
    ("gals-chain:rates=1+2/3,stages=2", Fraction(2, 3)),   # 3:2
    ("gals-chain:rates=1+1/2+1/3", Fraction(1, 3)),        # 3 domains
    ("gals-chain:rates=1+1/2,relays=2", Fraction(1, 2)),
    ("gals-chain:rates=3/4+1/2+1/4,stages=2", Fraction(1, 4)),
    # Cyclic, but empirically locked exactly at the rate cap.
    ("gals-ring:rates=1+1/2,shells=2", Fraction(1, 2)),
]

#: Cyclic mixed-rate topologies: formula is a strict upper bound
#: (schedule-alignment locking runs below the slot-count ceiling).
BOUND_CASES = [
    "gals-ring:rates=1+1/2,shells=1",
    "gals-ring:rates=1+2/3,shells=2",
    "gals-ring:rates=1+1/2,shells=1,relays=1",
    "gals-ring:rates=3/4+2/3+1/2,shells=1",
]


class TestFormulaVsSimulation:
    @pytest.mark.parametrize("spec,expected", EXACT_CASES)
    def test_exact_agreement(self, spec, expected):
        graph = parse_topology(spec)
        assert static_system_throughput(graph) == expected
        assert simulated_throughput(graph) == expected

    @pytest.mark.parametrize("spec", BOUND_CASES)
    def test_certified_upper_bound(self, spec):
        graph = parse_topology(spec)
        bound = static_system_throughput(graph)
        exact = simulated_throughput(graph)
        assert exact <= bound
        assert exact > 0

    def test_depth_one_bridge_alternation(self):
        """A single-slot bridge halves same-rate transfers: its read
        (occupancy 1) and write (occupancy 0) exclude each other."""
        graph = parse_topology("gals-chain:rates=1+1,depth=1")
        assert static_system_throughput(graph) == Fraction(1, 2)
        assert simulated_throughput(graph) == Fraction(1, 2)
        deep = parse_topology("gals-chain:rates=1+1,depth=2")
        assert simulated_throughput(deep) == Fraction(1)

    def test_known_locked_rates(self):
        """Pin the empirically observed schedule-locking rates."""
        assert simulated_throughput(
            parse_topology("gals-ring:rates=1+1/2,shells=1")) \
            == Fraction(1, 3)
        assert simulated_throughput(
            parse_topology("gals-ring:rates=1+1/2,shells=1,relays=1")) \
            == Fraction(1, 4)
        assert simulated_throughput(
            parse_topology("gals-ring:rates=1+2/3,shells=2")) \
            == Fraction(8, 15)


class TestDomainRateBound:
    def test_single_clock_is_one(self):
        assert domain_rate_bound(parse_topology("figure2:relays=1")) == 1

    def test_min_over_domains(self):
        graph = parse_topology("gals-chain:rates=1+1/2+1/3")
        assert domain_rate_bound(graph) == Fraction(1, 3)

    def test_caps_loop_formula(self):
        """A slow loop dominates a fast rate cap and vice versa."""
        slow_loop = parse_topology("gals-ring:rates=1+2/3,shells=1,relays=3")
        # loop S/(S+R): 2 shells, 3 relays per arc x 2 arcs -> 2/8
        assert static_system_throughput(slow_loop) == Fraction(1, 4)
        slow_clock = parse_topology("gals-ring:rates=1+1/3,shells=2")
        # loop S/(S+R) = 4/4 = 1 > rate cap 1/3
        assert static_system_throughput(slow_clock) == Fraction(1, 3)


class TestSingleClockUnchanged:
    @pytest.mark.parametrize("spec,expected", [
        ("figure2:relays=2", Fraction(1, 3)),
        ("pipeline:stages=3", Fraction(1)),
        ("ring:shells=3,relays=1", Fraction(1, 2)),
    ])
    def test_formulas(self, spec, expected):
        graph = parse_topology(spec)
        assert static_system_throughput(graph) == expected
        assert min_cycle_ratio_throughput(graph).throughput == expected
        assert simulated_throughput(graph) == expected


class TestMcrGuard:
    def test_refuses_gals(self):
        graph = parse_topology("gals-chain:rates=1+1/2")
        with pytest.raises(AnalysisError) as err:
            min_cycle_ratio_throughput(graph)
        message = str(err.value)
        assert "single_clock=False" in message
        assert "simulated_throughput" in message


class TestGalsReport:
    def test_analyze_runs_on_gals(self):
        graph = parse_topology("gals-ring:rates=1+1/2,shells=2")
        report = analyze(graph, max_cycles=5_000)
        assert report.topology_class.startswith("GALS (2 clock domains)")
        assert report.mcr_throughput == Fraction(1, 2)
        assert report.simulated_throughput == Fraction(1, 2)
        assert "live" in report.deadlock_verdict
        assert report.render()

    def test_classify_single_clock_unchanged(self):
        assert classify(parse_topology("figure2:relays=1")) == "feedback"

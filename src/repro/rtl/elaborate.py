"""Mixed-level simulation: gate-level blocks inside behavioural systems.

`NetlistRelayStation` wraps a relay-station netlist (full or half) as a
kernel component with the same channel interface as the behavioural
:class:`~repro.lid.relay.RelayStation`, so a single station in a LID
system can be swapped for its gate-level implementation and the whole
system co-simulated — the strongest integration check the RTL layer
offers (and the standard EDA flow: verify a block at gate level in its
real surroundings).

Payload handling: netlists carry fixed-width unsigned integers, so the
wrapper keeps a side table mapping in-flight data values; payloads must
be integers that fit the configured width.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ElaborationError, StructuralError
from ..kernel.component import Component
from ..lid.channel import Channel
from ..lid.token import Token, VOID
from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant
from .netlist import NetlistSimulator
from .relay_fsm import full_relay_station_netlist, half_relay_station_netlist


class NetlistRelayStation(Component):
    """A relay station simulated at gate level inside a LidSystem.

    Drop-in replacement for the behavioural stations (same ``connect``
    / ``check_wiring`` interface, same reset/publish/settle/tick
    discipline).  ``kind`` selects the netlist: "full" or "half".
    """

    def __init__(self, name: str, kind: str = "full", width: int = 16,
                 variant: ProtocolVariant = DEFAULT_VARIANT):
        super().__init__(name)
        if kind == "full":
            netlist = full_relay_station_netlist(width, name=name)
        elif kind == "half":
            netlist = half_relay_station_netlist(width, variant,
                                                 name=name)
        else:
            raise ElaborationError(f"unknown netlist station {kind!r}")
        self.kind = kind
        self.width = width
        self.variant = variant
        self._netsim = NetlistSimulator(netlist)
        self.input: Optional[Channel] = None
        self.output: Optional[Channel] = None
        self.valid_out_cycles = []

    # -- wiring (mirrors _RelayBase) -----------------------------------------

    def connect(self, input_channel: Channel,
                output_channel: Channel) -> None:
        if self.input is not None or self.output is not None:
            raise StructuralError(f"{self.name}: already connected")
        input_channel.bind_consumer(self.name)
        output_channel.bind_producer(self.name)
        self.input = input_channel
        self.output = output_channel

    def check_wiring(self) -> None:
        if self.input is None or self.output is None:
            raise StructuralError(f"{self.name}: not connected")

    @property
    def registers(self) -> int:
        return 2 if self.kind == "full" else 1

    @property
    def occupancy(self) -> int:
        values = self._netsim.values
        occ = int(values.get("main_valid", 0))
        if self.kind == "full":
            occ += int(values.get("aux_valid", 0))
        return occ

    # -- simulation ------------------------------------------------------------

    def _encode(self, token: Token) -> int:
        if not token.valid:
            return 0
        value = token.value
        if not isinstance(value, int) or not 0 <= value < (1 << self.width):
            raise ElaborationError(
                f"{self.name}: payload {value!r} does not fit an "
                f"unsigned {self.width}-bit netlist datapath"
            )
        return value

    def reset(self) -> None:
        self._netsim.reset()
        self.valid_out_cycles = []

    def publish(self) -> None:
        # Moore outputs come from the netlist's registers; evaluate
        # with neutral inputs first (register outputs don't depend on
        # them, so this is safe and keeps the API simple).
        outs = self._netsim.settle({
            "in_data": 0, "in_valid": 0, "stop_in": 0,
        })
        if outs["out_valid"]:
            self.output.drive(Token(outs["out_data"]))
        else:
            self.output.drive(VOID)
        if self.kind == "full" and outs["stop_out"]:
            self.input.set_stop(True)

    def settle(self) -> None:
        if self.kind != "half":
            return
        # The half station's stop output is combinational in stop_in.
        outs = self._netsim.settle({
            "in_data": 0, "in_valid": 0,
            "stop_in": int(self.output.stop_asserted()),
        })
        if outs["stop_out"]:
            self.input.set_stop(True)

    def tick(self) -> None:
        token = self.input.read()
        stop_in = self.output.stop_asserted()
        outs = self._netsim.settle({
            "in_data": self._encode(token),
            "in_valid": int(token.valid),
            "stop_in": int(stop_in),
        })
        if outs["out_valid"] and not stop_in:
            self.valid_out_cycles.append(self.cycle)
        self._netsim.tick()

    def throughput(self, cycles: int) -> float:
        if cycles <= 0:
            return 0.0
        return sum(1 for c in self.valid_out_cycles if c < cycles) / cycles


def transplant_netlist_station(system, relay_name: str,
                               width: int = 16) -> NetlistRelayStation:
    """Swap one behavioural relay station of *system* for its netlist.

    Returns the new gate-level station, wired to the same channels.
    Call before ``run``; the system must not have been finalized with
    the old component still registered in a trace.
    """
    from ..lid.relay import HalfRelayStation, RelayStation

    old = system.relays[relay_name]
    if isinstance(old, HalfRelayStation):
        kind = "half"
        if old.registered_stop:
            raise ElaborationError(
                "no netlist for the registered-stop ablation variant")
    elif isinstance(old, RelayStation):
        kind = "full"
    else:
        raise ElaborationError(f"{relay_name!r} is not a relay station")
    replacement = NetlistRelayStation(
        relay_name, kind=kind, width=width, variant=old.variant)
    replacement.input = old.input
    replacement.output = old.output
    system.relays[relay_name] = replacement
    components = system.sim._components
    components[components.index(old)] = replacement
    replacement.attached(system.sim)
    return replacement

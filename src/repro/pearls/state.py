"""Stateful pearls: modules whose next output depends on history.

These exercise the clock-gating half of the shell contract: when the
shell stalls, the pearl's state must freeze.  The latency-equivalence
property tests lean on these pearls because any spurious or skipped
firing corrupts their state visibly.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .base import Pearl


class Counter(Pearl):
    """Free-running counter; the input is consumed but only gates firing.

    ``out`` is the number of firings so far — which makes every skipped
    or duplicated firing observable downstream.
    """

    input_ports = ("en",)
    output_ports = ("out",)

    def __init__(self, start: int = 0, stride: int = 1):
        self.start = start
        self.stride = stride
        self._count = start

    def reset(self) -> Dict[str, Any]:
        self._count = self.start
        return {"out": self._count}

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        self._count += self.stride
        return {"out": self._count}


class Accumulator(Pearl):
    """Running sum of the input stream: out[n] = sum(a[0..n])."""

    input_ports = ("a",)
    output_ports = ("out",)

    def __init__(self, initial: Any = 0):
        self.initial = initial
        self._acc = initial

    def reset(self) -> Dict[str, Any]:
        self._acc = self.initial
        return {"out": self._acc}

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        self._acc = self._acc + inputs["a"]
        return {"out": self._acc}


class Delay(Pearl):
    """A k-stage register pipeline inside the pearl (out[n] = a[n-k]).

    Distinct from relay stations: this latency belongs to the *module's
    function*, so it is present identically in the zero-latency
    reference system.
    """

    input_ports = ("a",)
    output_ports = ("out",)

    def __init__(self, stages: int = 1, fill: Any = 0):
        if stages < 1:
            raise ValueError("Delay needs at least one stage")
        self.stages = stages
        self.fill = fill
        self._pipe: List[Any] = []

    def reset(self) -> Dict[str, Any]:
        self._pipe = [self.fill] * self.stages
        return {"out": self._pipe[-1]}

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        self._pipe.insert(0, inputs["a"])
        out = self._pipe.pop()
        return {"out": out}


class Toggle(Pearl):
    """Alternates its output payload between two values per firing."""

    input_ports = ("en",)
    output_ports = ("out",)

    def __init__(self, first: Any = 0, second: Any = 1):
        self.values = (first, second)
        self._phase = 0

    def reset(self) -> Dict[str, Any]:
        self._phase = 0
        return {"out": self.values[0]}

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        self._phase ^= 1
        return {"out": self.values[self._phase]}


class History(Pearl):
    """Records every consumed payload — an observation pearl for tests.

    ``out`` echoes the input; ``seen`` lists all payloads consumed since
    reset in firing order.  Tests use it to assert the coherence
    property (shells elaborate inputs in order without skips).
    """

    input_ports = ("a",)
    output_ports = ("out",)

    def __init__(self, initial: Any = 0):
        self.initial = initial
        self.seen: List[Any] = []

    def reset(self) -> Dict[str, Any]:
        self.seen = []
        return {"out": self.initial}

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        self.seen.append(inputs["a"])
        return {"out": inputs["a"]}


class Fibonacci(Pearl):
    """Self-feeding pair generator used in the feedback-loop benches.

    Consumes its previous output (through the loop channel) and adds an
    external increment; with increment 0 the loop simply circulates a
    recognizable sequence.
    """

    input_ports = ("loop_in", "ext")
    output_ports = ("out",)

    def __init__(self, seed: int = 1):
        self.seed = seed
        self._prev = seed

    def reset(self) -> Dict[str, Any]:
        self._prev = self.seed
        return {"out": self._prev}

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        value = inputs["loop_in"] + inputs["ext"] + self._prev
        self._prev = inputs["loop_in"]
        return {"out": value}

"""Tests for the paper's verification campaign (EXP-V1 backing)."""

import pytest

from repro.lid.variant import ProtocolVariant
from repro.verify import (
    check_progress,
    results_table,
    verify_all,
    verify_relay_station,
    verify_shell,
)

CASU = ProtocolVariant.CASU
CARLONI = ProtocolVariant.CARLONI


class TestRelayStationProperties:
    @pytest.mark.parametrize("kind", ["full", "half", "half-registered"])
    def test_all_properties_hold_casu(self, kind):
        for row in verify_relay_station(kind, CASU):
            assert row.holds, row.counterexample and \
                row.counterexample.render()

    @pytest.mark.parametrize("kind", ["full", "half"])
    def test_all_properties_hold_carloni(self, kind):
        for row in verify_relay_station(kind, CARLONI):
            assert row.holds

    def test_three_paper_properties_reported(self):
        rows = verify_relay_station("full")
        assert [r.prop for r in rows] == [
            "produces outputs in the correct order",
            "does not skip any valid output",
            "keeps its output on asserted stops",
        ]

    def test_states_explored_positive(self):
        rows = verify_relay_station("full")
        assert all(r.states_explored > 0 for r in rows)


class TestShellProperties:
    @pytest.mark.parametrize("n_in,n_out", [(1, 1), (2, 1), (1, 2), (2, 2)])
    def test_all_properties_hold(self, n_in, n_out):
        for row in verify_shell(n_in, n_out, CASU):
            assert row.holds, row.counterexample and \
                row.counterexample.render()

    def test_carloni_shell_also_safe(self):
        # The original protocol is slower, not unsafe.
        for row in verify_shell(1, 1, CARLONI):
            assert row.holds

    def test_coherence_is_first_property(self):
        rows = verify_shell(2, 1)
        assert rows[0].prop == "elaborates coherent data"

    @pytest.mark.parametrize("n_in,n_out", [(3, 1), (2, 3), (3, 2)])
    def test_wider_shells_also_safe(self, n_in, n_out):
        for row in verify_shell(n_in, n_out, CASU):
            assert row.holds, (n_in, n_out, row.prop)


class TestCampaign:
    def test_verify_all_passes(self):
        rows = verify_all()
        assert len(rows) >= 17
        assert all(r.holds for r in rows)

    def test_results_table_renders(self):
        rows = verify_all()
        text = results_table(rows)
        assert "PASS" in text and "FAIL" not in text
        assert "relay station" in text and "shell" in text


class TestProgress:
    @pytest.mark.parametrize("kind", ["full", "half", "half-registered"])
    def test_no_block_level_livelock(self, kind):
        result = check_progress(kind)
        assert result.holds, result.stuck_state

    def test_progress_reports_state_count(self):
        assert check_progress("full").states_explored > 0


class TestMutationCatching:
    """The campaign must actually catch broken blocks (mutation test)."""

    def test_broken_hold_detected(self, monkeypatch):
        from repro.verify import fsm

        original = fsm.full_rs_step

        def broken(state, in_tok, stop_in, variant=None):
            nxt = original(state, in_tok, stop_in,
                           variant or ProtocolVariant.CASU)
            # Mutation: drop the held token when stopped while full.
            if stop_in and nxt.aux is not None:
                import dataclasses

                return dataclasses.replace(nxt, main=None)
            return nxt

        monkeypatch.setattr(fsm, "full_rs_step", broken)
        rows = verify_relay_station("full")
        assert not all(r.holds for r in rows)

    def test_reordering_detected(self, monkeypatch):
        from repro.verify import fsm

        original = fsm.half_rs_step

        def broken(state, in_tok, stop_in, variant=None,
                   registered_stop=False):
            nxt = original(state, in_tok, stop_in,
                           variant or ProtocolVariant.CASU,
                           registered_stop)
            # Mutation: spuriously re-emit token 0 forever.
            if nxt.main is None:
                return fsm.HalfRsState(main=0)
            return nxt

        monkeypatch.setattr(fsm, "half_rs_step", broken)
        rows = verify_relay_station("half")
        assert not all(r.holds for r in rows)

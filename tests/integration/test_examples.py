"""Every shipped example must run clean — they are deliverables too."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).parent.parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


class TestExamplesInventory:
    def test_at_least_eight_examples(self):
        assert len(EXAMPLES) >= 8

    def test_quickstart_exists(self):
        assert "quickstart.py" in EXAMPLES

    def test_all_have_docstrings_and_main(self):
        for name in EXAMPLES:
            text = (EXAMPLES_DIR / name).read_text(encoding="utf-8")
            assert text.lstrip().startswith(('#!/usr/bin/env python3',
                                             '"""')), name
            assert '__main__' in text, name


@pytest.mark.slow
@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name, tmp_path):
    """Run each example as a subprocess (some write artifacts: give
    them a scratch directory argument)."""
    env = {**os.environ,
           "PYTHONPATH": os.pathsep.join(
               p for p in (str(REPO_ROOT / "src"),
                           os.environ.get("PYTHONPATH")) if p)}
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), str(tmp_path)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=str(tmp_path),
        env=env,
    )
    assert proc.returncode == 0, (
        f"{name} failed:\n--- stdout ---\n{proc.stdout[-2000:]}"
        f"\n--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{name} produced no output"

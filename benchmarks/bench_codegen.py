"""EXP-C1-codegen: compiled cycle functions beat the scalar engine >=5x.

The codegen backend specializes the whole skeleton update — stop
settling in Gauss–Seidel order, relay-station edges, shell firing
rules — into straight-line Python for one topology, compiles it once,
and reuses the compiled plan for every simulator over that topology.
The claim is threefold, and all three parts are asserted:

* on the paper's feedback example (figure 2) and a deeper pipeline the
  compiled engine sustains at least 5x the scalar engine's cycles/s,
  measured through the same ``select()`` backend interface campaigns
  use;
* one topology costs one compile no matter how many simulators run it
  (in-process plan cache), and a fresh process with a disk compile
  cache skips generation entirely (source-text hit);
* the campaign report is **byte-identical** across all four backends —
  speed without a second source of truth.

Emits ``BENCH_EXP-C1-codegen.json`` with wall times, speedups and the
cache hit counters.
"""

import tempfile
from time import perf_counter

from repro.bench.tables import format_table
from repro.exec import ResultCache
from repro.graph import figure2, pipeline
from repro.inject import skeleton_campaign
from repro.ir import lower
from repro.lid.variant import ProtocolVariant
from repro.skeleton import CodegenSkeletonSim, select
from repro.skeleton.codegen import STATS, clear_plan_cache, plan_for

CYCLES = 4000
ROUNDS = 5
MIN_SPEEDUP = 5.0
BACKENDS = ("scalar", "vectorized", "bitsim", "codegen")


def _best_wall(graph, backend):
    """Best-of-rounds wall seconds for CYCLES cycles via select()."""
    select(graph, backend=backend).run_cycles(64)  # warm (compiles)
    best = float("inf")
    for _ in range(ROUNDS):
        handle = select(graph, backend=backend)  # fresh state per round
        started = perf_counter()
        handle.run_cycles(CYCLES)
        best = min(best, perf_counter() - started)
    return best


def test_bench_codegen_speedup(benchmark, emit):
    cases = [("figure2", figure2()), ("pipeline6", pipeline(6))]
    rows, counters = [], {}
    total_wall = 0.0
    for name, graph in cases:
        scalar_wall = _best_wall(graph, "scalar")
        codegen_wall = _best_wall(graph, "codegen")
        total_wall += scalar_wall + codegen_wall
        speedup = (scalar_wall / codegen_wall if codegen_wall
                   else float("inf"))
        assert speedup >= MIN_SPEEDUP, (
            f"codegen only reached {speedup:.2f}x over the scalar "
            f"backend on {name} (expected >= {MIN_SPEEDUP:.0f}x)")
        rows.append((name,
                     f"{CYCLES / scalar_wall:,.0f}",
                     f"{CYCLES / codegen_wall:,.0f}",
                     f"{speedup:.1f}x"))
        counters[f"{name}_scalar_cps"] = round(CYCLES / scalar_wall)
        counters[f"{name}_codegen_cps"] = round(CYCLES / codegen_wall)
        counters[f"{name}_speedup_x"] = round(speedup, 2)
    benchmark.pedantic(_best_wall, args=(figure2(), "codegen"),
                       rounds=1, iterations=1)

    # One compile serves many simulators over the same topology.
    clear_plan_cache()
    STATS.reset()
    sims = [CodegenSkeletonSim(figure2()) for _ in range(16)]
    assert STATS.compiles == 1 and STATS.plan_hits == len(sims) - 1, (
        f"expected 1 compile for 16 sims, got {STATS.compiles} "
        f"compiles / {STATS.plan_hits} plan hits")
    counters["sims_per_compile"] = len(sims)

    # A second "process" (cleared plan cache, kept disk cache) reloads
    # the generated source instead of regenerating it.
    low = lower(figure2())
    plan_kwargs = dict(fixpoint="least", detect_ambiguity=True,
                       metrics_on=False, events_on=False)
    with tempfile.TemporaryDirectory() as tmp:
        disk = ResultCache.disk(tmp)
        clear_plan_cache()
        STATS.reset()
        started = perf_counter()
        plan_for(low, ProtocolVariant.CASU, disk_cache=disk,
                 **plan_kwargs)
        cold_wall = perf_counter() - started
        assert STATS.compiles == 1 and STATS.disk_hits == 0
        clear_plan_cache()
        STATS.reset()
        started = perf_counter()
        plan_for(low, ProtocolVariant.CASU, disk_cache=disk,
                 **plan_kwargs)
        warm_wall = perf_counter() - started
        assert STATS.disk_hits == 1 and STATS.compiles == 0, (
            "second-run compile cache missed: expected a disk hit")
    counters["compile_cold_us"] = round(cold_wall * 1e6)
    counters["compile_disk_hit_us"] = round(warm_wall * 1e6)

    # Byte-identity: the whole campaign report, all four backends.
    kwargs = dict(variant=ProtocolVariant.CASU,
                  classes=("stop", "void"), cycles=64, samples=24,
                  seed=11)
    reports = {b: skeleton_campaign(figure2(), backend=b, **kwargs)
               for b in BACKENDS}
    for backend in BACKENDS[1:]:
        assert reports[backend].to_json() == reports["scalar"].to_json(), (
            f"{backend} campaign report differs from scalar: the "
            f"byte-identity contract regressed")

    table = format_table(
        ("topology", "scalar [cyc/s]", "codegen [cyc/s]", "speedup"),
        rows,
        title=f"EXP-C1-codegen: compiled cycle functions vs the scalar "
              f"engine ({CYCLES} cycles, best of {ROUNDS} rounds, via "
              f"select().run_cycles)",
    )
    emit("EXP-C1-codegen", table, rows=rows, wall_seconds=total_wall,
         params={"cycles": CYCLES, "rounds": ROUNDS,
                 "topologies": [name for name, _g in cases],
                 "min_speedup": MIN_SPEEDUP},
         counters=counters)

"""Property-based tests for queued shells vs relay-station fabrics."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import LidSystem, pearls
from repro.lid.reference import is_prefix

pytestmark = pytest.mark.slow

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

stop_specs = st.one_of(
    st.none(),
    st.tuples(st.integers(2, 5), st.integers(0, 4)),
)
streams = st.lists(st.one_of(st.integers(0, 99), st.none()),
                   min_size=3, max_size=25)


def _script(spec):
    if spec is None:
        return None
    period, phase = spec
    return lambda c: c % period == phase


def build(style, stop_spec, stream, stages=2):
    """Two fabrics with the same stage count.

    A queued shell adds one storage stage on EVERY input — including
    the one fed by the source — so the matching relay fabric needs a
    station on the source edge too, or the pipelines differ by one
    stage and arrival cycles shift.
    """
    system = LidSystem(style)
    src = system.add_source("src", stream=list(stream))
    shells = []
    for i in range(stages):
        pearl = pearls.Identity(initial=-1 - i)
        if style == "queued":
            shells.append(system.add_queued_shell(f"S{i}", pearl))
        else:
            shells.append(system.add_shell(f"S{i}", pearl))
    sink = system.add_sink("out", stop_script=_script(stop_spec))
    system.connect(src, shells[0],
                   relays=0 if style == "queued" else 1)
    for a, b in zip(shells, shells[1:]):
        if style == "queued":
            system.connect(a, b)
        else:
            system.connect(a, b, relays=1)
    system.connect(shells[-1], sink)
    return system, sink


@given(stop_spec=stop_specs, stream=streams)
@settings(**SETTINGS)
def test_queued_fabric_is_latency_equivalent(stop_spec, stream):
    system, sink = build("queued", stop_spec, stream)
    system.run(60)
    ref = system.reference_outputs(60)["out"]
    assert is_prefix(sink.payloads, ref)


@given(stop_spec=stop_specs, stream=streams)
@settings(**SETTINGS)
def test_queued_equals_relay_fabric_payloads(stop_spec, stream):
    """Depth-2 queues and full relay stations deliver the same payload
    stream on arbitrary traffic.

    (Arrival *cycles* can differ by one when the stream contains voids:
    a relay station swallows a void in place while a queue simply does
    not enqueue it — hypothesis found the distinction, see the gapless
    test below for the cycle-exact case.)
    """
    queued, q_sink = build("queued", stop_spec, stream)
    stationed, s_sink = build("relay", stop_spec, stream)
    queued.run(60)
    stationed.run(60)
    shorter = min(len(q_sink.payloads), len(s_sink.payloads))
    assert q_sink.payloads[:shorter] == s_sink.payloads[:shorter]
    assert abs(len(q_sink.payloads) - len(s_sink.payloads)) <= \
        1 + sum(1 for v in stream if v is None)


@given(stop_spec=stop_specs,
       stream=st.lists(st.integers(0, 99), min_size=3, max_size=25))
@settings(**SETTINGS)
def test_queued_equals_relay_fabric_cycles_gapless(stop_spec, stream):
    """On void-free streams the two fabrics are cycle-for-cycle
    identical — the depth-2 queue IS a relocated relay station."""
    queued, q_sink = build("queued", stop_spec, stream)
    stationed, s_sink = build("relay", stop_spec, stream)
    queued.run(60)
    stationed.run(60)
    shorter = min(len(q_sink.received), len(s_sink.received))
    assert q_sink.received[:shorter] == s_sink.received[:shorter]


@given(stream=streams)
@settings(**SETTINGS)
def test_projection_preserved_through_queues(stream):
    """The valid payloads reaching the sink are exactly the source
    projection, shifted by the two initial shell tokens."""
    system, sink = build("queued", None, stream)
    system.run(80)
    projection = [v for v in stream if v is not None]
    delivered = sink.payloads
    assert delivered[:2] == [-2, -1]  # the shells' initial tokens
    assert delivered[2:] == projection[: len(delivered) - 2]

#!/usr/bin/env python3
"""Deadlock analysis and cure, the paper's way.

Half relay stations save area (one register instead of two) but the
paper warns: "Any LID with full and half relay stations has potential
deadlocks iff half relay stations are present in loops."  The remedy is
cheap: "simulate just the skeleton of the system consisting of stop and
valid signals ... either the deadlock will show, or will be forever
avoided", and cure offenders by "adding/substituting few relay
stations".

This example walks that exact methodology on a DSP feedback loop.

Run:  python examples/deadlock_cure.py
"""

from repro import pearls
from repro.graph import SystemGraph, half_relays_on_loops, promote_half_relays
from repro.lid.variant import ProtocolVariant
from repro.skeleton import check_deadlock, is_deadlock_free_class


def build_feedback_filter(loop_relays) -> SystemGraph:
    """A recursive filter: the output is fed back around the loop."""
    graph = SystemGraph("feedback_filter")
    graph.add_source("samples")
    graph.add_shell("mix", lambda: pearls.Fibonacci(seed=0))
    graph.add_sink("filtered")
    graph.add_edge("samples", "mix", dst_port="ext")
    graph.add_edge("mix", "mix", relays=loop_relays,
                   src_port="out", dst_port="loop_in")
    graph.add_edge("mix", "filtered", src_port="out")
    return graph


def report(title, graph, variant):
    verdict = check_deadlock(graph, variant=variant)
    status = "DEADLOCK" if verdict.deadlocked else (
        "potential deadlock" if verdict.potential else "live")
    print(f"  {title}: {status}")
    print(f"    skeleton verdict after transient={verdict.transient}, "
          f"period={verdict.period}: {verdict.detail}")
    return verdict


def main() -> None:
    # An area-optimized designer used a half relay station in the loop,
    # right at the consumer side of the feedback wire.
    risky = build_feedback_filter(loop_relays=["full", "half"])
    print("step 1 — static classification")
    rule = is_deadlock_free_class(risky)
    hazards = half_relays_on_loops(risky)
    print(f"  deadlock-free rule matched: {rule!r}")
    print(f"  half relay stations on loops: {hazards}")
    print("  -> no static guarantee; fall back to skeleton simulation\n")

    print("step 2 — skeleton simulation to transient extinction")
    print(" (original protocol, stops back-propagated regardless of "
          "validity)")
    verdict = report("risky loop", risky, ProtocolVariant.CARLONI)
    assert verdict.deadlocked

    print("\n (refined protocol, stops on voids discarded)")
    refined = report("risky loop", risky, ProtocolVariant.CASU)
    assert not refined.deadlocked
    print("  -> the paper's refinement alone already avoids the "
          "injection here\n")

    print("step 3 — the low-intrusive cure: promote loop halves to full")
    cured = promote_half_relays(risky, only_loops=True)
    print(f"  relay census before: {risky.relay_count('half')} half / "
          f"{risky.relay_count('full')} full")
    print(f"  relay census after:  {cured.relay_count('half')} half / "
          f"{cured.relay_count('full')} full")
    verdict = report("cured loop", cured, ProtocolVariant.CARLONI)
    assert verdict.live
    print(f"  static rule now: {is_deadlock_free_class(cured)!r}")

    print("\nstep 4 — confirm with full data simulation")
    system = cured.elaborate(variant=ProtocolVariant.CARLONI)
    system.run(60)
    fired = {name: shell.fire_count for name, shell in
             system.shells.items()}
    print(f"  shell firings over 60 cycles: {fired}")
    assert all(count > 10 for count in fired.values())
    print("  cured system streams freely under the original protocol "
          "too.")


if __name__ == "__main__":
    main()

"""Single-flight coalescing: the thread and asyncio implementations.

The contract under test (satellite of the campaign-service PR): K
concurrent callers for one key perform exactly ONE execution; every
caller sees the same value; an exception propagates to all; the key is
retired afterwards so later callers start fresh.
"""

import asyncio
import threading

import pytest

from repro.exec import CacheStats, SingleFlight
from repro.serve import AsyncSingleFlight


class TestThreadSingleFlight:
    def test_concurrent_callers_one_execution(self):
        flight = SingleFlight()
        stats = CacheStats()
        calls = []
        gate = threading.Event()
        started = threading.Barrier(8 + 1)

        def work():
            calls.append(1)
            gate.wait(10)
            return "golden"

        results = []

        def caller():
            started.wait(10)
            results.append(flight.do("k", work, stats=stats))

        threads = [threading.Thread(target=caller) for _ in range(8)]
        for t in threads:
            t.start()
        started.wait(10)  # all callers racing before the leader returns
        while stats.coalesced < 7:  # every follower is parked in do()
            pass
        gate.set()
        for t in threads:
            t.join(10)

        assert len(calls) == 1, "exactly one golden execution"
        assert [value for value, _leader in results] == ["golden"] * 8
        assert sum(leader for _v, leader in results) == 1
        assert stats.coalesced == 7
        assert flight.inflight() == 0

    def test_exception_propagates_to_followers(self):
        flight = SingleFlight()
        stats = CacheStats()
        gate = threading.Event()

        def boom():
            gate.wait(10)
            raise RuntimeError("golden failed")

        errors = []

        def caller():
            try:
                flight.do("k", boom, stats=stats)
            except RuntimeError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=caller) for _ in range(2)]
        for t in threads:
            t.start()
        while stats.coalesced < 1:  # the follower is parked in do()
            pass
        gate.set()
        for t in threads:
            t.join(10)
        assert errors == ["golden failed"] * 2

    def test_sequential_calls_do_not_coalesce(self):
        flight = SingleFlight()
        calls = []
        for _ in range(3):
            value, leader = flight.do("k", lambda: calls.append(1))
            assert leader
        assert len(calls) == 3


class TestAsyncSingleFlight:
    def test_concurrent_awaiters_one_execution(self):
        async def scenario():
            flight = AsyncSingleFlight()
            calls = []
            gate = asyncio.Event()

            async def work():
                calls.append(1)
                await gate.wait()
                return "golden"

            async def call():
                return await flight.run("k", work)

            tasks = [asyncio.ensure_future(call()) for _ in range(8)]
            await asyncio.sleep(0)  # let every task reach the flight
            assert flight.inflight() == 1
            assert flight.leading("k")
            gate.set()
            results = await asyncio.gather(*tasks)
            assert len(calls) == 1
            assert [v for v, _l in results] == ["golden"] * 8
            assert sum(leader for _v, leader in results) == 1
            assert flight.inflight() == 0

        asyncio.run(scenario())

    def test_exception_propagates(self):
        async def scenario():
            flight = AsyncSingleFlight()
            gate = asyncio.Event()

            async def boom():
                await gate.wait()
                raise RuntimeError("golden failed")

            async def call():
                return await flight.run("k", boom)

            tasks = [asyncio.ensure_future(call()) for _ in range(3)]
            await asyncio.sleep(0)
            gate.set()
            results = await asyncio.gather(*tasks,
                                           return_exceptions=True)
            assert all(isinstance(r, RuntimeError) for r in results)
            assert flight.inflight() == 0

        asyncio.run(scenario())

    def test_follower_cancellation_leaves_leader_running(self):
        async def scenario():
            flight = AsyncSingleFlight()
            gate = asyncio.Event()

            async def work():
                await gate.wait()
                return 42

            leader = asyncio.ensure_future(flight.run("k", work))
            await asyncio.sleep(0)
            follower = asyncio.ensure_future(flight.run("k", work))
            await asyncio.sleep(0)
            follower.cancel()
            with pytest.raises(asyncio.CancelledError):
                await follower
            gate.set()
            value, was_leader = await leader
            assert (value, was_leader) == (42, True)

        asyncio.run(scenario())

    def test_keys_are_independent(self):
        async def scenario():
            flight = AsyncSingleFlight()

            async def make(value):
                return value

            a, b = await asyncio.gather(
                flight.run("a", lambda: make(1)),
                flight.run("b", lambda: make(2)))
            assert a == (1, True) and b == (2, True)

        asyncio.run(scenario())

"""Unit tests for DSP pearls."""

import pytest

from repro.pearls import Butterfly, Decimator, FirFilter, IirFilter, Mac, MovingAverage


class TestMac:
    def test_accumulates_products(self):
        pearl = Mac()
        pearl.reset()
        assert pearl.step({"a": 2, "b": 3})["out"] == 6
        assert pearl.step({"a": 4, "b": 5})["out"] == 26

    def test_initial(self):
        assert Mac(initial=10).reset() == {"out": 10}


class TestFirFilter:
    def test_impulse_response_is_taps(self):
        taps = (1, 2, 3)
        pearl = FirFilter(taps)
        pearl.reset()
        impulse = [1, 0, 0, 0]
        outs = [pearl.step({"a": x})["out"] for x in impulse]
        assert outs == [1, 2, 3, 0]

    def test_dc_gain(self):
        pearl = FirFilter((0.25,) * 4)
        pearl.reset()
        outs = [pearl.step({"a": 1})["out"] for _ in range(6)]
        assert outs[-1] == pytest.approx(1.0)

    def test_empty_taps_rejected(self):
        with pytest.raises(ValueError):
            FirFilter(())


class TestIirFilter:
    def test_step_response_converges(self):
        pearl = IirFilter(a=0.5, b=0.5)
        pearl.reset()
        out = 0.0
        for _ in range(30):
            out = pearl.step({"x": 1.0})["out"]
        assert out == pytest.approx(1.0, abs=1e-6)

    def test_recurrence(self):
        pearl = IirFilter(a=0.5, b=1.0, initial=0.0)
        pearl.reset()
        assert pearl.step({"x": 2.0})["out"] == pytest.approx(2.0)
        assert pearl.step({"x": 0.0})["out"] == pytest.approx(1.0)


class TestMovingAverage:
    def test_window_mean(self):
        pearl = MovingAverage(window=2)
        pearl.reset()
        outs = [pearl.step({"a": v})["out"] for v in (2, 4, 6)]
        assert outs == [2, 3, 5]

    def test_bad_window(self):
        with pytest.raises(ValueError):
            MovingAverage(window=0)


class TestButterfly:
    def test_sum_and_diff(self):
        pearl = Butterfly()
        pearl.reset()
        assert pearl.step({"a": 5, "b": 3}) == {"sum": 8, "diff": 2}

    def test_two_outputs(self):
        assert Butterfly().output_ports == ("sum", "diff")

    def test_initials(self):
        pearl = Butterfly(initial_sum=1, initial_diff=2)
        assert pearl.reset() == {"sum": 1, "diff": 2}


class TestDecimator:
    def test_holds_every_other(self):
        pearl = Decimator(factor=2)
        pearl.reset()
        outs = [pearl.step({"a": v})["out"] for v in (1, 2, 3, 4)]
        assert outs == [1, 1, 3, 3]

    def test_factor_one_is_identity(self):
        pearl = Decimator(factor=1)
        pearl.reset()
        outs = [pearl.step({"a": v})["out"] for v in (1, 2, 3)]
        assert outs == [1, 2, 3]

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            Decimator(factor=0)


class TestInLidSystem:
    """DSP pearls keep their function under the protocol (end to end)."""

    def test_fir_latency_equivalent(self):
        from repro import LidSystem, pearls
        from repro.lid.reference import is_prefix

        system = LidSystem("fir")
        src = system.add_source("src")
        fir = system.add_shell("F", pearls.FirFilter((1, 1)))
        sink = system.add_sink("out", stop_script=lambda c: c % 3 == 1)
        system.connect(src, fir, consumer_port="a")
        system.connect(fir, sink, relays=2)
        system.run(30)
        ref = system.reference_outputs(30)["out"]
        assert is_prefix(sink.payloads, ref)

    def test_butterfly_multicast(self):
        from repro import LidSystem, pearls
        from repro.lid.reference import is_prefix

        system = LidSystem("bf")
        s1 = system.add_source("s1")
        s2 = system.add_source("s2", stream=lambda: iter(
            __import__("repro.lid.token", fromlist=["Token"]).Token(v)
            for v in range(100, 200)))
        bf = system.add_shell("B", pearls.Butterfly())
        out_sum = system.add_sink("sum")
        out_diff = system.add_sink("diff")
        system.connect(s1, bf, consumer_port="a")
        system.connect(s2, bf, consumer_port="b")
        system.connect(bf, out_sum, producer_port="sum", relays=1)
        system.connect(bf, out_diff, producer_port="diff", relays=1)
        system.run(20)
        ref = system.reference_outputs(20)
        assert is_prefix(out_sum.payloads, ref["sum"])
        assert is_prefix(out_diff.payloads, ref["diff"])

"""Static performance analysis: the paper's formulas and their
minimum-cycle-ratio generalization."""

from .mcr import McrResult, min_cycle_ratio_throughput
from .optimize import (
    free_slack,
    insertion_plan,
    max_relays_at_rate,
    pareto_relay_throughput,
)
from .report import SystemReport, analyze, classify
from .sweep import (
    SERIES_GENERATORS,
    Series,
    backpressure_series,
    imbalance_series,
    loop_series,
    stop_activity_series,
    transient_series,
)
from .throughput import (
    analyze_loops,
    analyze_reconvergence,
    domain_rate_bound,
    effective_throughput,
    loop_throughput,
    reconvergence_pairs,
    reconvergent_throughput,
    simulated_throughput,
    static_system_throughput,
    throughput_sweep,
    tree_throughput,
)
from .transient import (
    TransientReport,
    analyze_transient,
    first_full_speed_cycle,
    longest_register_path,
)

__all__ = [
    "McrResult",
    "SERIES_GENERATORS",
    "Series",
    "SystemReport",
    "TransientReport",
    "analyze",
    "analyze_loops",
    "analyze_reconvergence",
    "analyze_transient",
    "backpressure_series",
    "classify",
    "domain_rate_bound",
    "effective_throughput",
    "first_full_speed_cycle",
    "free_slack",
    "imbalance_series",
    "insertion_plan",
    "longest_register_path",
    "loop_series",
    "loop_throughput",
    "max_relays_at_rate",
    "min_cycle_ratio_throughput",
    "pareto_relay_throughput",
    "reconvergence_pairs",
    "reconvergent_throughput",
    "simulated_throughput",
    "static_system_throughput",
    "stop_activity_series",
    "throughput_sweep",
    "transient_series",
    "tree_throughput",
]

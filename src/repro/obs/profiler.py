"""Lightweight phase-timing profiler for simulation runs.

Measures where wall time goes — per simulation phase (publish/settle,
cycle hooks, clock edge), per cycle, and per emitted event — without a
sampling profiler's overhead or noise.  The kernel scheduler calls
:meth:`Profiler.add` with pre-measured durations so the disabled path
costs nothing; user code can use the :meth:`phase` context manager.

``repro-lid profile`` renders :meth:`report` as a table; the Chrome
trace exporter turns recorded phases into ``chrome://tracing`` /
Perfetto slices.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple


class PhaseStat:
    """Accumulated wall time for one named phase."""

    __slots__ = ("calls", "seconds")

    def __init__(self) -> None:
        self.calls = 0
        self.seconds = 0.0


class Profiler:
    """Accumulates named phase durations and run-level rates."""

    def __init__(self) -> None:
        self._phases: Dict[str, PhaseStat] = {}
        self._order: List[str] = []
        self._started = time.perf_counter()
        self.cycles = 0
        self.events = 0

    # -- recording -------------------------------------------------------

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Fold a pre-measured duration into phase *name*."""
        stat = self._phases.get(name)
        if stat is None:
            stat = PhaseStat()
            self._phases[name] = stat
            self._order.append(name)
        stat.calls += calls
        stat.seconds += seconds

    @contextmanager
    def phase(self, name: str):
        """Time a ``with`` block as one call of phase *name*."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add(name, time.perf_counter() - start)

    def note_cycles(self, cycles: int) -> None:
        """Credit *cycles* simulated cycles to the run totals."""
        self.cycles += cycles

    def note_events(self, events: int) -> None:
        """Credit *events* emitted trace events to the run totals."""
        self.events += events

    # -- reporting -------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self._phases.values())

    def phases(self) -> List[Tuple[str, int, float]]:
        """(name, calls, seconds) in first-recorded order."""
        return [(name, self._phases[name].calls,
                 self._phases[name].seconds) for name in self._order]

    def report(self) -> Dict[str, Any]:
        """JSON-compatible summary of the run's timing."""
        total = self.total_seconds
        wall = time.perf_counter() - self._started
        phases: Dict[str, Any] = {}
        for name, calls, seconds in self.phases():
            phases[name] = {
                "calls": calls,
                "seconds": seconds,
                "share": (seconds / total) if total else 0.0,
            }
        report: Dict[str, Any] = {
            "phases": phases,
            "total_seconds": total,
            "wall_seconds": wall,
            "cycles": self.cycles,
        }
        if self.cycles:
            report["us_per_cycle"] = total / self.cycles * 1e6
            report["cycles_per_sec"] = (self.cycles / total
                                        if total else 0.0)
        if self.events:
            report["events"] = self.events
            report["events_per_sec"] = (self.events / total
                                        if total else 0.0)
        return report

    def format_table(self, title: Optional[str] = None) -> str:
        """Aligned text rendering of :meth:`report` (CLI output)."""
        from ..bench.tables import format_table

        rows = []
        total = self.total_seconds
        for name, calls, seconds in self.phases():
            share = f"{seconds / total * 100:5.1f}%" if total else "-"
            per_call = (f"{seconds / calls * 1e6:.2f} us"
                        if calls else "-")
            rows.append((name, calls, f"{seconds * 1e3:.3f} ms",
                         per_call, share))
        table = format_table(
            ("phase", "calls", "total", "per call", "share"),
            rows, title=title)
        summary = [f"total measured: {total * 1e3:.3f} ms"]
        if self.cycles:
            summary.append(
                f"cycles: {self.cycles} "
                f"({total / self.cycles * 1e6:.2f} us/cycle)")
        if self.events:
            rate = self.events / total if total else 0.0
            summary.append(f"events: {self.events} "
                           f"({rate:,.0f} events/sec)")
        return table + "\n" + "; ".join(summary)

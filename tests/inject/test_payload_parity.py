"""Pinned parity: payload faults on boundary channels, both engines.

A payload fault corrupts data without touching valid/stop wires, so it
is control-transparent: the skeleton engine classifies it from the
golden column's acceptance history (a sink that consumes during the
fault window consumed a corrupted token).  The pinned contract is
*verdict* parity with the token-level LID engine, which actually
corrupts the payload and diffs the sink stream — and backend parity
between the scalar and vectorized skeleton engines, which routes the
boundary payload path through ``select()`` rather than a scalar-only
fallback.
"""

from collections import Counter

from repro.graph import figure2, pipeline
from repro.inject import run_campaign, skeleton_campaign
from repro.lid.variant import ProtocolVariant

PARAMS = dict(variant=ProtocolVariant.CASU, classes=("payload",),
              cycles=64, window=(0, 16), exhaustive=True, seed=7)


def _verdicts(report):
    return {(r.spec.kind, r.spec.target, r.spec.cycle): r.verdict
            for r in report.results}


class TestPayloadVerdictParity:
    def test_lid_and_skeleton_agree_on_figure2(self):
        lid = run_campaign(figure2(), **PARAMS)
        skel = skeleton_campaign(figure2(), **PARAMS)
        lid_verdicts = _verdicts(lid)
        skel_verdicts = _verdicts(skel)
        # The skeleton classifies sink-boundary payload faults; every
        # one of them must agree with the token-level engine.
        assert skel_verdicts, "no payload fault was classified"
        mismatches = {
            key: (lid_verdicts[key], verdict)
            for key, verdict in skel_verdicts.items()
            if lid_verdicts[key] != verdict
        }
        assert not mismatches

    def test_both_silent_corruption_and_masked_occur(self):
        # figure2's sink accepts on some but not all of the window's
        # cycles, so the parity above is exercised on both verdicts.
        skel = skeleton_campaign(figure2(), **PARAMS)
        counts = Counter(r.verdict for r in skel.results)
        assert counts["silent-corruption"] > 0
        assert counts["masked"] > 0

    def test_source_boundary_payload_still_skipped(self):
        skel = skeleton_campaign(figure2(), **PARAMS)
        assert skel.skipped
        classified_targets = {r.spec.target for r in skel.results}
        skipped_targets = {s["fault"]["target"] for s in skel.skipped}
        assert classified_targets.isdisjoint(skipped_targets)

    def test_scalar_and_vectorized_backends_agree(self):
        scalar = skeleton_campaign(figure2(), backend="scalar", **PARAMS)
        vector = skeleton_campaign(figure2(), backend="vectorized",
                                   **PARAMS)
        assert _verdicts(scalar) == _verdicts(vector)
        assert scalar.counts() == vector.counts()

    def test_parity_on_a_pipeline_too(self):
        graph = pipeline(3, relays_per_hop=1)
        lid = run_campaign(graph, **PARAMS)
        skel = skeleton_campaign(graph, **PARAMS)
        lid_verdicts = _verdicts(lid)
        for key, verdict in _verdicts(skel).items():
            assert lid_verdicts[key] == verdict

"""Command-line interface: ``repro-lid``.

Subcommands:

* ``analyze``   — static + dynamic analysis of a named topology;
* ``verify``    — run the safety-property campaign;
* ``reproduce`` — regenerate every paper artifact (tables to stdout);
* ``figure1`` / ``figure2`` — print the evolution traces of the paper's
  two figures;
* ``deadlock``  — skeleton liveness check of a named topology;
* ``export``    — emit a topology as DOT or JSON, or a protocol block
  as VHDL.

Topology arguments take the form ``name[:key=value,...]``, e.g.
``ring:shells=3,relays=2`` or ``reconvergent:long=2+1,short=1``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict

from .analysis import analyze
from .bench.runner import EXPERIMENTS, run_all, run_figure1, run_figure2
from .graph import SystemGraph, figure1, figure2, pipeline, reconvergent, ring, tree
from .lid.variant import ProtocolVariant
from .skeleton import check_deadlock


def _parse_topology(spec: str) -> SystemGraph:
    name, _sep, args_text = spec.partition(":")
    params: Dict[str, str] = {}
    if args_text:
        for item in args_text.split(","):
            key, _eq, value = item.partition("=")
            params[key.strip()] = value.strip()
    if name == "figure1":
        return figure1()
    if name == "figure2":
        return figure2(int(params.get("relays", 1)))
    if name == "ring":
        return ring(int(params.get("shells", 2)),
                    relays_per_arc=int(params.get("relays", 1)))
    if name == "tree":
        return tree(int(params.get("depth", 3)),
                    relays_per_hop=int(params.get("relays", 1)))
    if name == "pipeline":
        return pipeline(int(params.get("stages", 3)),
                        relays_per_hop=int(params.get("relays", 1)))
    if name == "reconvergent":
        long_relays = tuple(
            int(x) for x in params.get("long", "1+1").split("+"))
        return reconvergent(long_relays=long_relays,
                            short_relays=int(params.get("short", 1)))
    if name == "composed":
        from .graph import composed

        return composed(
            reconv_imbalance=int(params.get("imbalance", 1)),
            loop_relays=int(params.get("loop_relays", 2)))
    if name == "self_loop":
        from .graph import self_loop

        return self_loop(relays=int(params.get("relays", 1)))
    if name == "butterfly":
        from .graph import butterfly_network

        return butterfly_network(
            lanes=int(params.get("lanes", 8)),
            relays_per_hop=int(params.get("relays", 1)))
    raise SystemExit(
        f"unknown topology {name!r} (choices: figure1, figure2, ring, "
        f"tree, pipeline, reconvergent, composed, self_loop, butterfly)"
    )


def _variant(text: str) -> ProtocolVariant:
    return ProtocolVariant(text)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lid",
        description="Latency-insensitive protocol toolkit "
                    "(Casu & Macchiarulo, DATE 2004 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="analyze a topology")
    p_analyze.add_argument("topology")
    p_analyze.add_argument("--variant", type=_variant,
                           default=ProtocolVariant.CASU,
                           choices=list(ProtocolVariant))

    sub.add_parser("verify", help="run the safety-property campaign")

    p_repro = sub.add_parser("reproduce",
                             help="regenerate all paper artifacts")
    p_repro.add_argument("--experiment", choices=sorted(EXPERIMENTS),
                         help="run a single experiment id")
    p_repro.add_argument("--output", "-o", default=None,
                         help="write one table file per experiment "
                              "into this directory")

    sub.add_parser("figure1", help="print the Figure 1 evolution")
    sub.add_parser("figure2", help="print the Figure 2 sweep")

    p_dead = sub.add_parser("deadlock", help="skeleton liveness check")
    p_dead.add_argument("topology")
    p_dead.add_argument("--variant", type=_variant,
                        default=ProtocolVariant.CASU,
                        choices=list(ProtocolVariant))

    p_live = sub.add_parser(
        "liveness",
        help="exhaustive liveness proof over all environments")
    p_live.add_argument("topology")
    p_live.add_argument("--variant", type=_variant,
                        default=ProtocolVariant.CASU,
                        choices=list(ProtocolVariant))
    p_live.add_argument("--max-states", type=int, default=100_000)

    p_stats = sub.add_parser(
        "stats", help="simulate a topology and print run statistics")
    p_stats.add_argument("topology")
    p_stats.add_argument("--cycles", type=int, default=200)
    p_stats.add_argument("--variant", type=_variant,
                         default=ProtocolVariant.CASU,
                         choices=list(ProtocolVariant))

    p_series = sub.add_parser(
        "series", help="emit a figure-style data series as CSV")
    from .analysis.sweep import SERIES_GENERATORS

    p_series.add_argument("which", choices=sorted(SERIES_GENERATORS))
    p_series.add_argument("--output", "-o", default=None)

    p_export = sub.add_parser("export", help="export artifacts")
    p_export.add_argument(
        "what",
        choices=["dot", "json", "relay-vhdl", "half-relay-vhdl",
                 "shell-vhdl"],
    )
    p_export.add_argument("--topology",
                          help="for dot/json: topology to export")
    p_export.add_argument("--width", type=int, default=8,
                          help="for vhdl: data width")
    p_export.add_argument("--output", "-o", default=None,
                          help="output file (default: stdout)")

    args = parser.parse_args(argv)

    if args.command == "analyze":
        graph = _parse_topology(args.topology)
        print(analyze(graph, variant=args.variant).render())
    elif args.command == "verify":
        from .verify import results_table, verify_all

        print(results_table(verify_all()))
    elif args.command == "reproduce":
        if args.output:
            from .bench.runner import write_results

            for path in write_results(args.output):
                print(f"wrote {path}")
        elif args.experiment:
            description, runner = EXPERIMENTS[args.experiment]
            table, _rows = runner()
            print(f"[{args.experiment}] {description}\n")
            print(table)
        else:
            print(run_all())
    elif args.command == "figure1":
        table, _rows = run_figure1()
        print(table)
    elif args.command == "figure2":
        table, _rows = run_figure2()
        print(table)
    elif args.command == "deadlock":
        graph = _parse_topology(args.topology)
        verdict = check_deadlock(graph, variant=args.variant)
        print(verdict.detail)
        return 0 if verdict.live else 1
    elif args.command == "stats":
        import json as _json

        graph = _parse_topology(args.topology)
        system = graph.elaborate(variant=args.variant)
        system.run(args.cycles)
        print(_json.dumps(system.stats(), indent=2, sort_keys=True))
    elif args.command == "liveness":
        from .verify import verify_system_liveness

        graph = _parse_topology(args.topology)
        result = verify_system_liveness(graph, variant=args.variant,
                                        max_states=args.max_states)
        if result.live:
            print(f"LIVE for all environments: "
                  f"{result.reachable_states} reachable states, "
                  f"{result.transitions} transitions explored, "
                  f"{result.ambiguous_states} with ambiguous stop "
                  f"fixpoints")
        else:
            print(f"STUCK STATE reachable after exploring "
                  f"{result.reachable_states} states: "
                  f"{result.stuck_state}")
        return 0 if result.live else 1
    elif args.command == "series":
        from .analysis.sweep import SERIES_GENERATORS

        series = SERIES_GENERATORS[args.which]()
        text = series.to_csv()
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(text)
        else:
            print(text, end="")
    elif args.command == "export":
        text = _export(args)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(text)
        else:
            print(text)
    return 0


def _export(args) -> str:
    if args.what in ("dot", "json"):
        if not args.topology:
            raise SystemExit("--topology required for dot/json export")
        graph = _parse_topology(args.topology)
        if args.what == "dot":
            from .graph import to_dot

            return to_dot(graph)
        import json as _json

        from .graph import to_dict

        return _json.dumps(to_dict(graph), indent=2, sort_keys=True)
    from .rtl import (
        emit_vhdl,
        full_relay_station_netlist,
        half_relay_station_netlist,
        identity_shell_netlist,
    )

    builders = {
        "relay-vhdl": full_relay_station_netlist,
        "half-relay-vhdl": half_relay_station_netlist,
        "shell-vhdl": identity_shell_netlist,
    }
    return emit_vhdl(builders[args.what](args.width))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

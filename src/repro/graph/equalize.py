"""Path equalization: balancing reconvergent branches with spare relays.

Paper: *"To get the maximum T from a feedforward arrangement, it is
necessary to insert enough spare relay stations to make all converging
paths of the same length (path equalization)."*

Only relay stations count toward the imbalance.  An intermediate shell
adds one cycle of latency **and** one initial valid token (shell outputs
reset valid), so shells are self-compensating; a relay station adds
latency with a void (relay stations reset empty), and it is exactly the
relay-count difference ``i`` between branches that injects ``i`` voids
per period (see DESIGN.md §4 and the EXP-T2 bench).

The algorithm is the classic slack-distribution pass: compute for every
node the maximum relay-depth over all source-to-node paths, then pad
every in-edge whose path arrives early.  It is exact for DAGs; graphs
with loops are equalized on their acyclic condensation only (loops set
their own throughput, which equalization cannot raise — the paper makes
the same observation).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from ..errors import AnalysisError
from .model import Edge, SystemGraph


def _loop_edge_indices(graph: SystemGraph) -> set:
    """Indices of edges lying inside a strongly connected component.

    These are the feedback arcs: equalization never pads them (a loop
    sets its own throughput, which spare relay stations only lower).
    """
    g = nx.DiGraph()
    g.add_nodes_from(graph.nodes)
    for edge in graph.edges:
        g.add_edge(edge.src, edge.dst)
    component_of: Dict[str, int] = {}
    for index, comp in enumerate(nx.strongly_connected_components(g)):
        for node in comp:
            component_of[node] = index
    on_loop = set()
    for idx, edge in enumerate(graph.edges):
        if edge.src == edge.dst:
            on_loop.add(idx)
        elif component_of[edge.src] == component_of[edge.dst]:
            on_loop.add(idx)
    return on_loop


def relay_depths(graph: SystemGraph, strict: bool = True) -> Dict[str, int]:
    """Maximum relay count over all paths from any source to each node.

    With ``strict=True`` (default) a cyclic graph raises
    :class:`AnalysisError` — depth along a cycle is ill-defined.  With
    ``strict=False`` feedback arcs (edges inside a strongly connected
    component) are ignored, giving depths on the acyclic condensation,
    which is what loop-aware equalization needs.
    """
    loop_edges = _loop_edge_indices(graph)
    if strict and loop_edges:
        raise AnalysisError("relay depths need an acyclic graph")
    g = nx.MultiDiGraph()
    g.add_nodes_from(graph.nodes)
    for idx, edge in enumerate(graph.edges):
        if idx in loop_edges:
            continue
        g.add_edge(edge.src, edge.dst, w=edge.relay_count)
    depth: Dict[str, int] = {}
    for node in nx.topological_sort(g):
        incoming = [
            depth[u] + data["w"]
            for u, _v, data in g.in_edges(node, data=True)
        ]
        depth[node] = max(incoming) if incoming else 0
    return depth


def imbalance(graph: SystemGraph) -> int:
    """Total spare relay stations needed to fully equalize the graph."""
    return sum(extra for _e, extra in equalization_plan(graph))


def equalization_plan(graph: SystemGraph) -> List[Tuple[Edge, int]]:
    """For each edge, how many spare relay stations to append.

    The plan pads every in-edge of every node up to the node's maximum
    relay depth, which makes all converging paths carry the same relay
    count — the paper's path-equalization recipe.  Feedback arcs are
    left untouched (loops dictate their own throughput; padding them
    only lowers S/(S+R)).
    """
    depth = relay_depths(graph, strict=False)
    loop_edges = _loop_edge_indices(graph)
    plan: List[Tuple[Edge, int]] = []
    for idx, edge in enumerate(graph.edges):
        if idx in loop_edges:
            continue
        slack = depth[edge.dst] - depth[edge.src] - edge.relay_count
        if slack < 0:  # pragma: no cover - depth is a max, so slack >= 0
            raise AnalysisError(
                f"negative slack on {edge.src}->{edge.dst}: depth map broken"
            )
        if slack > 0:
            plan.append((edge, slack))
    return plan


def equalize(graph: SystemGraph, name: str | None = None) -> SystemGraph:
    """Return a copy of *graph* with spare full relay stations inserted.

    After equalization every reconvergent branch carries the same number
    of relay stations, so the feed-forward part of the system reaches
    throughput 1 (bench EXP-T3 verifies before/after by simulation).
    """
    balanced = graph.copy(name or f"{graph.name}_equalized")
    plan = equalization_plan(graph)
    keyed = {id(edge): extra for edge, extra in plan}
    for original, copied in zip(graph.edges, balanced.edges):
        extra = keyed.get(id(original), 0)
        if extra:
            copied.relays = copied.relays + ("full",) * extra
    return balanced

"""CLI contract for ``repro-lid inject``: reproducible reports."""

import json

import pytest

from repro.cli import main


class TestInjectCommand:
    def test_smoke_table(self, capsys):
        assert main(["inject", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "fault campaign: figure2" in out
        assert "detected=" in out and "masked=" in out

    def test_json_byte_identical_across_runs(self, tmp_path, capsys):
        argv = ["inject", "--topology", "feedback", "--faults",
                "stop,void", "--cycles", "200", "--seed", "7",
                "--format", "json"]
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(argv + ["-o", str(first)]) == 0
        assert main(argv + ["-o", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        payload = json.loads(first.read_text())
        assert payload["schema"] == "repro-inject-campaign/v2"
        assert payload["seed"] == 7
        assert len(payload["experiments"]) == payload["samples"] == 64
        capsys.readouterr()

    def test_seed_accepted_before_subcommand(self, tmp_path, capsys):
        after = tmp_path / "after.json"
        before = tmp_path / "before.json"
        assert main(["inject", "--smoke", "--format", "json",
                     "--seed", "5", "-o", str(after)]) == 0
        assert main(["--seed", "5", "inject", "--smoke", "--format",
                     "json", "-o", str(before)]) == 0
        assert after.read_bytes() == before.read_bytes()
        capsys.readouterr()

    def test_seed_changes_fault_sample(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(["inject", "--smoke", "--format", "json",
                     "--seed", "1", "-o", str(a)]) == 0
        assert main(["inject", "--smoke", "--format", "json",
                     "--seed", "2", "-o", str(b)]) == 0
        assert a.read_bytes() != b.read_bytes()
        capsys.readouterr()

    def test_output_summary_line(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert main(["inject", "--smoke", "--format", "json",
                     "--seed", "7", "-o", str(path)]) == 0
        out = capsys.readouterr().out
        assert "12 experiments" in out and "(seed 7)" in out

    def test_skeleton_engine(self, tmp_path, capsys):
        path = tmp_path / "skel.json"
        assert main(["inject", "--smoke", "--engine", "skeleton",
                     "--format", "json", "-o", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["engine"] == "skeleton"
        # Interior wire faults are not expressible on the skeleton;
        # every fault is either classified or explicitly skipped.
        assert (len(payload["experiments"]) + len(payload["skipped"])
                == 12)
        for skip in payload["skipped"]:
            assert "boundary" in skip["reason"]
        capsys.readouterr()

    def test_strict_flag_detects(self, capsys):
        assert main(["inject", "--topology", "feedback", "--faults",
                     "stop", "--cycles", "100", "--samples", "48",
                     "--seed", "7", "--strict", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["strict"] is True
        assert payload["summary"]["detected"] > 0

    def test_bitsim_backend_bytes_match_scalar(self, tmp_path, capsys):
        argv = ["inject", "--engine", "skeleton", "--topology",
                "feedback", "--faults", "stop,void", "--cycles", "100",
                "--samples", "48", "--seed", "7", "--format", "json"]
        bitsim = tmp_path / "bitsim.json"
        scalar = tmp_path / "scalar.json"
        assert main(argv + ["--backend", "bitsim",
                            "-o", str(bitsim)]) == 0
        assert main(argv + ["--backend", "scalar",
                            "-o", str(scalar)]) == 0
        assert bitsim.read_bytes() == scalar.read_bytes()
        capsys.readouterr()

    def test_window_flag(self, capsys):
        assert main(["inject", "--smoke", "--window", "8:16",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["window"] == [8, 16]
        for exp in payload["experiments"]:
            assert 8 <= exp["fault"]["cycle"] < 16

    def test_metrics_out_records_verdicts(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["inject", "--smoke", "--metrics-out",
                     str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-metrics/v1"
        verdict_counters = {
            name: entry["value"]
            for name, entry in payload["metrics"].items()
            if name.startswith("inject/verdict/")}
        assert verdict_counters
        assert sum(verdict_counters.values()) == 12
        capsys.readouterr()

    def test_bad_fault_class_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["inject", "--faults", "cosmic", "--smoke"])

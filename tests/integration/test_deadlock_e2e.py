"""Integration: the paper's deadlock methodology end to end.

Static classification -> skeleton simulation to transient extinction ->
cure by low-intrusive relay substitution -> re-check.  Also verifies the
skeleton's verdicts against full data-carrying simulation.
"""

import pytest

from repro.graph import (
    cure_deadlock,
    figure2,
    promote_half_relays,
    random_loopy,
    ring,
)
from repro.lid.variant import ProtocolVariant
from repro.skeleton import SkeletonSim, check_deadlock, is_deadlock_free_class

CARLONI = ProtocolVariant.CARLONI
CASU = ProtocolVariant.CASU


class TestMethodologyPipeline:
    def test_static_then_dynamic_then_cure(self):
        # 1. A loop with a half relay station: no static guarantee.
        hazard = ring(2, relays_per_arc=[["half"], ["full"]])
        assert is_deadlock_free_class(hazard) is None

        # 2. Skeleton simulation to transient extinction shows the
        #    deadlock under the original stop discipline.
        verdict = check_deadlock(hazard, variant=CARLONI)
        assert verdict.deadlocked

        # 3. Cure: substitute the loop half relay station.
        cured = promote_half_relays(hazard, only_loops=True)
        assert is_deadlock_free_class(cured) == "all-full-relay-stations"
        assert check_deadlock(cured, variant=CARLONI).live

    def test_cure_deadlock_automated(self):
        hazard = ring(2, relays_per_arc=[["half"], ["half"]])
        # Under the refined protocol the skeleton stays live, so the
        # automated cure declines to touch the graph.
        cured, promotions = cure_deadlock(hazard)
        assert promotions == []

    def test_verdict_matches_full_simulation(self):
        hazard = ring(2, relays_per_arc=[["half"], ["full"]])
        verdict = check_deadlock(hazard, variant=CARLONI)
        system = hazard.elaborate(variant=CARLONI, strict=True)
        system.run(60)
        made_progress = any(
            shell.fire_count > 5 for shell in system.shells.values())
        assert made_progress != verdict.deadlocked

    def test_live_verdict_matches_full_simulation(self):
        graph = figure2()
        verdict = check_deadlock(graph)
        system = graph.elaborate()
        system.run(60)
        assert verdict.live
        assert all(s.fire_count >= 20 for s in system.shells.values())


class TestRandomSweep:
    """Paper claims, fuzzed: feed-forward and all-full systems never
    deadlock; with the refined protocol none of our random systems do."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_full_loops_live(self, seed):
        graph = random_loopy(seed, shells=4)
        for variant in (CASU, CARLONI):
            assert check_deadlock(graph, variant=variant).live, \
                (seed, variant)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_half_loops_live_under_refined(self, seed):
        graph = random_loopy(seed, shells=4, half_probability=0.7,
                             ensure_full_on_loops=False)
        verdict = check_deadlock(graph, variant=CASU)
        assert not verdict.deadlocked, (seed, verdict.detail)

    @pytest.mark.parametrize("seed", range(8))
    def test_backpressure_never_kills_legal_systems(self, seed):
        graph = random_loopy(seed, shells=3)
        verdict = check_deadlock(
            graph, sink_patterns={"out": (True, True, False)})
        assert verdict.live

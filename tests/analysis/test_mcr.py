"""Tests for the minimum-cycle-ratio analyzer."""

from fractions import Fraction

import pytest

from repro.analysis import min_cycle_ratio_throughput
from repro.analysis.mcr import _best_fraction_between
from repro.graph import (
    composed,
    figure1,
    figure2,
    loop_with_tail,
    pipeline,
    random_dag,
    random_loopy,
    reconvergent,
    ring,
    tree,
)
from repro.skeleton import system_throughput


class TestKnownTopologies:
    @pytest.mark.parametrize("graph,expected", [
        (pipeline(3), Fraction(1)),
        (tree(2), Fraction(1)),
        (figure1(), Fraction(4, 5)),
        (figure2(), Fraction(1, 2)),
        (ring(2, relays_per_arc=2), Fraction(1, 3)),
        (reconvergent(long_relays=(2, 1), short_relays=1), Fraction(2, 3)),
        (loop_with_tail(), Fraction(1, 2)),
        (composed(), Fraction(1, 3)),
    ])
    def test_throughput(self, graph, expected):
        assert min_cycle_ratio_throughput(graph).throughput == expected

    def test_critical_cycle_names_loop(self):
        result = min_cycle_ratio_throughput(figure2())
        assert result.critical_cycle  # non-empty on a binding loop
        assert any("S0" in n or "S1" in n or "rs" in n
                   for n in result.critical_cycle)

    def test_unbound_system_has_empty_cycle(self):
        result = min_cycle_ratio_throughput(pipeline(4))
        assert result.critical_cycle == []


class TestAgainstSimulation:
    """MCR must agree with skeleton simulation on random topologies."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_dags(self, seed):
        graph = random_dag(seed, shells=5)
        assert min_cycle_ratio_throughput(graph).throughput == \
            system_throughput(graph)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_loopy(self, seed):
        graph = random_loopy(seed, shells=4)
        assert min_cycle_ratio_throughput(graph).throughput == \
            system_throughput(graph)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_dags_with_half_relays(self, seed):
        graph = random_dag(seed, shells=5, half_probability=0.5)
        assert min_cycle_ratio_throughput(graph).throughput == \
            system_throughput(graph)


class TestSternBrocot:
    def test_finds_simple_fraction(self):
        assert _best_fraction_between(
            Fraction(3, 10), Fraction(2, 5), 10) == Fraction(1, 3)

    def test_exact_lower_bound_included(self):
        assert _best_fraction_between(
            Fraction(1, 2), Fraction(51, 100), 10) == Fraction(1, 2)

    def test_narrow_interval(self):
        target = Fraction(4, 5)
        lo = target - Fraction(1, 1000)
        hi = target + Fraction(1, 1000)
        assert _best_fraction_between(lo, hi, 20) == target

"""Runtime protocol monitors: hardware assertions for live simulations.

The model checker (:mod:`repro.verify`) proves the block *specs* safe;
these monitors watch the *running* system and raise
:class:`~repro.errors.ProtocolViolationError` the moment any channel
breaks a protocol invariant — the simulation counterpart of SVA
assertions bound to every channel:

* **hold**: a valid token presented under an asserted stop must be
  presented unchanged in the next cycle;
* **no-phantom-drop**: a valid token may only disappear in a cycle in
  which it was consumable (no stop);
* **stop-shape** (optional, strict): stop must never be asserted on a
  channel whose token is void when the consumer follows the refined
  protocol.

Attach with :func:`watch_system` (every channel) or by constructing
:class:`ChannelMonitor` for specific channels.  Monitors are pure
observers — they never drive signals — so they cannot perturb the run.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ProtocolViolationError
from ..kernel.scheduler import Simulator
from .channel import Channel
from .token import Token
from .variant import ProtocolVariant


class ChannelMonitor:
    """Observer asserting per-channel protocol invariants every cycle."""

    def __init__(self, channel: Channel, strict_stop_shape: bool = False,
                 variant: Optional[ProtocolVariant] = None):
        self.channel = channel
        self.strict_stop_shape = strict_stop_shape
        self.variant = variant
        self._prev_token: Optional[Token] = None
        self._prev_stop = False
        self.cycles_observed = 0
        self.tokens_seen = 0

    def attach(self, sim: Simulator) -> "ChannelMonitor":
        sim.add_cycle_hook(self._sample)
        return self

    def _sample(self, sim: Simulator) -> None:
        token = self.channel.read()
        stop = self.channel.stop_asserted()

        if self._prev_token is not None:
            held = self._prev_token.valid and self._prev_stop
            if held and token != self._prev_token:
                raise ProtocolViolationError(
                    f"channel {self.channel.name!r}: token "
                    f"{self._prev_token} was stopped at cycle "
                    f"{sim.cycle - 1} but cycle {sim.cycle} presents "
                    f"{token} — hold violated"
                )

        if self.strict_stop_shape and stop and not token.valid \
                and self.variant is ProtocolVariant.CASU:
            raise ProtocolViolationError(
                f"channel {self.channel.name!r}: stop asserted on a void "
                f"token at cycle {sim.cycle}; the refined protocol "
                f"discards stops on invalid signals"
            )

        if token.valid:
            self.tokens_seen += 1
        self._prev_token = token
        self._prev_stop = stop
        self.cycles_observed += 1


class StreamMonitor:
    """Observer asserting that a channel's consumed payloads are fresh.

    Detects duplication: the same (consumed) token appearing in two
    consecutive consumable cycles.  Legitimate repeats under stop are
    fine — only back-to-back consumption of an identical token with no
    intervening hold is flagged when ``forbid_repeats`` is set (useful
    for counting streams, where payloads are strictly increasing).
    """

    def __init__(self, channel: Channel, forbid_repeats: bool = False):
        self.channel = channel
        self.forbid_repeats = forbid_repeats
        self.consumed: List = []

    def attach(self, sim: Simulator) -> "StreamMonitor":
        sim.add_cycle_hook(self._sample)
        return self

    def _sample(self, sim: Simulator) -> None:
        token = self.channel.read()
        stop = self.channel.stop_asserted()
        if token.valid and not stop:
            if (self.forbid_repeats and self.consumed
                    and self.consumed[-1] == token.value):
                raise ProtocolViolationError(
                    f"channel {self.channel.name!r}: payload "
                    f"{token.value!r} consumed twice in a row at cycle "
                    f"{sim.cycle}"
                )
            self.consumed.append(token.value)


def watch_system(system, strict_stop_shape: bool = False
                 ) -> List[ChannelMonitor]:
    """Attach a :class:`ChannelMonitor` to every channel of *system*.

    Call before :meth:`~repro.lid.system.LidSystem.run`; returns the
    monitors (their counters are handy in tests).  The system's variant
    governs the optional stop-shape check.
    """
    monitors = []
    for channel in system.channels:
        monitor = ChannelMonitor(
            channel,
            strict_stop_shape=strict_stop_shape,
            variant=system.variant,
        )
        monitor.attach(system.sim)
        monitors.append(monitor)
    return monitors

"""Trace exporters: JSONL and Chrome-trace (Perfetto) formats.

Two serializations of an :class:`~repro.obs.events.EventStream`:

* **JSONL** — one flat JSON object per line, lossless and append-
  friendly; :func:`read_jsonl` round-trips it back into events.
* **Chrome trace** — the ``chrome://tracing`` / Perfetto JSON Array
  format.  Simulation cycles map to microseconds (1 cycle = 1 us on the
  trace timebase), per-category tracks are modelled as thread ids, and
  profiler phases become duration (``ph="X"``) slices on a dedicated
  track.  The output is a standard ``{"traceEvents": [...]}`` object,
  directly loadable by Perfetto's UI.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Optional, Union

from .events import Event, EventStream
from .profiler import Profiler

PathOrFile = Union[str, IO[str]]

#: Stable thread-id assignment for the Chrome-trace rendering: one
#: track per event category, in taxonomy order.
_CATEGORY_TIDS = {
    "token": 1,
    "stall": 2,
    "relay": 3,
    "monitor": 4,
    "fixpoint": 5,
    "run": 6,
    "phase": 7,
    "exec": 9,
}
_OTHER_TID = 15
_PROFILER_TID = 8

#: Worker lanes in merged traces start here: ``tid = 1000 + chunk``,
#: far above the per-category tids so the two namespaces cannot clash.
_WORKER_TID_BASE = 1000


def _open(target: PathOrFile, write: bool):
    if isinstance(target, str):
        return open(target, "w" if write else "r", encoding="utf-8"), True
    return target, False


# -- JSONL ---------------------------------------------------------------


def write_jsonl(events: Iterable[Event], target: PathOrFile) -> int:
    """Write events as JSON Lines; returns the number written.

    When *events* is an :class:`EventStream` (rather than a bare
    iterable), a trailing ``{"meta": "eventstream", ...}`` record is
    appended carrying the stream's ``emitted``/``dropped``/``retained``
    accounting — ring-buffer truncation used to be silent in the
    export.  The returned count covers events only, and
    :func:`read_jsonl` skips meta records, so the event round-trip is
    unchanged.
    """
    fh, owned = _open(target, write=True)
    count = 0
    try:
        for event in events:
            fh.write(json.dumps(event.to_dict(), sort_keys=True))
            fh.write("\n")
            count += 1
        if isinstance(events, EventStream):
            fh.write(json.dumps({
                "meta": "eventstream",
                "emitted": events.emitted,
                "dropped": events.dropped,
                "retained": len(events),
            }, sort_keys=True))
            fh.write("\n")
    finally:
        if owned:
            fh.close()
    return count


def read_jsonl(target: PathOrFile) -> List[Event]:
    """Parse a JSONL trace back into :class:`Event` records.

    Trailing ``{"meta": ...}`` accounting records (see
    :func:`write_jsonl`) are skipped: the function returns events only,
    so ``read_jsonl(write_jsonl(stream)) == stream.events()`` holds.
    """
    fh, owned = _open(target, write=False)
    try:
        events = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "meta" in record and "cycle" not in record:
                continue
            events.append(Event.from_dict(record))
        return events
    finally:
        if owned:
            fh.close()


# -- Chrome trace --------------------------------------------------------


def to_chrome_trace(
    events: Iterable[Event],
    profiler: Optional[Profiler] = None,
    process_name: str = "repro-lid",
) -> Dict[str, Any]:
    """Build a Chrome Trace Event Format object.

    Simulation events become instant events (``ph="i"``) at
    ``ts = cycle`` microseconds on per-category tracks; profiler phases
    become one ``ph="X"`` slice each (duration = accumulated seconds)
    laid end to end on a separate track, so relative phase cost is
    visible at a glance.

    When *events* is an :class:`EventStream`, its ``emitted`` /
    ``dropped`` accounting is surfaced in ``otherData`` so ring-buffer
    truncation is visible in the trace viewer.
    """
    stream = events if isinstance(events, EventStream) else None
    trace_events: List[Dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "tid": 0,
        "args": {"name": process_name},
    }]
    used_tids: Dict[int, str] = {}
    for event in events:
        tid = _CATEGORY_TIDS.get(event.category, _OTHER_TID)
        used_tids.setdefault(tid, event.category)
        trace_events.append({
            "name": f"{event.category}:{event.name}",
            "cat": event.category,
            "ph": "i",
            "s": "t",
            "ts": float(event.cycle),
            "pid": 0,
            "tid": tid,
            "args": dict(event.fields),
        })
    if profiler is not None:
        cursor = 0.0
        used_tids.setdefault(_PROFILER_TID, "profiler")
        for name, calls, seconds in profiler.phases():
            duration_us = seconds * 1e6
            trace_events.append({
                "name": name,
                "cat": "profiler",
                "ph": "X",
                "ts": cursor,
                "dur": duration_us,
                "pid": 0,
                "tid": _PROFILER_TID,
                "args": {"calls": calls, "seconds": seconds},
            })
            cursor += duration_us
    for tid, label in sorted(used_tids.items()):
        trace_events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": label},
        })
    other_data: Dict[str, Any] = {"timebase": "1 simulation cycle = 1 us"}
    if stream is not None:
        other_data["emitted"] = stream.emitted
        other_data["dropped"] = stream.dropped
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": other_data,
    }


# -- merged worker traces ------------------------------------------------


def merged_chrome_trace(
    parent: Optional[EventStream],
    traces: Iterable[Any],
    profiler: Optional[Profiler] = None,
    process_name: str = "repro-lid",
    run_id: Optional[str] = None,
) -> Dict[str, Any]:
    """One Chrome trace from a parent stream plus worker chunk traces.

    The parent's events (and optional profiler) render exactly as in
    :func:`to_chrome_trace` on ``pid 0``; every
    :class:`repro.exec.pool.WorkerTrace` becomes its own **lane** — the
    ``(pid, tid)`` pair of the worker process id and
    ``1000 + chunk_index`` — with ``process_name`` / ``thread_name``
    metadata events naming it.  Chunk indices are deterministic (they
    follow the submission order of ``map_deterministic``), so with 4+
    chunks a ``--jobs 4`` campaign always yields 4+ distinct lanes even
    if a fast worker served several chunks.

    Event order within a lane is the worker's emission order (the trace
    carries the events as recorded, never re-sorted), and drop
    accounting survives the merge: ``otherData["dropped"]`` is the
    parent's drops plus every worker's.
    """
    payload = (to_chrome_trace(parent, profiler=profiler,
                               process_name=process_name)
               if parent is not None
               else to_chrome_trace((), profiler=profiler,
                                    process_name=process_name))
    trace_events = payload["traceEvents"]
    emitted = parent.emitted if parent is not None else 0
    dropped = parent.dropped if parent is not None else 0
    lanes = 0
    pids = set()
    for trace in sorted(traces, key=lambda t: t.chunk_index):
        tid = _WORKER_TID_BASE + trace.chunk_index
        pid = trace.pid
        lanes += 1
        pids.add(pid)
        emitted += trace.emitted
        dropped += trace.dropped
        if pid not in (e["pid"] for e in trace_events
                       if e.get("ph") == "M"
                       and e["name"] == "process_name"):
            trace_events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{process_name} worker pid={pid}"},
            })
        trace_events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": f"chunk {trace.chunk_index} "
                             f"({trace.units} unit(s))"},
        })
        for record in trace.events:
            trace_events.append({
                "name": f"{record['category']}:{record['name']}",
                "cat": record["category"],
                "ph": "i",
                "s": "t",
                "ts": float(record["cycle"]),
                "pid": pid,
                "tid": tid,
                "args": {k: v for k, v in record.items()
                         if k not in ("cycle", "category", "name")},
            })
        cursor = 0.0
        for name, calls, seconds in trace.phases:
            duration_us = seconds * 1e6
            trace_events.append({
                "name": name,
                "cat": "profiler",
                "ph": "X",
                "ts": cursor,
                "dur": duration_us,
                "pid": pid,
                "tid": tid,
                "args": {"calls": calls, "seconds": seconds},
            })
            cursor += duration_us
    payload["otherData"]["emitted"] = emitted
    payload["otherData"]["dropped"] = dropped
    payload["otherData"]["worker_lanes"] = lanes
    payload["otherData"]["worker_pids"] = len(pids)
    if run_id is not None:
        payload["otherData"]["run_id"] = run_id
    return payload


def write_merged_chrome_trace(
    parent: Optional[EventStream],
    traces: Iterable[Any],
    target: PathOrFile,
    profiler: Optional[Profiler] = None,
    process_name: str = "repro-lid",
    run_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Serialize :func:`merged_chrome_trace` to *target*."""
    payload = merged_chrome_trace(parent, traces, profiler=profiler,
                                  process_name=process_name,
                                  run_id=run_id)
    fh, owned = _open(target, write=True)
    try:
        json.dump(payload, fh, sort_keys=True)
    finally:
        if owned:
            fh.close()
    return payload


def write_chrome_trace(
    events: Iterable[Event],
    target: PathOrFile,
    profiler: Optional[Profiler] = None,
    process_name: str = "repro-lid",
) -> Dict[str, Any]:
    """Serialize :func:`to_chrome_trace` to *target*; returns the dict."""
    payload = to_chrome_trace(events, profiler=profiler,
                              process_name=process_name)
    fh, owned = _open(target, write=True)
    try:
        json.dump(payload, fh, sort_keys=True)
    finally:
        if owned:
            fh.close()
    return payload


def export_stream(
    stream: EventStream,
    target: PathOrFile,
    fmt: str = "jsonl",
    profiler: Optional[Profiler] = None,
) -> None:
    """Convenience dispatcher used by the CLI (``--format`` flag)."""
    if fmt == "jsonl":
        write_jsonl(stream, target)
    elif fmt == "chrome":
        write_chrome_trace(stream, target, profiler=profiler)
    else:
        raise ValueError(f"unknown trace format {fmt!r} "
                         f"(choices: jsonl, chrome)")

"""Queued shells: the other place to put the minimum memory.

The paper's central implementation argument: the stop signal cannot be
back-propagated combinationally forever, so *at least one memory element
to save it* must sit between two shells.  The paper's choice is to keep
the shell simple and put the memory in relay stations.  The earlier
Carloni methodology made the opposite choice: shells with **input
queues** whose (registered) stop means "queue full".

:class:`QueuedShell` implements that alternative.  Each input port gets
a small FIFO (depth >= 2); the stop asserted to the upstream is a
registered function of occupancy with one slot held in reserve to
absorb the token that is already in flight when the stop is first seen
— exactly the full relay station's skid argument, relocated into the
shell.  Consequences, all exercised by the tests:

* two queued shells may be connected **directly** (the lint recognizes
  the registered stop and waives the relay-station rule);
* a queue adds one cycle of latency, like a relay station — loops of
  queued shells obey T = S/(S+Q) with Q counting queue stages;
* depth-2 queues sustain full throughput; depth-1 queues, like the
  registered-stop half station, cannot (the two-register minimum,
  again).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict

from ..errors import StructuralError
from .shell import Shell
from .token import Token, VOID
from .variant import DEFAULT_VARIANT, ProtocolVariant


class QueuedShell(Shell):
    """Shell with per-input FIFOs and registered back pressure.

    Parameters
    ----------
    queue_depth:
        FIFO capacity per input port (>= 1).  Depth 1 degrades
        throughput to 1/2 under streaming (no slot to overlap refill
        with drain); depth 2 is the full-rate minimum.
    """

    def __init__(self, name: str, pearl,
                 variant: ProtocolVariant = DEFAULT_VARIANT,
                 queue_depth: int = 2):
        super().__init__(name, pearl, variant=variant)
        if queue_depth < 1:
            raise StructuralError(
                f"{name}: queue_depth must be >= 1")
        self.queue_depth = queue_depth
        self._queues: Dict[str, Deque] = {}
        self._stop_regs: Dict[str, bool] = {}

    # -- simulation ---------------------------------------------------------

    def reset(self) -> None:
        super().reset()
        self._queues = {
            port: deque() for port in self.pearl.input_ports
        }
        self._stop_regs = {
            port: False for port in self.pearl.input_ports
        }

    def publish(self) -> None:
        super().publish()
        for port, chan in self.input_channels.items():
            if self._stop_regs[port]:
                chan.set_stop(True)

    def _inputs_ready(self) -> bool:
        return all(len(q) > 0 for q in self._queues.values())

    def _can_fire(self) -> bool:
        if not self._inputs_ready():
            return False
        for chans in self._outputs.values():
            for chan in chans:
                if self.variant.output_blocked(
                        chan.stop_asserted(), self._out_regs[chan].valid):
                    return False
        return True

    def settle(self) -> None:
        # No combinational back pressure: the registered stop published
        # at cycle start is the whole story on the input side.
        return

    def tick(self) -> None:
        fired = self._can_fire()
        if fired:
            payloads = {
                port: self._queues[port].popleft()
                for port in self.pearl.input_ports
            }
            produced = self.pearl.step(payloads)
            for port, chans in self._outputs.items():
                token = Token(produced[port])
                for chan in chans:
                    self._out_regs[chan] = token
            self.fired_cycles.append(self.cycle)
            self.fire_count += 1
        else:
            for chans in self._outputs.values():
                for chan in chans:
                    reg = self._out_regs[chan]
                    if reg.valid and chan.stop_asserted():
                        continue
                    self._out_regs[chan] = VOID

        # Enqueue arrivals and update the registered stops.  Stop is
        # asserted exactly while the queue is full; because the
        # upstream reacts one cycle late, the *last* slot plays the
        # role of the relay station's skid register — it catches the
        # token already in flight when the queue first fills.
        for port, chan in self.input_channels.items():
            queue = self._queues[port]
            token = chan.read()
            accepted = token.valid and not self._stop_regs[port]
            if accepted:
                if len(queue) >= self.queue_depth:
                    from ..errors import ProtocolViolationError

                    raise ProtocolViolationError(
                        f"{self.name}.{port}: queue overflow — the "
                        f"skid-slot invariant was violated"
                    )
                queue.append(token.value)
            self._stop_regs[port] = len(queue) >= self.queue_depth

    # -- metrics -------------------------------------------------------------

    def queue_occupancy(self) -> Dict[str, int]:
        return {port: len(q) for port, q in self._queues.items()}

"""Unit tests for arithmetic pearls."""

import pytest

from repro.pearls import Adder, Alu, Identity, Maximum, Multiplier, Scaler, Subtractor


class TestIdentity:
    def test_reset_initial(self):
        pearl = Identity(initial=7)
        assert pearl.reset() == {"out": 7}

    def test_step_forwards(self):
        pearl = Identity()
        pearl.reset()
        assert pearl.step({"a": 42}) == {"out": 42}

    def test_ports(self):
        pearl = Identity()
        assert pearl.input_ports == ("a",)
        assert pearl.output_ports == ("out",)


class TestBinaryOps:
    @pytest.mark.parametrize("cls,a,b,expected", [
        (Adder, 2, 3, 5),
        (Subtractor, 7, 3, 4),
        (Multiplier, 4, 5, 20),
        (Maximum, 2, 9, 9),
    ])
    def test_step(self, cls, a, b, expected):
        pearl = cls()
        pearl.reset()
        assert pearl.step({"a": a, "b": b}) == {"out": expected}

    @pytest.mark.parametrize("cls", [Adder, Subtractor, Multiplier, Maximum])
    def test_two_input_ports(self, cls):
        assert cls().input_ports == ("a", "b")

    def test_adder_initial(self):
        assert Adder(initial=9).reset() == {"out": 9}


class TestScaler:
    def test_gain(self):
        pearl = Scaler(gain=3)
        pearl.reset()
        assert pearl.step({"a": 5}) == {"out": 15}

    def test_float_gain(self):
        pearl = Scaler(gain=0.5)
        pearl.reset()
        assert pearl.step({"a": 4}) == {"out": 2.0}


class TestAlu:
    @pytest.mark.parametrize("op,expected", [
        ("add", 8), ("sub", 4), ("mul", 12), ("min", 2), ("max", 6),
    ])
    def test_operations(self, op, expected):
        pearl = Alu()
        pearl.reset()
        assert pearl.step({"op": op, "a": 6, "b": 2}) == {"out": expected}

    def test_unknown_op_raises(self):
        pearl = Alu()
        pearl.reset()
        with pytest.raises(ValueError, match="unknown op"):
            pearl.step({"op": "xor", "a": 1, "b": 2})

    def test_three_inputs(self):
        assert Alu().input_ports == ("op", "a", "b")


class TestClone:
    def test_clone_is_independent(self):
        from repro.pearls import Accumulator

        pearl = Accumulator()
        pearl.reset()
        pearl.step({"a": 5})
        twin = pearl.clone()
        pearl.step({"a": 1})
        assert twin._acc == 5
        assert pearl._acc == 6

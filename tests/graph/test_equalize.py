"""Tests for path equalization (EXP-T3's unit-level backing)."""

from fractions import Fraction

import pytest

from repro.errors import AnalysisError
from repro.graph import (
    equalization_plan,
    equalize,
    figure1,
    imbalance,
    pipeline,
    reconvergent,
    relay_depths,
    ring,
)
from repro.skeleton import system_throughput


class TestRelayDepths:
    def test_pipeline_depths_accumulate(self):
        g = pipeline(3, relays_per_hop=2)
        depth = relay_depths(g)
        assert depth["S0"] == 0
        assert depth["S1"] == 2
        assert depth["S2"] == 4

    def test_reconvergent_takes_max(self):
        g = figure1()
        depth = relay_depths(g)
        assert depth["C"] == 2  # the long branch

    def test_cyclic_rejected(self):
        g = ring(2, relays_per_arc=1)
        with pytest.raises(AnalysisError):
            relay_depths(g)


class TestPlan:
    def test_balanced_graph_empty_plan(self):
        g = reconvergent(long_relays=(1, 1), short_relays=2)
        assert equalization_plan(g) == []
        assert imbalance(g) == 0

    def test_figure1_needs_one_station(self):
        g = figure1()
        plan = equalization_plan(g)
        assert imbalance(g) == 1
        ((edge, extra),) = plan
        assert extra == 1
        assert (edge.src, edge.dst) == ("A", "C")  # the short branch

    def test_plan_scales_with_imbalance(self):
        g = reconvergent(long_relays=(3, 1), short_relays=1)
        assert imbalance(g) == 3


class TestEqualize:
    @pytest.mark.parametrize("long_relays,short", [
        ((1, 1), 1),
        ((2, 1), 1),
        ((2, 2), 1),
        ((1, 1, 1), 1),
        ((3, 1), 2),
    ])
    def test_restores_full_throughput(self, long_relays, short):
        g = reconvergent(long_relays=long_relays, short_relays=short)
        before = system_throughput(g)
        balanced = equalize(g)
        after = system_throughput(balanced)
        assert after == Fraction(1)
        assert before <= after

    def test_original_untouched(self):
        g = figure1()
        equalize(g)
        assert g.relay_count() == 3

    def test_equalized_name(self):
        balanced = equalize(figure1())
        assert balanced.name.endswith("_equalized")

    def test_idempotent(self):
        balanced = equalize(figure1())
        again = equalize(balanced)
        assert again.relay_count() == balanced.relay_count()

    def test_preserves_latency_equivalence(self):
        g = figure1()
        system = equalize(g).elaborate()
        system.run(30)
        from repro.lid.reference import is_prefix

        ref = system.reference_outputs(30)["out"]
        assert is_prefix(system.sinks["out"].payloads, ref)

"""Tests for deadlock-cure transforms."""

import pytest

from repro.errors import StructuralError
from repro.graph import (
    cure_deadlock,
    figure1,
    half_relays_on_loops,
    insert_relay,
    pipeline,
    promote_half_relays,
    ring,
)


def hazardous_ring():
    return ring(2, relays_per_arc=[["half"], ["half"]])


class TestHazardCensus:
    def test_clean_feedforward_empty(self):
        assert half_relays_on_loops(figure1()) == []

    def test_half_in_feedforward_not_flagged(self):
        g = pipeline(3)
        for edge in g.edges:
            if edge.relays:
                edge.relays = ("half",) * len(edge.relays)
        assert half_relays_on_loops(g) == []

    def test_loop_halves_flagged(self):
        hazards = half_relays_on_loops(hazardous_ring())
        assert len(hazards) == 2
        assert all(idx == 0 for _s, _d, idx in hazards)

    def test_self_loop_flagged(self):
        from repro.graph import self_loop

        g = self_loop(relays=1)
        for edge in g.edges:
            if edge.src == edge.dst:
                edge.relays = ("half",)
        assert half_relays_on_loops(g) == [("A", "A", 0)]


class TestPromote:
    def test_only_loops_by_default(self):
        g = hazardous_ring()
        # Add a feed-forward half relay via the sink edge.
        for edge in g.edges:
            if edge.dst == "out":
                edge.relays = ("half",)
        cured = promote_half_relays(g, only_loops=True)
        assert half_relays_on_loops(cured) == []
        assert cured.relay_count("half") == 1  # the sink edge survives

    def test_promote_everything(self):
        g = hazardous_ring()
        cured = promote_half_relays(g, only_loops=False)
        assert cured.relay_count("half") == 0
        assert cured.relay_count("full") == 2

    def test_original_untouched(self):
        g = hazardous_ring()
        promote_half_relays(g)
        assert g.relay_count("half") == 2


class TestInsertRelay:
    def test_inserts_at_position(self):
        g = figure1()
        edited = insert_relay(g, "A", "C", spec="half", position=0)
        edge = [e for e in edited.edges
                if (e.src, e.dst) == ("A", "C")][0]
        assert edge.relays == ("half", "full")

    def test_missing_edge_raises(self):
        with pytest.raises(StructuralError):
            insert_relay(figure1(), "C", "A")

    def test_position_clamped(self):
        edited = insert_relay(figure1(), "A", "C", position=99)
        edge = [e for e in edited.edges
                if (e.src, e.dst) == ("A", "C")][0]
        assert edge.relays[-1] == "full"


class TestCure:
    def test_clean_graph_returned_unchanged(self):
        g = figure1()
        cured, promotions = cure_deadlock(g)
        assert cured is g
        assert promotions == []

    def test_cure_makes_hazard_live(self):
        from repro.skeleton import check_deadlock

        g = hazardous_ring()
        # Under the refined protocol the skeleton stays live, so the
        # cure is a no-op; force the hazard with the original protocol
        # by promoting manually and checking liveness flips.
        from repro.lid.variant import ProtocolVariant

        before = check_deadlock(g, variant=ProtocolVariant.CARLONI)
        assert before.deadlocked
        cured = promote_half_relays(g)
        after = check_deadlock(cured, variant=ProtocolVariant.CARLONI)
        assert after.live

"""EXP-A1 (extension): where should the minimum memory live?

The paper's central implementation insight is that at least one memory
element must absorb the stop between two shells, and it proposes relay
stations as the carrier.  The earlier methodology put queues inside the
shells instead.  This ablation implements the same 3-stage pipeline
three ways and compares delivered throughput and the gate-level
register budget of the connecting fabric:

* plain shells + full relay stations (the paper's design);
* plain shells + half relay stations (minimum wire memory, refined
  protocol required);
* queued shells connected directly (memory inside the consumer).
"""

import pytest

from repro import LidSystem, pearls
from repro.bench.tables import format_table
from repro.rtl import full_relay_station_netlist, half_relay_station_netlist


def build(style: str, stages: int = 3, stop_script=None):
    system = LidSystem(style)
    src = system.add_source("src")
    shells = []
    for i in range(stages):
        pearl = pearls.Identity(initial=-1 - i)
        if style == "queued":
            shells.append(system.add_queued_shell(f"S{i}", pearl))
        else:
            shells.append(system.add_shell(f"S{i}", pearl))
    sink = system.add_sink("out", stop_script=stop_script)
    system.connect(src, shells[0])
    for a, b in zip(shells, shells[1:]):
        if style == "full-rs":
            system.connect(a, b, relays=1)
        elif style == "half-rs":
            system.connect(a, b, relays=["half"])
        else:
            system.connect(a, b)
    system.connect(shells[-1], sink)
    return system, sink


def fabric_register_bits(style: str, stages: int = 3,
                         width: int = 8) -> int:
    """Register bits spent on inter-shell memory (queues or stations)."""
    hops = stages - 1
    if style == "full-rs":
        return hops * full_relay_station_netlist(width).register_count()
    if style == "half-rs":
        return hops * half_relay_station_netlist(width).register_count()
    # Queued shells: depth-2 FIFO per consumer input = 2 data slots +
    # 2 valid flags + 1 stop register, per inter-shell hop.
    return hops * (2 * width + 3)


STYLES = ("full-rs", "half-rs", "queued")


def test_bench_memory_placement_table(benchmark, emit):
    def run():
        rows = []
        for style in STYLES:
            system, sink = build(style,
                                 stop_script=lambda c: c % 4 == 1)
            system.run(200)
            rows.append((
                style,
                fabric_register_bits(style),
                f"{sink.steady_throughput(20, 200):.3f}",
                len(sink.payloads),
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ("fabric style", "register bits (fabric)", "throughput",
         "tokens in 200 cycles"),
        rows,
        title="Memory placement ablation: relay stations vs shell "
              "queues (3-stage pipeline, sink stops 1 in 4)",
    )
    emit("EXP-A1-memory-placement", table)
    # All three meet the protocol; the half station is the cheapest,
    # the queue the most flexible — throughput ties under this load.
    rates = {style: float(rate) for style, _bits, rate, _tok in rows}
    assert max(rates.values()) - min(rates.values()) < 0.05
    bits = {style: b for style, b, _r, _t in rows}
    assert bits["half-rs"] < bits["full-rs"] <= bits["queued"]


@pytest.mark.parametrize("style", STYLES)
def test_bench_styles_equivalent_streams(benchmark, style):
    """All three placements deliver the exact same payload stream."""
    def run():
        system, sink = build(style, stop_script=lambda c: c % 3 == 0)
        system.run(120)
        return sink.payloads

    payloads = benchmark.pedantic(run, rounds=1, iterations=1)
    reference, _sink = build("full-rs", stop_script=lambda c: c % 3 == 0)
    reference.run(120)
    ref_payloads = reference.sinks["out"].payloads
    shorter = min(len(payloads), len(ref_payloads))
    assert payloads[:shorter] == ref_payloads[:shorter]
    assert shorter > 60


def test_bench_queued_equals_relay_station_semantics(benchmark):
    """A depth-2 queued shell is token-flow equivalent to a full relay
    station feeding a plain shell — the two-slot minimum in disguise."""
    def run():
        queued, q_sink = build("queued", stop_script=lambda c: (c // 2) % 3 == 0)
        stationed, s_sink = build("full-rs", stop_script=lambda c: (c // 2) % 3 == 0)
        queued.run(150)
        stationed.run(150)
        return q_sink.payloads, s_sink.payloads

    q_payloads, s_payloads = benchmark.pedantic(run, rounds=1,
                                                iterations=1)
    shorter = min(len(q_payloads), len(s_payloads))
    assert q_payloads[:shorter] == s_payloads[:shorter]

"""Safety monitors: the paper's six properties as observer automata.

Each monitor is an immutable automaton advanced once per cycle with the
signals it watches; it either returns its next state or raises
:class:`Violation` with a human-readable reason.  Monitors compose with
the block and environment states into the product the BFS explores.

Paper properties covered:

=======================  =========================================
Shell                    Relay station
=======================  =========================================
elaborates coherent data produces outputs in the correct order
outputs in correct order does not skip any valid output
does not skip outputs    keeps its output on asserted stops
=======================  =========================================
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from .env import PAYLOAD_MODULUS


class Violation(Exception):
    """A safety property failed; the message explains how."""


@dataclasses.dataclass(frozen=True)
class OrderMonitor:
    """Checks order + no-skip + no-duplicate on consumed outputs.

    A token is *consumed* in a cycle where the output is valid and the
    downstream does not stop.  Consumed payloads must be exactly
    ``expected, expected+1, ...`` modulo the payload alphabet; any skip,
    duplicate or reorder breaks the arithmetic and is caught within one
    alphabet revolution (the alphabet exceeds total block capacity).
    """

    expected: int = 0

    def advance(self, out_tok: Optional[int], stop_in: bool) -> "OrderMonitor":
        if out_tok is None or stop_in:
            return self
        if out_tok != self.expected:
            raise Violation(
                f"out-of-order output: consumed {out_tok}, "
                f"expected {self.expected}"
            )
        return OrderMonitor(expected=(self.expected + 1) % PAYLOAD_MODULUS)


@dataclasses.dataclass(frozen=True)
class HoldMonitor:
    """"Keeps its output on asserted stops."

    If the output was valid and stopped in cycle *t*, the same token
    must still be presented in cycle *t+1*.
    """

    held: Optional[int] = None  # token that must reappear, or None

    def advance(self, out_tok: Optional[int], stop_in: bool) -> "HoldMonitor":
        if self.held is not None and out_tok != self.held:
            raise Violation(
                f"output not held under stop: had {self.held}, "
                f"now {out_tok}"
            )
        if out_tok is not None and stop_in:
            return HoldMonitor(held=out_tok)
        return HoldMonitor(held=None)


@dataclasses.dataclass(frozen=True)
class CoherenceMonitor:
    """Shell-specific: inputs are consumed in lockstep (single rate).

    A shell that fired must have consumed exactly one token from every
    input; the upstream sequence counters therefore stay equal forever.
    Divergent counters mean the shell skipped or double-consumed an
    input — incoherent elaboration.
    """

    def advance(self, upstream_ks: Tuple[int, ...]) -> "CoherenceMonitor":
        if len(set(upstream_ks)) > 1:
            raise Violation(
                f"inputs consumed out of lockstep: counters {upstream_ks}"
            )
        return self


@dataclasses.dataclass(frozen=True)
class NoSpuriousValidMonitor:
    """The block never emits more tokens than it has consumed.

    Guards against a block inventing data: the number of consumed
    outputs can never exceed the number of accepted inputs plus the
    block's initial tokens.  Counters are kept exactly (bounded by the
    block capacity + 1 thanks to a saturation margin).
    """

    balance: int = 0       # accepted inputs + initial - emitted outputs
    limit: int = 4         # block capacity bound

    def advance(self, accepted_input: bool, emitted_output: bool
                ) -> "NoSpuriousValidMonitor":
        balance = self.balance + int(accepted_input) - int(emitted_output)
        if balance < 0:
            raise Violation("output emitted with no corresponding input")
        if balance > self.limit:
            raise Violation(
                f"block buffered {balance} tokens, beyond its capacity "
                f"{self.limit}: a token was duplicated or never emitted"
            )
        return NoSpuriousValidMonitor(balance=balance, limit=self.limit)

"""Tests for the LidSystem container."""

import pytest

from repro import LidSystem, pearls
from repro.errors import StructuralError
from repro.lid.variant import ProtocolVariant

from ..conftest import build_pipeline


class TestConstruction:
    def test_duplicate_names_rejected(self):
        system = LidSystem("x")
        system.add_shell("A", pearls.Identity())
        with pytest.raises(StructuralError):
            system.add_source("A")

    def test_relays_int_builds_full_stations(self):
        system, _sink = build_pipeline(stages=2, relays=3)
        system.finalize()
        from repro.lid.relay import RelayStation

        assert len(system.relays) == 3
        assert all(isinstance(r, RelayStation)
                   for r in system.relays.values())

    def test_relays_spec_list(self):
        system = LidSystem("x")
        src = system.add_source("src")
        sink = system.add_sink("out")
        system.connect(src, sink, relays=["full", "half", "half-registered"])
        from repro.lid.relay import HalfRelayStation, RelayStation

        kinds = [type(r).__name__ for r in system.relays.values()]
        assert kinds.count("RelayStation") == 1
        assert kinds.count("HalfRelayStation") == 2

    def test_connect_returns_channel_chain(self):
        system = LidSystem("x")
        src = system.add_source("src")
        sink = system.add_sink("out")
        chain = system.connect(src, sink, relays=2)
        assert len(chain) == 3  # producer side, between relays, consumer

    def test_sink_cannot_produce(self):
        system = LidSystem("x")
        sink = system.add_sink("out")
        other = system.add_sink("out2")
        with pytest.raises(StructuralError):
            system.connect(sink, other)

    def test_source_cannot_consume(self):
        system = LidSystem("x")
        src = system.add_source("s1")
        src2 = system.add_source("s2")
        with pytest.raises(StructuralError):
            system.connect(src, src2)


class TestExecution:
    def test_run_finalizes_lazily(self):
        system, sink = build_pipeline()
        system.run(5)
        assert system._finalized

    def test_run_without_reset_continues(self):
        system, sink = build_pipeline()
        system.run(5)
        count = len(sink.received)
        system.run(5, reset=False)
        assert len(sink.received) > count

    def test_run_with_reset_restarts(self):
        system, sink = build_pipeline()
        system.run(5)
        system.run(5)  # default reset=True
        assert system.sim.cycle == 5

    def test_variant_propagates_to_blocks(self):
        system = LidSystem("x", variant=ProtocolVariant.CARLONI)
        shell = system.add_shell("A", pearls.Identity())
        assert shell.variant is ProtocolVariant.CARLONI

    def test_sink_throughputs(self):
        system, sink = build_pipeline(stages=1, relays=1)
        system.run(20)
        rates = system.sink_throughputs(20, warmup=5)
        assert rates["out"] == 1.0


class TestStats:
    def test_stats_shape(self):
        system, sink = build_pipeline(stages=2, relays=2)
        system.run(20)
        stats = system.stats()
        assert stats["cycles"] == 20
        assert set(stats["shell_firings"]) == {"S0", "S1"}
        assert stats["sink_deliveries"]["out"] == len(sink.received)
        assert stats["settle_passes"] > 0

    def test_utilization_full_rate_pipeline(self):
        system, _sink = build_pipeline(stages=2, relays=1)
        system.run(30)
        stats = system.stats()
        # Downstream shells miss a firing or two while the relay
        # stations drain their initial voids; after that it is 1/cycle.
        assert all(u >= 0.9 for u in stats["shell_utilization"].values())

    def test_buffered_tokens_under_permanent_stop(self):
        # The relay station between the two shells fills both slots
        # once the stopped sink freezes the downstream shell.
        system, _sink = build_pipeline(
            stages=2, relays=1, stop_script=lambda c: True)
        system.run(10)
        stats = system.stats()
        assert stats["buffered_tokens"] == 2

    def test_stats_json_compatible(self):
        import json

        system, _sink = build_pipeline()
        system.run(5)
        json.dumps(system.stats())  # no TypeError

    def test_settle_cost_reflects_backpressure(self):
        """Stop waves cost extra settle passes — the combinational
        activity the paper's registered stops exist to bound."""
        calm, _s1 = build_pipeline(stages=3, relays=1)
        calm.run(40)
        pressured, _s2 = build_pipeline(
            stages=3, relays=1, stop_script=lambda c: c % 2 == 0)
        pressured.run(40)
        assert pressured.stats()["settle_passes"] >= \
            calm.stats()["settle_passes"]


class TestTracing:
    def test_trace_channels(self):
        system = LidSystem("t")
        src = system.add_source("src")
        sink = system.add_sink("out")
        chain = system.connect(src, sink, relays=1)
        trace = system.trace_channels(chain)
        system.run(4)
        assert len(trace) == 4
        assert any(".valid" in name for name in trace.names)

    def test_trace_by_name(self):
        system = LidSystem("t")
        src = system.add_source("src")
        sink = system.add_sink("out")
        chain = system.connect(src, sink)
        trace = system.trace([chain[0].data.name])
        system.run(3)
        assert trace.column(chain[0].data.name) == [0, 1, 2]

"""Behavioural tests for the shell wrapper."""

import pytest

from repro import LidSystem, pearls
from repro.errors import StructuralError
from repro.lid.shell import Shell
from repro.lid.variant import ProtocolVariant


class TestWiring:
    def test_unknown_input_port(self):
        system = LidSystem("w")
        shell = system.add_shell("A", pearls.Adder())
        src = system.add_source("src")
        with pytest.raises(StructuralError):
            system.connect(src, shell, consumer_port="zzz")

    def test_unknown_output_port(self):
        system = LidSystem("w")
        shell = system.add_shell("A", pearls.Identity())
        sink = system.add_sink("out")
        with pytest.raises(StructuralError):
            system.connect(shell, sink, producer_port="nope")

    def test_double_input_connection(self):
        system = LidSystem("w")
        shell = system.add_shell("A", pearls.Identity())
        s1 = system.add_source("s1")
        s2 = system.add_source("s2")
        system.connect(s1, shell)
        with pytest.raises(StructuralError):
            system.connect(s2, shell)

    def test_missing_port_detected_at_finalize(self):
        system = LidSystem("w")
        system.add_shell("A", pearls.Adder())  # nothing connected
        with pytest.raises(StructuralError):
            system.finalize()

    def test_ambiguous_port_requires_name(self):
        system = LidSystem("w")
        shell = system.add_shell("A", pearls.Adder())
        src = system.add_source("src")
        with pytest.raises(StructuralError):
            system.connect(src, shell)  # adder has ports a and b


class TestFiringSemantics:
    def _single_shell(self, pearl, stop_script=None, stream=None,
                      variant=ProtocolVariant.CASU):
        system = LidSystem("s", variant=variant)
        src = system.add_source("src", stream=stream)
        shell = system.add_shell("A", pearl)
        sink = system.add_sink("out", stop_script=stop_script)
        in_port = pearl.input_ports[0]
        system.connect(src, shell, consumer_port=in_port)
        system.connect(shell, sink, relays=1)
        return system, shell, sink

    def test_initial_output_is_valid(self):
        system, shell, sink = self._single_shell(pearls.Identity(initial=99))
        system.run(1)
        # The relay station still holds a void at cycle 0; the initial
        # valid token reaches the sink at cycle 1.
        system.run(1, reset=False)
        assert sink.received[0] == (1, 99)

    def test_fires_every_cycle_when_unblocked(self):
        system, shell, sink = self._single_shell(pearls.Identity())
        system.run(20)
        assert shell.fire_count == 20

    def test_void_input_stalls(self):
        system, shell, sink = self._single_shell(
            pearls.Identity(), stream=[1, None, None, 2])
        system.run(10)
        # Fires only when valid tokens arrive (plus trailing voids stall).
        assert shell.fire_count == 2
        assert sink.payloads[:3] == [0, 1, 2]

    def test_clock_gating_freezes_pearl(self):
        pearl = pearls.Counter()
        system, shell, sink = self._single_shell(
            pearl, stream=[0, None, None, 0])
        system.run(10)
        # Counter counts firings, not cycles.
        assert pearl._count == shell.fire_count

    def test_backpressure_holds_output(self):
        # Sink stops on every cycle = 1 mod 3.
        system, shell, sink = self._single_shell(
            pearls.Identity(), stop_script=lambda c: c % 3 == 1)
        system.run(30)
        ref = system.reference_outputs(30)["out"]
        assert sink.payloads == ref[: len(sink.payloads)]
        assert len(sink.payloads) < 30  # actually throttled

    def test_no_token_lost_or_duplicated_under_stop(self):
        system, shell, sink = self._single_shell(
            pearls.Identity(initial=-1),
            stop_script=lambda c: (c // 2) % 2 == 0)
        system.run(40)
        values = sink.payloads
        assert values == sorted(values)
        assert len(values) == len(set(values))

    def test_history_pearl_sees_inputs_in_order(self):
        pearl = pearls.History()
        system, shell, sink = self._single_shell(
            pearl, stop_script=lambda c: c % 4 == 2)
        system.run(30)
        assert pearl.seen == list(range(len(pearl.seen)))

    def test_throughput_metric(self):
        system, shell, sink = self._single_shell(pearls.Identity())
        system.run(10)
        assert shell.throughput(10) == 1.0
        assert shell.throughput(0) == 0.0


class TestFanOut:
    def _fanout_system(self, stop_even=False):
        system = LidSystem("f")
        src = system.add_source("src")
        # Distinct initials keep the observable streams duplicate-free.
        a = system.add_shell("A", pearls.Identity(initial=-1))
        b = system.add_shell("B", pearls.Identity(initial=-2))
        c = system.add_shell("C", pearls.Identity(initial=-3))
        out_b = system.add_sink(
            "out_b", stop_script=(lambda c: c % 2 == 0) if stop_even else None)
        out_c = system.add_sink("out_c")
        system.connect(src, a)
        system.connect(a, b, relays=1)
        system.connect(a, c, relays=1)
        system.connect(b, out_b)
        system.connect(c, out_c)
        return system, out_b, out_c

    def test_both_branches_receive_same_stream(self):
        system, out_b, out_c = self._fanout_system()
        system.run(20)
        # First elements differ (B vs C initial tokens); the streams
        # relayed from A onwards must be identical.
        assert out_b.payloads[1:] == out_c.payloads[1:]

    def test_no_duplication_with_partial_backpressure(self):
        system, out_b, out_c = self._fanout_system(stop_even=True)
        system.run(40)
        # Slow branch throttles the shell; both remain duplicate-free
        # prefixes of the same stream.
        for sink in (out_b, out_c):
            assert len(sink.payloads) == len(set(sink.payloads))
        shorter = min(len(out_b.payloads), len(out_c.payloads))
        assert out_b.payloads[1:shorter] == out_c.payloads[1:shorter]


class TestMultiInput:
    def test_adder_combines_in_lockstep(self):
        system = LidSystem("m")
        s1 = system.add_source("s1", stream=[10, 20, 30, 40])
        s2 = system.add_source("s2", stream=[1, 2, 3, 4])
        add = system.add_shell("add", pearls.Adder())
        sink = system.add_sink("out")
        system.connect(s1, add, consumer_port="a")
        system.connect(s2, add, consumer_port="b")
        system.connect(add, sink, relays=1)
        system.run(12)
        assert sink.payloads == [0, 11, 22, 33, 44]

    def test_unbalanced_sources_stall_cleanly(self):
        system = LidSystem("m")
        s1 = system.add_source("s1", stream=[10, None, 30])
        s2 = system.add_source("s2", stream=[1, 2, 3])
        add = system.add_shell("add", pearls.Adder())
        sink = system.add_sink("out")
        system.connect(s1, add, consumer_port="a")
        system.connect(s2, add, consumer_port="b")
        system.connect(add, sink, relays=1)
        system.run(12)
        # Pairs actually formed: (10,1) and (30,2); the third never
        # completes because s1 runs dry.
        assert sink.payloads == [0, 11, 32]

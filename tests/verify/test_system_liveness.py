"""Exhaustive system-level liveness (all environments, small systems)."""

import pytest

from repro.graph import (
    figure1,
    figure2,
    pipeline,
    random_loopy,
    reconvergent,
    ring,
    self_loop,
    tree,
)
from repro.lid.variant import ProtocolVariant
from repro.verify import verify_system_liveness

CASU = ProtocolVariant.CASU
CARLONI = ProtocolVariant.CARLONI


class TestPaperClaimsProved:
    """The paper's deadlock-freedom claims, now proved over ALL
    environment behaviours on concrete instances (the paper only
    simulated specific scripts)."""

    @pytest.mark.parametrize("graph", [
        pipeline(2), pipeline(3), figure1(), tree(2),
        reconvergent(long_relays=(2, 1), short_relays=1),
    ])
    def test_feedforward_live_for_all_environments(self, graph):
        result = verify_system_liveness(graph)
        assert result.live
        assert result.reachable_states > 1

    @pytest.mark.parametrize("graph", [
        figure2(), ring(3, relays_per_arc=1), self_loop(relays=2),
    ])
    def test_full_relay_loops_live_for_all_environments(self, graph):
        for variant in (CASU, CARLONI):
            result = verify_system_liveness(graph, variant=variant)
            assert result.live, (graph.name, variant)

    def test_half_in_loop_live_under_refinement(self):
        """The token-conservation argument, mechanically verified:
        under the refined protocol the hazardous loop cannot reach a
        stuck state no matter what the environment does."""
        graph = ring(2, relays_per_arc=[["half"], ["full"]])
        result = verify_system_liveness(graph, variant=CASU)
        assert result.live

    def test_half_in_loop_stuck_under_original(self):
        graph = ring(2, relays_per_arc=[["half"], ["full"]])
        result = verify_system_liveness(graph, variant=CARLONI)
        assert not result.live
        assert result.stuck_state is not None

    def test_all_half_loop_verdicts(self):
        graph = ring(2, relays_per_arc=[["half"], ["half"]])
        assert verify_system_liveness(graph, variant=CASU).live
        assert not verify_system_liveness(graph, variant=CARLONI).live


class TestAgainstScriptedChecker:
    """The exhaustive verdict must dominate the scripted one: a system
    proved live for all environments can never deadlock under any
    script the scripted checker tries."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_loops_consistent(self, seed):
        from repro.skeleton import check_deadlock

        graph = random_loopy(seed, shells=3, max_relays=1)
        exhaustive = verify_system_liveness(graph)
        scripted = check_deadlock(graph)
        if exhaustive.live:
            assert not scripted.deadlocked
        else:
            # A stuck state exists for SOME environment; the default
            # script may or may not reach it — no constraint.
            pass


class TestQueuedShellSystems:
    def test_queued_pipeline_live_for_all_envs(self):
        """Queued shells desugar to relay stations inside the skeleton,
        so the exhaustive proof covers them too."""
        from repro.graph import SystemGraph
        from repro.pearls import Identity

        g = SystemGraph("qpipe")
        g.add_source("src")
        g.add_queued_shell("S0", Identity)
        g.add_queued_shell("S1", Identity)
        g.add_sink("out")
        g.add_edge("src", "S0")
        g.add_edge("S0", "S1")
        g.add_edge("S1", "out")
        result = verify_system_liveness(g)
        assert result.live
        assert result.ambiguous_states == 0


class TestAmbiguityAccounting:
    def test_legal_systems_have_no_ambiguity(self):
        for graph in (figure1(), figure2(),
                      ring(2, relays_per_arc=[["half"], ["full"]])):
            result = verify_system_liveness(graph)
            assert result.ambiguous_states == 0
            assert result.potential_deadlock_free == result.live

    def test_all_half_loop_unambiguous_under_refinement(self):
        """Token conservation keeps the combinational stop cycle from
        ever self-sustaining — proved over every reachable state and
        every environment choice."""
        graph = ring(2, relays_per_arc=[["half"], ["half"]])
        result = verify_system_liveness(graph, variant=CASU)
        assert result.live
        assert result.ambiguous_states == 0


class TestMechanics:
    def test_counts_reported(self):
        result = verify_system_liveness(pipeline(2))
        assert result.transitions >= result.reachable_states

    def test_state_budget(self):
        with pytest.raises(MemoryError):
            verify_system_liveness(figure1(), max_states=3)

    def test_recovery_bound_override(self):
        result = verify_system_liveness(pipeline(2), recovery_bound=50)
        assert result.live

    def test_bool_protocol(self):
        assert verify_system_liveness(pipeline(2))

    def test_mutation_detected(self, monkeypatch):
        """Freeze the relay-station update and the explorer finds the
        resulting trap state."""
        from repro.lid.variant import ProtocolVariant as PV

        # A variant that never lets tokens through relay slots.
        monkeypatch.setattr(
            PV, "slot_consumed", lambda self, valid, stop: False)
        result = verify_system_liveness(pipeline(2))
        assert not result.live

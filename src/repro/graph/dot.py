"""Graphviz DOT export of system graphs.

Renders shells as boxes, sources/sinks as ovals and relay chains as
edge labels (``2F`` = two full stations, ``1H`` = one half station),
matching the visual vocabulary of the paper's figures closely enough
to eyeball a topology before simulating it.
"""

from __future__ import annotations

import io

from .model import SystemGraph

_SHAPES = {"shell": "box", "source": "ellipse", "sink": "ellipse"}
_STYLES = {"shell": "solid", "source": "dashed", "sink": "dashed"}


def _chain_label(relays) -> str:
    if not relays:
        return ""
    full = sum(1 for s in relays if s == "full")
    half = sum(1 for s in relays if s.startswith("half"))
    parts = []
    if full:
        parts.append(f"{full}F")
    if half:
        parts.append(f"{half}H")
    return "+".join(parts)


def to_dot(graph: SystemGraph) -> str:
    """Render *graph* as DOT text."""
    out = io.StringIO()
    out.write(f'digraph "{graph.name}" {{\n')
    out.write("  rankdir=LR;\n")
    for node in graph.nodes.values():
        shape = _SHAPES[node.kind]
        style = _STYLES[node.kind]
        out.write(
            f'  "{node.name}" [shape={shape}, style={style}, '
            f'label="{node.name}"];\n'
        )
    for edge in graph.edges:
        label = _chain_label(edge.relays)
        attrs = f' [label="{label}"]' if label else ""
        out.write(f'  "{edge.src}" -> "{edge.dst}"{attrs};\n')
    out.write("}\n")
    return out.getvalue()


def write_dot(graph: SystemGraph, path: str) -> None:
    """Write the DOT rendering of *graph* to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_dot(graph))

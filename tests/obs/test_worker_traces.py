"""Worker trace merging: pool fan-out -> per-lane Chrome trace.

The contract under test: a traced ``map_deterministic`` run returns
byte-identical results to an untraced one, ships each chunk's telemetry
home as a :class:`WorkerTrace`, and the merged Chrome trace renders one
``(pid, tid)`` lane per chunk with event order and drop accounting
preserved.
"""

import json

import pytest

from repro.exec import TraceCollection, map_deterministic, worker_telemetry
from repro.exec.pool import WorkerTrace
from repro.obs import (
    EventStream,
    merged_chrome_trace,
    write_merged_chrome_trace,
)

def _traced_unit(n):
    """Module-level (picklable) unit that reports into its worker lane."""
    telemetry = worker_telemetry()
    if telemetry is not None:
        telemetry.events.emit("exec", "unit-start", n, unit=n)
        telemetry.events.emit("exec", "unit-end", n + 1, unit=n)
        telemetry.profiler.add("work", 0.001)
    return n * 2


class TestTracedFanOut:
    def test_results_match_serial_and_lanes_are_collected(self):
        units = list(range(16))
        trace = TraceCollection(run_id="span-abc")
        results = map_deterministic(_traced_unit, units, jobs=4,
                                    trace=trace)
        assert results == [n * 2 for n in units]
        # 16 units at jobs=4 -> chunk size 1 -> 16 chunks.
        assert len(trace.traces) == 16
        assert [t.chunk_index for t in trace.traces] == list(range(16))
        for worker_trace in trace.traces:
            assert worker_trace.run_id == "span-abc"
            assert worker_trace.units == 1
            assert worker_trace.emitted == 2
            assert worker_trace.dropped == 0
        assert trace.emitted == 32
        assert trace.dropped == 0

    def test_serial_path_collects_no_lanes(self):
        trace = TraceCollection(run_id="span-abc")
        results = map_deterministic(_traced_unit, [1, 2, 3], jobs=1,
                                    trace=trace)
        assert results == [2, 4, 6]
        assert trace.traces == []

    def test_worker_telemetry_is_none_outside_traced_chunks(self):
        assert worker_telemetry() is None

    def test_trace_capacity_bounds_worker_streams(self):
        units = list(range(8))
        trace = TraceCollection()
        map_deterministic(_traced_unit, units, jobs=2, trace=trace,
                          trace_capacity=1, chunk_size=4)
        for worker_trace in trace.traces:
            assert worker_trace.emitted == 8  # 2 events x 4 units
            assert worker_trace.dropped == 7
            assert len(worker_trace.events) == 1


def _fake_trace(chunk_index, pid, events=(), dropped=0, phases=()):
    return WorkerTrace(
        chunk_index=chunk_index, pid=pid, run_id="span-abc",
        units=len(events) or 1,
        events=tuple(events),
        emitted=len(events) + dropped,
        dropped=dropped,
        phases=tuple(phases))


def _event(cycle, name, **fields):
    return dict({"cycle": cycle, "category": "exec", "name": name},
                **fields)


class TestMergedChromeTrace:
    def test_four_jobs_yield_four_plus_lanes(self):
        units = list(range(16))
        trace = TraceCollection(run_id="span-abc")
        parent = EventStream()
        parent.emit("run", "start", 0)
        map_deterministic(_traced_unit, units, jobs=4, trace=trace)
        payload = merged_chrome_trace(parent, trace.traces,
                                      run_id=trace.run_id)
        other = payload["otherData"]
        assert other["worker_lanes"] >= 4
        assert other["run_id"] == "span-abc"
        lanes = {(e["pid"], e["tid"]) for e in payload["traceEvents"]
                 if e.get("ph") == "i" and e["tid"] >= 1000}
        assert len(lanes) >= 4
        # Every lane is named by pid/tid metadata.
        named = {(e["pid"], e["tid"]) for e in payload["traceEvents"]
                 if e.get("ph") == "M" and e["name"] == "thread_name"
                 and e["tid"] >= 1000}
        assert lanes <= named

    def test_per_lane_event_order_is_preserved(self):
        events_a = [_event(5, "late"), _event(1, "early"),
                    _event(9, "last")]
        events_b = [_event(2, "b0"), _event(3, "b1")]
        payload = merged_chrome_trace(
            None,
            [_fake_trace(1, pid=222, events=events_b),
             _fake_trace(0, pid=111, events=events_a)])
        lane_a = [e["name"] for e in payload["traceEvents"]
                  if e.get("ph") == "i" and e["tid"] == 1000]
        lane_b = [e["name"] for e in payload["traceEvents"]
                  if e.get("ph") == "i" and e["tid"] == 1001]
        # Emission order survives the merge — never re-sorted by ts —
        # and chunk 0 renders before chunk 1 regardless of input order.
        assert lane_a == ["exec:late", "exec:early", "exec:last"]
        assert lane_b == ["exec:b0", "exec:b1"]

    def test_drop_accounting_survives_the_merge(self):
        parent = EventStream(capacity=1)
        parent.emit("run", "start", 0)
        parent.emit("run", "end", 1)  # evicts the first
        payload = merged_chrome_trace(
            parent,
            [_fake_trace(0, pid=111, events=[_event(0, "x")], dropped=3)])
        other = payload["otherData"]
        assert other["dropped"] == 1 + 3
        assert other["emitted"] == 2 + 4

    def test_empty_parent_and_no_traces_is_valid(self):
        payload = merged_chrome_trace(None, [])
        assert payload["otherData"]["worker_lanes"] == 0
        assert payload["otherData"]["emitted"] == 0
        assert payload["traceEvents"]  # process_name metadata only

    def test_worker_phases_render_as_slices(self):
        payload = merged_chrome_trace(
            None,
            [_fake_trace(0, pid=111, events=[_event(0, "x")],
                         phases=[("work", 4, 0.002)])])
        slices = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
        assert len(slices) == 1
        assert slices[0]["name"] == "work"
        assert slices[0]["dur"] == pytest.approx(2000.0)
        assert slices[0]["tid"] == 1000

    def test_write_round_trips_as_json(self, tmp_path):
        path = str(tmp_path / "merged.json")
        write_merged_chrome_trace(
            None, [_fake_trace(0, pid=111, events=[_event(0, "x")])],
            path, run_id="span-abc")
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["otherData"]["run_id"] == "span-abc"
        assert payload["otherData"]["worker_lanes"] == 1


class TestAbsorb:
    def test_absorb_merges_events_and_counts(self):
        target = EventStream()
        target.emit("run", "start", 0)
        source = EventStream()
        source.emit("exec", "unit", 1)
        source.emit("exec", "unit", 2)
        assert target.absorb(source.events()) == 2
        assert len(target) == 3
        assert target.emitted == 3

    def test_absorb_with_explicit_emitted_preserves_drops(self):
        target = EventStream()
        source = EventStream(capacity=1)
        source.emit("exec", "unit", 1)
        source.emit("exec", "unit", 2)  # drops the first
        target.absorb(source.events(), emitted=source.emitted)
        assert len(target) == 1
        assert target.emitted == 2

"""Minimal VCD (Value Change Dump) writer.

Converts a :class:`~repro.kernel.trace.Trace` into an IEEE-1364-style
VCD text file so recorded LID runs can be inspected in any waveform
viewer (GTKWave etc.).  Values are emitted as follows:

* ``bool``  -> scalar ``0``/``1``;
* ``int``   -> 32-bit binary vector;
* ``None``  -> ``x`` (matches the "void" token rendering in the paper's
  figures, where invalid data are drawn as ``N``);
* anything else -> a string literal (VCD ``s`` real/string extension).
"""

from __future__ import annotations

import io
from typing import Any, List

from .trace import Trace

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short VCD identifier for the *index*-th variable."""
    if index < 0:
        raise ValueError("index must be non-negative")
    chars: List[str] = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(reversed(chars))


def _sanitize(name: str) -> str:
    return name.replace(" ", "_")


def _value_token(value: Any, ident: str) -> str:
    if value is None:
        return f"bx {ident}"
    if value is True:
        return f"1{ident}"
    if value is False:
        return f"0{ident}"
    if isinstance(value, int):
        return f"b{value & 0xFFFFFFFF:032b} {ident}"
    return f"s{_sanitize(str(value))} {ident}"


def write_vcd(trace: Trace, path: str, timescale: str = "1 ns",
              module: str = "lid") -> None:
    """Write *trace* to *path* as a VCD file."""
    with open(path, "w", encoding="ascii") as fh:
        fh.write(dumps_vcd(trace, timescale=timescale, module=module))


def dumps_vcd(trace: Trace, timescale: str = "1 ns", module: str = "lid") -> str:
    """Render *trace* as VCD text (see :func:`write_vcd`)."""
    out = io.StringIO()
    out.write(f"$timescale {timescale} $end\n")
    out.write(f"$scope module {_sanitize(module)} $end\n")
    idents = [_identifier(i) for i in range(len(trace.names))]
    for name, ident in zip(trace.names, idents):
        out.write(f"$var wire 32 {ident} {_sanitize(name)} $end\n")
    out.write("$upscope $end\n$enddefinitions $end\n")

    previous: List[Any] = [object()] * len(idents)
    for cycle, row in zip(trace.cycles, (r for r in _iter_rows(trace))):
        changes = [
            _value_token(value, ident)
            for value, prev, ident in zip(row, previous, idents)
            if value != prev
        ]
        if changes:
            out.write(f"#{cycle}\n")
            for token in changes:
                out.write(token + "\n")
        previous = list(row)
    return out.getvalue()


def _iter_rows(trace: Trace):
    names = trace.names
    for row in trace.rows():
        yield [row[n] for n in names]

"""Topology layer: system graphs, builders, equalization and cures."""

from .dot import to_dot, write_dot
from .equalize import equalization_plan, equalize, imbalance, relay_depths
from .floorplan import (
    FloorplanReport,
    Placement,
    apply_floorplan,
    layered_placement,
    required_relays,
    shrink_sweep,
)
from .io import PEARL_REGISTRY, from_dict, load_graph, pearl_spec, save_graph, to_dict
from .model import Edge, Node, SystemGraph
from .random_gen import random_dag, random_loopy, random_suite
from .specs import TOPOLOGY_CHOICES, parse_topology
from .topologies import (
    butterfly_network,
    composed,
    figure1,
    figure2,
    loop_with_tail,
    pipeline,
    reconvergent,
    ring,
    self_loop,
    tree,
)
from .transform import (
    cure_deadlock,
    desugar_queues,
    half_relays_on_loops,
    insert_relay,
    promote_half_relays,
)

__all__ = [
    "Edge",
    "FloorplanReport",
    "Node",
    "PEARL_REGISTRY",
    "Placement",
    "SystemGraph",
    "TOPOLOGY_CHOICES",
    "apply_floorplan",
    "butterfly_network",
    "composed",
    "cure_deadlock",
    "desugar_queues",
    "equalization_plan",
    "equalize",
    "figure1",
    "figure2",
    "from_dict",
    "half_relays_on_loops",
    "imbalance",
    "insert_relay",
    "layered_placement",
    "load_graph",
    "loop_with_tail",
    "parse_topology",
    "pearl_spec",
    "pipeline",
    "promote_half_relays",
    "random_dag",
    "random_loopy",
    "random_suite",
    "reconvergent",
    "relay_depths",
    "required_relays",
    "ring",
    "save_graph",
    "self_loop",
    "shrink_sweep",
    "to_dict",
    "to_dot",
    "tree",
    "write_dot",
]

#!/usr/bin/env python3
"""A System-on-Chip DSP subsystem made latency insensitive.

The paper's motivation: "The performance of future Systems-on-Chip will
be limited by the latency of long interconnects requiring more than one
clock cycle for the signals to propagate."

This example models such an SoC corner: a sample stream fans out to a
smoothing FIR filter and a peak detector placed on opposite sides of
the die, and a comparator block fuses their results.  Floorplanning
says the two branches need different wire depths — precisely the
reconvergent topology whose throughput the paper's (m-i)/m formula
predicts — and we show how path equalization buys the lost bandwidth
back.

Run:  python examples/soc_dsp_pipeline.py
"""

from repro import pearls
from repro.analysis import analyze_reconvergence, min_cycle_ratio_throughput
from repro.graph import SystemGraph, equalize
from repro.lid.reference import is_prefix
from repro.skeleton import system_throughput


def build_subsystem() -> SystemGraph:
    graph = SystemGraph("soc_dsp")
    graph.add_source("adc")                       # sampled input data
    graph.add_shell("front", pearls.Identity)     # input conditioning
    graph.add_shell("fir", lambda: pearls.FirFilter((0.25, 0.25, 0.25,
                                                     0.25)))
    graph.add_shell("peak", lambda: pearls.Maximum())
    graph.add_sink("dsp_out")

    graph.add_edge("adc", "front")
    # The FIR sits two repeater hops away; its result crosses one more.
    graph.add_edge("front", "fir", relays=2, dst_port="a")
    graph.add_edge("fir", "peak", relays=1, dst_port="a")
    # The direct path to the peak detector crosses a single repeater.
    graph.add_edge("front", "peak", relays=1, dst_port="b")
    graph.add_edge("peak", "dsp_out")
    return graph


def main() -> None:
    graph = build_subsystem()

    i, m, predicted = analyze_reconvergence(graph, "front", "peak")
    print(f"floorplanned subsystem: relay imbalance i={i}, loop "
          f"positions m={m}")
    print(f"paper formula  T = (m-i)/m = {predicted}")
    print(f"mcr analysis   T = "
          f"{min_cycle_ratio_throughput(graph).throughput}")
    print(f"skeleton sim   T = {system_throughput(graph)}")

    # Full simulation with real data, and the correctness oracle.
    system = graph.elaborate()
    cycles = 120
    system.run(cycles)
    sink = system.sinks["dsp_out"]
    reference = system.reference_outputs(cycles)["dsp_out"]
    assert is_prefix(sink.payloads, reference)
    print(f"\nfull simulation over {cycles} cycles: "
          f"{len(sink.payloads)} samples delivered "
          f"({sink.steady_throughput(20, cycles):.3f}/cycle), all "
          f"matching the zero-latency reference")

    # Path equalization: spend one spare relay station, win the
    # bandwidth back.
    balanced = equalize(graph)
    spent = balanced.relay_count() - graph.relay_count()
    print(f"\npath equalization inserts {spent} spare relay station(s)")
    print(f"equalized subsystem T = {system_throughput(balanced)}")
    balanced_system = balanced.elaborate()
    balanced_system.run(cycles)
    balanced_sink = balanced_system.sinks["dsp_out"]
    print(f"equalized delivery: {len(balanced_sink.payloads)} samples "
          f"in the same {cycles} cycles")
    assert is_prefix(balanced_sink.payloads,
                     balanced_system.reference_outputs(cycles)["dsp_out"])


if __name__ == "__main__":
    main()

"""Tests for FSM extraction."""

import pytest

from repro.lid.variant import ProtocolVariant
from repro.rtl import (
    extract_full_rs_fsm,
    extract_half_rs_fsm,
    format_fsm_table,
    fsm_to_dot,
)


class TestFullRsFsm:
    @pytest.fixture
    def table(self):
        return {(r.state, r.in_valid, r.stop_in): r
                for r in extract_full_rs_fsm()}

    def test_complete_and_deterministic(self, table):
        assert len(table) == 3 * 4  # states x inputs, no duplicates

    def test_empty_accepts(self, table):
        assert table[("EMPTY", True, False)].next_state == "HALF"

    def test_streaming_stays_half(self, table):
        assert table[("HALF", True, False)].next_state == "HALF"

    def test_skid_absorbs_in_flight(self, table):
        row = table[("HALF", True, True)]
        assert row.next_state == "FULL"
        assert row.stop_out is False  # the stop rises only NEXT cycle

    def test_full_asserts_registered_stop(self, table):
        for in_valid in (False, True):
            for stop_in in (False, True):
                assert table[("FULL", in_valid, stop_in)].stop_out

    def test_full_drains_when_unstopped(self, table):
        assert table[("FULL", False, False)].next_state == "HALF"
        assert table[("FULL", False, True)].next_state == "FULL"

    def test_output_valid_iff_buffered(self, table):
        for key, row in table.items():
            assert row.out_valid == (key[0] != "EMPTY")


class TestHalfRsFsm:
    def test_transparent_stop_when_full(self):
        table = {(r.state, r.in_valid, r.stop_in): r
                 for r in extract_half_rs_fsm()}
        assert table[("FULL", False, True)].stop_out is True
        assert table[("EMPTY", False, True)].stop_out is False  # CASU

    def test_carloni_passes_stop_when_empty(self):
        table = {(r.state, r.in_valid, r.stop_in): r
                 for r in extract_half_rs_fsm(ProtocolVariant.CARLONI)}
        assert table[("EMPTY", False, True)].stop_out is True

    def test_registered_variant_stop_tracks_state(self):
        table = {(r.state, r.in_valid, r.stop_in): r
                 for r in extract_half_rs_fsm(registered_stop=True)}
        assert table[("FULL", False, False)].stop_out is True
        assert table[("EMPTY", True, False)].stop_out is False


class TestRendering:
    def test_table_renders(self):
        text = format_fsm_table(extract_full_rs_fsm(), title="t")
        assert "EMPTY" in text and "FULL" in text

    def test_dot_renders(self):
        dot = fsm_to_dot(extract_full_rs_fsm())
        assert dot.startswith("digraph")
        assert '"HALF" -> "FULL"' in dot

    def test_dot_merges_parallel_edges(self):
        dot = fsm_to_dot(extract_full_rs_fsm())
        # FULL has 2 self-loop inputs; they share one edge statement.
        assert dot.count('"FULL" -> "FULL"') == 1


class TestAgreementWithNetlist:
    def test_fsm_matches_gate_level(self):
        """The extracted table and the netlist agree on every
        state x input combination (control bits only)."""
        from repro.rtl import NetlistSimulator, full_relay_station_netlist

        for row in extract_full_rs_fsm():
            sim = NetlistSimulator(full_relay_station_netlist(width=4))
            # Drive the netlist into the row's source state.
            if row.state in ("HALF", "FULL"):
                sim.step({"in_data": 1, "in_valid": 1, "stop_in": 0})
            if row.state == "FULL":
                sim.step({"in_data": 2, "in_valid": 1, "stop_in": 1})
            outs = sim.settle({
                "in_data": 3, "in_valid": int(row.in_valid),
                "stop_in": int(row.stop_in),
            })
            assert outs["out_valid"] == int(row.out_valid), row
            assert outs["stop_out"] == int(row.stop_out), row

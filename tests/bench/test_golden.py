"""Golden-file regression over the whole reproduction campaign.

Every experiment here is cycle-deterministic, so its regenerated table
must match the checked-in golden byte for byte.  Any semantic change to
the protocol, the analyses or the workloads shows up as a diff — the
cheapest possible guard that the reproduced numbers stay reproduced.

Regenerate (after an *intentional* change) with::

    python -c "import tests.bench.test_golden as g; g.regenerate()"
"""

import os

import pytest

from repro.bench.runner import EXPERIMENTS

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "..", "golden",
                           "campaign.txt")

#: Experiments excluded from the golden file (wall-clock dependent).
NON_DETERMINISTIC = {"EXP-D2"}


def render_campaign() -> str:
    chunks = []
    for exp_id, (description, runner) in EXPERIMENTS.items():
        if exp_id in NON_DETERMINISTIC:
            continue
        table, _rows = runner()
        chunks.append(f"[{exp_id}] {description}\n\n{table}\n")
    return "\n".join(chunks)


def regenerate() -> None:  # pragma: no cover - maintenance helper
    with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
        fh.write(render_campaign())


class TestGoldenCampaign:
    @pytest.fixture(scope="class")
    def rendered(self):
        return render_campaign()

    @pytest.fixture(scope="class")
    def golden(self):
        with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
            return fh.read()

    def test_campaign_matches_golden(self, rendered, golden):
        if rendered != golden:
            # Produce a compact, reviewable diff on failure.
            import difflib

            diff = "\n".join(difflib.unified_diff(
                golden.splitlines(), rendered.splitlines(),
                fromfile="golden", tofile="current", lineterm="", n=2))
            pytest.fail(
                "campaign output drifted from the golden file:\n" + diff
            )

    def test_golden_contains_headline_numbers(self, golden):
        for marker in ("predicted T=4/5", "S/(S+R)", "(m-i)/m",
                       "PASS", "deadlock", "live"):
            assert marker in golden

    def test_golden_covers_all_deterministic_experiments(self, golden):
        for exp_id in EXPERIMENTS:
            if exp_id in NON_DETERMINISTIC:
                assert f"[{exp_id}]" not in golden
            else:
                assert f"[{exp_id}]" in golden

"""Tests for the topology builders."""

import pytest

from repro.errors import StructuralError
from repro.graph import (
    composed,
    figure1,
    figure2,
    loop_with_tail,
    pipeline,
    reconvergent,
    ring,
    self_loop,
    tree,
)


class TestPipeline:
    def test_structure(self):
        g = pipeline(3, relays_per_hop=2)
        assert len(g.shells()) == 3
        assert g.relay_count() == 4  # two inter-shell hops

    def test_minimum_stage(self):
        with pytest.raises(StructuralError):
            pipeline(0)

    def test_elaborates_and_runs(self):
        system = pipeline(2).elaborate()
        system.run(10)
        assert system.sinks["out"].payloads


class TestTree:
    def test_leaf_count(self):
        g = tree(depth=3)
        assert len(g.sources()) == 8
        assert len(g.shells()) == 7

    def test_depth_one(self):
        g = tree(depth=1)
        assert len(g.shells()) == 1
        assert len(g.sources()) == 2

    def test_bad_depth(self):
        with pytest.raises(StructuralError):
            tree(0)

    def test_nonbinary_rejected(self):
        with pytest.raises(StructuralError):
            tree(2, branching=3)

    def test_tree_sums_sources(self):
        system = tree(depth=2).elaborate()
        system.run(30)
        payloads = system.sinks["out"].payloads
        # After the transient the root emits 4 * k (four counting leaves).
        tail = payloads[-5:]
        diffs = [b - a for a, b in zip(tail, tail[1:])]
        assert all(d == 4 for d in diffs)


class TestReconvergent:
    def test_figure1_is_default(self):
        g = reconvergent()
        f = figure1()
        assert g.relay_count() == f.relay_count() == 3
        assert len(g.shells()) == len(f.shells()) == 3

    def test_intermediate_shells(self):
        g = reconvergent(long_relays=(1, 1, 1), short_relays=1)
        # A, C plus two intermediates on the long branch.
        assert len(g.shells()) == 4

    def test_empty_long_branch_rejected(self):
        with pytest.raises(StructuralError):
            reconvergent(long_relays=())

    def test_join_ports(self):
        g = figure1()
        join_edges = g.in_edges("C")
        assert sorted(e.dst_port for e in join_edges) == ["a", "b"]


class TestRing:
    def test_relay_distribution(self):
        g = ring(shells=3, relays_per_arc=[1, 2, 1])
        assert g.relay_count() == 4

    def test_spec_count_mismatch(self):
        with pytest.raises(StructuralError):
            ring(shells=3, relays_per_arc=[1, 2])

    def test_zero_shells_rejected(self):
        with pytest.raises(StructuralError):
            ring(0)

    def test_tap_sink_optional(self):
        g = ring(2, tap_sink=False)
        assert not g.sinks()

    def test_figure2(self):
        g = figure2()
        assert len(g.shells()) == 2
        assert g.relay_count() == 2
        assert not g.is_feedforward()


class TestSelfLoop:
    def test_one_shell_cycle(self):
        g = self_loop(relays=2)
        cycles = g.shell_cycles()
        assert cycles == [["A"]]

    def test_elaborates(self):
        system = self_loop(relays=1).elaborate()
        system.run(20)
        assert system.sinks["out"].payloads


class TestComposites:
    def test_loop_with_tail_structure(self):
        g = loop_with_tail(loop_shells=2, loop_relays=3, tail_shells=2)
        assert not g.is_feedforward()
        (cycle,) = g.shell_cycles()
        shells, relays = g.loop_census(cycle)
        assert (shells, relays) == (2, 3)

    def test_loop_relays_lower_bound(self):
        with pytest.raises(StructuralError):
            loop_with_tail(loop_shells=3, loop_relays=2)

    def test_composed_has_loop_and_reconvergence(self):
        from repro.analysis import classify

        g = composed()
        assert classify(g) == (
            "feed-forward combination of self-interacting loops")

    def test_composed_elaborates(self):
        system = composed().elaborate()
        system.run(20)
        assert system.sinks["out"].payloads

"""Manifest validation and canonical-identity tests."""

import pytest

from repro.serve import Manifest, ManifestError


class TestValidation:
    def test_defaults_mirror_cli(self):
        m = Manifest.from_dict({"kind": "campaign"})
        assert m.topology == "feedback"
        assert m.variant == "casu"
        assert m.engine == "lid" and m.backend == "auto"
        assert m.faults == ("stop", "void")
        assert m.cycles == 200 and m.samples == 64
        assert m.window is None and not m.exhaustive and not m.strict
        assert m.format == "json"

    def test_smoke_pins_cycles_and_samples(self):
        m = Manifest.from_dict({"kind": "campaign", "smoke": True})
        assert (m.cycles, m.samples, m.exhaustive) == (64, 12, False)

    def test_smoke_conflicts_with_cycles(self):
        with pytest.raises(ManifestError, match="smoke fixes"):
            Manifest.from_dict({"kind": "campaign", "smoke": True,
                                "cycles": 100})

    @pytest.mark.parametrize("payload,fragment", [
        (None, "JSON object"),
        ({}, "kind"),
        ({"kind": "nope"}, "kind"),
        ({"kind": "campaign", "topology": "moebius"},
         "unknown topology"),
        ({"kind": "campaign", "variant": "x"}, "variant"),
        ({"kind": "campaign", "engine": "x"}, "engine"),
        ({"kind": "campaign", "backend": "x"}, "backend"),
        ({"kind": "campaign", "faults": "bogus"}, "fault"),
        ({"kind": "campaign", "faults": ""}, "faults"),
        ({"kind": "campaign", "cycles": 0}, "cycles"),
        ({"kind": "campaign", "cycles": "ten"}, "integer"),
        ({"kind": "campaign", "samples": -1}, "samples"),
        ({"kind": "campaign", "window": [5]}, "window"),
        ({"kind": "campaign", "window": [30, 10]}, "window"),
        ({"kind": "campaign", "window": [0, 999]}, "window"),
        ({"kind": "campaign", "window": "abc"}, "window"),
        ({"kind": "campaign", "format": "xml"}, "format"),
        ({"kind": "campaign", "strict": "yes"}, "boolean"),
        ({"kind": "campaign", "max_cycles": 5}, "unknown manifest"),
        ({"kind": "deadlock", "max_cycles": 0}, "max_cycles"),
        ({"kind": "deadlock", "cycles": 10}, "unknown manifest"),
        ({"kind": "series"}, "which"),
        ({"kind": "series", "which": "nope"}, "which"),
    ])
    def test_rejects(self, payload, fragment):
        with pytest.raises(ManifestError, match=fragment):
            Manifest.from_dict(payload)

    def test_window_string_and_list_agree(self):
        a = Manifest.from_dict({"kind": "campaign", "window": "10:20"})
        b = Manifest.from_dict({"kind": "campaign", "window": [10, 20]})
        assert a.window == b.window == (10, 20)

    def test_faults_string_and_list_agree(self):
        a = Manifest.from_dict({"kind": "campaign",
                                "faults": "stop, void"})
        b = Manifest.from_dict({"kind": "campaign",
                                "faults": ["stop", "void"]})
        assert a.faults == b.faults == ("stop", "void")

    def test_round_trip(self):
        m = Manifest.from_dict({"kind": "campaign", "smoke": True,
                                "format": "table", "seed": 7})
        assert Manifest.from_dict(m.to_dict()) == m
        d = Manifest.from_dict({"kind": "deadlock",
                                "topology": "ring:shells=3"})
        assert Manifest.from_dict(d.to_dict()) == d


class TestIdentity:
    def test_params_match_cli_ledger_dict(self):
        """The canonical params dict must be key-for-key what the CLI
        writes into inject-campaign ledger records."""
        m = Manifest.from_dict({"kind": "campaign", "smoke": True})
        assert m.params() == {
            "engine": "lid", "backend": "auto", "cycles": 64,
            "samples": 12, "seed": 0, "classes": ["stop", "void"],
            "exhaustive": False, "window": None, "strict": False,
        }

    def test_deadlock_params(self):
        m = Manifest.from_dict({"kind": "deadlock", "seed": 3})
        assert m.params() == {"max_cycles": 10_000, "seed": 3}

    def test_span_matches_ledger_span_id(self):
        from repro.obs import span_id

        m = Manifest.from_dict({"kind": "campaign", "smoke": True})
        fp = "f" * 64
        assert m.span(fp) == span_id("inject-campaign", fp, "casu",
                                     m.params())

    def test_stream_does_not_change_identity(self):
        a = Manifest.from_dict({"kind": "campaign", "smoke": True})
        b = Manifest.from_dict({"kind": "campaign", "smoke": True,
                                "stream": True})
        assert a.params() == b.params()
        assert a.span("f" * 64) == b.span("f" * 64)

"""Arithmetic pearls: the combinational-datapath staples.

These model the kind of functional modules a System-on-Chip floorplan
would scatter across long interconnect: adders, multipliers, ALUs.
Each is a Moore machine whose output register holds the result of the
previous firing (initial value configurable).
"""

from __future__ import annotations

from typing import Any, Dict

from .base import Pearl


class Identity(Pearl):
    """Forward the input payload unchanged (a named wire with a register).

    Used heavily in the figure-regeneration benches, where the paper's
    traces show raw token indices flowing through the system.
    """

    input_ports = ("a",)
    output_ports = ("out",)

    def __init__(self, initial: Any = 0):
        self.initial = initial

    def reset(self) -> Dict[str, Any]:
        return {"out": self.initial}

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        return {"out": inputs["a"]}


class Adder(Pearl):
    """out = a + b."""

    input_ports = ("a", "b")
    output_ports = ("out",)

    def __init__(self, initial: Any = 0):
        self.initial = initial

    def reset(self) -> Dict[str, Any]:
        return {"out": self.initial}

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        return {"out": inputs["a"] + inputs["b"]}


class Subtractor(Pearl):
    """out = a - b."""

    input_ports = ("a", "b")
    output_ports = ("out",)

    def __init__(self, initial: Any = 0):
        self.initial = initial

    def reset(self) -> Dict[str, Any]:
        return {"out": self.initial}

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        return {"out": inputs["a"] - inputs["b"]}


class Multiplier(Pearl):
    """out = a * b."""

    input_ports = ("a", "b")
    output_ports = ("out",)

    def __init__(self, initial: Any = 0):
        self.initial = initial

    def reset(self) -> Dict[str, Any]:
        return {"out": self.initial}

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        return {"out": inputs["a"] * inputs["b"]}


class Scaler(Pearl):
    """out = gain * a  (one-input constant multiplier)."""

    input_ports = ("a",)
    output_ports = ("out",)

    def __init__(self, gain: Any, initial: Any = 0):
        self.gain = gain
        self.initial = initial

    def reset(self) -> Dict[str, Any]:
        return {"out": self.initial}

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        return {"out": self.gain * inputs["a"]}


class Maximum(Pearl):
    """out = max(a, b) — a comparator datapath."""

    input_ports = ("a", "b")
    output_ports = ("out",)

    def __init__(self, initial: Any = 0):
        self.initial = initial

    def reset(self) -> Dict[str, Any]:
        return {"out": self.initial}

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        return {"out": max(inputs["a"], inputs["b"])}


class Alu(Pearl):
    """A small ALU: ``op`` selects among add/sub/mul/min/max.

    Demonstrates a pearl with a control input; the shell treats all
    inputs uniformly (single-rate firing), as the LID theory requires.
    """

    input_ports = ("op", "a", "b")
    output_ports = ("out",)

    _OPS = {
        "add": lambda a, b: a + b,
        "sub": lambda a, b: a - b,
        "mul": lambda a, b: a * b,
        "min": min,
        "max": max,
    }

    def __init__(self, initial: Any = 0):
        self.initial = initial

    def reset(self) -> Dict[str, Any]:
        return {"out": self.initial}

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        op = inputs["op"]
        try:
            fn = self._OPS[op]
        except KeyError:
            raise ValueError(f"Alu: unknown op {op!r}") from None
        return {"out": fn(inputs["a"], inputs["b"])}

"""Pearl interface: the functional modules that shells encapsulate.

The paper (after Carloni) calls the original, latency-assuming module
the *pearl* and its latency-insensitive wrapper the *shell*.  A pearl in
this package is a deterministic Moore machine over Python payloads:

* ``input_ports`` / ``output_ports`` — ordered port names;
* ``reset() -> {port: payload}`` — initialize internal state and return
  the initial output payloads (shell output registers start *valid*
  with exactly these values, per the paper's footnote 1);
* ``step({port: payload}) -> {port: payload}`` — one synchronous
  transition consuming one token per input and producing one per output.

Pearls must be *stallable by construction*: the shell simply refrains
from calling :meth:`step` while gated, so any object with deterministic
``step`` semantics works.  Determinism matters because the
latency-equivalence oracle replays the same pearl in the zero-latency
reference system.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Sequence, Tuple


class Pearl:
    """Base class for pearls; subclasses set ports and override hooks."""

    input_ports: Tuple[str, ...] = ()
    output_ports: Tuple[str, ...] = ("out",)

    def reset(self) -> Dict[str, Any]:
        """Initialize state; return initial output payloads."""
        raise NotImplementedError

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        """One synchronous transition."""
        raise NotImplementedError

    def clone(self) -> "Pearl":
        """A fresh, reset-equivalent copy of this pearl."""
        return copy.deepcopy(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(in={list(self.input_ports)}, "
            f"out={list(self.output_ports)})"
        )


class FunctionPearl(Pearl):
    """A pearl computing a pure function of its inputs each cycle.

    Parameters
    ----------
    fn:
        Callable applied to the input payloads *in port order*; its
        return value becomes the payload of the single output port.
    inputs / output:
        Port names.
    initial:
        Initial output payload presented before the first firing.

    Example::

        adder = FunctionPearl(lambda a, b: a + b, inputs=("a", "b"))
    """

    def __init__(
        self,
        fn: Callable[..., Any],
        inputs: Sequence[str] = ("a",),
        output: str = "out",
        initial: Any = 0,
    ):
        self.fn = fn
        self.input_ports = tuple(inputs)
        self.output_ports = (output,)
        self.initial = initial

    def reset(self) -> Dict[str, Any]:
        return {self.output_ports[0]: self.initial}

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        args = [inputs[p] for p in self.input_ports]
        return {self.output_ports[0]: self.fn(*args)}


class MultiOutputPearl(Pearl):
    """A pure-function pearl with several outputs.

    *fn* receives the input payloads in port order and must return a
    mapping from output port name to payload.
    """

    def __init__(
        self,
        fn: Callable[..., Dict[str, Any]],
        inputs: Sequence[str],
        outputs: Sequence[str],
        initial: Dict[str, Any] | None = None,
    ):
        self.fn = fn
        self.input_ports = tuple(inputs)
        self.output_ports = tuple(outputs)
        self.initial = dict(initial or {p: 0 for p in outputs})

    def reset(self) -> Dict[str, Any]:
        return dict(self.initial)

    def step(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        args = [inputs[p] for p in self.input_ports]
        produced = self.fn(*args)
        missing = set(self.output_ports) - set(produced)
        if missing:
            raise ValueError(
                f"{type(self).__name__}: step did not produce ports {missing}"
            )
        return {p: produced[p] for p in self.output_ports}

"""Tests for the content-addressed result cache and graph fingerprint."""

import os

import pytest

from repro.exec import (
    GraphRef,
    ResultCache,
    atomic_write_bytes,
    default_cache_dir,
    graph_fingerprint,
)
from repro.graph import figure2, ring


class TestResultCache:
    def test_memory_hit_and_miss_counters(self):
        cache = ResultCache.memory()
        key = cache.key("golden", "abc", 100)
        assert cache.get(key) is None
        cache.put(key, {"period": 5})
        assert cache.get(key) == {"period": 5}
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_memory_layer_is_lru_bounded(self):
        cache = ResultCache.memory(maxsize=2)
        keys = [cache.key("entry", i) for i in range(3)]
        cache.put(keys[0], "a")
        cache.put(keys[1], "b")
        assert cache.get(keys[0]) == "a"  # refresh: 0 is now newest
        cache.put(keys[2], "c")  # evicts 1, the least recently used
        assert cache.stats.evictions == 1
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) == "a"
        assert cache.get(keys[2]) == "c"

    def test_maxsize_none_is_unbounded(self):
        cache = ResultCache.memory(maxsize=None)
        keys = [cache.key("entry", i) for i in range(100)]
        for i, key in enumerate(keys):
            cache.put(key, i)
        assert all(cache.get(key) == i for i, key in enumerate(keys))
        assert cache.stats.evictions == 0

    def test_maxsize_must_be_positive_or_none(self):
        with pytest.raises(ValueError, match="maxsize"):
            ResultCache.memory(maxsize=0)

    def test_eviction_with_disk_layer_repromotes(self, tmp_path):
        cache = ResultCache.disk(str(tmp_path / "cache"), maxsize=1)
        k1, k2 = cache.key("one"), cache.key("two")
        cache.put(k1, [1])
        cache.put(k2, [2])  # evicts k1 from memory, not from disk
        assert cache.stats.evictions == 1
        assert cache.get(k1) == [1]  # reloaded from disk
        assert cache.stats.hits == 1

    def test_stats_dict_exposes_evictions(self):
        cache = ResultCache.memory(maxsize=1)
        cache.put(cache.key("a"), 1)
        cache.put(cache.key("b"), 2)
        assert cache.stats.to_dict() == {
            "hits": 0, "misses": 0, "evictions": 1}

    def test_disk_roundtrip_across_instances(self, tmp_path):
        directory = str(tmp_path / "cache")
        first = ResultCache.disk(directory)
        key = first.key("golden", "fingerprint", 200)
        first.put(key, [1, 2, 3])
        # A fresh instance (fresh process, conceptually) reads the disk
        # layer and promotes the entry into its memory layer.
        second = ResultCache.disk(directory)
        assert second.get(key) == [1, 2, 3]
        assert second.stats.hits == 1
        assert second.get(key) == [1, 2, 3]  # now served from memory

    def test_cached_none_counts_as_hit(self, tmp_path):
        cache = ResultCache.disk(str(tmp_path / "cache"))
        key = cache.key("maybe")
        cache.put(key, None)
        fresh = ResultCache.disk(str(tmp_path / "cache"))
        assert fresh.get(key) is None
        assert fresh.stats.hits == 1 and fresh.stats.misses == 0

    def test_poisoned_entry_warns_misses_and_unlinks(self, tmp_path,
                                                    capsys):
        directory = str(tmp_path / "cache")
        cache = ResultCache.disk(directory)
        key = cache.key("golden")
        cache.put(key, {"big": list(range(100))})
        path = cache._path(key)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])  # truncate: torn write sim

        fresh = ResultCache.disk(directory)
        assert fresh.get(key) is None
        assert fresh.stats.misses == 1
        assert "poisoned cache entry" in capsys.readouterr().err
        assert not os.path.exists(path)
        # A subsequent read is a clean (silent) miss, not a re-warning.
        again = ResultCache.disk(directory)
        assert again.get(key) is None
        assert "poisoned" not in capsys.readouterr().err

    def test_unwritable_directory_degrades_to_memory(self, tmp_path,
                                                     capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the cache dir should be")
        cache = ResultCache(directory=str(blocker / "cache"))
        key = cache.key("x")
        cache.put(key, 41)
        assert "continuing without the disk layer" in (
            capsys.readouterr().err)
        assert cache.get(key) == 41  # memory layer still works
        cache.put(cache.key("y"), 42)  # second put warns at most once
        assert "continuing" not in capsys.readouterr().err

    def test_key_depends_on_parts(self):
        cache = ResultCache.memory()
        assert cache.key("golden", 1) != cache.key("golden", 2)
        assert cache.key("golden", 1) == cache.key("golden", 1)

    def test_default_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LID_CACHE_DIR", str(tmp_path / "env"))
        assert default_cache_dir() == str(tmp_path / "env")


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = str(tmp_path / "sub" / "file.bin")
        atomic_write_bytes(path, b"one")
        atomic_write_bytes(path, b"two")
        assert open(path, "rb").read() == b"two"
        # No stray temp files left behind.
        assert os.listdir(os.path.dirname(path)) == ["file.bin"]


class TestGraphFingerprint:
    def test_deterministic_across_builds(self):
        assert graph_fingerprint(figure2()) == graph_fingerprint(figure2())

    def test_independent_builds_hit_the_same_cache_entry(self):
        """Content addressing: two separately constructed but identical
        graphs must map to one cache entry — the fingerprint derives
        from the canonical IR, not from pickle bytes or object ids."""
        cache = ResultCache.memory()
        key_a = cache.key("golden", graph_fingerprint(figure2()), 100)
        cache.put(key_a, {"period": 2})
        key_b = cache.key("golden", graph_fingerprint(figure2()), 100)
        assert key_b == key_a
        assert cache.get(key_b) == {"period": 2}
        assert cache.stats.hits == 1

    def test_declaration_order_does_not_change_the_key(self):
        from repro.graph.model import SystemGraph
        from repro.pearls import Identity

        def build(order):
            graph = SystemGraph("g")
            adders = {
                "src": lambda: graph.add_source("src"),
                "a": lambda: graph.add_shell("a", Identity),
                "out": lambda: graph.add_sink("out"),
            }
            for name in order:
                adders[name]()
            graph.add_edge("src", "a")
            graph.add_edge("a", "out", relays=1)
            return graph

        assert graph_fingerprint(build(["src", "a", "out"])) == \
            graph_fingerprint(build(["out", "a", "src"]))

    def test_stop_scripts_participate(self):
        plain = figure2()
        scripted = figure2()
        sink = next(n for n in scripted.nodes
                    if scripted.nodes[n].kind == "sink")
        object.__setattr__(scripted.nodes[sink], "stop_script",
                           lambda c: c % 2 == 0)
        assert graph_fingerprint(plain) != graph_fingerprint(scripted)

    def test_structure_sensitive(self):
        assert (graph_fingerprint(ring(2, relays_per_arc=1))
                != graph_fingerprint(ring(2, relays_per_arc=2)))
        assert (graph_fingerprint(figure2())
                != graph_fingerprint(ring(3, relays_per_arc=1)))

    def test_structurally_identical_graphs_alias(self):
        # figure2 *is* a 2-ring with one relay per arc; only the
        # display name differs, and names are labels, not structure.
        assert (graph_fingerprint(figure2())
                == graph_fingerprint(ring(2, relays_per_arc=1)))


class TestGraphRef:
    def test_spec_ref_materializes_and_memoizes(self):
        ref = GraphRef.from_spec("ring:shells=2,relays=2")
        graph = ref.materialize()
        assert ref.materialize() is graph  # per-process memo
        assert graph_fingerprint(graph) == graph_fingerprint(
            ring(2, relays_per_arc=2))

    def test_factory_ref(self):
        ref = GraphRef.from_factory("repro.graph:figure2")
        assert graph_fingerprint(ref.materialize()) == graph_fingerprint(
            figure2())

    def test_picklable_graph_roundtrips_by_value(self):
        ref = GraphRef.from_graph(figure2())
        assert graph_fingerprint(ref.materialize()) == graph_fingerprint(
            figure2())

    def test_by_value_refs_compare_by_fingerprint_not_bytes(self):
        """Two refs wrapping independently built identical graphs are
        equal (and hash equal) even though their pickle payloads may
        differ byte-for-byte."""
        ref_a = GraphRef.from_graph(figure2())
        ref_b = GraphRef.from_graph(figure2())
        assert ref_a == ref_b
        assert hash(ref_a) == hash(ref_b)
        assert len({ref_a, ref_b}) == 1
        # Different structures stay distinct.
        ref_c = GraphRef.from_graph(ring(2, relays_per_arc=2))
        assert ref_a != ref_c

    def test_equal_by_value_refs_share_the_materialize_memo(self):
        ref_a = GraphRef.from_graph(figure2())
        ref_b = GraphRef.from_graph(figure2())
        assert ref_a.materialize() is ref_b.materialize()

    def test_unpicklable_graph_gets_actionable_error(self):
        from repro.errors import ExecutionError

        graph = figure2()
        sink = next(n for n in graph.nodes
                    if graph.nodes[n].kind == "sink")
        object.__setattr__(graph.nodes[sink], "stop_script",
                           lambda c: False)
        with pytest.raises(ExecutionError, match="from_spec"):
            GraphRef.from_graph(graph)

"""Unit tests for kernel signals."""

import pytest

from repro.kernel.signal import Signal, SignalBundle


class TestSignal:
    def test_initial_value_is_default(self):
        sig = Signal("s", default=False)
        assert sig.value is False

    def test_set_changes_value(self):
        sig = Signal("s", default=0)
        sig.set(3)
        assert sig.value == 3

    def test_set_marks_changed(self):
        sig = Signal("s", default=0)
        sig.set(1)
        assert sig.consume_changed() is True

    def test_set_same_value_not_changed(self):
        sig = Signal("s", default=0)
        sig.set(0)
        assert sig.consume_changed() is False

    def test_consume_changed_clears_flag(self):
        sig = Signal("s", default=0)
        sig.set(1)
        sig.consume_changed()
        assert sig.consume_changed() is False

    def test_reset_for_settle_restores_default(self):
        sig = Signal("s", default=False)
        sig.set(True)
        sig.reset_for_settle()
        assert sig.value is False

    def test_sticky_survives_settle_reset(self):
        sig = Signal("s", default=0, sticky=True)
        sig.set(7)
        sig.reset_for_settle()
        assert sig.value == 7

    def test_reset_for_settle_clears_changed(self):
        sig = Signal("s", default=0)
        sig.set(5)
        sig.reset_for_settle()
        assert sig.consume_changed() is False

    def test_none_default(self):
        sig = Signal("s")
        assert sig.value is None


class TestSignalBundle:
    def test_add_and_len(self):
        bundle = SignalBundle("b")
        bundle.add(Signal("x"))
        bundle.add(Signal("y"))
        assert len(bundle) == 2

    def test_values_in_insertion_order(self):
        bundle = SignalBundle("b")
        a = bundle.add(Signal("a", default=1))
        b = bundle.add(Signal("b", default=2))
        assert bundle.values() == [1, 2]
        a.set(10)
        assert bundle.values() == [10, 2]

    def test_iteration(self):
        sigs = [Signal("a"), Signal("b")]
        bundle = SignalBundle("b", sigs)
        assert list(bundle) == sigs

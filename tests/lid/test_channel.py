"""Unit tests for channels."""

import pytest

from repro.errors import StructuralError
from repro.kernel.scheduler import Simulator
from repro.lid.channel import Channel
from repro.lid.token import Token, VOID


@pytest.fixture
def chan():
    return Channel.create(Simulator(), "c")


class TestChannelSignals:
    def test_create_registers_three_signals(self):
        sim = Simulator()
        Channel.create(sim, "x")
        assert sim.find_signal("x.data") is not None
        assert sim.find_signal("x.valid") is not None
        assert sim.find_signal("x.stop") is not None

    def test_stop_defaults_false(self, chan):
        assert chan.stop_asserted() is False

    def test_drive_valid_token(self, chan):
        chan.drive(Token(5))
        assert chan.valid.value is True
        assert chan.data.value == 5

    def test_drive_void(self, chan):
        chan.drive(Token(5))
        chan.drive(VOID)
        assert chan.valid.value is False
        assert chan.data.value is None

    def test_read_roundtrip(self, chan):
        chan.drive(Token("payload"))
        assert chan.read() == Token("payload")

    def test_read_void(self, chan):
        assert chan.read() is VOID

    def test_set_stop(self, chan):
        chan.set_stop(True)
        assert chan.stop_asserted() is True


class TestChannelBinding:
    def test_single_producer(self, chan):
        chan.bind_producer("A")
        with pytest.raises(StructuralError):
            chan.bind_producer("B")

    def test_single_consumer(self, chan):
        chan.bind_consumer("A")
        with pytest.raises(StructuralError):
            chan.bind_consumer("B")

    def test_rebind_same_name_ok(self, chan):
        chan.bind_producer("A")
        chan.bind_producer("A")
        assert chan.producer == "A"

"""Content-addressed result cache: golden runs, periodicity verdicts.

Every ``repro-lid inject`` invocation used to re-simulate the
fault-free golden run from scratch, and every ``analyze``/``deadlock``
re-ran the skeleton to periodicity.  Those results are pure functions
of ``(graph, variant, cycles, seed)``, so they are cached here,
content-addressed:

* the **graph fingerprint** (:func:`graph_fingerprint`) combines the
  canonical IR structural fingerprint
  (:func:`repro.ir.structural_fingerprint` — nodes, kinds, queue
  depths, edges, relay chains, in sorted canonical order) with the
  *behaviour* of the attached callables — code objects of pearl
  factories and stream factories, and the sampled output bits of every
  sink stop script over the run length.  Editing a stop script or
  swapping a pearl changes the key; renaming a file, reordering
  declarations or re-building the same topology from scratch does not;
* the **key** additionally folds in the cache schema version and the
  git revision of the package, so entries never survive a code change
  that could alter simulation semantics (invalidation is by
  *unreachability*: stale entries are simply never looked up again).

Storage is two-level: an in-process dict, plus an optional on-disk
layer under ``~/.cache/repro-lid/`` (override with
``$REPRO_LID_CACHE_DIR`` or ``directory=``).  Disk writes are atomic —
``mkstemp`` + ``os.replace``, the same pattern as the bench runner's
``_atomic_write_text`` — so readers never see a torn entry.  Reads are
poison-tolerant: a truncated or unpicklable file is a *warning and a
miss*, never a crash; the offender is unlinked so it cannot warn
twice.
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import os
import pickle
import sys
import tempfile
from typing import Any, Callable, Optional, Tuple

from ..graph.model import SystemGraph

#: Bump to orphan every existing entry (format or semantics change).
#: v2: graph fingerprints switched from ad-hoc structure hashing to the
#: canonical IR structural fingerprint (repro-ir/v1).
CACHE_SCHEMA = "repro-lid-cache/v2"

#: Sentinel distinguishing "cached None" from "not cached".
_MISS = object()


def default_cache_dir() -> str:
    """``$REPRO_LID_CACHE_DIR`` or ``~/.cache/repro-lid``."""
    override = os.environ.get("REPRO_LID_CACHE_DIR")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-lid")


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write *data* to *path* atomically (mkstemp + ``os.replace``)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _callable_fingerprint(fn: Optional[Callable]) -> str:
    """Stable-ish content hash of a callable's behaviour.

    Functions and lambdas hash their bytecode, constants and closure
    values; classes and builtins hash their qualified name.  This is a
    *cache key* component, not a proof of equality — a collision risk
    this low only ever costs a stale golden run keyed under the same
    git revision, and the revision changes with every commit.
    """
    if fn is None:
        return "none"
    code = getattr(fn, "__code__", None)
    if code is not None:
        closure = getattr(fn, "__closure__", None) or ()
        cells = []
        for cell in closure:
            try:
                cells.append(repr(cell.cell_contents))
            except Exception:
                cells.append("<opaque>")
        return hashlib.sha256(
            code.co_code
            + repr(code.co_consts).encode()
            + repr(cells).encode()
        ).hexdigest()
    return f"{getattr(fn, '__module__', '?')}:" \
           f"{getattr(fn, '__qualname__', repr(fn))}"


def graph_fingerprint(graph: SystemGraph, cycles: int = 256) -> str:
    """sha256 of the graph's structure and attached behaviour.

    Structure comes from the canonical IR fingerprint
    (:func:`repro.ir.structural_fingerprint`): declaration order and
    pickle bytes do not participate, so two independently built
    identical topologies share a key.  Behaviour is layered on top per
    node in sorted-name order: pearl/stream factory code hashes and
    sampled sink stop-script bits.  *cycles* bounds the script
    sampling — callers should pass at least the run length they are
    caching for, so that two scripts differing only beyond the sampled
    horizon cannot share a key for a run that would tell them apart.
    """
    from ..ir import lower

    lowered = lower(graph)
    hasher = hashlib.sha256()
    hasher.update(lowered.fingerprint.encode())
    for node in sorted(lowered.nodes, key=lambda n: n.name):
        hasher.update(f"|node:{node.name}".encode())
        hasher.update(_callable_fingerprint(node.pearl_factory).encode())
        hasher.update(_callable_fingerprint(node.stream_factory).encode())
        if node.stop_script is not None:
            bits = "".join(
                "1" if node.stop_script(c) else "0"
                for c in range(max(1, cycles)))
            hasher.update(f"|script:{bits}".encode())
        else:
            hasher.update(b"|script:none")
    return hasher.hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Hit/miss/eviction counters — surfaced in campaign headers.

    ``coalesced`` counts callers that shared an in-flight computation
    instead of re-running it (single-flight request coalescing, see
    :mod:`repro.exec.flight`); ``gc_files`` / ``gc_bytes`` account for
    disk entries reclaimed by :meth:`ResultCache.gc`.  The newer
    counters appear in :meth:`to_dict` only when nonzero, so reports
    from flows that never coalesce or collect stay byte-stable.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    coalesced: int = 0
    gc_files: int = 0
    gc_bytes: int = 0

    def to_dict(self) -> dict:
        stats = {"hits": self.hits, "misses": self.misses,
                 "evictions": self.evictions}
        if self.coalesced:
            stats["coalesced"] = self.coalesced
        if self.gc_files or self.gc_bytes:
            stats["gc_files"] = self.gc_files
            stats["gc_bytes"] = self.gc_bytes
        return stats


#: Default disk-layer byte budget for :meth:`ResultCache.gc` — generous
#: (a golden-run entry is a few KiB, so this holds hundreds of
#: thousands of runs) but finite: a long-running campaign server keeps
#: appending entries forever and must not fill the disk.  Override
#: with ``$REPRO_LID_CACHE_MAX_BYTES``; ``0`` disables collection.
DEFAULT_CACHE_MAX_BYTES = 2 * 1024 ** 3

#: Run a GC sweep every this many disk writes (plus one at
#: :meth:`ResultCache.disk` construction when a budget is configured).
GC_WRITE_INTERVAL = 64


def cache_max_bytes() -> int:
    """Disk budget: ``$REPRO_LID_CACHE_MAX_BYTES`` or the default.

    A non-positive or malformed value disables GC (returns 0) — an
    operator who sets the variable to ``0`` is explicitly asking for
    the old unbounded behaviour.
    """
    text = os.environ.get("REPRO_LID_CACHE_MAX_BYTES")
    if text is None:
        return DEFAULT_CACHE_MAX_BYTES
    try:
        value = int(text)
    except ValueError:
        print(f"warning: ignoring malformed "
              f"REPRO_LID_CACHE_MAX_BYTES={text!r}", file=sys.stderr)
        return DEFAULT_CACHE_MAX_BYTES
    return max(value, 0)


#: Default memory-layer bound.  Generous — a campaign touches a handful
#: of golden runs and verdicts per topology — but finite, so a
#: long-lived process sweeping thousands of graphs no longer grows its
#: cache without limit.  Disk entries are never evicted: an evicted key
#: with a disk layer is re-promoted on the next ``get``.
DEFAULT_MEMORY_ENTRIES = 4096


class ResultCache:
    """Two-level (memory + optional disk) content-addressed store.

    The memory layer is LRU-bounded to *maxsize* entries (``None`` for
    the old unbounded behaviour); evictions only forget the in-process
    copy — values stored with a disk layer survive and reload on demand.
    """

    def __init__(self, directory: Optional[str] = None,
                 maxsize: Optional[int] = DEFAULT_MEMORY_ENTRIES,
                 max_bytes: Optional[int] = None):
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be >= 1 or None, "
                             f"got {maxsize!r}")
        self.directory = directory
        self.maxsize = maxsize
        self.max_bytes = (cache_max_bytes() if max_bytes is None
                          else max(int(max_bytes), 0))
        self.stats = CacheStats()
        self._memory: "collections.OrderedDict[str, Any]" = \
            collections.OrderedDict()
        self._disk_broken = False
        self._disk_writes = 0

    @classmethod
    def disk(cls, directory: Optional[str] = None,
             maxsize: Optional[int] = DEFAULT_MEMORY_ENTRIES,
             max_bytes: Optional[int] = None) -> "ResultCache":
        """Cache backed by the default (or given) on-disk directory."""
        return cls(directory=directory or default_cache_dir(),
                   maxsize=maxsize, max_bytes=max_bytes)

    @classmethod
    def memory(cls,
               maxsize: Optional[int] = DEFAULT_MEMORY_ENTRIES
               ) -> "ResultCache":
        """In-process cache only (tests, one-shot programs)."""
        return cls(directory=None, maxsize=maxsize)

    def key(self, *parts: Any) -> str:
        """Canonical key: schema + git rev + the caller's parts."""
        from ..bench.runner import git_rev

        text = "|".join([CACHE_SCHEMA, git_rev()]
                        + [str(part) for part in parts])
        return hashlib.sha256(text.encode()).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    def _remember(self, key: str, value: Any) -> None:
        """Insert into the memory layer, evicting LRU past *maxsize*."""
        self._memory[key] = value
        self._memory.move_to_end(key)
        if self.maxsize is not None:
            while len(self._memory) > self.maxsize:
                self._memory.popitem(last=False)
                self.stats.evictions += 1

    def get(self, key: str) -> Any:
        """Cached value or ``None``; counts a hit or a miss."""
        if key in self._memory:
            self.stats.hits += 1
            self._memory.move_to_end(key)
            return self._memory[key]
        value = _MISS
        if self.directory is not None and not self._disk_broken:
            path = self._path(key)
            try:
                with open(path, "rb") as fh:
                    value = pickle.load(fh)
            except FileNotFoundError:
                pass
            except Exception as exc:
                print(f"warning: dropping poisoned cache entry {path}: "
                      f"{type(exc).__name__}: {exc}", file=sys.stderr)
                try:
                    os.unlink(path)
                except OSError:
                    pass
        if value is _MISS:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._remember(key, value)
        return value

    def put(self, key: str, value: Any) -> None:
        """Store under *key*; disk failures degrade to memory-only.

        Every :data:`GC_WRITE_INTERVAL`-th disk write triggers a
        :meth:`gc` sweep so a long-running process (the campaign
        server) keeps the disk layer inside its byte budget without any
        external cron.
        """
        self._remember(key, value)
        if self.directory is None or self._disk_broken:
            return
        try:
            atomic_write_bytes(
                self._path(key),
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception as exc:
            self._disk_broken = True
            print(f"warning: cache directory {self.directory!r} is not "
                  f"writable ({exc}); continuing without the disk layer",
                  file=sys.stderr)
            return
        self._disk_writes += 1
        if self.max_bytes and self._disk_writes % GC_WRITE_INTERVAL == 0:
            self.gc()

    def disk_usage(self) -> int:
        """Total bytes of cache entries currently on disk."""
        if self.directory is None:
            return 0
        total = 0
        try:
            with os.scandir(self.directory) as entries:
                for entry in entries:
                    if entry.name.endswith(".pkl") and entry.is_file():
                        try:
                            total += entry.stat().st_size
                        except OSError:
                            pass
        except OSError:
            return 0
        return total

    def gc(self, max_bytes: Optional[int] = None) -> Tuple[int, int]:
        """Trim the disk layer to *max_bytes* (default: the configured
        budget), oldest entries first.

        Entries are ranked by mtime — ``atomic_write_bytes`` stamps a
        fresh mtime on every put, so recency of *writing* is the
        eviction order (the memory LRU in front of the disk keeps hot
        reads cheap regardless).  Returns ``(files_removed,
        bytes_freed)`` and accumulates both into :attr:`stats`.
        Concurrent removals (another process collecting the same
        directory) are tolerated: a vanished file is simply not counted.
        """
        budget = self.max_bytes if max_bytes is None else max(
            int(max_bytes), 0)
        if self.directory is None or not budget:
            return (0, 0)
        entries = []
        try:
            with os.scandir(self.directory) as scan:
                for entry in scan:
                    if not entry.name.endswith(".pkl") \
                            or not entry.is_file():
                        continue
                    try:
                        stat = entry.stat()
                    except OSError:
                        continue
                    entries.append((stat.st_mtime, stat.st_size,
                                    entry.path))
        except OSError:
            return (0, 0)
        total = sum(size for _mtime, size, _path in entries)
        if total <= budget:
            return (0, 0)
        removed = freed = 0
        for _mtime, size, path in sorted(entries):
            if total <= budget:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            removed += 1
            freed += size
        self.stats.gc_files += removed
        self.stats.gc_bytes += freed
        return (removed, freed)

"""The canonical lowering: tables, fingerprints, memoization, validation."""

import pickle

import pytest

from repro.errors import StructuralError
from repro.graph import figure1, figure2, ring
from repro.graph.model import Edge, SystemGraph
from repro.ir import (
    RS_FULL,
    RS_HALF,
    SHELL,
    SINK,
    SRC,
    STATS,
    LoweredSystem,
    lower,
    structural_fingerprint,
)
from repro.lid.variant import ProtocolVariant
from repro.pearls import Identity


def _two_shell_loop(name="loop"):
    graph = SystemGraph(name)
    graph.add_source("src")
    graph.add_shell("a", lambda: Identity())
    graph.add_shell("b", lambda: Identity())
    graph.add_sink("out")
    graph.add_edge("src", "a")
    graph.add_edge("a", "b", relays=1)
    graph.add_edge("b", "a", relays=1)
    graph.add_edge("b", "out")
    return graph


class TestTables:
    def test_node_and_edge_tables_mirror_the_graph(self):
        graph = _two_shell_loop()
        low = lower(graph)
        assert [n.name for n in low.nodes] == ["src", "a", "b", "out"]
        assert low.shell_names == ("a", "b")
        assert low.source_names == ("src",)
        assert low.sink_names == ("out",)
        assert [(e.src_name, e.dst_name) for e in low.edges] == [
            ("src", "a"), ("a", "b"), ("b", "a"), ("b", "out")]
        # Node indices resolve through the edge table.
        for edge in low.edges:
            assert low.nodes[edge.src].name == edge.src_name
            assert low.nodes[edge.dst].name == edge.dst_name

    def test_relay_chain_expansion_names_and_hops(self):
        low = lower(figure2(2))  # two-shell loop, 2 relays per arc
        assert low.relay_count() == 4
        assert all(r.tag == RS_FULL for r in low.relays)
        # Historical naming contract: "src->dst.rs<pos>" / "src->dst[seg]".
        for relay in low.relays:
            edge = low.edges[relay.edge]
            assert relay.name == \
                f"{edge.src_name}->{edge.dst_name}.rs{relay.pos}"
        for hop in low.hops:
            edge = low.edges[hop.edge]
            assert hop.name.startswith(
                f"{edge.src_name}->{edge.dst_name}[")
        # A chain of R relays splits its edge into R+1 hops.
        for edge in low.edges:
            hops = [h for h in low.hops if h.edge == edge.index]
            assert len(hops) == edge.relay_count + 1

    def test_hop_endpoint_kinds(self):
        low = lower(_two_shell_loop())
        first = [h for h in low.hops if h.edge == 0]
        assert first[0].producer_kind == SRC
        assert first[0].consumer_kind == SHELL
        last = [h for h in low.hops if h.edge == 3]
        assert last[0].producer_kind == SHELL
        assert last[0].consumer_kind == SINK

    def test_shell_registers_one_per_driven_edge(self):
        low = lower(_two_shell_loop())
        # a drives a->b; b drives b->a and b->out.
        assert low.shell_regs == ((0, 1), (1, 2), (1, 3))
        for hop in low.hops:
            if hop.producer_kind == SHELL and hop.seg == 0:
                assert hop.producer_reg >= 0
            else:
                assert hop.producer_reg == -1 or hop.seg == 0

    def test_capability_flags(self):
        full = lower(figure2(1))
        assert full.all_full_relays
        assert not full.has_queued_shells
        assert "relay-full" in full.requirements

        hazard = ring(2, relays_per_arc=[["half"], ["full"]])
        low = lower(hazard)
        assert low.may_be_ambiguous
        assert not low.all_full_relays
        assert {"relay-half", "relay-full"} <= low.requirements

    def test_lower_is_idempotent_on_a_lowering(self):
        low = lower(figure1())
        assert lower(low) is low

    def test_skeleton_view_desugars_queued_shells(self):
        graph = SystemGraph("queued")
        graph.add_source("src")
        graph.add_queued_shell("q", lambda: Identity(),
                               queue_depth=2)
        graph.add_sink("out")
        graph.add_edge("src", "q")
        graph.add_edge("q", "out")
        low = lower(graph)
        assert low.has_queued_shells
        view = low.skeleton_view()
        assert view is not low
        assert not view.has_queued_shells
        assert view is low.skeleton_view()  # cached
        # Queue-free systems are their own skeleton view.
        plain = lower(figure1())
        assert plain.skeleton_view() is plain


class TestFingerprint:
    def test_identical_independent_builds_share_a_fingerprint(self):
        assert structural_fingerprint(_two_shell_loop()) == \
            structural_fingerprint(_two_shell_loop())

    def test_declaration_order_does_not_matter(self):
        a = _two_shell_loop()
        b = SystemGraph("loop")
        b.add_sink("out")
        b.add_shell("b", lambda: Identity())
        b.add_shell("a", lambda: Identity())
        b.add_source("src")
        b.add_edge("b", "out")
        b.add_edge("b", "a", relays=1)
        b.add_edge("a", "b", relays=1)
        b.add_edge("src", "a")
        assert structural_fingerprint(a) == structural_fingerprint(b)

    def test_structure_changes_change_the_fingerprint(self):
        base = structural_fingerprint(_two_shell_loop())
        extra = _two_shell_loop()
        extra.edges[1].relays = ("full", "full")
        assert structural_fingerprint(extra) != base
        half = _two_shell_loop()
        half.edges[1].relays = ("half",)
        assert structural_fingerprint(half) != base

    def test_callables_and_graph_name_do_not_participate(self):
        a = _two_shell_loop()
        b = _two_shell_loop(name="other-label")
        b.nodes["a"].pearl_factory = Identity
        assert structural_fingerprint(a) == structural_fingerprint(b)


class TestMemoization:
    def test_repeat_lowering_is_a_memo_hit(self):
        graph = figure2()
        STATS.reset()
        first = lower(graph)
        assert STATS.lowerings == 1
        assert lower(graph) is first
        assert STATS.memo_hits == 1

    def test_in_place_mutation_invalidates_the_memo(self):
        graph = figure2()
        first = lower(graph)
        graph.edges[0].relays = graph.edges[0].relays + ("full",)
        second = lower(graph)
        assert second is not first
        assert second.fingerprint != first.fingerprint

    def test_memo_does_not_travel_in_pickles(self):
        graph = _two_shell_loop()
        graph.nodes["a"].pearl_factory = Identity
        graph.nodes["b"].pearl_factory = Identity
        lower(graph)
        assert hasattr(graph, "_lowered_cache")
        clone = pickle.loads(pickle.dumps(graph))
        assert not hasattr(clone, "_lowered_cache")
        assert lower(clone).fingerprint == lower(graph).fingerprint


class TestRelaySpecValidation:
    def test_edge_constructor_rejects_unknown_specs(self):
        with pytest.raises(StructuralError) as err:
            Edge("a", "b", relays=("bogus",))
        message = str(err.value)
        assert "bogus" in message
        assert "edge a->b" in message
        assert "variants: carloni, casu" in message

    def test_lower_catches_in_place_chain_edits(self):
        graph = figure2()
        graph.edges[0].relays = ("sideways",)
        with pytest.raises(StructuralError) as err:
            lower(graph)
        message = str(err.value)
        assert "sideways" in message
        assert f"edge {graph.edges[0].src}->{graph.edges[0].dst}" \
            in message
        # Every valid spec is listed with its supporting variants.
        for spec in ("full", "half", "half-registered"):
            assert spec in message

    def test_unsupported_spec_elaboration_names_the_variants(self,
                                                             monkeypatch):
        from repro.graph import model

        monkeypatch.setitem(model.RELAY_SPEC_SUPPORT, "half",
                            ("carloni",))
        graph = ring(2, relays_per_arc=[["half"], ["full"]])
        low = lower(graph)
        assert low.unsupported_specs(ProtocolVariant.CASU) == ["half"]
        assert low.unsupported_specs(ProtocolVariant.CARLONI) == []
        with pytest.raises(StructuralError) as err:
            low.elaborate(variant=ProtocolVariant.CASU, strict=False)
        assert "half" in str(err.value)
        assert "casu" in str(err.value)


class TestRegistry:
    def test_unknown_service_key_lists_known_keys(self):
        from repro._registry import resolve

        with pytest.raises(KeyError) as err:
            resolve("no.such.service")
        assert "lid.build_system" in str(err.value)

    def test_override_and_restore(self):
        from repro._registry import register, resolve, unregister

        marker = object()
        register("skeleton.check_deadlock", lambda *a, **k: marker)
        try:
            assert resolve("skeleton.check_deadlock")() is marker
        finally:
            unregister("skeleton.check_deadlock")
        from repro.skeleton.deadlock import check_deadlock

        assert resolve("skeleton.check_deadlock") is check_deadlock

"""EXP-D2: skeleton simulation cost vs full simulation.

Paper: "we are allowed to simulate just the skeleton of the system
consisting of stop and valid signals, thus the simulation cost is
absolutely negligible."
"""

import pytest

from repro.bench.runner import run_skeleton_cost
from repro.graph import pipeline
from repro.skeleton import SkeletonSim


def test_bench_cost_table(benchmark, emit):
    table, rows = benchmark.pedantic(run_skeleton_cost, rounds=1,
                                     iterations=1, args=(800,))
    emit("EXP-D2-skeleton-cost", table)
    # The skeleton must beat the full simulation on every size.
    for _name, _cycles, _sk, _full, speedup in rows:
        assert float(speedup.rstrip("x")) > 1.0


@pytest.mark.parametrize("stages", [4, 16, 64])
def test_bench_skeleton_cycles(benchmark, stages):
    """Raw skeleton stepping rate across system sizes."""
    graph = pipeline(stages, relays_per_hop=2)
    sim = SkeletonSim(graph, detect_ambiguity=False)

    def run():
        for _ in range(100):
            sim.step()

    benchmark(run)


@pytest.mark.parametrize("stages", [4, 16])
def test_bench_full_sim_cycles(benchmark, stages):
    """Raw full-simulation stepping rate for the same systems."""
    graph = pipeline(stages, relays_per_hop=2)
    system = graph.elaborate()
    system.finalize(strict=False)
    system.sim.reset()

    def run():
        system.sim.step(100)

    benchmark(run)


@pytest.mark.parametrize("batch", [8, 64])
def test_bench_batch_skeleton(benchmark, batch):
    """Vectorized batch sweeps: per-instance cost drops with width."""
    from repro.skeleton import BatchSkeletonSim

    graph = pipeline(8, relays_per_hop=2)
    patterns = [
        {"out": tuple((i >> b) & 1 == 1 for b in range(4))}
        for i in range(batch)
    ]
    sim = BatchSkeletonSim(graph, patterns)

    def run():
        sim.run(50)

    benchmark(run)


def test_bench_sweep_speedup(benchmark, emit):
    """EXP-D2b: 64-instance stop-script sweep, scalar loop vs the
    vectorized backend behind ``repro.skeleton.backend.select``.

    The acceptance bar for the generalized engine: a design-space sweep
    over 64 back-pressure scripts must cost roughly one scalar run —
    at least 12x faster than looping the scalar engine, with identical
    (bit-exact) per-instance counts.  (The bar was 20x before the
    scalar hot loops were optimized in EXP-M1; the scalar baseline —
    the denominator — got ~30% faster, the vectorized engine did not
    regress.)
    """
    import time

    import numpy as np

    from repro.bench.tables import format_table
    from repro.lid.variant import DEFAULT_VARIANT
    from repro.skeleton.backend import select

    graph = pipeline(8, relays_per_hop=2)
    patterns = [
        {"out": tuple((i >> b) & 1 == 1 for b in range(6))}
        for i in range(64)
    ]
    cycles = 400

    def once(backend):
        start = time.perf_counter()
        handle = select(graph, DEFAULT_VARIANT, sink_patterns=patterns,
                        detect_ambiguity=False, backend=backend)
        handle.run_cycles(cycles)
        return time.perf_counter() - start, handle

    def measure():
        once("vectorized")  # warm numpy dispatch paths
        scalar_times, vec_times = [], []
        for _ in range(3):
            t_s, scalar = once("scalar")
            t_v, vec = once("vectorized")
            assert np.array_equal(np.asarray(scalar.accept_counts()),
                                  np.asarray(vec.accept_counts()))
            assert np.array_equal(np.asarray(scalar.fire_counts()),
                                  np.asarray(vec.fire_counts()))
            scalar_times.append(t_s)
            vec_times.append(t_v)
        return min(scalar_times), min(vec_times)

    scalar_s, vec_s = benchmark.pedantic(measure, rounds=1,
                                         iterations=1)
    speedup = scalar_s / vec_s
    table = format_table(
        ("backend", "total", "per instance", "speedup"),
        [
            ("scalar loop", f"{scalar_s * 1e3:.1f} ms",
             f"{scalar_s / 64 * 1e3:.2f} ms", "1.0x"),
            ("vectorized", f"{vec_s * 1e3:.1f} ms",
             f"{vec_s / 64 * 1e3:.2f} ms", f"{speedup:.1f}x"),
        ],
        title=f"64-instance stop-script sweep ({graph.name}, "
              f"{cycles} cycles, best of 3)",
    )
    emit("EXP-D2b-sweep-speedup", table)
    assert speedup >= 12.0, (
        f"vectorized sweep only {speedup:.1f}x faster than scalar loop")


def test_bench_batch_amortization(benchmark, emit):
    """The figure-style series: scalar vs batch cost per instance."""
    import time

    from repro.bench.tables import format_table
    from repro.skeleton import BatchSkeletonSim

    graph = pipeline(8, relays_per_hop=2)
    cycles = 300

    def measure():
        rows = []
        start = time.perf_counter()
        scalar = SkeletonSim(graph, detect_ambiguity=False)
        for _ in range(cycles):
            scalar.step()
        scalar_s = time.perf_counter() - start
        for width in (1, 8, 64):
            patterns = [{} for _ in range(width)]
            batch = BatchSkeletonSim(graph, patterns)
            start = time.perf_counter()
            batch.run(cycles)
            elapsed = time.perf_counter() - start
            rows.append((width, f"{elapsed * 1e3:.1f} ms",
                         f"{elapsed / width * 1e3:.2f} ms",
                         f"{scalar_s / (elapsed / width):.1f}x"))
        return rows, scalar_s

    (rows, scalar_s) = benchmark.pedantic(measure, rounds=1,
                                          iterations=1)
    table = format_table(
        ("batch width", "total", "per instance",
         "speedup vs scalar"),
        rows,
        title=f"Batch skeleton amortization ({cycles} cycles; scalar "
              f"baseline {scalar_s * 1e3:.1f} ms)",
    )
    emit("EXP-D2-batch-amortization", table)

"""``python -m repro`` — the ``repro-lid`` CLI without the console
script, for environments where only the package is importable."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())

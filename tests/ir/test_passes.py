"""PassPipeline: named passes, fingerprint audit log, telemetry."""

import pytest

from repro.graph import figure2, reconvergent, ring
from repro.graph.model import SystemGraph
from repro.ir import (
    PassPipeline,
    PassRecord,
    cure_deadlock_pass,
    desugar_queues_pass,
    equalize_pass,
    insert_relay_pass,
    lower,
    promote_half_relays_pass,
    structural_fingerprint,
)
from repro.obs import Telemetry
from repro.pearls import Identity


class TestAuditLog:
    def test_one_record_per_pass_in_order(self):
        graph = reconvergent(long_relays=(1, 1), short_relays=1)
        pipeline = PassPipeline([equalize_pass(),
                                 promote_half_relays_pass()])
        pipeline.run(graph)
        assert [r.name for r in pipeline.audit_log] == \
            ["equalize", "promote-half-relays[loops]"]
        for record in pipeline.audit_log:
            assert isinstance(record, PassRecord)
            assert len(record.before_fingerprint) == 64
            assert len(record.after_fingerprint) == 64

    def test_changed_flag_tracks_the_fingerprint(self):
        graph = reconvergent(long_relays=(1, 1), short_relays=1)
        pipeline = PassPipeline([equalize_pass()])
        balanced = pipeline.run(graph)
        record = pipeline.audit_log[0]
        assert record.changed
        assert record.before_fingerprint == structural_fingerprint(graph)
        assert record.after_fingerprint == \
            structural_fingerprint(balanced)
        # Re-running on the balanced graph is a no-op pass.
        pipeline.run(balanced)
        assert not pipeline.audit_log[0].changed

    def test_audit_log_resets_per_run(self):
        pipeline = PassPipeline([equalize_pass(), equalize_pass()])
        pipeline.run(figure2())
        pipeline.run(figure2())
        assert len(pipeline.audit_log) == 2

    def test_records_serialize(self):
        pipeline = PassPipeline([desugar_queues_pass()])
        pipeline.run(figure2())
        entry = pipeline.audit_log[0].to_dict()
        assert entry["name"] == "desugar-queues"
        assert entry["changed"] is False

    def test_bare_callables_are_wrapped_with_their_name(self):
        def widen(graph):
            out = graph.copy()
            out.edges[0].relays = out.edges[0].relays + ("full",)
            return out

        pipeline = PassPipeline().add(widen)
        out = pipeline.run(figure2())
        assert pipeline.audit_log[0].name == "widen"
        assert pipeline.audit_log[0].changed
        assert out.edges[0].relay_count == 2


class TestStockPasses:
    def test_insert_relay_pass(self):
        graph = figure2()
        pipeline = PassPipeline(
            [insert_relay_pass("S0", "S1", spec="full", position=0)])
        out = pipeline.run(graph)
        record = pipeline.audit_log[0]
        assert record.name == "insert-relay[S0->S1:full@0]"
        assert record.changed
        assert out.relay_count() == graph.relay_count() + 1

    def test_cure_deadlock_pass_records_promotions(self):
        # The refined (default) protocol keeps every stock hazard live,
        # so drive the cure through the registry with a checker that
        # reports the hazard as deadlocked until the promotion lands.
        from types import SimpleNamespace

        from repro._registry import register, unregister

        def fake_check(graph, max_cycles=10_000):
            hazardous = any("half" in e.relays for e in graph.edges)
            return SimpleNamespace(deadlocked=False,
                                   potential=hazardous)

        hazard = ring(2, relays_per_arc=[["half"], ["half"]])
        register("skeleton.check_deadlock", fake_check)
        try:
            pipeline = PassPipeline([cure_deadlock_pass()])
            cured = pipeline.run(hazard)
        finally:
            unregister("skeleton.check_deadlock")
        record = pipeline.audit_log[0]
        assert record.changed
        assert "promoted" in record.detail
        assert lower(cured).all_full_relays

    def test_cure_deadlock_pass_on_live_graph_is_identity(self):
        pipeline = PassPipeline([cure_deadlock_pass()])
        pipeline.run(figure2())
        record = pipeline.audit_log[0]
        assert not record.changed
        assert record.detail == "already live; no promotion needed"

    def test_desugar_queues_pass(self):
        graph = SystemGraph("queued")
        graph.add_source("src")
        graph.add_queued_shell("q", lambda: Identity(), queue_depth=2)
        graph.add_sink("out")
        graph.add_edge("src", "q")
        graph.add_edge("q", "out")
        pipeline = PassPipeline([desugar_queues_pass()])
        out = pipeline.run(graph)
        assert pipeline.audit_log[0].changed
        assert not lower(out).has_queued_shells


class TestTelemetry:
    def test_passes_emit_events_and_metrics(self):
        telemetry = Telemetry.full()
        graph = reconvergent(long_relays=(1, 1), short_relays=1)
        pipeline = PassPipeline(
            [equalize_pass(), desugar_queues_pass()],
            telemetry=telemetry)
        pipeline.run(graph)
        events = [e for e in telemetry.events.events()
                  if e.category == "pass"]
        assert [e.name for e in events] == ["equalize",
                                            "desugar-queues"]
        assert events[0].fields["changed"] is True
        assert events[1].fields["changed"] is False
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["ir/passes/run"]["value"] == 2
        assert snapshot["ir/passes/changed"]["value"] == 1

"""EXP-T7: locality of void/stop management.

Paper: the refined protocol ensures "higher locality of management of
void/stop signals".  We quantify it: the number of asserted stop wires
per run, and the number of those assertions landing on void tokens
(pure waste — nothing needed protecting), under identical workloads.
"""

import pytest

from repro.bench.runner import run_stop_locality
from repro.graph import reconvergent
from repro.lid.variant import ProtocolVariant
from repro.skeleton import SkeletonSim


def test_bench_stop_locality_table(benchmark, emit):
    table, rows = benchmark.pedantic(run_stop_locality, rounds=1,
                                     iterations=1)
    emit("EXP-T7-stop-locality", table)
    for _label, _old_total, old_void, _new_total, new_void in rows:
        # The refinement eliminates protocol-generated stops on voids
        # entirely; the original discipline produces them in numbers.
        assert new_void == 0
        assert old_void > 0


def test_bench_stop_counting(benchmark):
    graph = reconvergent(long_relays=(2, 1), short_relays=1)

    def run():
        sim = SkeletonSim(graph, variant=ProtocolVariant.CASU,
                          sink_patterns={"out": (False, True, True)},
                          detect_ambiguity=False)
        for _ in range(200):
            sim.step()
        return (sim.stop_assertions_total,
                sim.internal_stops_on_voids_total)

    total, on_voids = benchmark(run)
    assert total > 0
    assert on_voids == 0


def test_bench_original_spreads_stops(benchmark):
    graph = reconvergent(long_relays=(2, 1), short_relays=1)

    def run():
        sim = SkeletonSim(graph, variant=ProtocolVariant.CARLONI,
                          source_patterns={"src": (True, True, False)},
                          sink_patterns={"out": (False, True, True)},
                          detect_ambiguity=False)
        for _ in range(200):
            sim.step()
        return (sim.stop_assertions_total,
                sim.internal_stops_on_voids_total)

    total, on_voids = benchmark(run)
    # Under the original discipline a visible fraction of all stop
    # assertions land on voids — the waste the refinement removes.
    assert on_voids > total // 20

"""Structural lint for LID systems.

Two rules from the paper are enforced here:

1. **Relay station between shells.**  The simplified shell does not save
   incoming stop signals, so *"we need to add at least one half or one
   full relay station between two shells"*.  A channel that directly
   connects two shells violates the minimum-memory requirement and is
   rejected.

2. **No combinational stop cycles.**  Shells and half relay stations
   propagate the stop combinationally (downstream stop in, upstream stop
   out within the same cycle); only full relay stations register it.  A
   directed cycle of the system graph containing no full relay station
   would therefore close a combinational loop on the stop network — the
   structural reason a loop needs at least one full relay station.  The
   lint walks the backward stop-propagation graph and rejects cycles.

Both are raised as exceptions so that a system that elaborates cleanly
is correct by construction with respect to the paper's implementation
rules; experiments that deliberately explore illegal structures can run
``finalize(strict=False)``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import CombinationalLoopError, StructuralError
from .relay import HalfRelayStation, RelayStation


def lint_system(system) -> None:
    """Run all structural checks; raises on the first violation."""
    check_shell_to_shell(system)
    check_combinational_stop_cycles(system)


def check_shell_to_shell(system) -> None:
    """Reject channels that connect two shells with no relay station.

    Queued shells register their own stop (the memory element lives in
    their input FIFO), so a channel *into* a queued shell is exempt —
    that is precisely the design alternative they exist to express.
    """
    from .queued_shell import QueuedShell

    shell_names = set(system.shells)
    for chan in system.channels:
        if chan.producer in shell_names and chan.consumer in shell_names:
            consumer = system.shells[chan.consumer]
            if isinstance(consumer, QueuedShell):
                continue
            raise StructuralError(
                f"channel {chan.name!r} connects shells "
                f"{chan.producer!r} -> {chan.consumer!r} directly; the "
                f"simplified shell does not register stops, so at least "
                f"one (half or full) relay station is required between "
                f"two shells (paper, §1)"
            )


def _stop_edges(system) -> Dict[str, List[str]]:
    """Backward stop-propagation edges between blocks.

    An edge ``a -> b`` means: a stop asserted *to* block ``a`` appears,
    within the same cycle, on a channel consumed by block ``b``
    (i.e. ``a`` propagates stop combinationally to its upstream ``b``...
    more precisely to the producer of its input channels).  Full relay
    stations emit no edge — their stop output is registered.
    """
    edges: Dict[str, List[str]] = {}

    def add(src: str, dst: str) -> None:
        edges.setdefault(src, []).append(dst)

    from .queued_shell import QueuedShell

    for name, shell in system.shells.items():
        # A stop on any shell output can stall the shell, which then
        # asserts stop on every input channel — combinationally.
        # Queued shells break the chain: their stop is registered.
        if isinstance(shell, QueuedShell):
            continue
        for chan in shell.input_channels.values():
            if chan.producer is not None:
                add(name, chan.producer)
    for name, relay in system.relays.items():
        if isinstance(relay, HalfRelayStation) and not relay.registered_stop:
            if relay.input is not None and relay.input.producer is not None:
                add(name, relay.input.producer)
        # Full relay stations (and registered-stop half stations) break
        # the chain: no edge.
    return edges


def check_combinational_stop_cycles(system) -> None:
    """Reject cycles in the combinational stop-propagation graph."""
    edges = _stop_edges(system)
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[str, int] = {}

    def visit(node: str, path: List[str]) -> None:
        color[node] = GREY
        path.append(node)
        for nxt in edges.get(node, ()):  # noqa: B905 - plain adjacency
            state = color.get(nxt, WHITE)
            if state == GREY:
                cycle = path[path.index(nxt):] + [nxt]
                raise CombinationalLoopError(
                    "combinational stop cycle through "
                    + " -> ".join(cycle)
                    + "; every loop needs at least one full relay station "
                    "(registered stop) to break the chain"
                )
            if state == WHITE:
                visit(nxt, path)
        path.pop()
        color[node] = BLACK

    for node in list(edges):
        if color.get(node, WHITE) == WHITE:
            visit(node, [])


def relay_census(system) -> Tuple[int, int]:
    """Return ``(full, half)`` relay-station counts — handy in reports."""
    full = sum(1 for r in system.relays.values() if isinstance(r, RelayStation))
    half = sum(
        1 for r in system.relays.values() if isinstance(r, HalfRelayStation)
    )
    return full, half

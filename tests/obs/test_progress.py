"""ProgressReporter tests: accounting, events, rendering discipline."""

import io

from repro.obs import EventStream, ProgressReporter


class _Stats:
    def __init__(self, hits):
        self.hits = hits


def _reporter(total=4, **kwargs):
    kwargs.setdefault("out", io.StringIO())
    kwargs.setdefault("interval", 0.0)
    return ProgressReporter(total, "test", **kwargs)


class TestAccounting:
    def test_advance_and_finish(self):
        out = io.StringIO()
        reporter = _reporter(total=3, out=out)
        reporter.advance()
        reporter.advance(2)
        reporter.finish()
        text = out.getvalue()
        assert "test: 3/3" in text
        assert "(100%)" in text
        assert "elapsed=" in text

    def test_set_total_rescales(self):
        out = io.StringIO()
        reporter = _reporter(total=0, out=out)
        reporter.set_total(10)
        reporter.advance(5)
        assert "5/10" in out.getvalue()
        assert "(50%)" in out.getvalue()

    def test_finish_is_idempotent(self):
        out = io.StringIO()
        reporter = _reporter(total=1, out=out)
        reporter.advance()
        reporter.finish()
        once = out.getvalue()
        reporter.finish()
        assert out.getvalue() == once

    def test_zero_total_does_not_divide(self):
        reporter = _reporter(total=0)
        reporter.finish()  # no ZeroDivisionError


class TestEvents:
    def test_progress_events_enter_the_stream(self):
        stream = EventStream()
        reporter = _reporter(total=2, stream=stream)
        reporter.advance()
        reporter.advance()
        reporter.finish()
        events = [e for e in stream.events()
                  if e.category == "exec" and e.name == "progress"]
        assert events
        last = events[-1]
        assert last.fields["done"] == 2
        assert last.fields["total"] == 2
        assert last.fields["label"] == "test"

    def test_cache_hits_are_reported(self):
        stream = EventStream()
        out = io.StringIO()
        reporter = _reporter(total=1, stream=stream, out=out,
                             cache=_Stats(hits=7))
        reporter.advance()
        assert "cache-hits=7" in out.getvalue()
        event = [e for e in stream.events() if e.name == "progress"][-1]
        assert event.fields["cache_hits"] == 7

    def test_eta_appears_mid_run_only(self):
        stream = EventStream()
        reporter = _reporter(total=4, stream=stream)
        reporter.advance()  # 1/4: eta defined
        mid = [e for e in stream.events() if e.name == "progress"][-1]
        assert "eta_seconds" in mid.fields
        reporter.advance(3)  # 4/4: no eta
        done = [e for e in stream.events() if e.name == "progress"][-1]
        assert "eta_seconds" not in done.fields


class TestRendering:
    def test_interval_rate_limits_lines(self):
        out = io.StringIO()
        reporter = _reporter(total=100, out=out, interval=3600.0)
        for _ in range(50):
            reporter.advance()
        # At most the initial tick renders inside a huge interval.
        assert len(out.getvalue().splitlines()) <= 1
        reporter.advance(50)  # done >= total forces a render
        assert "100/100" in out.getvalue()

    def test_non_tty_renders_whole_lines(self):
        out = io.StringIO()
        reporter = _reporter(total=1, out=out)
        reporter.advance()
        assert out.getvalue().endswith("\n")
        assert "\r" not in out.getvalue()

    def test_disabled_out_only_emits_events(self):
        stream = EventStream()
        reporter = ProgressReporter(1, "quiet", stream=stream,
                                    interval=0.0)
        reporter.out = None  # events-only mode (no rendering target)
        reporter.advance()
        reporter.finish()
        assert [e for e in stream.events() if e.name == "progress"]

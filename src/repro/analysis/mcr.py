"""General static throughput via minimum cycle ratio (MCR) analysis.

The paper derives throughput formulas per topology class; this module
generalizes them to arbitrary compositions with the classic marked-graph
argument (in the spirit of Carloni & Sangiovanni-Vincentelli, DAC'00):

1. Expand the system into **storage slots** — shell output registers
   (capacity 1, initialized with 1 token, transparent stop), full relay
   stations (capacity 2, empty, registered stop) and half relay
   stations (capacity 1, empty, transparent stop).
2. For each flow adjacency ``a -> b`` add a *forward* arc with delay 1
   and ``tokens(a)`` tokens, and a *reverse* (back-pressure) arc
   ``b -> a`` with delay ``reverse_delay(a)`` (1 where the stop is
   registered, 0 where it is combinational) carrying the *free
   capacity* of ``a``.
3. System throughput = min(1, minimum over directed cycles of
   tokens/delay).

The forward cycles reproduce S/(S+R) for feedback loops; cycles mixing
forward and reverse arcs reproduce the (m−i)/m reconvergence penalty —
the "implicit loops created by the introduction of reverse-flowing stop
signals" the paper describes.  The EXP-T benches cross-validate this
analyzer against skeleton simulation on every topology family and on
random graphs.

The model assumes the paper's *refined* stop discipline (stops on voids
discarded).  The original protocol matches the bound on clean
topologies but can run below it on multi-level reconvergence, where it
keeps re-freezing the voids the imbalance regenerates (see EXP-T6's
steady-state finding in EXPERIMENTS.md).

"""

from __future__ import annotations

import dataclasses
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..errors import AnalysisError
from ..graph.model import SystemGraph
from ..ir import LoweredSystem, lower

#: Slot parameters per element kind: (capacity, initial tokens, reverse delay)
_SLOT_PARAMS = {
    "shell-reg": (1, 1, 0),
    "full": (2, 0, 1),
    "half": (1, 0, 0),
    # The registered-stop half station advertises stop whenever occupied;
    # its cycle-level behaviour is not a pure marked graph (it halves the
    # local transfer rate), so the MCR model treats it as a registered
    # 1-slot stage and callers should treat results as upper bounds.
    "half-registered": (1, 0, 1),
    "source": (None, 1, 0),   # infinite free capacity
    "sink": (None, 0, 0),     # infinite free capacity
}


@dataclasses.dataclass(frozen=True)
class _Arc:
    src: int
    dst: int
    tokens: int
    delay: int


@dataclasses.dataclass
class McrResult:
    """Throughput bound plus the critical cycle that sets it."""

    throughput: Fraction
    critical_cycle: List[str]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"McrResult({self.throughput}, cycle={self.critical_cycle})"


def _build_slot_graph(low: LoweredSystem):
    """Expand to an event graph; returns (names, arcs, big).

    Nodes are *transitions*: one per shell firing, one per relay-station
    transfer, one per source and sink.  Shell firing is atomic — all of
    a shell's output registers load together — so fan-out siblings are
    correctly coupled through the shared transition.  Each storage
    element becomes a *place* between two transitions, expanded into a
    forward arc (its initial tokens, delay 1) and a reverse
    back-pressure arc (its free capacity, delay 0 or 1 depending on
    whether its stop is combinational or registered).  Places adjacent
    to sources and sinks get unbounded capacity: a source always
    re-supplies and an unscripted sink always consumes, so neither can
    be part of a binding cycle.
    """
    names: List[str] = []
    node_index: Dict[str, int] = {}

    def new_transition(name: str) -> int:
        names.append(name)
        return len(names) - 1

    for node in low.nodes:
        node_index[node.name] = new_transition(node.name)

    # Places: (from_transition, to_transition, tokens, capacity, rev_delay)
    places: List[Tuple[int, int, int, Optional[int], int]] = []

    for edge in low.edges:
        src_node = low.nodes[edge.src]
        dst_node = low.nodes[edge.dst]
        prev = node_index[edge.src_name]
        # The producer's own storage: a shell output register (cap 1,
        # one initial token, combinational stop) or the source's
        # always-full supply (unbounded).
        if src_node.kind == "shell":
            pending = (1, 1, 0)  # tokens, capacity, rev_delay
        else:
            pending = (1, None, 0)
        for pos, spec in enumerate(edge.relays):
            rs = new_transition(
                f"{edge.src_name}->{edge.dst_name}.rs{pos}[{edge.index}]")
            tokens, cap, rev = pending
            places.append((prev, rs, tokens, cap, rev))
            cap2, tokens2, rev2 = _SLOT_PARAMS[spec]
            pending = (tokens2, cap2, rev2)
            prev = rs
        dst = node_index[edge.dst_name]
        tokens, cap, rev = pending
        if dst_node.kind == "sink":
            cap = None  # an unscripted sink always consumes
        places.append((prev, dst, tokens, cap, rev))

    total_delay_budget = sum(1 + rev for (_a, _b, _t, _c, rev) in places) + 2
    big = total_delay_budget + 1

    arcs: List[_Arc] = []
    for a, b, tokens, cap, rev_delay in places:
        free = big if cap is None else cap - tokens
        arcs.append(_Arc(a, b, tokens=tokens, delay=1))
        arcs.append(_Arc(b, a, tokens=free, delay=rev_delay))
    return names, arcs, big


def _has_cycle_below(
    arcs: List[_Arc], n_nodes: int, ratio: Fraction
) -> Optional[List[int]]:
    """Negative-cycle check for weights tokens - ratio*delay (< 0).

    Returns the node list of one offending cycle, or ``None``.
    Bellman–Ford from a virtual super-source with exact arithmetic.
    """
    dist = [Fraction(0)] * n_nodes
    pred: List[Optional[int]] = [None] * n_nodes
    last_relaxed = -1
    for _round in range(n_nodes):
        changed = False
        for arc in arcs:
            weight = Fraction(arc.tokens) - ratio * arc.delay
            if dist[arc.src] + weight < dist[arc.dst]:
                dist[arc.dst] = dist[arc.src] + weight
                pred[arc.dst] = arc.src
                changed = True
                last_relaxed = arc.dst
        if not changed:
            return None
    # A relaxation in round n implies a negative cycle; walk it out.
    node = last_relaxed
    for _ in range(n_nodes):
        node = pred[node]
    cycle = [node]
    cursor = pred[node]
    while cursor != node:
        cycle.append(cursor)
        cursor = pred[cursor]
    cycle.reverse()
    return cycle


def _best_fraction_between(lo: Fraction, hi: Fraction, max_den: int) -> Fraction:
    """Fraction with the smallest denominator in the interval [lo, hi).

    Stern–Brocot walk; used to snap the binary search to the exact
    ratio, whose denominator is bounded by the total delay budget.
    """
    a, b, c, d = 0, 1, 1, 0  # interval endpoints 0/1 and 1/0
    for _ in range(64 * (max_den + 2)):
        mediant = Fraction(a + c, b + d)
        if mediant < lo:
            a, b = mediant.numerator, mediant.denominator
        elif mediant >= hi:
            c, d = mediant.numerator, mediant.denominator
        else:
            return mediant
    raise AnalysisError("Stern-Brocot search failed to converge")


def min_cycle_ratio_throughput(graph: SystemGraph) -> McrResult:
    """Static system throughput = min(1, minimum cycle ratio).

    Exact rational arithmetic throughout; the returned critical cycle
    names the storage slots on the binding loop (empty when throughput
    is 1, i.e. no cycle binds).
    """
    low = (graph if isinstance(graph, LoweredSystem)
           else lower(graph)).skeleton_view()
    if not low.single_clock:
        raise AnalysisError(
            f"{low.name}: minimum-cycle-ratio analysis models "
            f"single-clock systems only (capability flags: "
            f"single_clock={low.single_clock}, "
            f"has_bridges={low.has_bridges}) — the marked-graph "
            "expansion has no notion of firing schedules; use "
            "repro.analysis.static_system_throughput for the certified "
            "GALS bound or repro.analysis.simulated_throughput for "
            "exact mixed-rate values")
    names, arcs, big = _build_slot_graph(low)
    n = len(names)
    if not arcs:
        return McrResult(Fraction(1), [])

    total_delay = sum(arc.delay for arc in arcs)
    max_den = max(total_delay, 1)

    # Is any cycle below 1? If not, the protocol runs at full rate.
    if _has_cycle_below(arcs, n, Fraction(1)) is None:
        return McrResult(Fraction(1), [])

    # A zero-token cycle means structural starvation (ratio 0).
    tiny = Fraction(1, (max(total_delay, 1) + 1) ** 3)
    zero_witness = _has_cycle_below(arcs, n, tiny)
    if zero_witness is not None:
        return McrResult(Fraction(0), [names[i] for i in zero_witness])

    lo, hi = Fraction(0), Fraction(1)
    # Binary search until the interval isolates a unique ratio with
    # denominator <= max_den (interval shorter than 1/max_den^2).
    threshold = Fraction(1, max_den * max_den + 1)
    while hi - lo > threshold:
        mid = (lo + hi) / 2
        if _has_cycle_below(arcs, n, mid) is not None:
            hi = mid
        else:
            lo = mid
    ratio = _best_fraction_between(lo, hi, max_den)
    witness = _has_cycle_below(arcs, n, ratio + Fraction(1, max_den ** 3))
    cycle_names = [names[i] for i in witness] if witness else []
    return McrResult(min(ratio, Fraction(1)), cycle_names)

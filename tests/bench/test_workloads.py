"""Tests for the benchmark workload builders."""

from fractions import Fraction

import pytest

from repro.bench import workloads
from repro.skeleton import system_throughput


class TestSweeps:
    def test_ring_sweep_is_legal_and_correct(self):
        for shells, relays, graph in workloads.ring_sweep():
            assert system_throughput(graph) == \
                Fraction(shells, shells + relays)

    def test_reconvergent_sweep_parameters_match(self):
        from repro.analysis import analyze_reconvergence

        for i, m, graph in workloads.reconvergent_sweep():
            got_i, got_m, _rate = analyze_reconvergence(graph, "A", "C")
            assert (got_i, got_m) == (i, m), graph.name

    def test_tree_sweep_all_full_rate(self):
        for _depth, _relays, graph in workloads.tree_sweep():
            assert system_throughput(graph) == 1

    def test_figure_workloads(self):
        assert system_throughput(workloads.figure1_workload()) == \
            Fraction(4, 5)
        assert system_throughput(workloads.figure2_workload()) == \
            Fraction(1, 2)


class TestDeadlockSuite:
    def test_expectations_cover_both_classes(self):
        suite = workloads.deadlock_suite()
        expectations = {e for _f, e, _g in suite}
        assert expectations == {"live", "hazard"}

    def test_hazard_entries_really_have_loop_halves(self):
        from repro.graph import half_relays_on_loops

        for _family, expectation, graph in workloads.deadlock_suite():
            hazards = half_relays_on_loops(graph)
            assert bool(hazards) == (expectation == "hazard"), graph.name


class TestPatterns:
    def test_sink_patterns_shapes(self):
        assert workloads.SINK_PATTERNS["none"] == (False,)
        assert any(workloads.SINK_PATTERNS["heavy"])

    def test_pipeline_scaling_sizes(self):
        graphs = workloads.pipeline_scaling((3, 5))
        assert [len(g.shells()) for g in graphs] == [3, 5]

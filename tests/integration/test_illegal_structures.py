"""Behaviour of deliberately illegal structures under strict=False.

The lint exists because the paper's rules make systems correct by
construction — but researchers need to simulate the illegal ones too
(that is how the deadlock study works).  These tests pin down what the
kernel guarantees when the rules are waived: the monotone least-
fixpoint settle still converges, simulation still matches the skeleton,
and correctness (when the system runs at all) is preserved.
"""

import pytest

from repro.graph import ring
from repro.lid.reference import is_prefix
from repro.lid.variant import ProtocolVariant
from repro.skeleton import SkeletonSim, system_throughput

CASU = ProtocolVariant.CASU
CARLONI = ProtocolVariant.CARLONI


def all_half_ring():
    return ring(2, relays_per_arc=[["half"], ["half"]])


class TestCombinationalStopCycles:
    def test_lint_blocks_strict_elaboration(self):
        from repro.errors import CombinationalLoopError

        with pytest.raises(CombinationalLoopError):
            all_half_ring().elaborate(strict=True)

    def test_lfp_settle_converges_anyway(self):
        """The stop equations are monotone, so the kernel's least
        fixpoint exists even on a combinational stop cycle."""
        system = all_half_ring().elaborate(strict=False)
        system.run(100)  # no ConvergenceError

    def test_full_sim_matches_skeleton_on_illegal_ring(self):
        graph = all_half_ring()
        rate = system_throughput(graph, variant=CASU)
        system = graph.elaborate(variant=CASU, strict=False)
        system.run(300)
        measured = system.sinks["out"].steady_throughput(60, 300)
        assert measured == pytest.approx(float(rate), abs=0.02)

    def test_illegal_ring_still_latency_equivalent(self):
        system = all_half_ring().elaborate(strict=False)
        system.run(80)
        ref = system.reference_outputs(80)["out"]
        assert is_prefix(system.sinks["out"].payloads, ref)

    def test_carloni_wedge_visible_in_full_simulation(self):
        system = all_half_ring().elaborate(variant=CARLONI,
                                           strict=False)
        system.run(60)
        # The wait-stop wedge: nothing ever fires.
        assert all(s.fire_count == 0 for s in system.shells.values())


class TestDirectShellWires:
    def test_shell_to_shell_runs_under_non_strict(self):
        from repro import LidSystem, pearls

        system = LidSystem("direct")
        src = system.add_source("src")
        a = system.add_shell("A", pearls.Identity(initial=-1))
        b = system.add_shell("B", pearls.Identity(initial=-2))
        sink = system.add_sink("out", stop_script=lambda c: c % 3 == 0)
        system.connect(src, a)
        system.connect(a, b)  # illegal: no station
        system.connect(b, sink)
        system.finalize(strict=False)
        system.run(60, reset=True)
        ref = system.reference_outputs(60)["out"]
        assert is_prefix(system.sinks["out"].payloads, ref)
        # Direct wires are SAFE in simulation; the paper's rule is
        # about physical stop-path registration, not token loss.
        assert len(system.sinks["out"].payloads) > 30


class TestPerNodeTreeRates:
    def test_every_tree_node_fires_every_cycle(self):
        """Paper: 'The throughput of each node ... is 1' — per node,
        not just at the system output."""
        from fractions import Fraction

        from repro.graph import tree

        sim = SkeletonSim(tree(3, relays_per_hop=2))
        result = sim.run()
        for name in result.shell_fires:
            assert result.throughput(name) == Fraction(1), name

"""Manifest execution: the worker-side half of the campaign service.

:func:`execute_manifest` is a **module-level, picklable** function so
the scheduler can ship it into a persistent ``ProcessPoolExecutor``
worker (or call it on a thread for streamed runs).  It replicates the
CLI handlers (``_inject`` / ``_deadlock`` / ``series``) step for step —
same topology parsing, same engine calls, same report rendering — which
is what makes served response bodies *byte-identical* to the offline
``repro-lid`` commands and served ledger records share the offline
``run_id`` (run ids are content-addressed over the payload only; the
non-deterministic ``meta`` block never enters them).

Everything returned travels back to the parent as a
:class:`ServeOutcome`: the response body bytes, the ready-to-append
ledger record, and the worker's golden-run cache counters (merged into
the server-wide stats).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Union

from .manifest import Manifest

#: Schema tag for response-cache entries (bump on any layout change).
SERVE_CACHE_SCHEMA = "repro-lid-serve/v1"

_CONTENT_TYPES = {
    "json": "application/json",
    "table": "text/plain; charset=utf-8",
    "detail": "text/plain; charset=utf-8",
    "csv": "text/csv; charset=utf-8",
}


class DispatchError(Exception):
    """A manifest failed during execution for a client-side reason
    (bad topology parameters, unsatisfiable fault spec); maps to
    HTTP 400.  Carries only its message so it pickles across the
    worker boundary intact."""


@dataclasses.dataclass
class ServeOutcome:
    """Everything the parent needs to answer, cache and ledger a run."""

    body: bytes
    content_type: str
    exit_code: int
    span: str
    run_id: Optional[str] = None
    record: Optional[Dict[str, Any]] = None
    wall_seconds: float = 0.0
    cache: Optional[Dict[str, int]] = None

    def cache_payload(self) -> Dict[str, Any]:
        """The slice of the outcome worth replaying from the response
        cache (the deterministic part; wall time and cache counters
        describe *this* execution, not the content)."""
        return {
            "schema": SERVE_CACHE_SCHEMA,
            "body": self.body,
            "content_type": self.content_type,
            "exit_code": self.exit_code,
            "span": self.span,
            "run_id": self.run_id,
        }

    @classmethod
    def from_cache_payload(cls, payload: Dict[str, Any]) -> "ServeOutcome":
        return cls(body=payload["body"],
                   content_type=payload["content_type"],
                   exit_code=payload["exit_code"],
                   span=payload["span"],
                   run_id=payload.get("run_id"))


def manifest_fingerprint(manifest: Manifest) -> Optional[str]:
    """The design fingerprint the CLI would record (``None`` for
    series work, which has no topology).  Raises :class:`DispatchError`
    for topology *parameter* errors — family names were already
    validated by the manifest."""
    if manifest.kind == "series":
        return None
    from ..exec import graph_fingerprint

    return graph_fingerprint(_parse(manifest))


def _parse(manifest: Manifest):
    from ..graph.specs import parse_topology

    try:
        return parse_topology(manifest.topology, seed=manifest.seed)
    except SystemExit as exc:  # parse_topology diagnoses via SystemExit
        raise DispatchError(str(exc)) from None
    except ValueError as exc:
        raise DispatchError(
            f"bad topology {manifest.topology!r}: {exc}") from None


def execute_manifest(
    manifest: Union[Manifest, Dict[str, Any]],
    *,
    jobs: int = 1,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    progress: Optional[Any] = None,
) -> ServeOutcome:
    """Run one manifest to completion and package the result.

    *progress* is an optional :class:`repro.obs.ProgressReporter`
    (thread-mode streamed runs only — it cannot cross a process
    boundary).  *use_cache*/*cache_dir* control the golden-run
    :class:`~repro.exec.ResultCache` exactly like the CLI's
    ``--no-cache``/``--cache-dir``.
    """
    if isinstance(manifest, dict):
        manifest = Manifest.from_dict(manifest)
    if manifest.kind == "campaign":
        return _execute_campaign(manifest, jobs=jobs, use_cache=use_cache,
                                 cache_dir=cache_dir, progress=progress)
    if manifest.kind == "deadlock":
        return _execute_deadlock(manifest, jobs=jobs, use_cache=use_cache,
                                 cache_dir=cache_dir)
    return _execute_series(manifest)


def _execute_campaign(manifest: Manifest, *, jobs: int, use_cache: bool,
                      cache_dir: Optional[str],
                      progress: Optional[Any]) -> ServeOutcome:
    from time import perf_counter

    from ..errors import InjectionError
    from ..exec import GraphRef, ResultCache, graph_fingerprint
    from ..inject import run_campaign, skeleton_campaign
    from ..lid.variant import ProtocolVariant
    from ..obs import make_record

    graph = _parse(manifest)
    variant = ProtocolVariant(manifest.variant)
    cache = ResultCache.disk(cache_dir) if use_cache else None
    fingerprint = graph_fingerprint(graph)
    if progress is not None and cache is not None:
        progress.cache = cache.stats

    common = dict(variant=variant, classes=manifest.faults,
                  cycles=manifest.cycles, window=manifest.window,
                  exhaustive=manifest.exhaustive,
                  samples=manifest.samples, seed=manifest.seed,
                  telemetry=None, jobs=jobs, cache=cache,
                  progress=progress, trace=None)
    started = perf_counter()
    try:
        if manifest.engine == "skeleton":
            report = skeleton_campaign(graph, backend=manifest.backend,
                                       strict=manifest.strict, **common)
        else:
            report = run_campaign(
                graph, strict=manifest.strict,
                graph_ref=GraphRef.from_spec(manifest.topology,
                                             seed=manifest.seed),
                **common)
    except InjectionError as exc:
        raise DispatchError(str(exc)) from None
    wall = perf_counter() - started

    if manifest.format == "json":
        text = report.to_json()
    else:
        text = report.format_table() + "\n"

    execution = report.execution or {}
    meta: Dict[str, Any] = {"wall_seconds": round(wall, 6), "jobs": jobs}
    if execution.get("cache") is not None:
        meta["cache"] = execution["cache"]
    record = make_record(
        "inject-campaign",
        topology=manifest.topology,
        fingerprint=fingerprint,
        variant=str(variant),
        params=manifest.params(),
        verdict=dict(report.counts()),
        meta=meta)
    return ServeOutcome(
        body=text.encode(),
        content_type=_CONTENT_TYPES[manifest.format],
        exit_code=0,
        span=record["payload"]["span"],
        run_id=record["run_id"],
        record=record,
        wall_seconds=wall,
        cache=cache.stats.to_dict() if cache is not None else None)


def _execute_deadlock(manifest: Manifest, *, jobs: int, use_cache: bool,
                      cache_dir: Optional[str]) -> ServeOutcome:
    from time import perf_counter

    from ..exec import GraphRef, ResultCache, graph_fingerprint
    from ..lid.variant import ProtocolVariant
    from ..obs import make_record
    from ..skeleton import check_deadlock

    graph = _parse(manifest)
    variant = ProtocolVariant(manifest.variant)
    cache = ResultCache.disk(cache_dir) if use_cache else None
    started = perf_counter()
    verdict = check_deadlock(graph, variant=variant,
                             max_cycles=manifest.max_cycles,
                             jobs=jobs,
                             graph_ref=GraphRef.from_spec(
                                 manifest.topology, seed=manifest.seed),
                             cache=cache,
                             backend=manifest.deadlock_backend)
    wall = perf_counter() - started
    record = make_record(
        "deadlock-check",
        topology=manifest.topology,
        fingerprint=graph_fingerprint(graph),
        variant=str(variant),
        params=manifest.params(),
        verdict={
            "deadlocked": verdict.deadlocked,
            "potential": verdict.potential,
            "inconclusive": verdict.inconclusive,
            "transient": verdict.transient,
            "period": verdict.period,
        },
        meta={"wall_seconds": round(wall, 6), "jobs": jobs})
    exit_code = 2 if verdict.inconclusive else (0 if verdict.live else 1)
    return ServeOutcome(
        body=(verdict.detail + "\n").encode(),
        content_type=_CONTENT_TYPES["detail"],
        exit_code=exit_code,
        span=record["payload"]["span"],
        run_id=record["run_id"],
        record=record,
        wall_seconds=wall,
        cache=cache.stats.to_dict() if cache is not None else None)


def _execute_series(manifest: Manifest) -> ServeOutcome:
    from time import perf_counter

    from ..analysis.sweep import SERIES_GENERATORS
    from ..obs import make_record

    started = perf_counter()
    series = SERIES_GENERATORS[manifest.which]()
    text = series.to_csv()
    wall = perf_counter() - started
    record = make_record(
        "series",
        params=manifest.params(),
        verdict={"lines": len(text.splitlines())},
        meta={"wall_seconds": round(wall, 6)})
    return ServeOutcome(
        body=text.encode(),
        content_type=_CONTENT_TYPES["csv"],
        exit_code=0,
        span=record["payload"]["span"],
        run_id=record["run_id"],
        record=record,
        wall_seconds=wall,
        cache=None)

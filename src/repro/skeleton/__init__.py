"""Skeleton (valid/stop-only) simulation, periodicity and deadlock tools."""

from .backend import (
    BitplaneBackend,
    CodegenBackend,
    ScalarBackend,
    VectorizedBackend,
    bitsim_supported,
    codegen_supported,
    select,
    vectorized_supported,
)
from .bitsim import BitplaneSkeletonSim
from .codegen import CodegenSkeletonSim
from .deadlock import DeadlockVerdict, check_deadlock, is_deadlock_free_class
from .fast import CostComparison, compare_cost, measure_throughput, system_throughput
from .periodicity import (
    detect_period,
    transient_and_period,
    transient_bound,
    transient_estimate,
)
from .sim import SkeletonResult, SkeletonSim
from .vectorized import BatchSkeletonSim

__all__ = [
    "BatchSkeletonSim",
    "BitplaneBackend",
    "BitplaneSkeletonSim",
    "CodegenBackend",
    "CodegenSkeletonSim",
    "CostComparison",
    "DeadlockVerdict",
    "ScalarBackend",
    "SkeletonResult",
    "SkeletonSim",
    "VectorizedBackend",
    "bitsim_supported",
    "check_deadlock",
    "codegen_supported",
    "compare_cost",
    "detect_period",
    "is_deadlock_free_class",
    "measure_throughput",
    "select",
    "system_throughput",
    "transient_and_period",
    "transient_bound",
    "transient_estimate",
    "vectorized_supported",
]

"""Tests for the deadlock checker (the paper's liveness claims)."""

import pytest

from repro.graph import figure1, figure2, pipeline, ring, tree
from repro.lid.variant import ProtocolVariant
from repro.skeleton import check_deadlock, is_deadlock_free_class

CASU = ProtocolVariant.CASU
CARLONI = ProtocolVariant.CARLONI


class TestPaperClaims:
    """The three deadlock-freedom statements from the paper."""

    @pytest.mark.parametrize("graph", [figure1(), tree(3), pipeline(4)])
    def test_feedforward_is_deadlock_free(self, graph):
        verdict = check_deadlock(graph)
        assert verdict.live

    @pytest.mark.parametrize("graph", [
        figure2(),
        ring(2, relays_per_arc=2),
        ring(3, relays_per_arc=[2, 1, 1]),
    ])
    def test_full_relay_loops_are_deadlock_free(self, graph):
        for variant in (CASU, CARLONI):
            verdict = check_deadlock(graph, variant=variant)
            assert verdict.live, (graph.name, variant, verdict.detail)

    def test_half_in_loop_deadlocks_under_original_protocol(self):
        graph = ring(2, relays_per_arc=[["half"], ["full"]])
        verdict = check_deadlock(graph, variant=CARLONI)
        assert verdict.deadlocked

    def test_half_in_loop_live_under_refined_protocol(self):
        # The refined discard-stops-on-voids rule prevents the
        # injection (token conservation keeps the stop cycle from ever
        # self-sustaining) — the paper's "in many cases ... injection
        # will never occur".
        graph = ring(2, relays_per_arc=[["half"], ["full"]])
        verdict = check_deadlock(graph, variant=CASU)
        assert not verdict.deadlocked

    def test_half_in_feedforward_is_safe_under_refined(self):
        graph = pipeline(3)
        for edge in graph.edges:
            if edge.relays:
                edge.relays = ("half",) * len(edge.relays)
        assert check_deadlock(graph, variant=CASU).live

    def test_backpressure_does_not_break_full_loops(self):
        verdict = check_deadlock(
            figure2(), sink_patterns={"out": (True, False, True)})
        assert verdict.live


class TestVerdictDetails:
    def test_live_detail_message(self):
        verdict = check_deadlock(pipeline(2))
        assert "live" in verdict.detail

    def test_deadlock_detail_message(self):
        graph = ring(2, relays_per_arc=[["half"], ["half"]])
        verdict = check_deadlock(graph, variant=CARLONI)
        assert "deadlock" in verdict.detail

    def test_transient_and_period_reported(self):
        verdict = check_deadlock(figure1())
        assert verdict.period == 5
        assert verdict.transient == 2

    def test_optimistic_result_attached(self):
        verdict = check_deadlock(figure1())
        assert verdict.optimistic.period == 5


class TestStaticClassification:
    def test_feedforward_class(self):
        assert is_deadlock_free_class(figure1()) == "feed-forward"

    def test_all_full_class(self):
        assert is_deadlock_free_class(figure2()) == \
            "all-full-relay-stations"

    def test_half_off_loop_class(self):
        graph = ring(2, relays_per_arc=1)
        for edge in graph.edges:
            if edge.dst == "out":
                edge.relays = ("half",)
        assert is_deadlock_free_class(graph) == \
            "no-half-relay-stations-on-loops"

    def test_hazard_class_is_none(self):
        graph = ring(2, relays_per_arc=[["half"], ["full"]])
        assert is_deadlock_free_class(graph) is None

"""Skeleton simulation: valid/stop dynamics without data.

Paper: *"we are allowed to simulate just the skeleton of the system
consisting of stop and valid signals, thus the simulation cost is
absolutely negligible"*.  The skeleton simulator runs the exact control
semantics of the LID blocks (DESIGN.md §4) on bare bits — no payloads,
no pearls — directly from a :class:`~repro.graph.model.SystemGraph`.

It is the workhorse behind:

* throughput measurement (fires per period, exact rationals);
* transient/period extraction (state-hash periodicity detection);
* deadlock checking (a period with zero firings), including the
  *potential* deadlock of half-relay-stations-in-loops, detected as an
  ambiguous stop network: the monotone stop equations admitting more
  than one fixpoint in a reachable state (least = optimistic hardware,
  greatest = latch-up; real gates could settle on either).

Source availability and sink back pressure are modelled as repeating
bit patterns so that the composite state is finite and periodicity is
guaranteed.
"""

from __future__ import annotations

import dataclasses
import math
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.model import SystemGraph
from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant

# Element kind tags (kept as small ints for compact state tuples).
_SRC, _SHELL, _SINK, _RS_FULL, _RS_HALF, _RS_HALF_REG = range(6)

_RS_KIND = {
    "full": _RS_FULL,
    "half": _RS_HALF,
    "half-registered": _RS_HALF_REG,
}


@dataclasses.dataclass
class _Hop:
    """One producer->consumer wire segment of an expanded channel."""

    producer_kind: int
    producer_id: int      # index into the kind-specific table
    producer_edge: int    # for shells: which out-register (edge index)
    consumer_kind: int
    consumer_id: int


@dataclasses.dataclass
class SkeletonResult:
    """Outcome of a skeleton run (see :class:`SkeletonSim.run`)."""

    transient: int
    period: int
    shell_fires: Dict[str, int]
    sink_accepts: Dict[str, int]
    cycles_run: int
    deadlocked: bool
    potential_deadlock_cycle: Optional[int]

    @property
    def potential(self) -> bool:
        return self.potential_deadlock_cycle is not None

    def throughput(self, name: str) -> Fraction:
        """Steady-state firings (or acceptances) per cycle for a block."""
        if self.period == 0:
            return Fraction(0)
        if name in self.shell_fires:
            return Fraction(self.shell_fires[name], self.period)
        if name in self.sink_accepts:
            return Fraction(self.sink_accepts[name], self.period)
        raise KeyError(f"no shell or sink named {name!r}")

    def min_shell_throughput(self) -> Fraction:
        if not self.shell_fires or self.period == 0:
            return Fraction(0)
        return min(
            Fraction(f, self.period) for f in self.shell_fires.values()
        )


class SkeletonSim:
    """Bit-level simulator of a system graph's valid/stop skeleton."""

    def __init__(
        self,
        graph: SystemGraph,
        variant: ProtocolVariant = DEFAULT_VARIANT,
        fixpoint: str = "least",
        source_patterns: Optional[Dict[str, Sequence[bool]]] = None,
        sink_patterns: Optional[Dict[str, Sequence[bool]]] = None,
        detect_ambiguity: bool = True,
        telemetry=None,
    ):
        if fixpoint not in ("least", "greatest"):
            raise ValueError("fixpoint must be 'least' or 'greatest'")
        if any(n.queue_depth is not None for n in graph.nodes.values()):
            # Queued shells are modelled via their relay-station
            # desugaring (see repro.graph.transform.desugar_queues).
            from ..graph.transform import desugar_queues

            graph = desugar_queues(graph)
        self.graph = graph
        self.variant = variant
        # The variant is immutable for the lifetime of the simulator;
        # pre-binding the flag keeps the per-shell, per-settle-pass
        # attribute chase out of the hot loops.
        self._is_casu = variant.discards_void_stops
        self.fixpoint = fixpoint
        self.detect_ambiguity = detect_ambiguity
        # Telemetry is opt-in; the flags below keep the per-cycle cost
        # of the disabled path to a single branch.
        self.telemetry = telemetry
        self._metrics_on = (telemetry is not None
                            and telemetry.metrics is not None)
        self._events_on = (telemetry is not None
                           and telemetry.events is not None)
        self._build(source_patterns or {}, sink_patterns or {})
        self.reset()

    # -- construction -------------------------------------------------------

    def _build(self, source_patterns, sink_patterns) -> None:
        g = self.graph
        self.shell_names = [n.name for n in g.shells()]
        self.source_names = [n.name for n in g.sources()]
        self.sink_names = [n.name for n in g.sinks()]
        shell_index = {n: i for i, n in enumerate(self.shell_names)}
        source_index = {n: i for i, n in enumerate(self.source_names)}
        sink_index = {n: i for i, n in enumerate(self.sink_names)}

        self.src_pattern: List[Tuple[bool, ...]] = [
            tuple(bool(b) for b in source_patterns.get(n, (True,)))
            for n in self.source_names
        ]
        self.sink_pattern: List[Tuple[bool, ...]] = [
            tuple(bool(b) for b in sink_patterns.get(n, (False,)))
            for n in self.sink_names
        ]
        lengths = [len(p) for p in self.sink_pattern] or [1]
        self.sink_phase_mod = math.lcm(*lengths)

        self.rs_kinds: List[int] = []
        self.rs_names: List[str] = []
        self.hops: List[_Hop] = []
        # One stable name per hop (wire segment), e.g. "A->B[0]"; used
        # as the channel key in telemetry metric paths and trace events.
        self.hop_names: List[str] = []
        self._hop_name_seen: Dict[str, int] = {}
        # Per shell: list of input hop ids / output hop ids (with their
        # owning out-register edge index).
        self.shell_in_hops: List[List[int]] = [[] for _ in self.shell_names]
        self.shell_out_hops: List[List[int]] = [[] for _ in self.shell_names]
        self.src_out_hops: List[List[int]] = [[] for _ in self.source_names]
        self.sink_in_hop: List[Optional[int]] = [None] * len(self.sink_names)
        self.rs_in_hop: List[int] = []
        self.rs_out_hop: List[int] = []
        # Shell out registers: one bit per edge; register id -> shell id.
        self.shell_reg_owner: List[int] = []

        def _attach_producer(ref, hop_id: int) -> None:
            kind, ident = ref
            if kind == _SRC:
                self.src_out_hops[ident].append(hop_id)
            elif kind == _SHELL:
                self.shell_out_hops[ident].append(hop_id)
            else:
                self.rs_out_hop[ident] = hop_id

        def _attach_consumer(ref, hop_id: int) -> None:
            kind, ident = ref
            if kind == _SHELL:
                self.shell_in_hops[ident].append(hop_id)
            elif kind == _SINK:
                self.sink_in_hop[ident] = hop_id
            else:
                self.rs_in_hop[ident] = hop_id

        for edge in g.edges:
            src_node = g.nodes[edge.src]
            dst_node = g.nodes[edge.dst]
            if src_node.kind == "shell":
                reg_id = len(self.shell_reg_owner)
                self.shell_reg_owner.append(shell_index[edge.src])
                producer_ref = (_SHELL, shell_index[edge.src])
                producer_edge = reg_id
            else:
                producer_ref = (_SRC, source_index[edge.src])
                producer_edge = -1

            chain: List[int] = []
            for pos, spec in enumerate(edge.relays):
                rs_id = len(self.rs_kinds)
                self.rs_kinds.append(_RS_KIND[spec])
                self.rs_names.append(f"{edge.src}->{edge.dst}.rs{pos}")
                self.rs_in_hop.append(-1)
                self.rs_out_hop.append(-1)
                chain.append(rs_id)

            if dst_node.kind == "shell":
                dst_ref = (_SHELL, shell_index[edge.dst])
            else:
                dst_ref = (_SINK, sink_index[edge.dst])

            producers = [producer_ref] + [
                (self.rs_kinds[rs], rs) for rs in chain
            ]
            consumers = [(self.rs_kinds[rs], rs) for rs in chain] + [dst_ref]
            for seg, (p_ref, c_ref) in enumerate(zip(producers, consumers)):
                hop_id = len(self.hops)
                edge_reg = producer_edge if seg == 0 else -1
                self.hops.append(
                    _Hop(p_ref[0], p_ref[1], edge_reg, c_ref[0], c_ref[1])
                )
                name = f"{edge.src}->{edge.dst}[{seg}]"
                dup = self._hop_name_seen.get(name, 0)
                self._hop_name_seen[name] = dup + 1
                if dup:
                    name = f"{name}~{dup}"
                self.hop_names.append(name)
                _attach_producer(p_ref, hop_id)
                _attach_consumer(c_ref, hop_id)

        # The stop network can only have multiple fixpoints when a
        # combinational cycle exists, which requires a transparent half
        # relay station or a direct shell-to-shell hop somewhere.
        self._may_be_ambiguous = any(
            k == _RS_HALF for k in self.rs_kinds
        ) or any(
            h.producer_kind == _SHELL and h.consumer_kind == _SHELL
            for h in self.hops
        )

        # Flat dispatch tables for the hot per-cycle loops.
        self._src_hops: List[Tuple[int, int]] = []
        self._shellreg_hops: List[Tuple[int, int]] = []
        self._rs_hops: List[Tuple[int, int]] = []
        for hop_id, hop in enumerate(self.hops):
            if hop.producer_kind == _SRC:
                self._src_hops.append((hop_id, hop.producer_id))
            elif hop.producer_kind == _SHELL:
                self._shellreg_hops.append((hop_id, hop.producer_edge))
            else:
                self._rs_hops.append((hop_id, hop.producer_id))
        self._transparent_half_ids = [
            rs_id for rs_id, kind in enumerate(self.rs_kinds)
            if kind == _RS_HALF
        ]
        # Everything below is invariant after construction; resolving
        # it once keeps the per-cycle loops free of repeated kind
        # dispatch and attribute chases (these loops dominate the
        # skeleton profile on long runs).
        self._full_fixed_hops = [
            (rs_id, self.rs_in_hop[rs_id])
            for rs_id, kind in enumerate(self.rs_kinds)
            if kind == _RS_FULL
        ]
        self._halfreg_fixed_hops = [
            (rs_id, self.rs_in_hop[rs_id])
            for rs_id, kind in enumerate(self.rs_kinds)
            if kind == _RS_HALF_REG
        ]
        self._sink_fixed_hops = [
            (sink_id, hop_in)
            for sink_id, hop_in in enumerate(self.sink_in_hop)
            if hop_in is not None
        ]
        self._half_inout = [
            (rs_id, self.rs_in_hop[rs_id], self.rs_out_hop[rs_id])
            for rs_id in self._transparent_half_ids
        ]
        self._rs_inout = [
            (rs_id, kind, self.rs_in_hop[rs_id], self.rs_out_hop[rs_id])
            for rs_id, kind in enumerate(self.rs_kinds)
        ]
        self._shell_out_pairs = [
            [(hop_out, self.hops[hop_out].producer_edge)
             for hop_out in outs]
            for outs in self.shell_out_hops
        ]
        self._hop_internal = [
            h.consumer_kind in (_SHELL, _RS_HALF) for h in self.hops
        ]

    # -- state ---------------------------------------------------------------

    def reset(self) -> None:
        self.cycle = 0
        self._src_override: Optional[Sequence[bool]] = None
        self._sink_override: Optional[Sequence[bool]] = None
        # Shell out registers start VALID (paper footnote 1).
        self.shell_reg = [True] * len(self.shell_reg_owner)
        # Relay stations start VOID.
        self.rs_main = [False] * len(self.rs_kinds)
        self.rs_aux = [False] * len(self.rs_kinds)
        self.rs_stop_reg = [False] * len(self.rs_kinds)
        self.src_phase = [0] * len(self.source_names)
        self.fire_history: List[Tuple[bool, ...]] = []
        self.accept_history: List[Tuple[bool, ...]] = []
        self.ambiguous_cycles: List[int] = []
        # Paper claim instrumentation ("higher locality of management
        # of void/stop signals"): how many stop wires are asserted, how
        # many land on void tokens, and how many of those void-landing
        # stops were generated *combinationally by the protocol* (by a
        # shell or a transparent half station).  Scripted sink stops
        # and registered full-station credits are validity-blind by
        # nature and excluded from the internal count.
        self.stop_assertions_total = 0
        self.stops_on_voids_total = 0
        self.internal_stops_on_voids_total = 0
        # Telemetry accumulators (only filled when metrics are on):
        # per-hop stall cycles and per-relay end-of-cycle occupancy
        # distribution ({0,1,2} -> cycles).  See metrics_snapshot().
        self.hop_stall_cycles = [0] * len(self.hops)
        self.rs_occupancy_counts = [[0, 0, 0] for _ in self.rs_kinds]

    def state(self) -> Tuple:
        """Hashable snapshot of all registers and script phases."""
        return (
            tuple(self.shell_reg),
            tuple(self.rs_main),
            tuple(self.rs_aux),
            tuple(self.rs_stop_reg),
            tuple(self.src_phase),
            self.cycle % self.sink_phase_mod,
        )

    def register_state(self) -> Tuple:
        """Snapshot of the protocol registers only (no script phases).

        Used by the exhaustive system-liveness explorer, which supplies
        the environment externally per transition.
        """
        return (
            tuple(self.shell_reg),
            tuple(self.rs_main),
            tuple(self.rs_aux),
            tuple(self.rs_stop_reg),
        )

    def set_register_state(self, state: Tuple) -> None:
        """Restore a snapshot produced by :meth:`register_state`."""
        shell_reg, rs_main, rs_aux, rs_stop = state
        self.shell_reg = list(shell_reg)
        self.rs_main = list(rs_main)
        self.rs_aux = list(rs_aux)
        self.rs_stop_reg = list(rs_stop)

    # -- per-cycle evaluation ----------------------------------------------

    def _forward_valids(self) -> List[bool]:
        valid = [False] * len(self.hops)
        if self._src_override is not None:
            for hop_id, src_id in self._src_hops:
                valid[hop_id] = self._src_override[src_id]
        else:
            for hop_id, src_id in self._src_hops:
                pattern = self.src_pattern[src_id]
                valid[hop_id] = pattern[self.src_phase[src_id]
                                        % len(pattern)]
        shell_reg = self.shell_reg
        for hop_id, reg in self._shellreg_hops:
            valid[hop_id] = shell_reg[reg]
        rs_main = self.rs_main
        for hop_id, rs_id in self._rs_hops:
            valid[hop_id] = rs_main[rs_id]
        return valid

    def _settle_stops(self, valid: List[bool], mode: str) -> List[bool]:
        """Fixpoint of the monotone stop equations (least or greatest)."""
        pessimistic = mode == "greatest"
        n_hops = len(self.hops)
        stop = [pessimistic] * n_hops
        # Registered / scripted stops are fixed regardless of mode.
        fixed = [False] * n_hops
        rs_stop_reg = self.rs_stop_reg
        rs_main = self.rs_main
        for rs_id, hop_in in self._full_fixed_hops:
            stop[hop_in] = rs_stop_reg[rs_id]
            fixed[hop_in] = True
        for rs_id, hop_in in self._halfreg_fixed_hops:
            stop[hop_in] = rs_main[rs_id]
            fixed[hop_in] = True
        sink_override = self._sink_override
        if sink_override is not None:
            for sink_id, hop_in in self._sink_fixed_hops:
                stop[hop_in] = sink_override[sink_id]
                fixed[hop_in] = True
        else:
            cycle = self.cycle
            sink_pattern = self.sink_pattern
            for sink_id, hop_in in self._sink_fixed_hops:
                pattern = sink_pattern[sink_id]
                stop[hop_in] = pattern[cycle % len(pattern)]
                fixed[hop_in] = True

        changed = True
        guard = n_hops + len(self.shell_names) + 2
        is_casu = self._is_casu
        half_inout = self._half_inout
        shell_in_hops = self.shell_in_hops
        shell_fire = self._shell_fire
        n_shells = len(self.shell_names)
        while changed and guard > 0:
            changed = False
            guard -= 1
            # Transparent half relay stations.
            for rs_id, hop_in, hop_out in half_inout:
                if is_casu:
                    value = stop[hop_out] and rs_main[rs_id]
                else:
                    value = stop[hop_out]
                if stop[hop_in] != value and not fixed[hop_in]:
                    stop[hop_in] = value
                    changed = True
            # Shells: stall propagates from outputs to all inputs.
            for shell_id in range(n_shells):
                stalled = not shell_fire(shell_id, valid, stop)
                for hop_in in shell_in_hops[shell_id]:
                    value = stalled and (valid[hop_in] or not is_casu)
                    if stop[hop_in] != value and not fixed[hop_in]:
                        stop[hop_in] = value
                        changed = True
        return stop

    def _shell_fire(self, shell_id: int, valid, stop) -> bool:
        for hop_in in self.shell_in_hops[shell_id]:
            if not valid[hop_in]:
                return False
        is_casu = self._is_casu
        shell_reg = self.shell_reg
        for hop_out, reg in self._shell_out_pairs[shell_id]:
            if stop[hop_out] and (shell_reg[reg] or not is_casu):
                return False
        return True

    def _apply_edge(self, valid: List[bool], stop: List[bool],
                    fires: Tuple[bool, ...]) -> None:
        """Register updates (mirror repro.lid semantics exactly)."""
        shell_reg = self.shell_reg
        new_shell_reg = list(shell_reg)
        shell_out_pairs = self._shell_out_pairs
        for shell_id, fired in enumerate(fires):
            for hop_out, reg in shell_out_pairs[shell_id]:
                if fired:
                    new_shell_reg[reg] = True
                else:
                    new_shell_reg[reg] = shell_reg[reg] and stop[hop_out]

        rs_main = self.rs_main
        rs_aux = self.rs_aux
        rs_stop_reg = self.rs_stop_reg
        new_main = list(rs_main)
        new_aux = list(rs_aux)
        new_stop_reg = list(rs_stop_reg)
        slot_consumed = self.variant.slot_consumed
        for rs_id, kind, hop_in, hop_out in self._rs_inout:
            stop_in = stop[hop_out]
            incoming = valid[hop_in]
            if kind == _RS_FULL:
                accepted = incoming and not rs_stop_reg[rs_id]
                consumed = slot_consumed(rs_main[rs_id], stop_in)
                if rs_aux[rs_id]:
                    if consumed:
                        new_main[rs_id] = rs_aux[rs_id]
                        new_aux[rs_id] = False
                        new_stop_reg[rs_id] = False
                elif consumed:
                    new_main[rs_id] = accepted
                    new_stop_reg[rs_id] = False
                elif accepted:
                    new_aux[rs_id] = True
                    new_stop_reg[rs_id] = True
            else:  # half variants share the single-register update
                consumed = slot_consumed(rs_main[rs_id], stop_in)
                accepted = incoming and not stop[hop_in]
                if consumed:
                    new_main[rs_id] = accepted
        self.shell_reg = new_shell_reg
        self.rs_main = new_main
        self.rs_aux = new_aux
        self.rs_stop_reg = new_stop_reg

    def step(self) -> Tuple[Tuple[bool, ...], Tuple[bool, ...]]:
        """Advance one cycle; returns (shell fires, sink accepts)."""
        valid = self._forward_valids()
        stop = self._settle_stops(valid, self.fixpoint)
        if self.detect_ambiguity and self._may_be_ambiguous:
            other = "greatest" if self.fixpoint == "least" else "least"
            alt = self._settle_stops(valid, other)
            if alt != stop:
                self.ambiguous_cycles.append(self.cycle)
                if self._events_on:
                    self.telemetry.events.emit(
                        "fixpoint", "ambiguous", self.cycle)

        collect = self._metrics_on
        hop_stall = self.hop_stall_cycles
        hop_internal = self._hop_internal
        stops = voids = internal = 0
        for hop_id, asserted in enumerate(stop):
            if asserted:
                stops += 1
                if collect:
                    hop_stall[hop_id] += 1
                if not valid[hop_id]:
                    voids += 1
                    if hop_internal[hop_id]:
                        internal += 1
        self.stop_assertions_total += stops
        self.stops_on_voids_total += voids
        self.internal_stops_on_voids_total += internal

        fires = tuple(
            self._shell_fire(i, valid, stop)
            for i in range(len(self.shell_names))
        )
        accepts = tuple(
            hop is not None and valid[hop] and not stop[hop]
            for hop, _pattern in zip(self.sink_in_hop, self.sink_pattern)
        )

        self._apply_edge(valid, stop, fires)

        if collect:
            occupancy = self.rs_occupancy_counts
            rs_main, rs_aux = self.rs_main, self.rs_aux
            for rs_id in range(len(self.rs_kinds)):
                occupancy[rs_id][int(rs_main[rs_id])
                                 + int(rs_aux[rs_id])] += 1
        if self._events_on:
            events = self.telemetry.events
            cycle = self.cycle
            for i, fired in enumerate(fires):
                if fired:
                    events.emit("token", "fire", cycle,
                                block=self.shell_names[i])
            for i, accepted in enumerate(accepts):
                if accepted:
                    events.emit("token", "accept", cycle,
                                sink=self.sink_names[i])
            for hop_id, asserted in enumerate(stop):
                if asserted:
                    events.emit("stall", "assert", cycle,
                                channel=self.hop_names[hop_id],
                                valid=valid[hop_id])

        for src_id in range(len(self.source_names)):
            pattern = self.src_pattern[src_id]
            presented = pattern[self.src_phase[src_id] % len(pattern)]
            held = False
            if presented:
                held = any(
                    stop[h] for h in self.src_out_hops[src_id]
                )
            if not held:
                self.src_phase[src_id] = (
                    (self.src_phase[src_id] + 1) % len(pattern)
                )

        self.fire_history.append(fires)
        self.accept_history.append(accepts)
        self.cycle += 1
        return fires, accepts

    def external_step(
        self,
        src_valid: Sequence[bool],
        sink_stop: Sequence[bool],
    ) -> Tuple[Tuple[bool, ...], Tuple[bool, ...], Tuple[bool, ...]]:
        """One cycle with the environment supplied explicitly.

        *src_valid* gives the validity presented by each source this
        cycle; *sink_stop* the stop each sink asserts.  Script patterns
        and phases are bypassed (and phases left untouched), so the
        caller fully owns the environment — this is the hook the
        exhaustive liveness explorer drives.  Returns
        ``(shell fires, sink accepts, source stops)`` where the last
        tuple tells the caller which presented tokens were held (the
        environment contract: a held token must be re-presented).
        """
        if len(src_valid) != len(self.source_names):
            raise ValueError("need one validity bit per source")
        if len(sink_stop) != len(self.sink_names):
            raise ValueError("need one stop bit per sink")
        self._src_override = list(src_valid)
        self._sink_override = list(sink_stop)
        try:
            valid = self._forward_valids()
            stop = self._settle_stops(valid, self.fixpoint)
            fires = tuple(
                self._shell_fire(i, valid, stop)
                for i in range(len(self.shell_names))
            )
            accepts = tuple(
                hop is not None and valid[hop] and not stop[hop]
                for hop in self.sink_in_hop
            )
            src_stops = tuple(
                any(stop[h] for h in self.src_out_hops[src_id])
                for src_id in range(len(self.source_names))
            )
            self._apply_edge(valid, stop, fires)
        finally:
            self._src_override = None
            self._sink_override = None
        self.cycle += 1
        return fires, accepts, src_stops

    # -- telemetry ------------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Dict]:
        """Canonical metrics snapshot of the run so far.

        The same snapshot (bit-identical keys and values) is produced
        by the vectorized engine for each batch column — the contract
        enforced by the differential conformance suite.  Per-hop stall
        cycles and relay occupancy distributions are present only when
        the simulator was constructed with metrics-collecting telemetry
        (they need per-cycle accumulation); everything else comes from
        the always-on counters.
        """
        from ..obs import MetricsRegistry

        registry = MetricsRegistry()
        cycles = self.cycle
        registry.counter("skeleton/cycles").inc(cycles)
        for i, name in enumerate(self.shell_names):
            fires = sum(1 for f in self.fire_history if f[i])
            registry.counter(f"skeleton/shell/{name}/fires").inc(fires)
            registry.gauge(f"skeleton/shell/{name}/fire_rate").set(
                fires / cycles if cycles else 0.0)
        for i, name in enumerate(self.sink_names):
            accepts = sum(1 for a in self.accept_history if a[i])
            registry.counter(f"skeleton/sink/{name}/accepts").inc(accepts)
        registry.counter("skeleton/stop/assertions").inc(
            self.stop_assertions_total)
        registry.counter("skeleton/stop/on_voids").inc(
            self.stops_on_voids_total)
        registry.counter("skeleton/stop/on_voids_internal").inc(
            self.internal_stops_on_voids_total)
        registry.counter("skeleton/fixpoint/ambiguous").inc(
            len(self.ambiguous_cycles))
        if self._metrics_on:
            for hop_id, stalls in enumerate(self.hop_stall_cycles):
                registry.counter(
                    f"skeleton/channel/{self.hop_names[hop_id]}"
                    f"/stall_cycles").inc(stalls)
            for rs_id, counts in enumerate(self.rs_occupancy_counts):
                hist = registry.histogram(
                    f"skeleton/relay/{self.rs_names[rs_id]}/occupancy")
                for level, count in enumerate(counts):
                    if count:
                        hist.observe(level, count)
        return registry.snapshot()

    # -- analysis-level driver ------------------------------------------------

    def run(self, max_cycles: int = 10_000) -> SkeletonResult:
        """Simulate until the state becomes periodic (or *max_cycles*).

        The paper's key observation — after a system-dependent transient
        every part of the system behaves periodically — guarantees
        termination: the composite register state is finite, so a state
        must repeat.
        """
        seen: Dict[Tuple, int] = {self.state(): 0}
        transient = period = None
        for _ in range(max_cycles):
            self.step()
            snapshot = self.state()
            if snapshot in seen:
                transient = seen[snapshot]
                period = self.cycle - transient
                break
            seen[snapshot] = self.cycle
        if period is None:
            from ..errors import PeriodicityTimeout

            raise PeriodicityTimeout(
                f"{self.graph.name}: no periodicity within {max_cycles} "
                f"cycles (state space larger than expected)",
                graph=self.graph.name, max_cycles=max_cycles,
            )

        window = self.fire_history[transient:transient + period]
        shell_fires = {
            name: sum(1 for fires in window if fires[i])
            for i, name in enumerate(self.shell_names)
        }
        accept_window = self.accept_history[transient:transient + period]
        sink_accepts = {
            name: sum(1 for acc in accept_window if acc[i])
            for i, name in enumerate(self.sink_names)
        }
        deadlocked = bool(self.shell_names) and all(
            count == 0 for count in shell_fires.values()
        )
        potential = self.ambiguous_cycles[0] if self.ambiguous_cycles else None
        return SkeletonResult(
            transient=transient,
            period=period,
            shell_fires=shell_fires,
            sink_accepts=sink_accepts,
            cycles_run=self.cycle,
            deadlocked=deadlocked,
            potential_deadlock_cycle=potential,
        )

"""Live progress over the telemetry event stream.

Campaigns, deadlock probes and sweeps fan work out through
``map_deterministic``; until now the only signal that anything was
happening was the final report.  :class:`ProgressReporter` sits on the
driver side of the pool, is advanced once per completed unit (serial
loop or future-drain callback), and

* emits periodic ``exec/progress`` events into an
  :class:`~repro.obs.events.EventStream` (done/total, cache hits, ETA)
  for exporters and dashboards, and
* renders a rate-limited status line to *out* (stderr by default).

Everything here is strictly off the stdout path: reports stay
byte-identical whether progress is on or off, which is why the CLI
flag is ``--progress`` (stderr) and off by default.

Completion order under ``--jobs N`` is wall-clock dependent, so
progress events are inherently non-deterministic; they are emitted
under the ``exec`` category and never enter canonical report or ledger
payloads.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Callable, Dict, Optional, TextIO

from .events import EventStream

#: Minimum seconds between rendered lines / emitted events.
DEFAULT_INTERVAL = 0.25


class ProgressReporter:
    """Track done/total work units; emit events and a stderr line.

    Thread-safe: ``advance`` may be called from executor waiter
    threads.  *cache* is an optional :class:`repro.exec.cache.CacheStats`
    read live so the line shows how much work the golden-run cache is
    absorbing.

    *on_event* fans each rendered tick out to an arbitrary consumer as
    a plain dict (the same fields the ``exec/progress`` event carries,
    plus ``final``) — the campaign service uses this to stream NDJSON
    progress lines to HTTP clients without touching stderr or the
    event stream.  The callback runs with the reporter's lock held, so
    it must be quick and must not call back into the reporter; hand
    the dict off (queue put, ``loop.call_soon_threadsafe``) and return.
    """

    def __init__(
        self,
        total: int,
        label: str = "campaign",
        *,
        stream: Optional[EventStream] = None,
        cache: Optional[Any] = None,
        out: Optional[TextIO] = None,
        interval: float = DEFAULT_INTERVAL,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        self.total = max(int(total), 0)
        self.label = label
        self.stream = stream
        self.cache = cache
        self.out = out if out is not None else sys.stderr
        self.interval = interval
        self.on_event = on_event
        self.done = 0
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._last_render = 0.0
        self._finished = False

    # -- accounting ----------------------------------------------------

    def set_total(self, total: int) -> None:
        with self._lock:
            self.total = max(int(total), 0)

    def advance(self, n: int = 1) -> None:
        """Record *n* completed units; render if the interval elapsed."""
        with self._lock:
            self.done += n
            now = time.monotonic()
            force = self.done >= self.total
            if not force and now - self._last_render < self.interval:
                return
            self._last_render = now
            self._tick(now)

    def finish(self) -> None:
        """Force a final render + event (idempotent)."""
        with self._lock:
            if self._finished:
                return
            self._finished = True
            self._tick(time.monotonic(), final=True)
            if self.out is not None and self.out.isatty():
                self.out.write("\n")
                self.out.flush()

    # -- rendering (lock held) -----------------------------------------

    def _cache_hits(self) -> Optional[int]:
        if self.cache is None:
            return None
        hits = getattr(self.cache, "hits", None)
        return hits if isinstance(hits, int) else None

    def _eta(self, now: float) -> Optional[float]:
        if not self.done or self.done >= self.total:
            return None
        elapsed = now - self._started
        return elapsed / self.done * (self.total - self.done)

    def _tick(self, now: float, final: bool = False) -> None:
        hits = self._cache_hits()
        eta = self._eta(now)
        if self.stream is not None or self.on_event is not None:
            fields = {"done": self.done, "total": self.total,
                      "label": self.label}
            if hits is not None:
                fields["cache_hits"] = hits
            if eta is not None:
                fields["eta_seconds"] = round(eta, 3)
            if self.stream is not None:
                self.stream.emit("exec", "progress", 0, **fields)
            if self.on_event is not None:
                self.on_event(dict(fields, final=final))
        if self.out is None:
            return
        percent = (100.0 * self.done / self.total) if self.total else 100.0
        parts = [f"{self.label}: {self.done}/{self.total}",
                 f"({percent:.0f}%)"]
        if hits is not None:
            parts.append(f"cache-hits={hits}")
        if eta is not None:
            parts.append(f"eta={eta:.1f}s")
        if final:
            parts.append(f"elapsed={now - self._started:.1f}s")
        line = " ".join(parts)
        if self.out.isatty():
            self.out.write("\r\x1b[K" + line)
        else:
            self.out.write(line + "\n")
        self.out.flush()

"""Typed metrics registry: counters, gauges and discrete histograms.

The registry is the quantitative half of :mod:`repro.obs`: while the
event stream answers "what happened when", metrics answer "how much in
total" — per-channel stall cycles, shell fire counts and rates, relay
occupancy distributions, stop-wire activity.

Design constraints, in order:

1. **Determinism** — :meth:`MetricsRegistry.snapshot` must be
   bit-identical across simulation backends for the same run (this is
   enforced by the differential conformance suite); all values are
   integers or exact integer ratios rendered identically, and keys are
   emitted sorted.
2. **Cheap updates** — counters are a single attribute increment;
   instrumented hot loops may also accumulate privately and fold into
   the registry once per run.
3. **JSON-compatible snapshots** — ``snapshot()`` nests only dicts,
   strings, ints and floats.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-value metric (occupancy now, rate at end of run, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Any = 0

    def set(self, value: Any) -> None:
        self.value = value


class Histogram:
    """Discrete (exact-bucket) histogram.

    The simulator's distributions are over tiny integer domains (relay
    occupancy 0..2, settle pass counts, pattern phases), so buckets are
    the observed values themselves — no binning error, and bit-exact
    across backends.
    """

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}

    def observe(self, value: int, count: int = 1) -> None:
        self.counts[value] = self.counts.get(value, 0) + count

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def mean(self) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return sum(v * c for v, c in self.counts.items()) / total


class MetricsRegistry:
    """Named, typed metric store with deterministic snapshots.

    Metric names are slash-separated paths, e.g.
    ``skeleton/channel/A->B#0/stall_cycles``; the path convention is
    documented in ``docs/observability.md``.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls()
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> Iterable[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All metrics as a sorted, JSON-compatible mapping."""
        out: Dict[str, Dict[str, Any]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out[name] = {"type": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[name] = {"type": "gauge", "value": metric.value}
            else:
                counts = {str(k): metric.counts[k]
                          for k in sorted(metric.counts)}
                out[name] = {"type": "histogram", "counts": counts,
                             "total": metric.total}
        return out

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Fold a snapshot (e.g. from a backend) into this registry."""
        for name, record in snapshot.items():
            kind = record.get("type")
            if kind == "counter":
                self.counter(name).inc(record["value"])
            elif kind == "gauge":
                self.gauge(name).set(record["value"])
            elif kind == "histogram":
                hist = self.histogram(name)
                for value, count in record["counts"].items():
                    hist.observe(int(value), count)
            else:
                raise ValueError(f"unknown metric type {kind!r} "
                                 f"for {name!r}")

    def clear(self) -> None:
        self._metrics.clear()


def merge_snapshots(snapshots) -> Dict[str, Dict[str, Any]]:
    """Fold an ordered sequence of snapshots into one canonical snapshot.

    Counters and histograms are additive; gauges take the last write —
    exactly what :meth:`MetricsRegistry.merge_snapshot` does, applied in
    sequence order.  The parallel execution layer merges per-worker
    snapshots in canonical unit order with this helper, which is what
    keeps ``--metrics-out`` byte-identical to a serial run.
    """
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge_snapshot(snapshot)
    return registry.snapshot()


def flatten_snapshot(snapshot: Dict[str, Dict[str, Any]],
                     prefix: Optional[str] = None) -> Dict[str, Any]:
    """Reduce a snapshot to scalar key/value pairs (for tables/JSON).

    Counters and gauges keep their value; histograms expand to one key
    per bucket plus a ``.total``.
    """
    flat: Dict[str, Any] = {}
    for name, record in snapshot.items():
        key = f"{prefix}/{name}" if prefix else name
        if record["type"] in ("counter", "gauge"):
            flat[key] = record["value"]
        else:
            for bucket, count in record["counts"].items():
                flat[f"{key}[{bucket}]"] = count
            flat[f"{key}.total"] = record["total"]
    return flat

"""EXP-C1: curing deadlocks with low-intrusive relay substitutions.

Paper: "the cases that inject deadlocks can be 'cured' by low intrusive
changes (adding/substituting few relay stations)."
"""

import pytest

from repro.bench.runner import run_cure
from repro.graph import promote_half_relays, ring
from repro.lid.variant import ProtocolVariant
from repro.skeleton import check_deadlock


def test_bench_cure_table(benchmark, emit):
    table, rows = benchmark.pedantic(run_cure, rounds=1, iterations=1)
    emit("EXP-C1-cure", table)
    for _system, before, promoted, after in rows:
        assert before == "deadlock" and after == "live"
        assert promoted <= 2  # "few relay stations"


def test_bench_promotion_transform(benchmark):
    graph = ring(3, relays_per_arc=[["half"], ["half"], ["full"]])

    def run():
        return promote_half_relays(graph, only_loops=True)

    cured = benchmark(run)
    assert cured.relay_count("half") == 0


def test_bench_cure_end_to_end(benchmark):
    """Detect -> cure -> re-verify, timed as one flow."""
    graph = ring(2, relays_per_arc=[["half"], ["full"]])

    def flow():
        before = check_deadlock(graph, variant=ProtocolVariant.CARLONI)
        cured = promote_half_relays(graph, only_loops=True)
        after = check_deadlock(cured, variant=ProtocolVariant.CARLONI)
        return before, after

    before, after = benchmark(flow)
    assert before.deadlocked and after.live


def test_bench_cure_preserves_throughput(benchmark):
    """The cure does not change steady throughput: a half and a full
    relay station occupy one pipeline slot each."""
    from repro.skeleton import system_throughput

    hazard = ring(2, relays_per_arc=[["half"], ["full"]])
    cured = promote_half_relays(hazard, only_loops=True)

    def measure():
        return (system_throughput(hazard),
                system_throughput(cured))

    before_rate, after_rate = benchmark(measure)
    assert before_rate == after_rate

"""Unit tests for tokens."""

import pytest

from repro.lid.token import Token, VOID, payloads, valid_stream


class TestToken:
    def test_valid_token_carries_value(self):
        tok = Token(42)
        assert tok.valid and tok.value == 42

    def test_void_token(self):
        assert not VOID.valid
        assert VOID.value is None

    def test_void_factory_is_singleton(self):
        assert Token.void() is VOID

    def test_void_discards_payload(self):
        tok = Token(99, valid=False)
        assert tok.value is None

    def test_immutability(self):
        tok = Token(1)
        with pytest.raises(AttributeError):
            tok.value = 2

    def test_equality_valid(self):
        assert Token(3) == Token(3)
        assert Token(3) != Token(4)

    def test_all_voids_equal(self):
        assert Token(valid=False) == VOID

    def test_valid_not_equal_void(self):
        assert Token(0) != VOID

    def test_eq_other_types(self):
        assert Token(1).__eq__(1) is NotImplemented

    def test_hashable(self):
        assert len({Token(1), Token(1), VOID, Token.void()}) == 2

    def test_void_p(self):
        assert VOID.void_p
        assert not Token(0).void_p

    def test_str_matches_paper_rendering(self):
        assert str(VOID) == "N"
        assert str(Token(7)) == "7"

    def test_repr(self):
        assert repr(VOID) == "Token.void()"
        assert repr(Token(5)) == "Token(5)"


class TestStreamHelpers:
    def test_valid_stream(self):
        toks = valid_stream([1, 2, 3])
        assert all(t.valid for t in toks)
        assert [t.value for t in toks] == [1, 2, 3]

    def test_payloads_projection(self):
        toks = [Token(1), VOID, Token(2), VOID, VOID, Token(3)]
        assert payloads(toks) == [1, 2, 3]

    def test_payloads_empty(self):
        assert payloads([]) == []
        assert payloads([VOID, VOID]) == []

"""EXP-S1: campaign-service throughput — cache-first serving pays.

The campaign service's performance claim is layered, and each layer is
asserted where the hardware allows:

* **warm >> cold**: once a manifest's response is in the shared
  content-addressed cache, serving it again is a pure cache read on
  the event loop — no worker, no simulation.  Steady-state warm
  throughput must be at least 10x the cold (execute-every-request)
  rate on any machine;
* **coalescing**: K concurrent identical cold requests cost one
  execution (asserted exactly, any core count);
* **scaling**: concurrent *distinct* cold manifests spread across a
  4-worker pool must beat serial submission by >= 2x — asserted only
  when the machine actually has >= 4 cores (CI containers often
  expose 1; the numbers are still recorded there).

Emits ``BENCH_EXP-S1.json`` with cold/warm rates, the coalescing
tally and the scaling ratio, mirrored into the ``obs regress`` scan.
"""

import http.client
import json
import os
import tempfile
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

from repro.bench.tables import format_table
from repro.serve import CampaignScheduler, start_in_thread

MIN_WARM_OVER_COLD = 10.0
MIN_SCALING = 2.0
SCALING_WORKERS = 4
COLD_MANIFESTS = 4
WARM_ROUNDS = 200


def _post(port, body):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
    try:
        conn.request("POST", "/v1/run", body=json.dumps(body))
        response = conn.getresponse()
        payload = response.read()
        return response.status, dict(response.getheaders()), payload
    finally:
        conn.close()


def _manifest(seed):
    # Heavier than --smoke so the cold (execute) rate sits well below
    # the warm (cache-read) rate on any hardware.
    return {"kind": "campaign", "cycles": 256, "samples": 24,
            "format": "json", "seed": seed}


def _serve_rates(tmp):
    """Cold rate, warm rate and coalescing tally on one thread-mode
    server (same event-loop path production uses)."""
    scheduler = CampaignScheduler(mode="thread", jobs=2,
                                  cache_dir=os.path.join(tmp, "cache"))
    handle = start_in_thread(scheduler, port=0)
    try:
        # Cold: every request executes a fresh golden simulation.
        started = perf_counter()
        for seed in range(COLD_MANIFESTS):
            status, headers, _body = _post(handle.port, _manifest(seed))
            assert status == 200 and headers["X-Repro-Cache"] == "miss"
        cold_wall = perf_counter() - started
        cold_rate = COLD_MANIFESTS / cold_wall

        # Warm: identical manifests come straight from the cache.
        started = perf_counter()
        for i in range(WARM_ROUNDS):
            status, headers, _body = _post(
                handle.port, _manifest(i % COLD_MANIFESTS))
            assert status == 200 and headers["X-Repro-Cache"] == "hit"
        warm_wall = perf_counter() - started
        warm_rate = WARM_ROUNDS / warm_wall

        # Coalescing: K concurrent identical cold requests, one run.
        fresh = _manifest(COLD_MANIFESTS + 1)
        executed_before = scheduler.stats.executed
        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(pool.map(
                lambda _: _post(handle.port, fresh), range(6)))
        assert {status for status, _h, _b in results} == {200}
        assert len({body for _s, _h, body in results}) == 1
        coalesced_runs = scheduler.stats.executed - executed_before
        assert coalesced_runs == 1, (
            f"6 concurrent identical manifests cost "
            f"{coalesced_runs} executions (expected 1)")
        return cold_rate, warm_rate
    finally:
        handle.stop()


def _scaling_ratio(tmp):
    """Serial vs concurrent wall time for distinct cold manifests on a
    4-worker process pool."""
    scheduler = CampaignScheduler(
        mode="process", jobs=SCALING_WORKERS,
        cache_dir=os.path.join(tmp, "scaling-cache"))
    handle = start_in_thread(scheduler, port=0)
    try:
        # Warm the pool (fork + first-touch costs stay out of timing).
        _post(handle.port, _manifest(100))

        serial_seeds = range(200, 200 + SCALING_WORKERS)
        started = perf_counter()
        for seed in serial_seeds:
            status, _h, _b = _post(handle.port, _manifest(seed))
            assert status == 200
        serial_wall = perf_counter() - started

        concurrent_seeds = range(300, 300 + SCALING_WORKERS)
        started = perf_counter()
        with ThreadPoolExecutor(max_workers=SCALING_WORKERS) as pool:
            statuses = list(pool.map(
                lambda seed: _post(handle.port, _manifest(seed))[0],
                concurrent_seeds))
        concurrent_wall = perf_counter() - started
        assert statuses == [200] * SCALING_WORKERS
        return serial_wall / concurrent_wall, serial_wall, \
            concurrent_wall
    finally:
        handle.stop()


def test_bench_serve_throughput(benchmark, emit):
    cores = os.cpu_count() or 1
    total_started = perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        cold_rate, warm_rate = _serve_rates(tmp)
        scaling, serial_wall, concurrent_wall = _scaling_ratio(tmp)
    warm_over_cold = warm_rate / cold_rate
    assert warm_over_cold >= MIN_WARM_OVER_COLD, (
        f"warm cache-hit serving only reached {warm_over_cold:.1f}x "
        f"the cold rate (expected >= {MIN_WARM_OVER_COLD:.0f}x)")
    if cores >= SCALING_WORKERS:
        assert scaling >= MIN_SCALING, (
            f"{SCALING_WORKERS} concurrent distinct manifests only "
            f"reached {scaling:.2f}x over serial on {cores} cores "
            f"(expected >= {MIN_SCALING:.0f}x)")

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = [
        ("cold execute", f"{cold_rate:.1f} req/s", "1.0x"),
        ("warm cache hit", f"{warm_rate:.1f} req/s",
         f"{warm_over_cold:.1f}x"),
        (f"{SCALING_WORKERS}-way distinct",
         f"{serial_wall:.2f}s -> {concurrent_wall:.2f}s",
         f"{scaling:.2f}x" + ("" if cores >= SCALING_WORKERS
                              else f" (unasserted: {cores} core(s))")),
    ]
    table = format_table(
        ("phase", "rate / wall", "ratio"), rows,
        title=f"EXP-S1: campaign service throughput ({cores} core(s))")
    emit("EXP-S1", table, rows=rows,
         wall_seconds=perf_counter() - total_started,
         params={"cold_manifests": COLD_MANIFESTS,
                 "warm_rounds": WARM_ROUNDS,
                 "scaling_workers": SCALING_WORKERS,
                 "cores": cores},
         counters={"cold_req_per_s": round(cold_rate, 2),
                   "warm_req_per_s": round(warm_rate, 2),
                   "warm_over_cold_x": round(warm_over_cold, 2),
                   "scaling_x": round(scaling, 2)})

"""Pass pipeline: graph transforms as named, auditable passes.

The transforms in :mod:`repro.graph.transform` (path equalization,
relay insertion, half-relay promotion, queue desugaring, deadlock
cures) are pure ``graph -> graph`` functions.  A :class:`PassPipeline`
runs a sequence of them as **named passes** and records, for each one,
the structural fingerprint before and after — an audit log that says
exactly which pass changed the design and how to reproduce the chain.

With telemetry attached, each pass also emits one ``("pass", <name>)``
event carrying the fingerprints, so transform activity lands in the
same stream as simulation events (see docs/ir.md).

Example::

    pipeline = PassPipeline([equalize_pass(), cure_deadlock_pass()])
    cured = pipeline.run(graph)
    for record in pipeline.audit_log:
        print(record.name, record.changed, record.detail)
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Union

from ..graph.model import SystemGraph
from .lowering import lower

__all__ = [
    "Pass",
    "PassRecord",
    "PassPipeline",
    "equalize_pass",
    "desugar_queues_pass",
    "promote_half_relays_pass",
    "insert_relay_pass",
    "cure_deadlock_pass",
]


@dataclasses.dataclass(frozen=True)
class PassRecord:
    """One audit-log entry: what a pass did to the design."""

    name: str
    before_fingerprint: str
    after_fingerprint: str
    changed: bool
    detail: str = ""

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class Pass:
    """One named graph -> graph rewrite.

    Subclasses (or :func:`function_pass` wrappers) implement
    :meth:`apply`; it must be pure — return a new graph (or the input
    unchanged) and never mutate its argument.  ``detail()`` may return
    a one-line human note about the last application.
    """

    name = "pass"

    def apply(self, graph: SystemGraph) -> SystemGraph:
        raise NotImplementedError

    def detail(self) -> str:
        return ""


class _FunctionPass(Pass):
    def __init__(self, name: str,
                 fn: Callable[[SystemGraph], SystemGraph],
                 detail: str = ""):
        self.name = name
        self._fn = fn
        self._detail = detail

    def apply(self, graph: SystemGraph) -> SystemGraph:
        return self._fn(graph)

    def detail(self) -> str:
        return self._detail


class PassPipeline:
    """Run passes in order, keeping a fingerprinted audit log.

    *telemetry* is an optional :class:`repro.obs.Telemetry` bundle;
    when events are enabled each pass emits one ``("pass", <name>)``
    event (the "cycle" slot carries the pass sequence number).
    """

    def __init__(self,
                 passes: Sequence[Union[Pass, Callable]] = (),
                 telemetry=None):
        self.passes: List[Pass] = []
        self.telemetry = telemetry
        self.audit_log: List[PassRecord] = []
        for entry in passes:
            self.add(entry)

    def add(self, entry: Union[Pass, Callable],
            name: Optional[str] = None) -> "PassPipeline":
        """Append a pass (or wrap a bare ``graph -> graph`` callable)."""
        if isinstance(entry, Pass):
            self.passes.append(entry)
        else:
            self.passes.append(_FunctionPass(
                name or getattr(entry, "__name__", "pass"), entry))
        return self

    def run(self, graph: SystemGraph) -> SystemGraph:
        """Apply every pass in order; returns the final graph.

        The audit log is reset per run; read it from
        :attr:`audit_log` (one :class:`PassRecord` per pass, in
        order).
        """
        self.audit_log = []
        events = (self.telemetry.events
                  if self.telemetry is not None
                  and self.telemetry.events is not None else None)
        metrics = (self.telemetry.metrics
                   if self.telemetry is not None
                   and self.telemetry.metrics is not None else None)
        current = graph
        for seq, pass_ in enumerate(self.passes):
            before = lower(current).fingerprint
            current = pass_.apply(current)
            after = lower(current).fingerprint
            record = PassRecord(
                name=pass_.name,
                before_fingerprint=before,
                after_fingerprint=after,
                changed=before != after,
                detail=pass_.detail(),
            )
            self.audit_log.append(record)
            if events is not None:
                events.emit("pass", pass_.name, seq,
                            graph=current.name,
                            before=before[:12], after=after[:12],
                            changed=record.changed)
            if metrics is not None:
                metrics.counter("ir/passes/run").inc()
                if record.changed:
                    metrics.counter("ir/passes/changed").inc()
        return current


# -- stock passes (wrapping repro.graph.transform) -----------------------


def equalize_pass(name: Optional[str] = None) -> Pass:
    """Path-equalization pass (:func:`repro.graph.equalize.equalize`)."""
    from ..graph.equalize import equalize

    return _FunctionPass("equalize", lambda g: equalize(g, name=name))


def desugar_queues_pass() -> Pass:
    """Rewrite queued shells as relay-station chains."""
    from ..graph.transform import desugar_queues

    def _apply(graph: SystemGraph) -> SystemGraph:
        if any(n.queue_depth is not None for n in graph.nodes.values()):
            return desugar_queues(graph)
        return graph

    return _FunctionPass("desugar-queues", _apply)


def promote_half_relays_pass(only_loops: bool = True) -> Pass:
    """Replace half relay stations with full ones (the paper's cure)."""
    from ..graph.transform import promote_half_relays

    scope = "loops" if only_loops else "all"
    return _FunctionPass(
        f"promote-half-relays[{scope}]",
        lambda g: promote_half_relays(g, only_loops=only_loops))


def insert_relay_pass(src: str, dst: str, spec: str = "full",
                      position: int = 0) -> Pass:
    """Insert one relay station on the edge *src* -> *dst*."""
    from ..graph.transform import insert_relay

    return _FunctionPass(
        f"insert-relay[{src}->{dst}:{spec}@{position}]",
        lambda g: insert_relay(g, src, dst, spec=spec, position=position))


class _CureDeadlockPass(Pass):
    name = "cure-deadlock"

    def __init__(self, max_cycles: int = 10_000):
        self.max_cycles = max_cycles
        self.promotions: List = []

    def apply(self, graph: SystemGraph) -> SystemGraph:
        from ..graph.transform import cure_deadlock

        cured, self.promotions = cure_deadlock(
            graph, max_cycles=self.max_cycles)
        return cured

    def detail(self) -> str:
        if not self.promotions:
            return "already live; no promotion needed"
        stations = ", ".join(
            f"{src}->{dst}@{pos}" for src, dst, pos in self.promotions)
        return f"promoted {stations}"


def cure_deadlock_pass(max_cycles: int = 10_000) -> Pass:
    """Promote loop-resident half stations until the skeleton runs clean."""
    return _CureDeadlockPass(max_cycles=max_cycles)

"""CDC fault campaigns on GALS topologies.

Bridge overflow/underflow faults ride the skeleton campaign's batch as
occupancy pokes; the report contract (byte-reproducible JSON, backend
parity, deterministic fault lists) extends unchanged to mixed-rate
graphs, and the token-level LID engine refuses them with a pointer to
the skeleton path.
"""

import pytest

from repro.errors import InjectionError
from repro.graph import parse_topology
from repro.inject import run_campaign, skeleton_campaign
from repro.inject.faults import (
    BRIDGE_KINDS,
    FAULT_CLASSES,
    FaultSpec,
    enumerate_targets,
    generate_faults,
)

RING = "gals-ring:rates=1+1/2,shells=2,depth=2"
CHAIN = "gals-chain:rates=1+1/2"


class TestGalsTargets:
    def test_enumerates_bridges_from_lowering(self):
        targets = enumerate_targets(parse_topology(CHAIN))
        assert targets.bridges == ("S0_0->S1_0.bridge",)
        assert targets.shells == ("S0_0", "S1_0")
        # Boundary hops only: the source's first hop, the sink's last.
        assert all("->" in name for name in targets.channels)

    def test_single_clock_has_no_bridges(self):
        targets = enumerate_targets(parse_topology("figure2:relays=1"))
        assert targets.bridges == ()

    def test_cdc_class_resolves(self):
        assert FAULT_CLASSES["cdc"] == BRIDGE_KINDS

    def test_generate_cdc_faults(self):
        graph = parse_topology(RING)
        faults = generate_faults(graph, classes=("cdc",), cycles=50,
                                 exhaustive=True)
        assert faults
        assert {f.kind for f in faults} == set(BRIDGE_KINDS)
        assert all(f.target.endswith(".bridge") for f in faults)

    def test_cdc_on_single_clock_graph_is_empty(self):
        graph = parse_topology("figure2:relays=1")
        with pytest.raises(InjectionError):
            generate_faults(graph, classes=("cdc",), cycles=50)


class TestGalsSkeletonCampaign:
    def test_byte_reproducible(self):
        graph = parse_topology(RING)
        kwargs = dict(classes=("cdc", "stop"), cycles=100, samples=16,
                      seed=7)
        first = skeleton_campaign(graph, **kwargs)
        second = skeleton_campaign(graph, **kwargs)
        assert first.to_json() == second.to_json()

    def test_backend_parity_scalar_vs_vectorized(self):
        graph = parse_topology(RING)
        kwargs = dict(classes=("cdc",), cycles=100, samples=12, seed=1)
        auto = skeleton_campaign(graph, **kwargs)
        scalar = skeleton_campaign(graph, backend="scalar", **kwargs)
        assert auto.to_json() == scalar.to_json()

    def test_overflow_perturbs_ring(self):
        """A phantom token in a loop changes activity durably."""
        graph = parse_topology(RING)
        spec = FaultSpec("bridge-overflow", "S1_1->S0_0.bridge", 10)
        report = skeleton_campaign(graph, faults=[spec], cycles=100)
        (result,) = report.results
        assert result.verdict == "timeout"
        assert "diverged" in result.detail

    def test_absorbed_nudge_is_masked(self):
        """Overflow on a full bridge clamps to a no-op (the chain's
        bridge alternates occupancy 1, 2 and is full after cycle 2)."""
        graph = parse_topology(CHAIN)
        spec = FaultSpec("bridge-overflow", "S0_0->S1_0.bridge", 2)
        report = skeleton_campaign(graph, faults=[spec], cycles=80)
        (result,) = report.results
        assert result.verdict == "masked"

    def test_unknown_bridge_is_skipped(self):
        graph = parse_topology(CHAIN)
        spec = FaultSpec("bridge-overflow", "no-such.bridge", 5)
        report = skeleton_campaign(graph, faults=[spec], cycles=50)
        assert not report.results
        assert len(report.skipped) == 1
        assert "no bridge named" in report.skipped[0]["reason"]

    def test_boundary_control_faults_still_run(self):
        """Non-CDC classes resolve through the lowering's hop names."""
        graph = parse_topology(CHAIN)
        report = skeleton_campaign(graph, classes=("stop",), cycles=80,
                                   samples=8, seed=2)
        assert report.results
        assert {r.verdict for r in report.results} \
            <= {"masked", "deadlock", "timeout", "detected"}

    def test_bitsim_backend_refused_with_capability_message(self):
        graph = parse_topology(RING)
        with pytest.raises(ValueError) as err:
            skeleton_campaign(graph, classes=("cdc",), cycles=50,
                              samples=4, backend="bitsim")
        assert "single_clock" in str(err.value)


class TestLidEngineGuard:
    def test_run_campaign_refuses_gals(self):
        graph = parse_topology(RING)
        with pytest.raises(InjectionError) as err:
            run_campaign(graph, cycles=50)
        message = str(err.value)
        assert "single-clock" in message
        assert "skeleton" in message

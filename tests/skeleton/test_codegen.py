"""Compiled-codegen backend: plan cache, disk layer, state isolation.

Bit-exactness against the scalar reference lives in
``test_backend_conformance.py`` (the four-way differential harness);
this file covers what is specific to the *compiled* engine — that
plans are compiled once and shared, that sharing a plan never shares
simulator state, and that the optional disk layer round-trips source
text across processes (simulated by clearing the in-process cache).
"""

import pytest

from repro.exec import ResultCache
from repro.graph import figure2, pipeline, ring
from repro.ir import lower
from repro.lid.variant import ProtocolVariant
from repro.skeleton import CodegenSkeletonSim, SkeletonSim
from repro.skeleton.codegen import (
    CODEGEN_SCHEMA,
    STATS,
    clear_plan_cache,
    generate_source,
    plan_for,
)


@pytest.fixture(autouse=True)
def _fresh_plan_cache():
    """Each test sees an empty in-process plan cache and zero stats."""
    clear_plan_cache()
    STATS.reset()
    yield
    clear_plan_cache()
    STATS.reset()


class TestPlanCache:
    def test_same_topology_compiles_once(self):
        a = CodegenSkeletonSim(figure2())
        b = CodegenSkeletonSim(figure2())
        assert STATS.compiles == 1
        assert STATS.plan_hits == 1
        assert a._plan is b._plan

    def test_key_covers_variant_fixpoint_and_flags(self):
        graph = figure2()
        CodegenSkeletonSim(graph)
        CodegenSkeletonSim(graph, variant=ProtocolVariant.CARLONI)
        CodegenSkeletonSim(graph, fixpoint="greatest")
        CodegenSkeletonSim(graph, detect_ambiguity=False)
        assert STATS.compiles == 4
        assert STATS.plan_hits == 0

    def test_structurally_equal_graphs_share_a_plan(self):
        # The key is the content-addressed IR fingerprint, not object
        # identity: two independently built identical topologies reuse
        # the same compiled plan.
        CodegenSkeletonSim(pipeline(4))
        CodegenSkeletonSim(pipeline(4))
        assert STATS.compiles == 1 and STATS.plan_hits == 1

    def test_shared_plan_does_not_share_state(self):
        # Two sims from one compiled template must diverge freely: the
        # compiled functions close over nothing mutable — all state
        # loads from / stores to the sim instance passed in.
        graph = figure2()
        stalled = CodegenSkeletonSim(
            graph, sink_patterns={"out": (True,)})
        free = CodegenSkeletonSim(graph)
        assert stalled._plan is free._plan
        for _ in range(20):
            stalled.step()
            free.step()
        assert stalled.state() != free.state()
        ref_stalled = SkeletonSim(graph, sink_patterns={"out": (True,)})
        ref_free = SkeletonSim(graph)
        for _ in range(20):
            ref_stalled.step()
            ref_free.step()
        assert stalled.state() == ref_stalled.state()
        assert free.state() == ref_free.state()

    def test_plan_source_is_real_python(self):
        sim = CodegenSkeletonSim(ring(2))
        source = sim.plan_source
        assert "def cycle(sim):" in source
        assert "def run_cycles(sim, n):" in source
        compile(source, "<plan>", "exec")  # must be valid syntax


class TestDiskCache:
    def test_second_process_recompiles_from_disk_source(self, tmp_path):
        cache = ResultCache.disk(str(tmp_path / "cc"))
        CodegenSkeletonSim(figure2(), compile_cache=cache)
        assert STATS.compiles == 1 and STATS.disk_hits == 0

        # Simulate a fresh process: in-process plans gone, disk kept.
        clear_plan_cache()
        STATS.reset()
        cache2 = ResultCache.disk(str(tmp_path / "cc"))
        sim = CodegenSkeletonSim(figure2(), compile_cache=cache2)
        assert STATS.disk_hits == 1
        assert STATS.compiles == 0
        # The reloaded plan must still be the real thing.
        ref = SkeletonSim(figure2())
        for _ in range(30):
            assert sim.step() == ref.step()

    def test_disk_layer_stores_source_text(self, tmp_path):
        cache = ResultCache.disk(str(tmp_path / "cc"))
        low = lower(figure2())
        plan = plan_for(low, ProtocolVariant.CASU, fixpoint="least",
                        detect_ambiguity=True, metrics_on=False,
                        events_on=False, disk_cache=cache)
        stored = cache.get(cache.key(CODEGEN_SCHEMA, *plan.key))
        assert stored == plan.source

    def test_schema_tag_is_versioned(self):
        assert CODEGEN_SCHEMA.startswith("repro-codegen/v")


class TestConsumers:
    def test_throughput_sweep_routes_through_codegen(self):
        from repro.analysis.throughput import throughput_sweep

        patterns = [{}, {"out": (False, True)}]
        scalar = throughput_sweep(figure2(), sink_patterns=patterns,
                                  backend="scalar")
        compiled = throughput_sweep(figure2(), sink_patterns=patterns,
                                    backend="codegen")
        assert compiled == scalar  # exact Fractions, per instance

    def test_check_deadlock_backend_verdicts_match(self):
        from repro.skeleton import check_deadlock

        graph = ring(2, relays_per_arc=[["half"], ["half"]])
        scalar = check_deadlock(graph)
        compiled = check_deadlock(graph, backend="codegen")
        for field in ("deadlocked", "potential", "transient", "period",
                      "detail", "inconclusive"):
            assert getattr(compiled, field) == getattr(scalar, field), \
                field


class TestGeneratedSource:
    def test_casu_and_carloni_differ_only_where_semantics_do(self):
        low = lower(figure2())
        casu = generate_source(low, is_casu=True, fixpoint="least",
                               detect_ambiguity=True, metrics_on=False,
                               events_on=False)
        carloni = generate_source(low, is_casu=False, fixpoint="least",
                                  detect_ambiguity=True,
                                  metrics_on=False, events_on=False)
        assert casu != carloni

    def test_flags_gate_instrumentation_code(self):
        low = lower(figure2())
        plain = generate_source(low, is_casu=True, fixpoint="least",
                                detect_ambiguity=True, metrics_on=False,
                                events_on=False)
        metered = generate_source(low, is_casu=True, fixpoint="least",
                                  detect_ambiguity=True, metrics_on=True,
                                  events_on=False)
        assert "_hs" not in plain and "_occ" not in plain
        assert "_hs" in metered and "_occ" in metered

"""Tests for periodicity detection and transient bounds."""

import pytest

from repro.graph import figure1, figure2, pipeline, reconvergent, ring, tree
from repro.skeleton import detect_period, transient_and_period, transient_bound


class TestDetectPeriod:
    def test_pure_cycle(self):
        state = {"x": 0}

        def step():
            state["x"] = (state["x"] + 1) % 7

        transient, period = detect_period(step, lambda: state["x"])
        assert (transient, period) == (0, 7)

    def test_rho_shape(self):
        # 0,1,2,3,4,3,4,3,4,... transient 3, period 2
        state = {"x": 0}

        def step():
            state["x"] = state["x"] + 1 if state["x"] < 4 else 3

        transient, period = detect_period(step, lambda: state["x"])
        assert (transient, period) == (3, 2)

    def test_fixed_point(self):
        state = {"x": 5}
        transient, period = detect_period(lambda: None, lambda: state["x"])
        assert period == 1

    def test_timeout(self):
        state = {"x": 0}

        def step():
            state["x"] += 1  # never repeats

        with pytest.raises(TimeoutError):
            detect_period(step, lambda: state["x"], max_cycles=50)


class TestSystemPeriodicity:
    @pytest.mark.parametrize("graph,expected_period", [
        (figure1(), 5),
        (figure2(), 2),
        (pipeline(3), 1),
        # The register-state period can be a multiple of the output
        # period: this system runs at T=2/3 with a state period of 6.
        (reconvergent(long_relays=(2, 1), short_relays=1), 6),
    ])
    def test_known_periods(self, graph, expected_period):
        _transient, period = transient_and_period(graph)
        assert period == expected_period

    def test_tree_transient_grows_with_depth(self):
        t1, _ = transient_and_period(tree(1))
        t3, _ = transient_and_period(tree(3))
        assert t3 > t1


class TestTransientEstimate:
    """The linear predicted-upfront estimate (see EXP-D3)."""

    @pytest.mark.parametrize("graph", [
        figure1(), figure2(), pipeline(4, relays_per_hop=2),
        tree(3), ring(3, relays_per_arc=2),
        reconvergent(long_relays=(3, 1), short_relays=1),
    ])
    def test_estimate_dominates_measurement(self, graph):
        from repro.skeleton import transient_estimate

        transient, _period = transient_and_period(graph)
        assert transient <= transient_estimate(graph)

    def test_estimate_below_quadratic_bound(self):
        from repro.skeleton import transient_bound, transient_estimate

        for graph in (figure1(), tree(3), ring(3, relays_per_arc=2)):
            assert transient_estimate(graph) <= transient_bound(graph)

    def test_random_sweep_within_estimate(self):
        """Deterministic fuzz (fixed seeds): 40 random systems."""
        from repro.graph import random_dag, random_loopy
        from repro.skeleton import transient_estimate

        graphs = [random_dag(seed, shells=5) for seed in range(20)]
        graphs += [random_loopy(seed, shells=4) for seed in range(20)]
        for graph in graphs:
            transient, _period = transient_and_period(graph)
            assert transient <= transient_estimate(graph), graph.name

    def test_tree_estimate_is_longest_path_plus_one(self):
        from repro.analysis import longest_register_path
        from repro.skeleton import transient_estimate

        graph = tree(3, relays_per_hop=2)
        assert transient_estimate(graph) == \
            longest_register_path(graph) + 1


class TestTransientBound:
    @pytest.mark.parametrize("graph", [
        figure1(), figure2(), pipeline(4, relays_per_hop=2),
        tree(3), ring(3, relays_per_arc=2),
        reconvergent(long_relays=(3, 1), short_relays=1),
    ])
    def test_bound_dominates_measurement(self, graph):
        transient, _period = transient_and_period(graph)
        assert transient <= transient_bound(graph)

    def test_bound_is_cheap_to_compute(self):
        bound = transient_bound(figure1())
        assert isinstance(bound, int) and bound > 0

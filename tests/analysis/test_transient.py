"""Tests for transient analysis."""

import pytest

from repro.analysis import (
    analyze_transient,
    first_full_speed_cycle,
    longest_register_path,
)
from repro.errors import AnalysisError
from repro.graph import figure1, figure2, pipeline, tree


class TestLongestPath:
    def test_pipeline(self):
        # src(1 reg) -> S0 -> 1 rs+reg... weights: relays+1 per hop.
        g = pipeline(3, relays_per_hop=1)
        assert longest_register_path(g) == 1 + 2 + 2 + 1

    def test_tree_depth(self):
        assert longest_register_path(tree(1)) < \
            longest_register_path(tree(3))

    def test_cyclic_rejected(self):
        with pytest.raises(AnalysisError):
            longest_register_path(figure2())


class TestAnalyzeTransient:
    def test_within_bound(self):
        report = analyze_transient(figure1())
        assert report.within_bound
        assert report.measured_transient == 2
        assert report.period == 5

    def test_cyclic_longest_path_flagged(self):
        report = analyze_transient(figure2())
        assert report.longest_path == -1


class TestFullSpeed:
    def test_tree_reaches_full_speed_within_longest_path(self):
        for depth in (1, 2, 3):
            g = tree(depth)
            assert first_full_speed_cycle(g) <= longest_register_path(g)

    def test_pipeline_full_speed(self):
        g = pipeline(2, relays_per_hop=3)
        cycle = first_full_speed_cycle(g)
        assert cycle > 0

    def test_throttled_system_rejected(self):
        with pytest.raises(AnalysisError, match="full speed"):
            first_full_speed_cycle(figure1())

    def test_multi_sink_requires_name(self):
        from repro.graph import SystemGraph
        from repro.pearls import Identity

        g = SystemGraph()
        g.add_source("src")
        g.add_shell("A", Identity)
        g.add_sink("o1")
        g.add_sink("o2")
        g.add_edge("src", "A")
        g.add_edge("A", "o1")
        g.add_edge("A", "o2")
        with pytest.raises(AnalysisError, match="specify the sink"):
            first_full_speed_cycle(g)
        assert first_full_speed_cycle(g, sink="o1") >= 0

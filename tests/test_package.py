"""Package-level hygiene: exports, errors, version."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.kernel",
    "repro.lid",
    "repro.pearls",
    "repro.graph",
    "repro.analysis",
    "repro.skeleton",
    "repro.verify",
    "repro.rtl",
    "repro.bench",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_symbols_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_sorted_for_readability(self, package):
        module = importlib.import_module(package)
        exported = list(getattr(module, "__all__", []))
        assert exported == sorted(exported), package

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) \
                    and obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name

    def test_catchable_as_family(self):
        from repro.errors import ReproError, StructuralError

        with pytest.raises(ReproError):
            raise StructuralError("x")

    def test_verification_error_carries_counterexample(self):
        from repro.errors import VerificationError

        err = VerificationError("boom", counterexample=["t0", "t1"])
        assert err.counterexample == ["t0", "t1"]

    def test_combinational_loop_is_structural(self):
        from repro.errors import CombinationalLoopError, StructuralError

        assert issubclass(CombinationalLoopError, StructuralError)


class TestDocstrings:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_packages_documented(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    def test_core_classes_documented(self):
        from repro import (
            HalfRelayStation,
            LidSystem,
            RelayStation,
            Shell,
            Simulator,
            Token,
        )

        for cls in (LidSystem, Shell, RelayStation, HalfRelayStation,
                    Simulator, Token):
            assert cls.__doc__ and len(cls.__doc__.strip()) > 20

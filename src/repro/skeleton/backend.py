"""Unified backend selection for skeleton simulation.

Four engines implement the exact same valid/stop semantics:

* :class:`~repro.skeleton.sim.SkeletonSim` — the scalar reference,
  one Python object per instance;
* :class:`~repro.skeleton.vectorized.BatchSkeletonSim` — numpy
  bit-matrix state, all instances of a sweep as columns;
* :class:`~repro.skeleton.bitsim.BitplaneSkeletonSim` — SBFI-style
  bit planes, one experiment per bit of a Python integer (the
  fault-campaign engine);
* :class:`~repro.skeleton.codegen.CodegenSkeletonSim` — per-topology
  compiled straight-line Python (one ``compile()`` per structural
  fingerprint, reused across every instance and run).

:func:`select` hides the choice: callers describe *what* to simulate
(a topology, a protocol variant, and one script set per instance) and
get back a handle with a backend-independent interface.  The
differential conformance suite (``tests/skeleton/
test_backend_conformance.py``) is the contract that keeps the
engines interchangeable — any future engine must join that suite
before :func:`select` may return it.

Selection policy: the vectorized engine is used whenever numpy is
importable, the variant advertises the ``skeleton-vectorized``
capability (see :attr:`ProtocolVariant.capabilities`) and the sweep is
wider than one instance; otherwise the scalar engine is fanned out.
``backend="scalar"``/``"vectorized"``/``"bitsim"``/``"codegen"``
forces the choice — the bit-plane and codegen engines are opt-in
(campaigns pick them explicitly; bitsim wins when the batch is many
scripts over one topology, codegen when the same topology is stepped
for many cycles or many runs and the one-time compile amortizes).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..graph.model import SystemGraph
from ..ir import LoweredSystem, lower
from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant
from .sim import SkeletonResult, SkeletonSim

PatternMap = Mapping[str, Sequence[bool]]
Patterns = Union[None, PatternMap, Sequence[Optional[PatternMap]]]

#: Every name :func:`select` accepts for ``backend=``.
BACKEND_CHOICES = ("auto", "scalar", "vectorized", "bitsim", "codegen")


def _single_clock_reason(graph, engine: str) -> str:
    """Refusal message for an engine without multi-clock support.

    Names the specific capability flags that failed so callers can see
    exactly why the lowering was rejected (the GALS capability
    contract: ``single_clock`` / ``has_bridges`` on the lowered IR).
    """
    lowered = graph if isinstance(graph, LoweredSystem) else lower(graph)
    return (f"graph {lowered.name!r} is multi-clock "
            f"(capability flags: single_clock={lowered.single_clock}, "
            f"has_bridges={lowered.has_bridges}) and the {engine} "
            f"engine requires single_clock=True; use the scalar or "
            f"vectorized engine for GALS workloads")


def _is_single_clock(graph) -> bool:
    lowered = graph if isinstance(graph, LoweredSystem) else lower(graph)
    return lowered.single_clock


def vectorized_supported(graph: SystemGraph,
                         variant: ProtocolVariant) -> Tuple[bool, str]:
    """Can the vectorized engine run this (graph, variant)?

    Returns ``(supported, reason)``; *reason* explains a refusal.
    """
    if "skeleton-vectorized" not in variant.capabilities:
        return False, (f"variant {variant} lacks the "
                       f"'skeleton-vectorized' capability")
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy is a hard dep
        return False, "numpy is not importable"
    return True, ""


def bitsim_supported(graph: SystemGraph,
                     variant: ProtocolVariant) -> Tuple[bool, str]:
    """Can the bit-plane engine run this (graph, variant)?

    Returns ``(supported, reason)``; *reason* explains a refusal.  The
    engine's state is plain Python integers, but the boundary accessors
    (``accept_history`` et al.) return numpy arrays to stay
    interchangeable with the other backends.
    """
    if "skeleton-bitsim" not in variant.capabilities:
        return False, (f"variant {variant} lacks the "
                       f"'skeleton-bitsim' capability")
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy is a hard dep
        return False, "numpy is not importable"
    if not _is_single_clock(graph):
        return False, _single_clock_reason(graph, "bitsim")
    return True, ""


def codegen_supported(graph: SystemGraph,
                      variant: ProtocolVariant) -> Tuple[bool, str]:
    """Can the compiled-codegen engine run this (graph, variant)?

    Returns ``(supported, reason)``; *reason* explains a refusal.  The
    engine itself is pure Python (no numpy in the hot path), but the
    unified handle's count accessors are inherited from the scalar
    backend and return numpy arrays like every other backend.
    """
    if "skeleton-codegen" not in variant.capabilities:
        return False, (f"variant {variant} lacks the "
                       f"'skeleton-codegen' capability")
    if not _is_single_clock(graph):
        return False, _single_clock_reason(graph, "codegen")
    return True, ""


def available_backends(graph: SystemGraph,
                       variant: ProtocolVariant) -> Tuple[str, ...]:
    """The backend names able to run this (graph, variant) right now.

    The scalar reference engine supports everything; the rest are
    probed through their ``*_supported`` predicates.  Used by
    :func:`select` to make refusal messages actionable.
    """
    names = ["scalar"]
    for name, probe in (("vectorized", vectorized_supported),
                        ("bitsim", bitsim_supported),
                        ("codegen", codegen_supported)):
        if probe(graph, variant)[0]:
            names.append(name)
    return tuple(names)


def _normalize(patterns: Patterns, batch: int) -> List[Dict]:
    """Broadcast a single mapping / fill None entries, one per column."""
    if patterns is None:
        return [{}] * batch
    if isinstance(patterns, Mapping):
        return [dict(patterns)] * batch
    if len(patterns) != batch:
        raise ValueError(
            f"{len(patterns)} script mappings for batch width {batch}")
    return [dict(m) if m else {} for m in patterns]


def _infer_batch(batch: Optional[int], *pattern_seqs: Patterns) -> int:
    widths = {batch} if batch is not None else set()
    for seq in pattern_seqs:
        if seq is not None and not isinstance(seq, Mapping):
            widths.add(len(seq))
    if len(widths) > 1:
        raise ValueError(f"inconsistent batch widths: {sorted(widths)}")
    return widths.pop() if widths else 1


class _Backend:
    """Backend-independent interface shared by all handles."""

    #: "scalar", "vectorized" or "bitsim"
    name: str

    def run(self, max_cycles: int = 10_000) -> List[SkeletonResult]:
        """Run every instance to periodicity; one result per column."""
        raise NotImplementedError

    def run_cycles(self, cycles: int) -> None:
        """Step every instance a fixed number of cycles."""
        raise NotImplementedError

    def fire_counts(self):
        """(n_shells, batch) cumulative firing counts."""
        raise NotImplementedError

    def accept_counts(self):
        """(n_sinks, batch) cumulative sink acceptance counts."""
        raise NotImplementedError

    def accept_history(self):
        """(cycles, n_sinks, batch) boolean per-cycle acceptance.

        Cycle-resolved form of :meth:`accept_counts`; the payload-fault
        classification of :func:`repro.inject.campaign.
        skeleton_campaign` reads the golden column from it.
        """
        raise NotImplementedError

    def stop_assertion_counts(self):
        """(batch,) cumulative asserted-stop-wire counts."""
        raise NotImplementedError

    def void_stop_counts(self):
        """(batch,) cumulative stops asserted on **void** tokens.

        The paper-claim locality counter; strict fault campaigns use
        the per-column excess over the golden column as the "detected"
        signal (the refined protocol's stop-shape monitor raises on
        stop-on-void).
        """
        raise NotImplementedError

    def metrics_snapshots(self) -> List[Dict]:
        """One canonical metrics snapshot per instance.

        Snapshots are backend-independent: the conformance suite
        asserts scalar and vectorized snapshots are equal dicts.
        """
        raise NotImplementedError

    def poke_bridge(self, instance: int, bridge, cycle: int,
                    delta: int, duration: int = 1) -> None:
        """Schedule a bridge occupancy perturbation for one instance.

        The CDC fault models of GALS campaigns: *delta* of ``+1`` is a
        bridge overflow (phantom write), ``-1`` an underflow (lost
        token); applied after the normal update on each cycle in
        ``[cycle, cycle + duration)``, clamped to ``[0, depth]``.  Only
        the scalar and vectorized engines model bridges.
        """
        raise NotImplementedError(
            f"{self.name} backend does not model bridges")


class ScalarBackend(_Backend):
    """One :class:`SkeletonSim` per instance, same interface."""

    name = "scalar"

    def _sim_class(self):
        """The per-instance simulator class (codegen overrides this)."""
        return SkeletonSim

    def __init__(self, graph: SystemGraph, variant: ProtocolVariant,
                 source_patterns: List[Dict], sink_patterns: List[Dict],
                 fixpoint: str, detect_ambiguity: bool,
                 telemetry=None):
        self.graph = graph
        self.batch = len(sink_patterns)
        sim_class = self._sim_class()
        self.sims = [
            sim_class(graph, variant=variant, fixpoint=fixpoint,
                      source_patterns=source_patterns[i],
                      sink_patterns=sink_patterns[i],
                      detect_ambiguity=detect_ambiguity,
                      telemetry=telemetry)
            for i in range(self.batch)
        ]
        first = self.sims[0]
        self.shell_names = first.shell_names
        self.source_names = first.source_names
        self.sink_names = first.sink_names
        # The scalar engine silently ignores unknown script names;
        # the vectorized engine rejects them.  The unified API must
        # behave the same regardless of the engine picked.
        for mappings, known in ((sink_patterns, set(self.sink_names)),
                                (source_patterns,
                                 set(self.source_names))):
            for mapping in mappings:
                for name in mapping:
                    if name not in known:
                        raise ValueError(
                            f"unknown script target {name!r}")

    def run(self, max_cycles: int = 10_000) -> List[SkeletonResult]:
        return [sim.run(max_cycles=max_cycles) for sim in self.sims]

    def run_cycles(self, cycles: int) -> None:
        for sim in self.sims:
            for _ in range(cycles):
                sim.step()

    def fire_counts(self):
        import numpy as np

        counts = np.zeros((len(self.shell_names), self.batch),
                          dtype=np.int64)
        for i, sim in enumerate(self.sims):
            for fires in sim.fire_history:
                for j, fired in enumerate(fires):
                    counts[j, i] += fired
        return counts

    def accept_counts(self):
        import numpy as np

        counts = np.zeros((len(self.sink_names), self.batch),
                          dtype=np.int64)
        for i, sim in enumerate(self.sims):
            for accepts in sim.accept_history:
                for j, accepted in enumerate(accepts):
                    counts[j, i] += accepted
        return counts

    def accept_history(self):
        import numpy as np

        cycles = len(self.sims[0].accept_history) if self.sims else 0
        history = np.zeros((cycles, len(self.sink_names), self.batch),
                           dtype=bool)
        for i, sim in enumerate(self.sims):
            for cycle, accepts in enumerate(sim.accept_history):
                for j, accepted in enumerate(accepts):
                    history[cycle, j, i] = accepted
        return history

    def stop_assertion_counts(self):
        import numpy as np

        return np.array([sim.stop_assertions_total for sim in self.sims],
                        dtype=np.int64)

    def void_stop_counts(self):
        import numpy as np

        return np.array([sim.stops_on_voids_total for sim in self.sims],
                        dtype=np.int64)

    def metrics_snapshots(self) -> List[Dict]:
        return [sim.metrics_snapshot() for sim in self.sims]

    def poke_bridge(self, instance: int, bridge, cycle: int,
                    delta: int, duration: int = 1) -> None:
        self.sims[instance].poke_bridge(bridge, cycle, delta,
                                        duration=duration)


class CodegenBackend(ScalarBackend):
    """One compiled :class:`CodegenSkeletonSim` per instance.

    Everything except simulator construction and the batched
    ``run_cycles`` fast path is inherited from the scalar handle — the
    codegen simulator subclasses the scalar one, so every accessor
    reads the same state layout.  All instances of a batch share one
    compiled plan (they share topology, variant and options).
    """

    name = "codegen"

    def _sim_class(self):
        from .codegen import CodegenSkeletonSim

        return CodegenSkeletonSim

    def run_cycles(self, cycles: int) -> None:
        for sim in self.sims:
            sim.run_cycles(cycles)


class VectorizedBackend(_Backend):
    """A :class:`BatchSkeletonSim` behind the shared interface."""

    name = "vectorized"

    def __init__(self, graph: SystemGraph, variant: ProtocolVariant,
                 source_patterns: List[Dict], sink_patterns: List[Dict],
                 fixpoint: str, detect_ambiguity: bool,
                 telemetry=None):
        from .vectorized import BatchSkeletonSim

        self.graph = graph
        self.batch = len(sink_patterns)
        self.sim = BatchSkeletonSim(
            graph, sink_patterns, source_patterns=source_patterns,
            variant=variant, fixpoint=fixpoint,
            detect_ambiguity=detect_ambiguity, telemetry=telemetry)
        self.shell_names = self.sim.shell_names
        self.source_names = self.sim.source_names
        self.sink_names = self.sim.sink_names

    def run(self, max_cycles: int = 10_000) -> List[SkeletonResult]:
        return self.sim.run_to_period(max_cycles=max_cycles)

    def run_cycles(self, cycles: int) -> None:
        self.sim.run(cycles)

    def fire_counts(self):
        return self.sim.shell_fired.copy()

    def accept_counts(self):
        return self.sim.sink_accepted.copy()

    def accept_history(self):
        return self.sim.accept_history()

    def stop_assertion_counts(self):
        return self.sim.stop_assertions_total.copy()

    def void_stop_counts(self):
        return self.sim.stops_on_voids_total.copy()

    def metrics_snapshots(self) -> List[Dict]:
        return [self.sim.metrics_snapshot(i) for i in range(self.batch)]

    def poke_bridge(self, instance: int, bridge, cycle: int,
                    delta: int, duration: int = 1) -> None:
        self.sim.poke_bridge(instance, bridge, cycle, delta,
                             duration=duration)


class BitplaneBackend(_Backend):
    """A :class:`BitplaneSkeletonSim` behind the shared interface.

    State lives in Python integers (bit *p* = instance *p*); the
    accessors below unpack the vertical counters into the same numpy
    shapes the other backends return, so callers never see the plane
    layout.
    """

    name = "bitsim"

    def __init__(self, graph: SystemGraph, variant: ProtocolVariant,
                 source_patterns: List[Dict], sink_patterns: List[Dict],
                 fixpoint: str, detect_ambiguity: bool,
                 telemetry=None):
        from .bitsim import BitplaneSkeletonSim

        self.graph = graph
        self.batch = len(sink_patterns)
        self.sim = BitplaneSkeletonSim(
            graph, sink_patterns, source_patterns=source_patterns,
            variant=variant, fixpoint=fixpoint,
            detect_ambiguity=detect_ambiguity, telemetry=telemetry)
        self.shell_names = self.sim.shell_names
        self.source_names = self.sim.source_names
        self.sink_names = self.sim.sink_names

    def run(self, max_cycles: int = 10_000) -> List[SkeletonResult]:
        return self.sim.run_to_period(max_cycles=max_cycles)

    def run_cycles(self, cycles: int) -> None:
        self.sim.run(cycles)

    def fire_counts(self):
        import numpy as np

        return np.array(
            [ctr.values(self.batch) for ctr in self.sim.shell_fired],
            dtype=np.int64).reshape(len(self.shell_names), self.batch)

    def accept_counts(self):
        import numpy as np

        return np.array(
            [ctr.values(self.batch) for ctr in self.sim.sink_accepted],
            dtype=np.int64).reshape(len(self.sink_names), self.batch)

    def accept_history(self):
        return self.sim.accept_history()

    def stop_assertion_counts(self):
        import numpy as np

        return np.array(self.sim.stop_assertions.values(self.batch),
                        dtype=np.int64)

    def void_stop_counts(self):
        import numpy as np

        return np.array(self.sim.stops_on_voids.values(self.batch),
                        dtype=np.int64)

    def metrics_snapshots(self) -> List[Dict]:
        return [self.sim.metrics_snapshot(i) for i in range(self.batch)]


def select(
    graph: SystemGraph,
    variant: ProtocolVariant = DEFAULT_VARIANT,
    batch: Optional[int] = None,
    *,
    source_patterns: Patterns = None,
    sink_patterns: Patterns = None,
    fixpoint: str = "least",
    detect_ambiguity: bool = True,
    backend: str = "auto",
    telemetry=None,
) -> _Backend:
    """Pick the fastest exact engine for a skeleton workload.

    Parameters
    ----------
    graph, variant:
        What to simulate.
    batch:
        Number of instances; inferred from the pattern sequences when
        omitted (single mappings broadcast to every instance).
    source_patterns, sink_patterns:
        Either one mapping (applied to every instance) or one mapping
        per instance — the sweep dimensions.
    backend:
        ``"auto"`` (default policy), ``"scalar"``, ``"vectorized"``,
        ``"bitsim"`` (opt-in bit-plane engine; never auto-picked) or
        ``"codegen"`` (opt-in compiled engine; never auto-picked —
        the compile cost only pays off over many cycles or runs, a
        judgement left to the caller).
    telemetry:
        Optional :class:`repro.obs.Telemetry` bundle.  Metric
        accumulation is per-instance on either engine; event streams
        are per-instance (scalar) or aggregate per cycle (vectorized).

    Returns a handle with ``run()`` / ``run_cycles()`` / count accessors
    that behave identically regardless of the engine chosen.
    """
    if backend not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown backend {backend!r}; available backends for "
            f"this graph/variant: "
            + ", ".join(available_backends(graph, variant))
            + " (or 'auto')")
    width = _infer_batch(batch, source_patterns, sink_patterns)
    if width < 1:
        raise ValueError("need at least one instance")
    sources = _normalize(source_patterns, width)
    sinks = _normalize(sink_patterns, width)

    def _unavailable(name: str, reason: str) -> ValueError:
        return ValueError(
            f"{name} backend unavailable: {reason}; available "
            f"backends: "
            + ", ".join(available_backends(graph, variant)))

    if backend == "bitsim":
        supported, reason = bitsim_supported(graph, variant)
        if not supported:
            raise _unavailable("bitsim", reason)
        cls = BitplaneBackend
    elif backend == "codegen":
        supported, reason = codegen_supported(graph, variant)
        if not supported:
            raise _unavailable("codegen", reason)
        cls = CodegenBackend
    else:
        supported, reason = vectorized_supported(graph, variant)
        if backend == "vectorized" and not supported:
            raise _unavailable("vectorized", reason)
        use_vectorized = (backend == "vectorized"
                          or (backend == "auto" and supported
                              and width > 1))
        cls = VectorizedBackend if use_vectorized else ScalarBackend
    return cls(graph, variant, sources, sinks, fixpoint, detect_ambiguity,
               telemetry=telemetry)

"""Tests for DOT export."""

from repro.graph import figure1, ring, to_dot, write_dot


class TestToDot:
    def test_contains_all_nodes(self):
        text = to_dot(figure1())
        for name in ("src", "A", "B0", "C", "out"):
            assert f'"{name}"' in text

    def test_relay_labels(self):
        text = to_dot(figure1())
        assert 'label="1F"' in text

    def test_mixed_chain_label(self):
        g = ring(2, relays_per_arc=[["full", "half"], ["full"]])
        text = to_dot(g)
        assert "1F+1H" in text

    def test_valid_digraph_syntax(self):
        text = to_dot(figure1())
        assert text.startswith('digraph "figure1" {')
        assert text.rstrip().endswith("}")

    def test_shapes_by_kind(self):
        text = to_dot(figure1())
        assert "shape=box" in text      # shells
        assert "shape=ellipse" in text  # endpoints

    def test_write_dot(self, tmp_path):
        path = tmp_path / "g.dot"
        write_dot(figure1(), str(path))
        assert path.read_text().startswith("digraph")

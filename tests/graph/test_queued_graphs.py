"""Tests for queued shells as first-class graph citizens."""

from fractions import Fraction

import pytest

from repro.analysis import min_cycle_ratio_throughput
from repro.errors import StructuralError
from repro.graph import SystemGraph, desugar_queues, from_dict, to_dict
from repro.lid.reference import is_prefix
from repro.pearls import Identity
from repro.skeleton import SkeletonSim, system_throughput


def queued_pipeline_graph(stages=3, depth=2):
    g = SystemGraph("qpipe")
    g.add_source("src")
    for i in range(stages):
        g.add_queued_shell(f"S{i}", Identity, queue_depth=depth)
    g.add_sink("out")
    g.add_edge("src", "S0")
    for i in range(stages - 1):
        g.add_edge(f"S{i}", f"S{i+1}")  # direct: the queue is the memory
    g.add_edge(f"S{stages-1}", "out")
    return g


class TestNodeValidation:
    def test_only_shells_queued(self):
        g = SystemGraph()
        from repro.graph.model import Node

        with pytest.raises(StructuralError):
            Node("x", "source", queue_depth=2)

    def test_depth_positive(self):
        g = SystemGraph()
        with pytest.raises(StructuralError):
            g.add_queued_shell("A", Identity, queue_depth=0)


class TestElaboration:
    def test_elaborates_to_queued_shells(self):
        from repro.lid.queued_shell import QueuedShell

        system = queued_pipeline_graph().elaborate()
        assert all(isinstance(s, QueuedShell)
                   for s in system.shells.values())

    def test_runs_and_is_equivalent(self):
        system = queued_pipeline_graph().elaborate()
        system.run(40)
        ref = system.reference_outputs(40)["out"]
        assert is_prefix(system.sinks["out"].payloads, ref)
        assert len(system.sinks["out"].payloads) > 30

    def test_lint_accepts_direct_edges(self):
        queued_pipeline_graph().elaborate(strict=True)


class TestDesugaring:
    def test_desugar_replaces_queues_with_relays(self):
        g = queued_pipeline_graph(stages=3, depth=2)
        plain = desugar_queues(g)
        assert all(n.queue_depth is None for n in plain.nodes.values())
        # Each of S0's, S1's and S2's inputs gained one full station.
        assert plain.relay_count("full") == 3

    def test_depth_one_becomes_registered_half(self):
        g = queued_pipeline_graph(stages=2, depth=1)
        plain = desugar_queues(g)
        assert plain.relay_count("half-registered") == 2

    def test_original_untouched(self):
        g = queued_pipeline_graph()
        desugar_queues(g)
        assert any(n.queue_depth for n in g.nodes.values())


class TestAnalysisSupport:
    def test_skeleton_matches_full_simulation(self):
        g = queued_pipeline_graph(stages=3, depth=2)
        rate = system_throughput(g)  # auto-desugars
        system = g.elaborate()
        system.run(200)
        measured = system.sinks["out"].steady_throughput(30, 200)
        assert measured == pytest.approx(float(rate), abs=0.02)

    def test_full_rate_with_depth_two(self):
        assert system_throughput(queued_pipeline_graph(depth=2)) == 1

    def test_half_rate_with_depth_one(self):
        g = queued_pipeline_graph(stages=2, depth=1)
        assert system_throughput(g) == Fraction(1, 2)

    def test_mcr_agrees(self):
        g = queued_pipeline_graph(stages=3, depth=2)
        assert min_cycle_ratio_throughput(g).throughput == \
            system_throughput(g)

    def test_queued_loop_formula(self):
        g = SystemGraph("qloop")
        g.add_queued_shell("A", Identity)
        g.add_queued_shell("B", Identity)
        g.add_sink("out")
        g.add_edge("A", "B")
        g.add_edge("B", "A")
        g.add_edge("A", "out")
        # 2 shells + 2 queue stages: T = 2/4.
        assert system_throughput(g) == Fraction(1, 2)


class TestSerialization:
    def test_queue_depth_roundtrips(self):
        g = queued_pipeline_graph(depth=2)
        rebuilt = from_dict(to_dict(g))
        assert rebuilt.nodes["S0"].queue_depth == 2
        system = rebuilt.elaborate()
        system.run(10)

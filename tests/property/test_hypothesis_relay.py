"""Property-based tests on the relay-station FSMs.

Hypothesis drives the spec FSMs with arbitrary legal environments and
checks stream invariants directly — complementing the exhaustive BFS,
which uses a small alphabet, with unbounded payload sequences.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.lid.variant import ProtocolVariant
from repro.verify.fsm import (

    FullRsState,
    HalfRsState,
    full_rs_outputs,
    full_rs_step,
    half_rs_step,
    half_rs_stop_out,
)

pytestmark = pytest.mark.slow

# An environment script: per cycle (offer a token?, downstream stop?).
script = st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1,
                  max_size=120)
variants = st.sampled_from(list(ProtocolVariant))


def run_full_rs(steps, variant):
    """Drive a full relay station with a law-abiding upstream.

    Returns (sent payloads, emitted payloads).
    """
    state = FullRsState()
    k = 0
    sent, emitted = [], []
    for offer, stop_in in steps:
        out_tok, stop_out = full_rs_outputs(state)
        present = k if offer else None
        if out_tok is not None and not stop_in:
            emitted.append(out_tok)
        accepted = present is not None and not stop_out
        state = full_rs_step(state, present, stop_in, variant)
        if accepted:
            sent.append(k)
            k += 1
    return sent, emitted, state


def run_half_rs(steps, variant, registered):
    state = HalfRsState()
    k = 0
    sent, emitted = [], []
    for offer, stop_in in steps:
        stop_out = half_rs_stop_out(state, stop_in, variant, registered)
        present = k if offer else None
        if state.main is not None and not stop_in:
            emitted.append(state.main)
        accepted = present is not None and not stop_out
        state = half_rs_step(state, present, stop_in, variant, registered)
        if accepted:
            sent.append(k)
            k += 1
    return sent, emitted, state


@given(script, variants)
@settings(max_examples=200)
def test_full_rs_emits_prefix_of_sent(steps, variant):
    sent, emitted, state = run_full_rs(steps, variant)
    assert emitted == sent[: len(emitted)]


@given(script, variants)
@settings(max_examples=200)
def test_full_rs_buffers_at_most_two(steps, variant):
    sent, emitted, state = run_full_rs(steps, variant)
    assert 0 <= len(sent) - len(emitted) <= 2
    assert state.occupancy == len(sent) - len(emitted)


@given(script, variants, st.booleans())
@settings(max_examples=200)
def test_half_rs_emits_prefix_of_sent(steps, variant, registered):
    sent, emitted, state = run_half_rs(steps, variant, registered)
    assert emitted == sent[: len(emitted)]


@given(script, variants, st.booleans())
@settings(max_examples=200)
def test_half_rs_buffers_at_most_one(steps, variant, registered):
    sent, emitted, _state = run_half_rs(steps, variant, registered)
    assert 0 <= len(sent) - len(emitted) <= 1


@given(script, variants)
@settings(max_examples=100)
def test_cooperative_downstream_drains_everything(steps, variant):
    """With the stop released and the source quiet, the station must
    empty itself within two cycles (liveness at the stream level)."""
    _sent, _emitted, state = run_full_rs(steps, variant)
    for _ in range(2):
        state = full_rs_step(state, None, False, variant)
    assert state.occupancy == 0


@given(script)
@settings(max_examples=100)
def test_full_rs_variants_agree_without_voids(steps):
    """When the upstream always offers, the two protocol variants are
    observationally identical on a single relay station."""
    always = [(True, stop) for _offer, stop in steps]
    _s1, e1, _ = run_full_rs(always, ProtocolVariant.CASU)
    _s2, e2, _ = run_full_rs(always, ProtocolVariant.CARLONI)
    assert e1 == e2

"""Trace exporters: JSONL and Chrome-trace (Perfetto) formats.

Two serializations of an :class:`~repro.obs.events.EventStream`:

* **JSONL** — one flat JSON object per line, lossless and append-
  friendly; :func:`read_jsonl` round-trips it back into events.
* **Chrome trace** — the ``chrome://tracing`` / Perfetto JSON Array
  format.  Simulation cycles map to microseconds (1 cycle = 1 us on the
  trace timebase), per-category tracks are modelled as thread ids, and
  profiler phases become duration (``ph="X"``) slices on a dedicated
  track.  The output is a standard ``{"traceEvents": [...]}`` object,
  directly loadable by Perfetto's UI.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Optional, Union

from .events import Event, EventStream
from .profiler import Profiler

PathOrFile = Union[str, IO[str]]

#: Stable thread-id assignment for the Chrome-trace rendering: one
#: track per event category, in taxonomy order.
_CATEGORY_TIDS = {
    "token": 1,
    "stall": 2,
    "relay": 3,
    "monitor": 4,
    "fixpoint": 5,
    "run": 6,
    "phase": 7,
}
_OTHER_TID = 15
_PROFILER_TID = 8


def _open(target: PathOrFile, write: bool):
    if isinstance(target, str):
        return open(target, "w" if write else "r", encoding="utf-8"), True
    return target, False


# -- JSONL ---------------------------------------------------------------


def write_jsonl(events: Iterable[Event], target: PathOrFile) -> int:
    """Write events as JSON Lines; returns the number written."""
    fh, owned = _open(target, write=True)
    count = 0
    try:
        for event in events:
            fh.write(json.dumps(event.to_dict(), sort_keys=True))
            fh.write("\n")
            count += 1
    finally:
        if owned:
            fh.close()
    return count


def read_jsonl(target: PathOrFile) -> List[Event]:
    """Parse a JSONL trace back into :class:`Event` records."""
    fh, owned = _open(target, write=False)
    try:
        events = []
        for line in fh:
            line = line.strip()
            if line:
                events.append(Event.from_dict(json.loads(line)))
        return events
    finally:
        if owned:
            fh.close()


# -- Chrome trace --------------------------------------------------------


def to_chrome_trace(
    events: Iterable[Event],
    profiler: Optional[Profiler] = None,
    process_name: str = "repro-lid",
) -> Dict[str, Any]:
    """Build a Chrome Trace Event Format object.

    Simulation events become instant events (``ph="i"``) at
    ``ts = cycle`` microseconds on per-category tracks; profiler phases
    become one ``ph="X"`` slice each (duration = accumulated seconds)
    laid end to end on a separate track, so relative phase cost is
    visible at a glance.
    """
    trace_events: List[Dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "tid": 0,
        "args": {"name": process_name},
    }]
    used_tids: Dict[int, str] = {}
    for event in events:
        tid = _CATEGORY_TIDS.get(event.category, _OTHER_TID)
        used_tids.setdefault(tid, event.category)
        trace_events.append({
            "name": f"{event.category}:{event.name}",
            "cat": event.category,
            "ph": "i",
            "s": "t",
            "ts": float(event.cycle),
            "pid": 0,
            "tid": tid,
            "args": dict(event.fields),
        })
    if profiler is not None:
        cursor = 0.0
        used_tids.setdefault(_PROFILER_TID, "profiler")
        for name, calls, seconds in profiler.phases():
            duration_us = seconds * 1e6
            trace_events.append({
                "name": name,
                "cat": "profiler",
                "ph": "X",
                "ts": cursor,
                "dur": duration_us,
                "pid": 0,
                "tid": _PROFILER_TID,
                "args": {"calls": calls, "seconds": seconds},
            })
            cursor += duration_us
    for tid, label in sorted(used_tids.items()):
        trace_events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": label},
        })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"timebase": "1 simulation cycle = 1 us"},
    }


def write_chrome_trace(
    events: Iterable[Event],
    target: PathOrFile,
    profiler: Optional[Profiler] = None,
    process_name: str = "repro-lid",
) -> Dict[str, Any]:
    """Serialize :func:`to_chrome_trace` to *target*; returns the dict."""
    payload = to_chrome_trace(events, profiler=profiler,
                              process_name=process_name)
    fh, owned = _open(target, write=True)
    try:
        json.dump(payload, fh, sort_keys=True)
    finally:
        if owned:
            fh.close()
    return payload


def export_stream(
    stream: EventStream,
    target: PathOrFile,
    fmt: str = "jsonl",
    profiler: Optional[Profiler] = None,
) -> None:
    """Convenience dispatcher used by the CLI (``--format`` flag)."""
    if fmt == "jsonl":
        write_jsonl(stream, target)
    elif fmt == "chrome":
        write_chrome_trace(stream, target, profiler=profiler)
    else:
        raise ValueError(f"unknown trace format {fmt!r} "
                         f"(choices: jsonl, chrome)")

"""Formal verification: the paper's SMV campaign, in explicit-state form.

Block specs (:mod:`~repro.verify.fsm`), constrained environments
(:mod:`~repro.verify.env`), safety monitors
(:mod:`~repro.verify.monitors`), a BFS engine
(:mod:`~repro.verify.reach`) and the packaged paper properties
(:mod:`~repro.verify.properties`, :mod:`~repro.verify.liveness`).
"""

from .env import PAYLOAD_MODULUS, DownstreamState, EagerUpstream, UpstreamState
from .fsm import (
    FullRsState,
    HalfRsState,
    ShellState,
    full_rs_outputs,
    full_rs_step,
    half_rs_step,
    half_rs_stop_out,
    shell_fire,
    shell_input_stops,
    shell_outputs,
    shell_step,
)
from .composition import verify_all_chains, verify_chain, verify_shell_chain
from .liveness import ProgressResult, check_progress
from .ltl import (
    And,
    Implies,
    LtlResult,
    Not,
    Or,
    Prop,
    TransitionSystem,
    block_transition_system,
    eventually_emits,
    held_token_reappears,
)
from .monitors import (
    CoherenceMonitor,
    HoldMonitor,
    NoSpuriousValidMonitor,
    OrderMonitor,
    Violation,
)
from .properties import (
    PropertyResult,
    results_table,
    verify_all,
    verify_queued_shell,
    verify_relay_station,
    verify_shell,
)
from .reach import Counterexample, ReachResult, explore, reachable_states
from .refinement import (
    RefinementResult,
    check_refinement_stack,
    cosimulate_relay_netlist,
    cosimulate_relay_spec,
)
from .system_liveness import SystemLivenessResult, verify_system_liveness

__all__ = [
    "And",
    "CoherenceMonitor",
    "Counterexample",
    "DownstreamState",
    "EagerUpstream",
    "FullRsState",
    "HalfRsState",
    "HoldMonitor",
    "Implies",
    "LtlResult",
    "NoSpuriousValidMonitor",
    "Not",
    "Or",
    "OrderMonitor",
    "PAYLOAD_MODULUS",
    "ProgressResult",
    "Prop",
    "PropertyResult",
    "ReachResult",
    "RefinementResult",
    "ShellState",
    "SystemLivenessResult",
    "TransitionSystem",
    "UpstreamState",
    "Violation",
    "block_transition_system",
    "check_progress",
    "check_refinement_stack",
    "cosimulate_relay_netlist",
    "cosimulate_relay_spec",
    "eventually_emits",
    "explore",
    "full_rs_outputs",
    "full_rs_step",
    "half_rs_step",
    "half_rs_stop_out",
    "held_token_reappears",
    "reachable_states",
    "results_table",
    "shell_fire",
    "shell_input_stops",
    "shell_outputs",
    "shell_step",
    "verify_all",
    "verify_all_chains",
    "verify_chain",
    "verify_queued_shell",
    "verify_relay_station",
    "verify_shell",
    "verify_shell_chain",
    "verify_system_liveness",
]

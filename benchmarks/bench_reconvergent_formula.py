"""EXP-T2: the reconvergent feed-forward formula T = (m - i)/m.

Paper: "The number of invalid data is the difference of relay stations
i between the 'feedforward' branches ... The general formula
T = (m-i)/m, where m is the total number of relay stations in the loop,
plus the number of shells on the path with the highest number of relay
stations."
"""

from fractions import Fraction

from repro.analysis import analyze_reconvergence, min_cycle_ratio_throughput
from repro.bench.runner import run_reconvergent
from repro.graph import reconvergent
from repro.skeleton import system_throughput


def test_bench_reconvergent_table(benchmark, emit):
    table, rows = benchmark(run_reconvergent)
    emit("EXP-T2-reconvergent", table)
    assert all(row[-1] for row in rows)  # formula == mcr == simulated


def test_bench_reconvergent_formula_evaluation(benchmark):
    graph = reconvergent(long_relays=(2, 2), short_relays=1)

    def run():
        return analyze_reconvergence(graph, "A", "C")

    i, m, rate = benchmark(run)
    assert rate == Fraction(m - i, m)
    assert rate == system_throughput(graph)


def test_bench_reconvergent_mcr(benchmark):
    graph = reconvergent(long_relays=(3, 1), short_relays=1)

    def run():
        return min_cycle_ratio_throughput(graph)

    result = benchmark(run)
    assert result.throughput == system_throughput(graph)


def test_bench_imbalance_sweep(benchmark, emit):
    """Voids per period grow linearly with the imbalance i."""
    from repro.bench.tables import format_table

    def sweep():
        rows = []
        for extra in range(4):
            graph = reconvergent(long_relays=(1 + extra, 1),
                                 short_relays=1)
            i, m, rate = analyze_reconvergence(graph, "A", "C")
            simulated = system_throughput(graph)
            rows.append((extra, i, m, str(rate), str(simulated),
                         rate == simulated))
        return rows

    rows = benchmark(sweep)
    table = format_table(
        ("extra RS", "i", "m", "(m-i)/m", "simulated", "match"), rows,
        title="Imbalance sweep: each spare relay station costs one "
              "void per period")
    emit("EXP-T2-imbalance-sweep", table)
    assert all(row[-1] for row in rows)

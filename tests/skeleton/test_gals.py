"""GALS multi-clock skeleton semantics, backend gating and bridges.

The differential-conformance extension for mixed-rate systems: the
scalar and vectorized engines must agree bit-exactly on every GALS
topology (firing decisions, bridge occupancy, registers, steady-state
structure), the single-clock-only engines must refuse GALS lowerings
through the capability flags, and ``select()`` must turn every refusal
into an actionable message.
"""

from fractions import Fraction

import pytest

from repro.errors import StructuralError
from repro.graph import gals_chain, gals_ring, parse_topology
from repro.ir import lower
from repro.lid.variant import ProtocolVariant
from repro.skeleton import (
    BatchSkeletonSim,
    BitplaneSkeletonSim,
    CodegenSkeletonSim,
    SkeletonSim,
    bitsim_supported,
    check_deadlock,
    codegen_supported,
    select,
)
from repro.skeleton.backend import available_backends

VARIANTS = [ProtocolVariant.CASU, ProtocolVariant.CARLONI]

GALS_SPECS = [
    "gals-chain:rates=1+1/2",
    "gals-chain:rates=1+1/2+1/3,stages=2",
    "gals-chain:rates=1+2/3,relays=1",
    "gals-ring:rates=1+1/2,shells=1",
    "gals-ring:rates=1+1/2,shells=2,depth=3",
    "gals-ring:rates=1+2/3,shells=2,relays=1",
    "gals-ring:rates=3/4+2/3+1/2,shells=1",
]


class TestMixedRateDifferential:
    @pytest.mark.parametrize("spec", GALS_SPECS)
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_scalar_vs_vectorized_bit_exact(self, spec, variant):
        graph = parse_topology(spec)
        scalar = SkeletonSim(graph, variant=variant,
                             detect_ambiguity=False)
        batch = BatchSkeletonSim(graph, [{}], variant=variant,
                                 detect_ambiguity=False)
        cycles = 160
        fires = [0] * len(scalar.shell_names)
        accepted = 0
        for _ in range(cycles):
            f, acc = scalar.step()
            for i, fired in enumerate(f):
                fires[i] += fired
            accepted += sum(acc)
        batch.run(cycles)
        for i, name in enumerate(scalar.shell_names):
            j = batch.shell_names.index(name)
            assert int(batch.shell_fired[j][0]) == fires[i], name
        assert int(batch.sink_accepted.sum()) == accepted
        assert tuple(int(batch.bridge_occ[b][0])
                     for b in range(len(scalar.bridge_occ))) \
            == tuple(scalar.bridge_occ)

    @pytest.mark.parametrize("spec", GALS_SPECS[:4])
    def test_steady_state_structure_matches(self, spec):
        graph = parse_topology(spec)
        ref = SkeletonSim(graph, detect_ambiguity=False).run()
        result = BatchSkeletonSim(graph, [{}],
                                  detect_ambiguity=False).run_to_period()[0]
        assert (result.transient, result.period) == (ref.transient,
                                                     ref.period)
        assert result.shell_fires == ref.shell_fires

    def test_deterministic_rerun(self):
        graph = parse_topology("gals-ring:rates=1+1/2,shells=2")
        first = SkeletonSim(graph, detect_ambiguity=False).run()
        second = SkeletonSim(graph, detect_ambiguity=False).run()
        assert first.shell_fires == second.shell_fires
        assert (first.transient, first.period) == (second.transient,
                                                   second.period)


class TestSchedules:
    def test_chain_throttles_to_slowest_domain(self):
        graph = gals_chain(rates=(Fraction(1), Fraction(1, 2)))
        result = SkeletonSim(graph, detect_ambiguity=False).run()
        for fires in result.shell_fires.values():
            assert Fraction(fires, result.period) == Fraction(1, 2)

    def test_rate_one_domains_match_default_clock(self):
        """All-rate-1 GALS degenerates to the single-clock dynamics."""
        graph = gals_chain(rates=(Fraction(1), Fraction(1)))
        low = lower(graph)
        assert not low.single_clock  # bridges still present
        result = SkeletonSim(graph, detect_ambiguity=False).run()
        for fires in result.shell_fires.values():
            assert Fraction(fires, result.period) == 1


class TestBridges:
    def test_occupancy_bounded_by_depth(self):
        graph = gals_ring(rates=(Fraction(1), Fraction(1, 2)),
                          shells_per_domain=2, depth=2)
        sim = SkeletonSim(graph, detect_ambiguity=False)
        for _ in range(300):
            sim.step()
            for occ, depth in zip(sim.bridge_occ, sim.bridge_depths):
                assert 0 <= occ <= depth

    def test_poke_clamps_and_matches_vectorized(self):
        graph = parse_topology("gals-ring:rates=1+1/2,shells=2,depth=2")
        scalar = SkeletonSim(graph, detect_ambiguity=False)
        batch = BatchSkeletonSim(graph, [{}], detect_ambiguity=False)
        name = scalar.bridge_names[0]
        for sim_poke in (lambda c, d: scalar.poke_bridge(name, c, d),
                         lambda c, d: batch.poke_bridge(0, name, c, d)):
            sim_poke(10, -1)
            sim_poke(11, +1)
            sim_poke(12, +5)   # clamped at depth
            sim_poke(13, -5)   # clamped at zero
        for cycle in range(60):
            scalar.step()
            batch.step()
            got = tuple(int(batch.bridge_occ[b][0])
                        for b in range(len(scalar.bridge_occ)))
            assert got == tuple(scalar.bridge_occ), cycle

    def test_poke_unknown_bridge_raises(self):
        graph = parse_topology("gals-chain:rates=1+1/2")
        sim = SkeletonSim(graph, detect_ambiguity=False)
        with pytest.raises(KeyError):
            sim.poke_bridge("no-such-bridge", 0, 1)


class TestCapabilityGating:
    def test_lowering_flags(self):
        low = lower(parse_topology("gals-chain:rates=1+1/2"))
        assert not low.single_clock
        assert low.has_bridges
        single = lower(parse_topology("pipeline:stages=2"))
        assert single.single_clock
        assert not single.has_bridges

    @pytest.mark.parametrize("probe", [bitsim_supported,
                                       codegen_supported])
    def test_supported_probes_refuse_gals(self, probe):
        graph = parse_topology("gals-chain:rates=1+1/2")
        ok, reason = probe(graph, ProtocolVariant.CASU)
        assert not ok
        assert "single_clock=False" in reason
        assert "has_bridges=True" in reason

    def test_available_backends(self):
        gals = parse_topology("gals-ring:rates=1+1/2,shells=2")
        assert available_backends(gals, ProtocolVariant.CASU) \
            == ("scalar", "vectorized")
        single = parse_topology("figure2:relays=1")
        assert "bitsim" in available_backends(single,
                                              ProtocolVariant.CASU)

    @pytest.mark.parametrize("backend", ["bitsim", "codegen"])
    def test_select_refusal_is_actionable(self, backend):
        graph = parse_topology("gals-chain:rates=1+1/2")
        with pytest.raises(ValueError) as err:
            select(graph, backend=backend)
        message = str(err.value)
        assert "single_clock" in message
        assert "available backends: scalar, vectorized" in message

    def test_select_unknown_backend_enumerates(self):
        graph = parse_topology("gals-chain:rates=1+1/2")
        with pytest.raises(ValueError) as err:
            select(graph, backend="warp")
        assert "scalar, vectorized" in str(err.value)

    def test_select_auto_falls_back_cleanly(self):
        graph = parse_topology("gals-chain:rates=1+1/2")
        # Single instance: the scalar reference wins; wide batches go
        # vectorized — never bitsim/codegen, which lack GALS support.
        assert select(graph).name == "scalar"
        assert select(graph, batch=4).name == "vectorized"

    def test_bitsim_constructor_refuses_gals(self):
        graph = parse_topology("gals-chain:rates=1+1/2")
        with pytest.raises(StructuralError) as err:
            BitplaneSkeletonSim(graph, batch=1)
        assert "single_clock" in str(err.value)

    def test_codegen_constructor_refuses_gals(self):
        graph = parse_topology("gals-chain:rates=1+1/2")
        with pytest.raises(StructuralError) as err:
            CodegenSkeletonSim(graph)
        assert "single_clock" in str(err.value)


class TestGalsDeadlock:
    def test_ring_is_live(self):
        graph = parse_topology("gals-ring:rates=1+1/2,shells=2")
        verdict = check_deadlock(graph, max_cycles=5_000)
        assert verdict.live

    def test_codegen_backend_fails_fast(self):
        graph = parse_topology("gals-ring:rates=1+1/2,shells=2")
        with pytest.raises(ValueError) as err:
            check_deadlock(graph, backend="codegen")
        assert "single_clock" in str(err.value)

    def test_verdict_deterministic(self):
        graph = parse_topology("gals-ring:rates=1+2/3,shells=2")
        a = check_deadlock(graph, max_cycles=5_000)
        b = check_deadlock(graph, max_cycles=5_000)
        assert (a.deadlocked, a.potential, a.transient, a.period) \
            == (b.deadlocked, b.potential, b.transient, b.period)

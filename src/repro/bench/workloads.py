"""Canonical workloads for the experiment benches.

One builder per experiment family (see DESIGN.md §5); every
``benchmarks/bench_*.py`` file pulls its systems from here so the
parameters that define each paper artifact live in exactly one place.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..graph import (
    SystemGraph,
    figure1,
    figure2,
    loop_with_tail,
    pipeline,
    reconvergent,
    ring,
    tree,
)

#: Back-pressure scripts used by several experiments: name -> pattern.
SINK_PATTERNS: Dict[str, Tuple[bool, ...]] = {
    "none": (False,),
    "light": (False, False, False, True),
    "heavy": (False, True, True),
    "bursty": (False, False, True, True, True, False),
}

#: Source availability scripts (True = token offered that cycle).
SOURCE_PATTERNS: Dict[str, Tuple[bool, ...]] = {
    "steady": (True,),
    "gappy": (True, True, False),
    "bursty": (True, True, True, False, False),
}


def figure1_workload() -> SystemGraph:
    """EXP-F1: the exact Figure 1 system (i=1, m=5, T=4/5)."""
    return figure1()


def figure2_workload(relays_per_arc: int = 1) -> SystemGraph:
    """EXP-F2: the Figure 2 two-shell loop."""
    return figure2(relays_per_arc)


def ring_sweep() -> List[Tuple[int, int, SystemGraph]]:
    """EXP-T4: (S, R, graph) instances covering the S/(S+R) formula."""
    cases: List[Tuple[int, int, SystemGraph]] = []
    for shells, total_relays in [
        (1, 1), (1, 2), (1, 4),
        (2, 2), (2, 3), (2, 4), (2, 6),
        (3, 3), (3, 4), (3, 5),
        (4, 4), (4, 6),
    ]:
        per_arc = [
            total_relays // shells + (1 if i < total_relays % shells else 0)
            for i in range(shells)
        ]
        if shells == 1:
            graph = ring(1, relays_per_arc=[per_arc[0]])
        else:
            graph = ring(shells, relays_per_arc=per_arc)
        graph.name = f"ring_S{shells}_R{total_relays}"
        cases.append((shells, total_relays, graph))
    return cases


def reconvergent_sweep() -> List[Tuple[int, int, SystemGraph]]:
    """EXP-T2: (i, m, graph) instances for the (m-i)/m formula."""
    cases: List[Tuple[int, int, SystemGraph]] = []
    settings = [
        # (long relay chain per hop, short relays)
        ((1, 1), 1),   # figure 1: i=1, m=5
        ((2, 1), 1),   # i=2, m=6
        ((1, 1), 2),   # balanced: i=0
        ((2, 2), 1),   # i=3, m=7
        ((1, 1, 1), 1),  # longer branch with 2 intermediate shells
        ((3, 1), 2),   # i=2, m=8
    ]
    for long_relays, short_relays in settings:
        graph = reconvergent(long_relays=long_relays,
                             short_relays=short_relays)
        long_total = sum(long_relays)
        imbalance = long_total - short_relays
        shells_on_long = len(long_relays)  # divergence + intermediates
        m = long_total + short_relays + shells_on_long
        graph.name = f"reconv_i{imbalance}_m{m}"
        cases.append((imbalance, m, graph))
    return cases


def tree_sweep() -> List[Tuple[int, int, SystemGraph]]:
    """EXP-T1: (depth, relays/hop, graph) tree instances."""
    cases = []
    for depth in (1, 2, 3):
        for relays in (1, 2):
            graph = tree(depth, relays_per_hop=relays)
            graph.name = f"tree_d{depth}_r{relays}"
            cases.append((depth, relays, graph))
    return cases


def composition_cases() -> List[Tuple[str, SystemGraph]]:
    """EXP-T5: composed systems where the slowest sub-topology wins."""
    from ..graph import composed

    return [
        ("loop(1/3) after reconv(2/3)", composed(reconv_imbalance=2,
                                                 loop_relays=2)),
        ("loop(1/2) after reconv(2/3)", composed(reconv_imbalance=2,
                                                 loop_relays=1)),
        ("loop(1/2) tail pipeline", loop_with_tail(loop_shells=2,
                                                   loop_relays=2)),
        ("loop(2/5) tail pipeline", loop_with_tail(loop_shells=2,
                                                   loop_relays=3)),
    ]


def deadlock_suite() -> List[Tuple[str, str, SystemGraph]]:
    """EXP-D1: (class, expectation, graph) liveness study instances.

    Expectation values: "live" or "hazard" (potential deadlock class,
    i.e. half relay stations on loops — lint rejects these, so they
    elaborate with ``strict=False`` only).
    """
    suite: List[Tuple[str, str, SystemGraph]] = []
    suite.append(("feed-forward", "live", figure1()))
    suite.append(("feed-forward", "live", tree(3)))
    suite.append(("feed-forward", "live",
                  pipeline(4, relays_per_hop=2)))
    ff_half = pipeline(3, relays_per_hop=1)
    for edge in ff_half.edges:
        if edge.relays:
            edge.relays = ("half",) * len(edge.relays)
    ff_half.name = "pipeline_half"
    suite.append(("feed-forward + half RS", "live", ff_half))
    suite.append(("loop, full RS only", "live", figure2()))
    suite.append(("loop, full RS only", "live", ring(3, relays_per_arc=2)))
    mixed = ring(2, relays_per_arc=[["half"], ["full"]])
    mixed.name = "ring_half_full"
    suite.append(("loop with half RS", "hazard", mixed))
    allhalf = ring(2, relays_per_arc=[["half"], ["half"]])
    allhalf.name = "ring_all_half"
    suite.append(("loop with half RS", "hazard", allhalf))
    return suite


def pipeline_scaling(sizes: Sequence[int] = (4, 16, 64)) -> List[SystemGraph]:
    """EXP-D2: pipelines of growing size for the cost comparison."""
    graphs = []
    for stages in sizes:
        graph = pipeline(stages, relays_per_hop=2)
        graph.name = f"pipeline{stages}"
        graphs.append(graph)
    return graphs

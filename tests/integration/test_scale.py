"""Scale tests: the toolkit on systems an order larger than the paper's."""

import pytest

from repro.graph import butterfly_network, pipeline, random_dag, random_loopy
from repro.lid.reference import is_prefix
from repro.skeleton import SkeletonSim, system_throughput


class TestLargeFeedForward:
    def test_thirty_shell_dag_equivalence(self):
        graph = random_dag(seed=1234, shells=30, max_relays=3)
        system = graph.elaborate()
        system.run(120)
        reference = system.reference_outputs(120)
        for name, sink in system.sinks.items():
            assert is_prefix(sink.payloads, reference[name]), name
        delivered = sum(len(s.payloads) for s in system.sinks.values())
        assert delivered > 100

    def test_deep_pipeline(self):
        graph = pipeline(40, relays_per_hop=2)
        assert system_throughput(graph) == 1
        system = graph.elaborate()
        system.run(200)
        sink = system.sinks["out"]
        # 40 shells + 78 relay stations of latency, then full rate.
        assert sink.steady_throughput(130, 200) == 1.0

    def test_butterfly_16(self):
        graph = butterfly_network(16)
        assert len(graph.shells()) == 32  # 4 stages x 8
        assert system_throughput(graph) == 1

    def test_skeleton_periodicity_on_large_loopy(self):
        graph = random_loopy(seed=77, shells=10, extra_back_edges=3)
        result = SkeletonSim(graph, detect_ambiguity=False).run(
            max_cycles=50_000)
        assert result.period >= 1
        assert result.min_shell_throughput() > 0

    def test_mcr_on_large_loopy_matches_simulation(self):
        from repro.analysis import min_cycle_ratio_throughput

        graph = random_loopy(seed=78, shells=8, extra_back_edges=2)
        assert min_cycle_ratio_throughput(graph).throughput == \
            system_throughput(graph)


class TestReferenceErrorPaths:
    def test_unconnected_channel_reported(self):
        from repro import LidSystem, pearls
        from repro.errors import StructuralError
        from repro.lid.reference import _ultimate_producer

        system = LidSystem("broken")
        src = system.add_source("src")
        shell = system.add_shell("A", pearls.Identity())
        sink = system.add_sink("out")
        system.connect(src, shell)
        chain = system.connect(shell, sink)
        chain[0].producer = None  # sabotage
        with pytest.raises(StructuralError, match="no producer"):
            _ultimate_producer(system, chain[0])

    def test_unknown_port_reported(self):
        from repro import LidSystem, pearls
        from repro.errors import StructuralError
        from repro.lid.reference import _ultimate_producer

        system = LidSystem("broken2")
        src = system.add_source("src")
        shell = system.add_shell("A", pearls.Identity())
        sink = system.add_sink("out")
        system.connect(src, shell)
        chain = system.connect(shell, sink)
        shell._outputs["out"] = []  # detach the channel from the port
        with pytest.raises(StructuralError, match="no known port"):
            _ultimate_producer(system, chain[-1])

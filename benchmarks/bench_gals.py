"""BENCH EXP-G1: GALS mixed-rate engines — scalar vs vectorized.

The GALS extension adds a firing-schedule gate and bridge occupancy
updates to both skeleton engines.  This bench pins two facts on the
canonical two-domain ring (``gals_ring(rates=(1, 1/2),
shells_per_domain=2)``, where the static formula is exact at 1/2):

* **throughput model**: ``static_system_throughput`` and the simulated
  steady state agree exactly (the bench aborts on any drift — this is
  the EXP-G1 correctness anchor, not just a speed number);
* **engine cost**: per-instance cycle rate of the scalar engine vs the
  vectorized engine at batch width 32.  The vectorized engine amortises
  the schedule gate across the batch, so its per-instance rate must not
  fall below the scalar rate (floor 1.0x after noise margin).

Emits ``BENCH_EXP-G1-gals.json`` whose counters
(``scalar_cycles_per_sec``, ``vectorized_cycles_per_sec_per_instance``,
``speedup``) feed the ``obs regress`` trajectory scan alongside the
other engine benches.
"""

from fractions import Fraction
from time import perf_counter

from repro.analysis import simulated_throughput, static_system_throughput
from repro.bench.tables import format_table
from repro.graph import gals_ring
from repro.skeleton import BatchSkeletonSim, SkeletonSim

CYCLES = 2000
ROUNDS = 3
BATCH = 32

#: Keep a generous margin: CI machines are noisy, and the point is to
#: catch the vectorized path degenerating to a per-instance loop.
SPEEDUP_FLOOR = 1.0


def _graph():
    return gals_ring(rates=(Fraction(1), Fraction(1, 2)),
                     shells_per_domain=2)


def _scalar_rate() -> float:
    best = 0.0
    for _ in range(ROUNDS):
        sim = SkeletonSim(_graph(), detect_ambiguity=False)
        started = perf_counter()
        for _ in range(CYCLES):
            sim.step()
        best = max(best, CYCLES / (perf_counter() - started))
    return best


def _vectorized_rate() -> float:
    """Per-instance cycles/s at batch width BATCH."""
    best = 0.0
    for _ in range(ROUNDS):
        sim = BatchSkeletonSim(_graph(), [{} for _ in range(BATCH)],
                               detect_ambiguity=False)
        started = perf_counter()
        sim.run(CYCLES)
        best = max(best, CYCLES * BATCH / (perf_counter() - started))
    return best


def test_bench_gals_engines(benchmark, emit):
    graph = _graph()
    formula = static_system_throughput(graph)
    simulated = simulated_throughput(graph)
    assert formula == simulated == Fraction(1, 2), (
        f"EXP-G1 anchor drifted: formula={formula} simulated={simulated}"
        " (expected exactly 1/2 on the two-domain ring)")

    started = perf_counter()
    scalar = _scalar_rate()
    vectorized = _vectorized_rate()
    wall = perf_counter() - started
    benchmark.pedantic(_scalar_rate, rounds=1, iterations=1)

    speedup = vectorized / scalar
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized GALS engine fell to {speedup:.2f}x the scalar "
        f"per-instance rate (floor {SPEEDUP_FLOOR}x): batching no "
        "longer amortises the firing-schedule gate")

    rows = [
        ("scalar", 1, f"{scalar:,.0f}", "1.00"),
        ("vectorized", BATCH, f"{vectorized:,.0f}", f"{speedup:.2f}"),
    ]
    table = format_table(
        ("backend", "batch", "inst-cycles/s", "speedup"),
        rows,
        title=(f"EXP-G1: GALS two-domain ring (rates 1, 1/2; "
               f"throughput exactly {formula})"),
    )
    emit("EXP-G1-gals", table, rows=rows,
         wall_seconds=wall,
         params={"topology": "gals-ring:rates=1+1/2,shells=2",
                 "cycles": CYCLES, "batch": BATCH,
                 "throughput": str(formula)},
         counters={"scalar_cycles_per_sec": round(scalar),
                   "vectorized_cycles_per_sec_per_instance":
                       round(vectorized),
                   "speedup": round(speedup, 3)})

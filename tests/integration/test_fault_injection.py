"""Fault injection: broken blocks must be caught, not absorbed.

A reproduction that only ever tests correct blocks proves little about
its checking machinery.  Here we inject classic RTL bugs into a relay
station — dropping a held token, duplicating a token, forgetting the
skid register — and require that (a) the runtime channel monitors or
(b) the latency-equivalence oracle flags every one of them.
"""

import pytest

from repro import LidSystem, pearls
from repro.errors import ProtocolViolationError
from repro.lid import watch_system
from repro.lid.reference import is_prefix
from repro.lid.relay import RelayStation
from repro.lid.token import Token, VOID


class DroppingRelay(RelayStation):
    """Bug: loses the held token when the stop persists two cycles."""

    def __init__(self, name, **kwargs):
        super().__init__(name, **kwargs)
        self._stopped_cycles = 0

    def tick(self):
        if self.output.stop_asserted():
            self._stopped_cycles += 1
            if self._stopped_cycles >= 2 and self._main.valid:
                self._main = VOID  # the bug
                self._stopped_cycles = 0
                return
        else:
            self._stopped_cycles = 0
        super().tick()


class DuplicatingRelay(RelayStation):
    """Bug: re-emits the last token after it was already consumed."""

    def tick(self):
        last = self._main
        super().tick()
        if not self._main.valid and last.valid:
            self._main = last  # the bug: zombie token


class ForgetfulRelay(RelayStation):
    """Bug: no skid register — the in-flight token on stop is lost."""

    def tick(self):
        stop_in = self.output.stop_asserted()
        incoming = self.input.read()
        consumed = self.variant.slot_consumed(self._main.valid, stop_in)
        if consumed:
            self._main = incoming if incoming.valid else VOID
        # else: drop `incoming` on the floor (no aux) — the bug.
        self._stop_reg = False


def faulty_system(relay_cls, stop_script=None, stream=None):
    system = LidSystem("faulty")
    src = system.add_source("src", stream=stream)
    a = system.add_shell("A", pearls.Identity(initial=-1))
    b = system.add_shell("B", pearls.Identity(initial=-2))
    sink = system.add_sink("out", stop_script=stop_script)
    system.connect(src, a)
    system.connect(a, b, relays=1)
    system.connect(b, sink)
    # Transplant the faulty relay in place of the healthy one.
    (name, healthy), = system.relays.items()
    faulty = relay_cls(name, variant=system.variant)
    faulty.input = healthy.input
    faulty.output = healthy.output
    system.relays[name] = faulty
    system.sim._components[system.sim._components.index(healthy)] = faulty
    return system, sink


# Each bug with the traffic shape that exposes it: dropped holds need
# multi-cycle stops; zombie re-emission needs gaps in the stream;
# a missing skid register needs a stop edge during streaming.
TWO_ON_TWO_OFF = lambda c: (c // 2) % 2 == 0  # noqa: E731
GAPPY = [1, 2, None, None, 3, None, 4, None, None, 5]
SCENARIOS = [
    (DroppingRelay, TWO_ON_TWO_OFF, None),
    (DuplicatingRelay, TWO_ON_TWO_OFF, GAPPY),
    (ForgetfulRelay, TWO_ON_TWO_OFF, None),
]


class TestOracleCatchesFaults:
    @pytest.mark.parametrize("relay_cls,stop_script,stream", SCENARIOS)
    def test_equivalence_oracle_flags_bug(self, relay_cls, stop_script,
                                          stream):
        system, sink = faulty_system(relay_cls, stop_script, stream)
        try:
            system.run(60)
        except ProtocolViolationError:
            return  # even better: caught in flight by a guard
        ref = system.reference_outputs(60)["out"]
        assert not is_prefix(sink.payloads, ref), (
            f"{relay_cls.__name__}: the bug survived both the monitors "
            f"and the latency-equivalence oracle"
        )

    def test_hold_monitor_flags_dropped_token(self):
        system, _sink = faulty_system(DroppingRelay, TWO_ON_TWO_OFF)
        watch_system(system)
        with pytest.raises(ProtocolViolationError, match="hold"):
            system.run(60)

    def test_stream_monitor_flags_duplicate(self):
        from repro.lid import StreamMonitor

        system, _sink = faulty_system(DuplicatingRelay,
                                      TWO_ON_TWO_OFF, GAPPY)
        # The faulty station's own output channel carries the zombies.
        (relay,) = system.relays.values()
        StreamMonitor(relay.output,
                      forbid_repeats=True).attach(system.sim)
        with pytest.raises(ProtocolViolationError, match="twice"):
            system.run(60)


class TestHealthySystemsStayClean:
    def test_healthy_relay_passes_same_gauntlet(self):
        system = LidSystem("healthy")
        src = system.add_source("src")
        a = system.add_shell("A", pearls.Identity(initial=-1))
        b = system.add_shell("B", pearls.Identity(initial=-2))
        sink = system.add_sink("out", stop_script=lambda c: c % 3 == 0)
        system.connect(src, a)
        system.connect(a, b, relays=1)
        system.connect(b, sink)
        watch_system(system)
        system.run(60)
        ref = system.reference_outputs(60)["out"]
        assert is_prefix(sink.payloads, ref)

"""Tests for the parallel execution layer (repro.exec)."""

"""Tests for loop-aware equalization (the acyclic-condensation path)."""

from fractions import Fraction

import pytest

from repro.errors import AnalysisError
from repro.graph import composed, equalize, loop_with_tail, relay_depths, ring
from repro.graph.equalize import _loop_edge_indices, equalization_plan
from repro.skeleton import system_throughput


class TestLoopEdgeDetection:
    def test_pure_ring_all_edges_on_loop(self):
        graph = ring(3, relays_per_arc=1, tap_sink=False)
        assert _loop_edge_indices(graph) == {0, 1, 2}

    def test_tap_edge_not_on_loop(self):
        graph = ring(2, relays_per_arc=1)
        loop_edges = _loop_edge_indices(graph)
        tap = next(i for i, e in enumerate(graph.edges)
                   if e.dst == "out")
        assert tap not in loop_edges

    def test_self_loop_detected(self):
        from repro.graph import self_loop

        graph = self_loop(relays=1)
        loop_edges = _loop_edge_indices(graph)
        self_edge = next(i for i, e in enumerate(graph.edges)
                         if e.src == e.dst)
        assert self_edge in loop_edges


class TestLoopAwareDepths:
    def test_strict_mode_raises_on_loops(self):
        with pytest.raises(AnalysisError):
            relay_depths(composed(), strict=True)

    def test_non_strict_ignores_feedback_arcs(self):
        depths = relay_depths(composed(), strict=False)
        assert depths["src"] == 0
        assert depths["C"] > depths["A"]

    def test_acyclic_graphs_identical_in_both_modes(self):
        from repro.graph import figure1

        graph = figure1()
        assert relay_depths(graph, strict=True) == \
            relay_depths(graph, strict=False)


class TestLoopAwareEqualization:
    def test_composed_equalizes_feedforward_part_only(self):
        graph = composed(reconv_imbalance=2, loop_relays=2)
        balanced = equalize(graph)
        # Feedback arcs untouched.
        loop_before = [graph.edges[i].relay_count
                       for i in sorted(_loop_edge_indices(graph))]
        loop_after = [balanced.edges[i].relay_count
                      for i in sorted(_loop_edge_indices(balanced))]
        assert loop_before == loop_after
        # The reconvergent part is now balanced, so the loop is the
        # only remaining limit.
        assert system_throughput(balanced) == Fraction(1, 3)

    def test_plan_never_touches_loop_edges(self):
        graph = loop_with_tail(loop_shells=2, loop_relays=3)
        loop_edges = _loop_edge_indices(graph)
        for edge, _extra in equalization_plan(graph):
            index = graph.edges.index(edge)
            assert index not in loop_edges

    def test_throughput_never_decreases(self):
        for graph in (composed(), loop_with_tail()):
            before = system_throughput(graph)
            after = system_throughput(equalize(graph))
            assert after >= before

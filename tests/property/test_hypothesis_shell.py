"""Property-based tests on the shell spec FSM."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.lid.variant import ProtocolVariant
from repro.verify.env import PAYLOAD_MODULUS
from repro.verify.fsm import (

    ShellState,
    shell_fire,
    shell_input_stops,
    shell_step,
)

pytestmark = pytest.mark.slow

# Environment script: per cycle (offer?, stop on output?).
script = st.lists(st.tuples(st.booleans(), st.booleans()),
                  min_size=1, max_size=120)
variants = st.sampled_from(list(ProtocolVariant))


def drive_shell(steps, variant, modulus=1 << 20):
    """Run a 1x1 shell spec against a law-abiding environment.

    Returns (inputs consumed, outputs consumed, final state).
    """
    state = ShellState(out=(None,))
    k = 0
    committed = False
    consumed_in, consumed_out = [], []
    for offer, stop in steps:
        present = k if (offer or committed) else None
        in_toks = (present,)
        stops = (stop,)
        if state.out[0] is not None and not stop:
            consumed_out.append(state.out[0])
        fired = shell_fire(state, in_toks, stops, variant)
        input_stop = shell_input_stops(state, in_toks, stops, variant)[0]
        if present is not None and not input_stop:
            consumed_in.append(present)
            k += 1
            committed = False
        elif present is not None:
            committed = True
        state = shell_step(state, in_toks, stops, variant, modulus)
    return consumed_in, consumed_out, state


@given(script, variants)
@settings(max_examples=200)
def test_outputs_are_prefix_of_inputs(steps, variant):
    """Every consumed output is a previously consumed input, in order
    (the identity spec pearl makes the correspondence visible)."""
    consumed_in, consumed_out, _state = drive_shell(steps, variant)
    assert consumed_out == consumed_in[: len(consumed_out)]


@given(script, variants)
@settings(max_examples=200)
def test_at_most_one_token_buffered(steps, variant):
    """The shell's only storage is its output register."""
    consumed_in, consumed_out, state = drive_shell(steps, variant)
    buffered = len(consumed_in) - len(consumed_out)
    assert buffered in (0, 1)
    assert (state.out[0] is not None) == (buffered == 1)


@given(script, variants)
@settings(max_examples=200)
def test_no_spurious_fire_without_input(steps, variant):
    state = ShellState(out=(None,))
    for _offer, stop in steps:
        assert not shell_fire(state, (None,), (stop,), variant)
        state = shell_step(state, (None,), (stop,), variant)


@given(script)
@settings(max_examples=150)
def test_casu_never_pressures_void_inputs(steps):
    state = ShellState(out=(None,))
    for offer, stop in steps:
        present = 0 if offer else None
        stops = shell_input_stops(state, (present,), (stop,),
                                  ProtocolVariant.CASU)
        if present is None:
            assert stops[0] is False
        state = shell_step(state, (present,), (stop,),
                           ProtocolVariant.CASU)


@given(script)
@settings(max_examples=150)
def test_payload_modulus_respected(steps):
    _in, out, state = drive_shell(steps, ProtocolVariant.CASU,
                                  modulus=PAYLOAD_MODULUS)
    for value in out:
        assert 0 <= value < PAYLOAD_MODULUS
    if state.out[0] is not None:
        assert 0 <= state.out[0] < PAYLOAD_MODULUS

"""Cache-first, coalescing work scheduler for the campaign service.

Every request flows through the same funnel:

1. **span** — the manifest's deterministic pre-run identity (design
   fingerprint x canonical params) is computed off-loop; fingerprints
   are memoized per ``(topology, seed)`` so repeat manifests skip the
   graph build entirely.
2. **cache** — the shared :class:`~repro.exec.ResultCache` is consulted
   with a response-level key; a warm request never touches the worker
   pool (this is what makes steady-state throughput an order of
   magnitude above cold).
3. **admission** — would-be *leaders* (requests that add new work) are
   bounced with 503 once ``queue_depth`` flights are outstanding;
   followers always pass, they add no work.
4. **single flight** — concurrent identical requests collapse onto one
   execution via :class:`AsyncSingleFlight`; exactly one golden
   simulation runs no matter how many clients ask.
5. **execute** — the leader ships :func:`execute_manifest` to a
   persistent worker pool (processes by default; threads for streamed
   runs, whose :class:`~repro.obs.ProgressReporter` callback cannot
   cross a process boundary), then publishes the outcome: response
   cache write + ledger append, both off-loop.

Ledger appends happen only for *executed* runs — a response-cache hit
replays a run whose content-addressed record was already appended, so
replaying the append would only duplicate the line.
"""

from __future__ import annotations

import asyncio
import functools
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional, Tuple

from .coalesce import AsyncSingleFlight
from .dispatch import ServeOutcome, execute_manifest, manifest_fingerprint
from .manifest import Manifest

#: Default bound on outstanding (queued + executing) leader flights.
DEFAULT_QUEUE_DEPTH = 8


class ServeRejected(Exception):
    """Backpressure: the request was refused, not failed.

    *status* is the HTTP code to answer with (429 rate-limited,
    503 queue full); *retry_after* seconds, when set, becomes a
    ``Retry-After`` header.
    """

    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class ServeStats:
    """Server-wide counters surfaced by ``GET /v1/stats``."""

    __slots__ = ("requests", "hits", "coalesced", "executed",
                 "errors", "rejected_rate", "rejected_queue", "streamed")

    def __init__(self) -> None:
        self.requests = 0
        self.hits = 0
        self.coalesced = 0
        self.executed = 0
        self.errors = 0
        self.rejected_rate = 0
        self.rejected_queue = 0
        self.streamed = 0

    def to_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class CampaignScheduler:
    """Owns the worker pool, the shared cache and the flight table."""

    def __init__(
        self,
        *,
        jobs: int = 1,
        mode: str = "process",
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        use_cache: bool = True,
        cache_dir: Optional[str] = None,
        ledger: Optional[str] = None,
    ) -> None:
        if mode not in ("process", "thread"):
            raise ValueError(f"scheduler mode must be process|thread, "
                             f"got {mode!r}")
        self.jobs = max(int(jobs), 1)
        self.mode = mode
        self.queue_depth = max(int(queue_depth), 1)
        self.use_cache = bool(use_cache)
        self.cache_dir = cache_dir
        self.ledger = ledger
        self.stats = ServeStats()
        self._flight = AsyncSingleFlight()
        self._pool: Any = None
        self._aux: Optional[ThreadPoolExecutor] = None
        self._outstanding = 0
        #: (topology, seed) -> design fingerprint memo (parent side).
        self._fingerprints: Dict[Tuple[str, int], Optional[str]] = {}
        from ..exec import ResultCache

        self.cache = (ResultCache.disk(cache_dir) if self.use_cache
                      else None)

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        if self._pool is not None:
            return
        if self.mode == "process":
            import multiprocessing

            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("fork"))
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=self.jobs,
                thread_name_prefix="serve-worker")
        # Off-loop lane for span computation, cache IO, ledger appends,
        # and thread-mode streamed runs; sized past jobs so streamed
        # executions cannot starve the bookkeeping.
        self._aux = ThreadPoolExecutor(
            max_workers=self.jobs + 4, thread_name_prefix="serve-aux")

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._aux is not None:
            self._aux.shutdown(wait=False, cancel_futures=True)
            self._aux = None

    @property
    def outstanding(self) -> int:
        """Leader flights currently queued or executing."""
        return self._outstanding

    # -- identity ------------------------------------------------------

    def _span(self, manifest: Manifest) -> str:
        """Span id (memoized fingerprint); runs on the aux executor."""
        if manifest.kind == "series":
            return manifest.span(None)
        memo_key = (manifest.topology, manifest.seed)
        if memo_key not in self._fingerprints:
            self._fingerprints[memo_key] = manifest_fingerprint(manifest)
        return manifest.span(self._fingerprints[memo_key])

    @staticmethod
    def response_key(manifest: Manifest, span: str) -> str:
        """Cache/flight key: span plus anything that changes the bytes
        without changing the run identity (the render format)."""
        if manifest.kind == "campaign":
            return f"{span}:{manifest.format}"
        return span

    # -- the funnel ----------------------------------------------------

    async def submit(
        self,
        manifest: Manifest,
        progress_cb: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Tuple[ServeOutcome, str]:
        """Serve one manifest; returns ``(outcome, source)`` with
        *source* one of ``hit`` / ``miss`` / ``coalesced``.

        Raises :class:`ServeRejected` for backpressure and lets
        manifest/dispatch errors propagate to the HTTP layer (400).
        """
        if self._pool is None:
            self.start()
        loop = asyncio.get_running_loop()
        self.stats.requests += 1
        span = await loop.run_in_executor(self._aux, self._span, manifest)
        key = self.response_key(manifest, span)

        if self.cache is not None and progress_cb is None:
            cached = await loop.run_in_executor(
                self._aux, self.cache.get, self.cache.key("serve", key))
            if cached is not None:
                self.stats.hits += 1
                return ServeOutcome.from_cache_payload(cached), "hit"

        if (not self._flight.leading(key)
                and self._outstanding >= self.queue_depth):
            self.stats.rejected_queue += 1
            raise ServeRejected(
                503, f"queue full ({self._outstanding} flights "
                     f"outstanding, depth {self.queue_depth})",
                retry_after=1.0)

        outcome, leader = await self._flight.run(
            key, functools.partial(self._execute, manifest, progress_cb))
        if leader:
            self.stats.executed += 1
        else:
            self.stats.coalesced += 1
            if self.cache is not None:
                self.cache.stats.coalesced += 1
        return outcome, ("miss" if leader else "coalesced")

    async def _execute(
        self,
        manifest: Manifest,
        progress_cb: Optional[Callable[[Dict[str, Any]], None]],
    ) -> ServeOutcome:
        """Leader path: run on the pool, then publish off-loop."""
        loop = asyncio.get_running_loop()
        self._outstanding += 1
        try:
            if progress_cb is not None or self.mode == "thread":
                self.stats.streamed += progress_cb is not None
                outcome = await loop.run_in_executor(
                    self._aux,
                    functools.partial(self._run_streamed, manifest,
                                      progress_cb, loop))
            else:
                outcome = await loop.run_in_executor(
                    self._pool,
                    functools.partial(execute_manifest,
                                      manifest.to_dict(),
                                      use_cache=self.use_cache,
                                      cache_dir=self.cache_dir))
        except BaseException:
            self.stats.errors += 1
            raise
        finally:
            self._outstanding -= 1
        await loop.run_in_executor(self._aux, self._publish,
                                   manifest, outcome)
        return outcome

    def _run_streamed(
        self,
        manifest: Manifest,
        progress_cb: Optional[Callable[[Dict[str, Any]], None]],
        loop: asyncio.AbstractEventLoop,
    ) -> ServeOutcome:
        """Thread-mode execution with a live ProgressReporter bridge.

        The reporter's ``on_event`` fires on the worker thread with the
        reporter lock held, so it only trampolines the dict onto the
        event loop; the HTTP layer consumes it there.
        """
        progress = None
        if progress_cb is not None and manifest.kind == "campaign":
            import io

            from ..obs import ProgressReporter

            progress = ProgressReporter(
                0, label="inject", out=io.StringIO(),
                on_event=lambda fields: loop.call_soon_threadsafe(
                    progress_cb, fields))
        return execute_manifest(manifest, use_cache=self.use_cache,
                                cache_dir=self.cache_dir,
                                progress=progress)

    def _publish(self, manifest: Manifest, outcome: ServeOutcome) -> None:
        """Response-cache write + ledger append (aux thread)."""
        if self.cache is not None:
            key = self.response_key(manifest, outcome.span)
            self.cache.put(self.cache.key("serve", key),
                           outcome.cache_payload())
            if outcome.cache:
                # Fold the worker's golden-run counters into the shared
                # stats so /v1/stats shows end-to-end cache behavior.
                for name in ("hits", "misses", "evictions"):
                    setattr(self.cache.stats, name,
                            getattr(self.cache.stats, name)
                            + outcome.cache.get(name, 0))
        if self.ledger is not None and outcome.record is not None:
            from ..obs import append_record

            append_record(self.ledger, outcome.record)

    def stats_payload(self) -> Dict[str, Any]:
        """The ``GET /v1/stats`` body."""
        payload: Dict[str, Any] = {
            "schema": "repro-lid-serve-stats/v1",
            "serve": self.stats.to_dict(),
            "jobs": self.jobs,
            "mode": self.mode,
            "queue_depth": self.queue_depth,
            "outstanding": self._outstanding,
            "inflight_keys": self._flight.inflight(),
        }
        if self.cache is not None:
            payload["cache"] = self.cache.stats.to_dict()
        if self.ledger is not None:
            payload["ledger"] = self.ledger
        return payload

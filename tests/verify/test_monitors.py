"""Tests for the safety monitors."""

import pytest

from repro.verify.env import PAYLOAD_MODULUS
from repro.verify.monitors import (
    CoherenceMonitor,
    HoldMonitor,
    NoSpuriousValidMonitor,
    OrderMonitor,
    Violation,
)


class TestOrderMonitor:
    def test_accepts_ordered_stream(self):
        mon = OrderMonitor()
        for k in range(2 * PAYLOAD_MODULUS):
            mon = mon.advance(k % PAYLOAD_MODULUS, stop_in=False)

    def test_void_cycles_ignored(self):
        mon = OrderMonitor()
        mon = mon.advance(None, False)
        mon = mon.advance(0, False)
        assert mon.expected == 1

    def test_stopped_cycles_not_consumed(self):
        mon = OrderMonitor()
        mon = mon.advance(0, stop_in=True)  # presented but held
        assert mon.expected == 0
        mon = mon.advance(0, stop_in=False)
        assert mon.expected == 1

    def test_skip_detected(self):
        mon = OrderMonitor()
        mon = mon.advance(0, False)
        with pytest.raises(Violation, match="out-of-order"):
            mon.advance(2, False)

    def test_duplicate_detected(self):
        mon = OrderMonitor()
        mon = mon.advance(0, False)
        with pytest.raises(Violation):
            mon.advance(0, False)


class TestHoldMonitor:
    def test_hold_respected(self):
        mon = HoldMonitor()
        mon = mon.advance(5, stop_in=True)
        mon = mon.advance(5, stop_in=False)  # same token reappears: ok
        assert mon.held is None

    def test_change_under_hold_detected(self):
        mon = HoldMonitor().advance(5, stop_in=True)
        with pytest.raises(Violation, match="not held"):
            mon.advance(6, stop_in=False)

    def test_drop_under_hold_detected(self):
        mon = HoldMonitor().advance(5, stop_in=True)
        with pytest.raises(Violation):
            mon.advance(None, stop_in=False)

    def test_void_with_stop_not_held(self):
        mon = HoldMonitor().advance(None, stop_in=True)
        mon.advance(3, stop_in=False)  # free to change


class TestCoherenceMonitor:
    def test_lockstep_ok(self):
        mon = CoherenceMonitor()
        mon.advance((3, 3))

    def test_divergence_detected(self):
        with pytest.raises(Violation, match="lockstep"):
            CoherenceMonitor().advance((3, 4))

    def test_single_input_trivial(self):
        CoherenceMonitor().advance((7,))


class TestBalanceMonitor:
    def test_normal_flow(self):
        mon = NoSpuriousValidMonitor()
        mon = mon.advance(True, False)   # +1
        mon = mon.advance(False, True)   # -1
        assert mon.balance == 0

    def test_emission_without_input_detected(self):
        with pytest.raises(Violation, match="no corresponding input"):
            NoSpuriousValidMonitor().advance(False, True)

    def test_capacity_overflow_detected(self):
        mon = NoSpuriousValidMonitor(limit=2)
        mon = mon.advance(True, False)
        mon = mon.advance(True, False)
        with pytest.raises(Violation, match="capacity"):
            mon.advance(True, False)

    def test_initial_token_credit(self):
        mon = NoSpuriousValidMonitor(balance=1)
        mon.advance(False, True)  # the initial token leaves

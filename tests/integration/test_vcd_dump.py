"""Integration: VCD dumping of a real LID run (Figure 1)."""

import pytest

from repro.graph import figure1
from repro.kernel.trace import Trace
from repro.kernel.vcd import dumps_vcd, write_vcd


@pytest.fixture
def traced_run():
    system = figure1().elaborate()
    system.finalize()
    # Trace the join shell's output channel plus its stop wire.
    join_chain = [c for c in system.channels if c.producer == "C"]
    trace = system.trace_channels(join_chain)
    system.run(30)
    return system, trace


class TestFigure1Vcd:
    def test_vcd_has_all_signals(self, traced_run):
        _system, trace = traced_run
        text = dumps_vcd(trace, module="figure1")
        assert text.count("$var wire") == len(trace.names)

    def test_vcd_timestamps_monotone(self, traced_run):
        _system, trace = traced_run
        text = dumps_vcd(trace)
        stamps = [int(line[1:]) for line in text.splitlines()
                  if line.startswith("#")]
        assert stamps == sorted(stamps)
        assert stamps[0] == 0

    def test_void_cycles_visible_as_x(self, traced_run):
        """Figure 1's periodic invalid datum shows up as VCD 'x'."""
        _system, trace = traced_run
        text = dumps_vcd(trace)
        assert "bx " in text

    def test_file_written(self, traced_run, tmp_path):
        _system, trace = traced_run
        path = tmp_path / "figure1.vcd"
        write_vcd(trace, str(path), module="figure1")
        content = path.read_text()
        assert "$scope module figure1" in content
        assert content.rstrip().splitlines()[-1]  # non-empty body

    def test_trace_matches_sink_voids(self, traced_run):
        system, trace = traced_run
        valid_name = next(n for n in trace.names if n.endswith(".valid"))
        valid_column = trace.column(valid_name)
        sink = system.sinks["out"]
        for cycle in sink.void_cycles:
            assert valid_column[cycle] is False


class TestCliStats:
    def test_stats_command_emits_json(self, capsys):
        import json

        from repro.cli import main

        assert main(["stats", "figure1", "--cycles", "50"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["cycles"] == 50
        assert set(data["shell_firings"]) == {"A", "B0", "C"}
        # Figure 1 runs at 4/5 in the steady state.
        assert 0.7 < data["shell_utilization"]["C"] <= 0.85

"""Gate-level relay stations vs the verified spec FSMs."""

import random

import pytest

from repro.lid.variant import ProtocolVariant
from repro.rtl import (
    NetlistSimulator,
    full_relay_station_netlist,
    half_relay_station_netlist,
)
from repro.verify import fsm


def replay_full(seed, cycles=300):
    """Drive netlist and spec with the same environment; compare."""
    rng = random.Random(seed)
    sim = NetlistSimulator(full_relay_station_netlist(width=8))
    spec = fsm.FullRsState()
    k = 1
    for cycle in range(cycles):
        out_tok, stop_out = fsm.full_rs_outputs(spec)
        offer = rng.random() < 0.7
        stop_in = rng.random() < 0.4
        outs = sim.settle({
            "in_data": k if offer else 0,
            "in_valid": int(offer),
            "stop_in": int(stop_in),
        })
        assert outs["out_valid"] == int(out_tok is not None), cycle
        if out_tok is not None:
            assert outs["out_data"] == out_tok, cycle
        assert outs["stop_out"] == int(stop_out), cycle
        accepted = offer and not stop_out
        spec = fsm.full_rs_step(spec, k if offer else None, stop_in)
        sim.tick()
        if accepted:
            k = (k % 100) + 1


def replay_half(seed, variant, cycles=300):
    rng = random.Random(seed)
    sim = NetlistSimulator(half_relay_station_netlist(width=8,
                                                      variant=variant))
    spec = fsm.HalfRsState()
    k = 1
    for cycle in range(cycles):
        offer = rng.random() < 0.7
        stop_in = rng.random() < 0.4
        outs = sim.settle({
            "in_data": k if offer else 0,
            "in_valid": int(offer),
            "stop_in": int(stop_in),
        })
        expected_stop = fsm.half_rs_stop_out(spec, stop_in, variant)
        assert outs["out_valid"] == int(spec.main is not None), cycle
        if spec.main is not None:
            assert outs["out_data"] == spec.main, cycle
        assert outs["stop_out"] == int(expected_stop), cycle
        accepted = offer and not expected_stop
        spec = fsm.half_rs_step(spec, k if offer else None, stop_in,
                                variant)
        sim.tick()
        if accepted:
            k = (k % 100) + 1


class TestFullStationGateLevel:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_trace_conformance(self, seed):
        replay_full(seed)

    def test_register_budget(self):
        # 2 data registers (8b each) + 2 valid bits = the paper's
        # two-register station; the stop is the aux valid bit itself.
        nl = full_relay_station_netlist(width=8)
        assert nl.register_count() == 18

    def test_burst_then_stall_scenario(self):
        sim = NetlistSimulator(full_relay_station_netlist(width=4))
        # Fill: send token 1, then token 2 while stopped.
        sim.step({"in_data": 1, "in_valid": 1, "stop_in": 0})
        outs = sim.settle({"in_data": 2, "in_valid": 1, "stop_in": 1})
        assert outs["out_valid"] == 1 and outs["out_data"] == 1
        sim.tick()
        # Now FULL: stop_out raised, both tokens inside.
        outs = sim.settle({"in_data": 0, "in_valid": 0, "stop_in": 1})
        assert outs["stop_out"] == 1
        assert outs["out_data"] == 1
        sim.tick()
        # Release: 1 leaves, 2 moves up.
        outs = sim.settle({"in_data": 0, "in_valid": 0, "stop_in": 0})
        assert outs["out_data"] == 1 and outs["stop_out"] == 1
        sim.tick()
        outs = sim.settle({"in_data": 0, "in_valid": 0, "stop_in": 0})
        assert outs["out_data"] == 2 and outs["stop_out"] == 0


class TestHalfStationGateLevel:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("variant", list(ProtocolVariant))
    def test_random_trace_conformance(self, seed, variant):
        replay_half(seed, variant)

    def test_register_budget_is_half(self):
        full = full_relay_station_netlist(width=8).register_count()
        half = half_relay_station_netlist(width=8).register_count()
        assert half == 9  # one data register + one valid bit
        assert half < full

    def test_transparent_stop_is_combinational(self):
        sim = NetlistSimulator(half_relay_station_netlist(width=4))
        sim.step({"in_data": 3, "in_valid": 1, "stop_in": 0})
        # Occupied: stop_in must appear on stop_out in the SAME cycle.
        outs = sim.settle({"in_data": 0, "in_valid": 0, "stop_in": 1})
        assert outs["stop_out"] == 1
        outs = sim.settle({"in_data": 0, "in_valid": 0, "stop_in": 0})
        assert outs["stop_out"] == 0

    def test_casu_discards_stop_when_empty(self):
        sim = NetlistSimulator(half_relay_station_netlist(
            width=4, variant=ProtocolVariant.CASU))
        outs = sim.settle({"in_data": 0, "in_valid": 0, "stop_in": 1})
        assert outs["stop_out"] == 0

    def test_carloni_passes_stop_when_empty(self):
        sim = NetlistSimulator(half_relay_station_netlist(
            width=4, variant=ProtocolVariant.CARLONI))
        outs = sim.settle({"in_data": 0, "in_valid": 0, "stop_in": 1})
        assert outs["stop_out"] == 1

"""Unit tests for the protocol-variant decision helpers."""

import pytest

from repro.lid.variant import DEFAULT_VARIANT, ProtocolVariant

CASU = ProtocolVariant.CASU
CARLONI = ProtocolVariant.CARLONI


class TestOutputBlocked:
    def test_casu_ignores_stop_on_void(self):
        assert CASU.output_blocked(stop=True, output_valid=False) is False

    def test_casu_blocks_stop_on_valid(self):
        assert CASU.output_blocked(stop=True, output_valid=True) is True

    def test_casu_no_stop_never_blocks(self):
        assert CASU.output_blocked(stop=False, output_valid=True) is False

    def test_carloni_blocks_regardless_of_validity(self):
        assert CARLONI.output_blocked(stop=True, output_valid=False) is True
        assert CARLONI.output_blocked(stop=True, output_valid=True) is True

    def test_carloni_no_stop(self):
        assert CARLONI.output_blocked(stop=False, output_valid=False) is False


class TestBackPressure:
    def test_casu_discards_stop_on_void_input(self):
        assert CASU.back_pressure(stalled=True, input_valid=False) is False

    def test_casu_protects_valid_input(self):
        assert CASU.back_pressure(stalled=True, input_valid=True) is True

    def test_carloni_spreads_regardless(self):
        assert CARLONI.back_pressure(stalled=True, input_valid=False) is True

    def test_not_stalled_never_pressures(self):
        for variant in (CASU, CARLONI):
            assert variant.back_pressure(False, True) is False
            assert variant.back_pressure(False, False) is False


class TestSlotConsumed:
    @pytest.mark.parametrize("variant", [CASU, CARLONI])
    def test_void_slot_always_replaceable(self, variant):
        assert variant.slot_consumed(slot_valid=False, stop=True) is True
        assert variant.slot_consumed(slot_valid=False, stop=False) is True

    @pytest.mark.parametrize("variant", [CASU, CARLONI])
    def test_valid_slot_frozen_under_stop(self, variant):
        assert variant.slot_consumed(slot_valid=True, stop=True) is False

    @pytest.mark.parametrize("variant", [CASU, CARLONI])
    def test_valid_slot_consumed_without_stop(self, variant):
        assert variant.slot_consumed(slot_valid=True, stop=False) is True


class TestEnumBasics:
    def test_default_is_the_papers_variant(self):
        assert DEFAULT_VARIANT is CASU

    def test_str_roundtrip(self):
        assert ProtocolVariant(str(CASU)) is CASU
        assert ProtocolVariant("carloni") is CARLONI

#!/usr/bin/env python3
"""Layering lint: enforce the import direction of the IR refactor.

The canonical construction path (docs/ir.md) layers the package as::

    repro.graph / repro.ir          (topology + lowered IR: no upward imports)
        -> repro.lid / repro.skeleton / repro.analysis   (backends)
        -> repro.exec / repro.inject                     (execution)
        -> repro.cli                                     (frontend)

Rules enforced here (each rule: *source prefix* must not import any of
the *forbidden prefixes*):

* ``repro.graph`` and ``repro.ir`` must not import ``repro.lid``,
  ``repro.skeleton`` or ``repro.cli`` — lowerings reach backends only
  through the string-keyed :mod:`repro._registry` service locator;
* ``repro.exec`` must not import ``repro.cli`` — workers materialize
  :class:`~repro.exec.graphs.GraphRef` via ``repro.graph.specs``;
* ``repro.serve`` must not import ``repro.cli`` — the campaign service
  replicates CLI semantics through the same engine entry points, never
  by calling back into the argparse frontend;
* ``repro.skeleton.codegen`` consumes only ``repro.ir`` (its input is
  a :class:`~repro.ir.LoweredSystem`) and ``repro.exec.cache`` (the
  optional compile-cache disk layer, duck-typed) besides its own
  package — not ``repro.lid`` (the variant is duck-typed), not the
  rest of ``repro.exec``, and nothing above.

A rule may carve out *allowed* sub-prefixes of a forbidden prefix
(e.g. ``repro.exec.cache`` inside a forbidden ``repro.exec``).

The walk covers *every* ``import``/``from ... import`` statement in the
AST — module level, function level, ``TYPE_CHECKING`` blocks — because
lazy imports are exactly how layering violations sneak in.  Relative
imports are resolved against the module's package before matching.

Exit status 0 when clean; 1 with one line per violation otherwise.
Run from anywhere: ``python tools/check_layering.py``.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Iterator, List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")

#: (source module prefix, forbidden module prefixes, allowed
#: sub-prefixes that override a forbidden match)
RULES: Tuple[Tuple[str, Tuple[str, ...], Tuple[str, ...]], ...] = (
    ("repro.graph", ("repro.lid", "repro.skeleton", "repro.cli"), ()),
    ("repro.ir", ("repro.lid", "repro.skeleton", "repro.cli"), ()),
    ("repro.exec", ("repro.cli",), ()),
    ("repro.serve", ("repro.cli",), ()),
    ("repro.skeleton.codegen",
     ("repro.lid", "repro.exec", "repro.inject", "repro.obs",
      "repro.analysis", "repro.bench", "repro.cli"),
     ("repro.exec.cache",)),
)


def _module_name(path: str) -> str:
    rel = os.path.relpath(path, SRC_ROOT)
    parts = rel[:-len(".py")].split(os.sep)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _resolve_relative(module: str, level: int, target: str) -> str:
    """Absolute module named by ``from <level dots><target> import ...``."""
    parts = module.split(".")
    # A module's imports resolve against its package: repro.graph.model
    # with level=1 means repro.graph; level=2 means repro.
    base = parts[:len(parts) - level]
    return ".".join(base + ([target] if target else []))


def _imports(path: str, module: str) -> Iterator[Tuple[int, str]]:
    """Every module imported anywhere in *path*, with its line number."""
    with open(path, "r", encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=path)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _resolve_relative(module, node.level,
                                         node.module or "")
                yield node.lineno, base
                # "from . import skeleton" imports the submodule too.
                for alias in node.names:
                    yield node.lineno, f"{base}.{alias.name}"
            elif node.module:
                yield node.lineno, node.module
                for alias in node.names:
                    yield node.lineno, f"{node.module}.{alias.name}"


def _matches(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


def check_file(path: str, module: str) -> List[str]:
    """Violations in one module (empty when no rule matches it)."""
    violations: List[str] = []
    active = [(forbidden, allowed)
              for source, forbidden, allowed in RULES
              if _matches(module, source)]
    if not active:
        return violations
    for lineno, imported in _imports(path, module):
        for forbidden, allowed in active:
            if any(_matches(imported, p) for p in allowed):
                continue
            hits = [p for p in forbidden if _matches(imported, p)]
            for prefix in hits:
                rel = os.path.relpath(path, REPO_ROOT)
                violations.append(
                    f"{rel}:{lineno}: {module} imports "
                    f"{imported} (layer {prefix} is above it; "
                    f"use repro._registry)")
    return violations


def check() -> List[str]:
    violations: List[str] = []
    for dirpath, _dirnames, filenames in sorted(os.walk(SRC_ROOT)):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            violations.extend(check_file(path, _module_name(path)))
    return sorted(set(violations))


def main() -> int:
    violations = check()
    for line in violations:
        print(line)
    if violations:
        print(f"{len(violations)} layering violation(s)", file=sys.stderr)
        return 1
    print("layering: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

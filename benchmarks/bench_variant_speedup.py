"""EXP-T6: the paper's protocol refinement vs the original.

Paper: "in our implementation stops on invalid signals are discarded.
The overall computation can get a significant speedup, and higher
locality of management of void/stop signals is ensured."
"""

import pytest

from repro.bench.runner import run_variant_speedup
from repro.graph import pipeline, reconvergent
from repro.lid.variant import ProtocolVariant
from repro.skeleton import SkeletonSim


def _tokens(graph, variant, cycles, sink_patterns=None,
            source_patterns=None):
    sim = SkeletonSim(graph, variant=variant, sink_patterns=sink_patterns,
                      source_patterns=source_patterns,
                      detect_ambiguity=False)
    total = 0
    for _ in range(cycles):
        _fires, accepts = sim.step()
        total += sum(accepts)
    return total


def test_bench_variant_table(benchmark, emit):
    table, rows = benchmark(run_variant_speedup, 200)
    emit("EXP-T6-variant-speedup", table)
    for _label, old, new, _speedup in rows:
        assert new >= old


def test_bench_refined_protocol_simulation(benchmark):
    graph = reconvergent(long_relays=(2, 1), short_relays=1)

    def run():
        return _tokens(graph, ProtocolVariant.CASU, 300,
                       sink_patterns={"out": (False, True, True)},
                       source_patterns={"src": (True, True, False)})

    tokens = benchmark(run)
    assert tokens > 0


def test_bench_original_protocol_simulation(benchmark):
    graph = reconvergent(long_relays=(2, 1), short_relays=1)

    def run():
        return _tokens(graph, ProtocolVariant.CARLONI, 300,
                       sink_patterns={"out": (False, True, True)},
                       source_patterns={"src": (True, True, False)})

    tokens = benchmark(run)
    assert tokens > 0


def test_bench_half_relay_wedge_ablation(benchmark, emit):
    """The extreme case: transparent half relay stations need the
    discard rule; under the original discipline a stalled consumer's
    stop freezes the empty station and the chain wedges."""
    from repro.bench.tables import format_table

    def sweep():
        rows = []
        for stages in (2, 3, 4):
            graph = pipeline(stages)
            for edge in graph.edges:
                if edge.relays:
                    edge.relays = ("half",) * len(edge.relays)
            bp = {"out": (False, False, True, True)}
            old = _tokens(graph, ProtocolVariant.CARLONI, 200,
                          sink_patterns=bp)
            new = _tokens(graph, ProtocolVariant.CASU, 200,
                          sink_patterns=bp)
            rows.append((stages, old, new))
        return rows

    rows = benchmark(sweep)
    table = format_table(
        ("pipeline stages", "original (tokens)", "refined (tokens)"),
        rows,
        title="Half-relay pipelines under back pressure: the original "
              "protocol wedges, the refinement streams")
    emit("EXP-T6-half-relay-ablation", table)
    for _stages, old, new in rows:
        assert new > 10 * max(old, 1)

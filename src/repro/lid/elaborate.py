"""Build a :class:`LidSystem` from a canonical lowering.

This is the lid construction path of the IR layer diagram (docs/ir.md):
``SystemGraph -> lower() -> LoweredSystem -> build_system -> LidSystem``.
The node/edge walk that used to live in ``SystemGraph.elaborate`` now
consumes the lowered tables; it is registered in :mod:`repro._registry`
under ``"lid.build_system"`` so the IR layer can invoke it without
importing this package.
"""

from __future__ import annotations

from typing import Any, Dict

from .system import LidSystem
from .variant import DEFAULT_VARIANT


def build_system(lowered, variant=None, strict: bool = True) -> LidSystem:
    """Elaborate a :class:`~repro.ir.LoweredSystem` into a live system.

    Pearls and streams come fresh from their factories on every call,
    so one lowering elaborates any number of independent systems
    (different variants, repeated fault-injection runs).  Queued shells
    are built natively — this path uses the original node tables, not
    the skeleton view's relay-station desugaring.
    """
    variant = variant or DEFAULT_VARIANT
    unsupported = lowered.unsupported_specs(variant)
    if unsupported:
        from ..errors import StructuralError

        raise StructuralError(
            f"{lowered.name}: relay specs {unsupported} are not "
            f"supported by variant {variant.value!r}")
    system = LidSystem(lowered.name, variant=variant)
    built: Dict[str, Any] = {}
    for node in lowered.nodes:
        if node.kind == "shell":
            if node.queue_depth is not None:
                built[node.name] = system.add_queued_shell(
                    node.name, node.pearl_factory(),
                    queue_depth=node.queue_depth)
            else:
                built[node.name] = system.add_shell(
                    node.name, node.pearl_factory())
        elif node.kind == "source":
            stream = node.stream_factory if node.stream_factory else None
            built[node.name] = system.add_source(node.name, stream=stream)
        else:
            built[node.name] = system.add_sink(
                node.name, stop_script=node.stop_script)
    for edge in lowered.edges:
        system.connect(
            built[edge.src_name],
            built[edge.dst_name],
            producer_port=edge.src_port,
            consumer_port=edge.dst_port,
            relays=list(edge.relays),
        )
    system.finalize(strict=strict)
    return system

"""Property-based tests for the bit-plane (SBFI) skeleton engine.

Two layers are fuzzed: the plane packing helpers in ``repro.ir.planes``
(round-trips for arbitrary plane counts, including batches that do not
fill — or that straddle — a 64-bit machine word), and the engine itself
(random topologies and scripts, locked step by step against the scalar
reference).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ir import pack_planes, plane_words, unpack_planes
from repro.lid.variant import ProtocolVariant
from repro.skeleton import BitplaneSkeletonSim, SkeletonSim

pytestmark = pytest.mark.slow

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

stop_patterns = st.lists(st.booleans(), min_size=1, max_size=5).map(tuple)
source_patterns = st.lists(st.booleans(), min_size=1, max_size=4).map(
    lambda bits: tuple(bits) if any(bits) else (True,))

# Plane counts around the machine-word boundary: sub-word, exactly one
# word, and multi-word batches must all round-trip.
plane_counts = st.one_of(st.integers(1, 80),
                         st.sampled_from([63, 64, 65, 127, 128, 129]))


@given(bits=st.lists(st.booleans(), min_size=1, max_size=200))
@settings(**SETTINGS)
def test_pack_unpack_round_trip(bits):
    word = pack_planes(bits)
    assert unpack_planes(word, len(bits)) == tuple(bits)
    # The packed word never exceeds the batch width.
    assert word < (1 << len(bits))


@given(planes=plane_counts, data=st.data())
@settings(**SETTINGS)
def test_unpack_ignores_bits_beyond_batch(planes, data):
    bits = data.draw(st.lists(st.booleans(), min_size=planes,
                              max_size=planes))
    garbage = data.draw(st.integers(0, (1 << 16) - 1))
    word = pack_planes(bits) | (garbage << planes)
    assert unpack_planes(word, planes) == tuple(bits)


@given(planes=plane_counts, signals=st.integers(0, 12), data=st.data())
@settings(**SETTINGS)
def test_plane_words_transposes_columns(planes, signals, data):
    columns = [
        data.draw(st.lists(st.booleans(), min_size=signals,
                           max_size=signals))
        for _ in range(planes)
    ]
    words = plane_words(columns)
    assert len(words) == signals
    for i in range(signals):
        assert unpack_planes(words[i], planes) \
            == tuple(col[i] for col in columns)


def test_plane_words_rejects_ragged_columns():
    with pytest.raises(ValueError, match="equal length"):
        plane_words([[True, False], [True]])


def test_unpack_rejects_negative_words():
    with pytest.raises(ValueError, match="unsigned"):
        unpack_planes(-1, 4)


def _random_graph(seed, loopy):
    from repro.graph import random_dag
    from repro.graph.random_gen import random_loopy

    if loopy:
        return random_loopy(seed=seed, shells=3)
    return random_dag(seed, shells=4, half_probability=0.3)


@given(seed=st.integers(0, 5_000), loopy=st.booleans(),
       variant=st.sampled_from(list(ProtocolVariant)),
       data=st.data())
@settings(**SETTINGS)
def test_bitsim_lockstep_with_scalar_on_random_topologies(
        seed, loopy, variant, data):
    """Per-cycle fires, accepts and counters equal per plane."""
    graph = _random_graph(seed, loopy)
    sinks = [n.name for n in graph.sinks()]
    sources = [n.name for n in graph.sources()]
    batch = data.draw(st.integers(1, 5))
    sink_maps = [
        {name: data.draw(stop_patterns) for name in sinks}
        for _ in range(batch)
    ]
    source_maps = [
        {name: data.draw(source_patterns) for name in sources}
        for _ in range(batch)
    ]
    bit = BitplaneSkeletonSim(graph, sink_maps,
                              source_patterns=source_maps,
                              variant=variant)
    scalars = [
        SkeletonSim(graph, variant=variant,
                    sink_patterns=sink_maps[p],
                    source_patterns=source_maps[p])
        for p in range(batch)
    ]
    for cycle in range(60):
        fire_words, accept_words = bit.step()
        for p, scalar in enumerate(scalars):
            fires, accepts = scalar.step()
            assert tuple(bool((w >> p) & 1) for w in fire_words) \
                == fires, (cycle, p)
            assert tuple(bool((w >> p) & 1) for w in accept_words) \
                == accepts, (cycle, p)
    for p, scalar in enumerate(scalars):
        assert bit.stop_assertions.value(p) \
            == scalar.stop_assertions_total, p
        assert bit.stops_on_voids.value(p) \
            == scalar.stops_on_voids_total, p
        assert bit.internal_stops_on_voids.value(p) \
            == scalar.internal_stops_on_voids_total, p
        assert bit.ambiguous_cycles[p] == scalar.ambiguous_cycles, p


@given(pattern=stop_patterns)
@settings(**SETTINGS)
def test_wide_plane_batch_accept_counts(pattern):
    """A batch wider than one machine word stays exact per plane."""
    from repro.graph import pipeline

    graph = pipeline(3, relays_per_hop=2)
    cycles = 100
    batch = 70  # straddles the 64-bit word boundary
    bit = BitplaneSkeletonSim(graph, [{"out": pattern}] * batch)
    bit.run(cycles)
    scalar = SkeletonSim(graph, sink_patterns={"out": pattern})
    accepted = 0
    for _ in range(cycles):
        _f, acc = scalar.step()
        accepted += sum(acc)
    for p in range(batch):
        assert bit.sink_accepted[0].value(p) == accepted, p

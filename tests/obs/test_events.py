"""Unit tests for the structured event stream."""

import pytest

from repro.obs import CATEGORIES, Event, EventStream


class TestEvent:
    def test_to_dict_is_flat(self):
        event = Event(7, "token", "fire", {"block": "A"})
        assert event.to_dict() == {
            "cycle": 7, "category": "token", "name": "fire", "block": "A",
        }

    def test_round_trip(self):
        event = Event(3, "relay", "occupancy",
                      {"relay": "r0", "occupancy": 2})
        assert Event.from_dict(event.to_dict()) == event

    def test_equality_includes_fields(self):
        a = Event(1, "stall", "assert", {"channel": "c"})
        b = Event(1, "stall", "assert", {"channel": "d"})
        assert a != b


class TestEventStream:
    def test_emit_and_iterate(self):
        stream = EventStream()
        stream.emit("token", "fire", 0, block="A")
        stream.emit("token", "fire", 1, block="B")
        assert len(stream) == 2
        assert [ev.cycle for ev in stream] == [0, 1]
        assert stream.emitted == 2
        assert stream.dropped == 0

    def test_ring_drops_oldest(self):
        stream = EventStream(capacity=3)
        for cycle in range(5):
            stream.emit("token", "fire", cycle)
        assert len(stream) == 3
        assert stream.emitted == 5
        assert stream.dropped == 2
        assert [ev.cycle for ev in stream] == [2, 3, 4]

    def test_unbounded_when_capacity_none(self):
        stream = EventStream(capacity=None)
        for cycle in range(100):
            stream.emit("token", "fire", cycle)
        assert len(stream) == 100
        assert stream.dropped == 0

    def test_select_and_counts(self):
        stream = EventStream()
        stream.emit("token", "fire", 0, block="A")
        stream.emit("stall", "assert", 0, channel="c")
        stream.emit("token", "accept", 1, sink="out")
        assert stream.counts_by_category() == {"token": 2, "stall": 1}
        assert len(stream.select("token")) == 2
        assert len(stream.select("token", "fire")) == 1
        assert stream.select("monitor") == []

    def test_cycle_span(self):
        stream = EventStream()
        assert stream.cycle_span() == (0, 0)
        stream.emit("run", "start", 4)
        stream.emit("run", "end", 9)
        assert stream.cycle_span() == (4, 9)

    def test_clear_resets_counters(self):
        stream = EventStream(capacity=2)
        for cycle in range(4):
            stream.emit("token", "fire", cycle)
        stream.clear()
        assert len(stream) == 0
        assert stream.emitted == 0
        assert stream.dropped == 0

    def test_builtin_categories_documented(self):
        for category in ("token", "stall", "relay", "monitor",
                         "fixpoint", "phase", "run"):
            assert category in CATEGORIES

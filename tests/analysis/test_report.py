"""Tests for the combined analysis report."""

import pytest

from repro.analysis import analyze, classify
from repro.graph import composed, figure1, figure2, pipeline, tree


class TestClassify:
    def test_tree(self):
        assert classify(tree(2)) == "tree / pipeline (feed-forward)"

    def test_pipeline(self):
        assert classify(pipeline(3)) == "tree / pipeline (feed-forward)"

    def test_reconvergent(self):
        assert classify(figure1()) == "reconvergent feed-forward"

    def test_feedback(self):
        assert classify(figure2()) == "feedback"

    def test_composed(self):
        assert classify(composed()) == \
            "feed-forward combination of self-interacting loops"


class TestAnalyze:
    def test_figure1_report(self):
        report = analyze(figure1())
        assert report.formulas_agree
        assert report.shells == 3
        assert report.relays_full == 3
        assert str(report.simulated_throughput) == "4/5"
        assert report.period == 5

    def test_figure2_report(self):
        report = analyze(figure2())
        assert report.formulas_agree
        assert len(report.loops) == 1
        assert report.critical_cycle

    def test_render_mentions_key_facts(self):
        text = analyze(figure1()).render()
        assert "4/5" in text
        assert "i=1" in text and "m=5" in text
        assert "live" in text

    def test_render_disagreement_would_be_flagged(self):
        report = analyze(pipeline(2))
        assert "[agree]" in report.render()

    def test_variant_named_in_report(self):
        from repro.lid.variant import ProtocolVariant

        report = analyze(pipeline(2), variant=ProtocolVariant.CARLONI)
        assert report.variant == "carloni"

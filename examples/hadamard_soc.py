#!/usr/bin/env python3
"""An 8-point Walsh–Hadamard transform network, latency insensitive.

Twelve butterfly modules in three stages, with every inter-stage wire
pipelined by relay stations — the classic "butterflies scattered across
the die" scenario.  The network has massive reconvergence (every output
depends on every input through 8 distinct paths), which makes it a
strong stress test for the protocol: any skipped, duplicated or
reordered token anywhere corrupts the transform visibly.

We check three things:

1. the streamed outputs equal the zero-latency reference (latency
   equivalence at scale);
2. the transform the network computes is a genuine Hadamard matrix
   (entries ±1, ``W @ W.T = 8·I``);
3. balanced relay insertion keeps throughput at 1 even though every
   path crosses three pipelined stages.

Run:  python examples/hadamard_soc.py
"""

import numpy as np

from repro.graph import butterfly_network
from repro.lid.reference import is_prefix
from repro.lid.token import Token
from repro.skeleton import system_throughput

N = 8


def build_wht(relays_per_hop: int = 1):
    return butterfly_network(lanes=N, relays_per_hop=relays_per_hop)


def main() -> None:
    graph = build_wht(relays_per_hop=1)
    print(f"network: {len(graph.shells())} butterflies, "
          f"{graph.relay_count()} relay stations, "
          f"{len(graph.edges)} channels")

    rate = system_throughput(graph)
    print(f"static throughput: {rate} (balanced butterfly stages "
          f"reconverge with zero imbalance)")
    assert str(rate) == "1"

    # Drive each input lane with its own recognizable stream.
    for lane in range(N):
        graph.nodes[f"in{lane}"].stream_factory = (
            lambda lane=lane: iter(
                Token((lane + 1) * 100 + t) for t in range(500))
        )

    system = graph.elaborate()
    cycles = 60
    system.run(cycles)
    reference = system.reference_outputs(cycles)

    delivered = 0
    for lane in range(N):
        sink = system.sinks[f"out{lane}"]
        assert is_prefix(sink.payloads, reference[f"out{lane}"]), lane
        delivered += len(sink.payloads)
    print(f"latency equivalence holds on all {N} outputs "
          f"({delivered} tokens checked)")

    # Recover the transform matrix W from the reference semantics:
    # time step t mixes in[lane][t] = (lane+1)*100 + t across lanes, so
    # feeding impulses instead isolates the columns.  We rebuild W by
    # linearity from two probe vectors per column.
    W = np.zeros((N, N), dtype=int)
    for col in range(N):
        probe = build_wht(relays_per_hop=1)
        for lane in range(N):
            value = 1 if lane == col else 0
            probe.nodes[f"in{lane}"].stream_factory = (
                lambda value=value: iter(
                    Token(value) for _ in range(60))
            )
        probe_system = probe.elaborate()
        ref = probe_system.reference_outputs(20)
        for row in range(N):
            # Skip the initial-register artifacts: take a settled value.
            W[row, col] = ref[f"out{row}"][-1]

    print("\nrecovered transform matrix W:")
    print(W)
    assert set(np.unique(W)) == {-1, 1}
    assert np.array_equal(W @ W.T, N * np.eye(N, dtype=int))
    print(f"\nW has +/-1 entries and W @ W.T = {N}*I: the network "
          f"computes a true 8-point Hadamard transform, token-perfectly,"
          f"\nacross {graph.relay_count()} pipelined wire segments.")


if __name__ == "__main__":
    main()

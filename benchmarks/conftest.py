"""Shared helpers for the benchmark suite.

Every bench regenerates one paper artifact (DESIGN.md §5).  Tables are
written to ``benchmarks/results/`` so a ``pytest benchmarks/
--benchmark-only`` run leaves the full reproduction on disk, and also
echoed to the terminal when ``-s`` is passed.  Each table gets a
machine-readable ``BENCH_<id>.json`` sibling (bench id, params, wall
time, counters, git rev) that CI uploads as an artifact.
"""

import os
from time import perf_counter

import pytest

from repro.bench.runner import experiment_record, write_record

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def emit():
    """Write (and echo) a regenerated table plus its JSON record."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _emit(experiment_id: str, table: str, *, rows=None,
              wall_seconds=None, params=None, counters=None) -> None:
        path = os.path.join(RESULTS_DIR, f"{experiment_id}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(table + "\n")
        record = experiment_record(
            experiment_id, wall_seconds=wall_seconds, rows=rows,
            params=params, counters=counters)
        write_record(RESULTS_DIR, record)
        print(f"\n[{experiment_id}]\n{table}")

    return _emit


@pytest.fixture()
def timed():
    """Measure a callable, returning ``(result, wall_seconds)``."""

    def _timed(fn, *args, **kwargs):
        started = perf_counter()
        result = fn(*args, **kwargs)
        return result, perf_counter() - started

    return _timed

"""Figure-style data series: the curves behind the paper's formulas.

Each generator returns a :class:`Series` of (x, y) points computed with
the exact analyses (and cross-checked against skeleton simulation in
the tests), plus CSV rendering for external plotting:

* :func:`loop_series` — T vs relay count for a fixed-size loop
  (the S/(S+R) hyperbola);
* :func:`imbalance_series` — T vs branch imbalance for a reconvergent
  pair (the (m−i)/m decay);
* :func:`transient_series` — transient length vs pipeline depth (drain
  time of the initial voids);
* :func:`stop_activity_series` — stop assertions vs back-pressure duty
  cycle, per protocol variant (the EXP-T7 locality curve).
"""

from __future__ import annotations

import dataclasses
import io
from fractions import Fraction
from typing import List, Tuple

from ..graph import pipeline, reconvergent, ring
from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant


@dataclasses.dataclass
class Series:
    """A named (x, y) data series with axis labels."""

    name: str
    x_label: str
    y_label: str
    points: List[Tuple[object, object]]

    def xs(self) -> List[object]:
        return [x for x, _y in self.points]

    def ys(self) -> List[object]:
        return [y for _x, y in self.points]

    def to_csv(self) -> str:
        out = io.StringIO()
        out.write(f"{self.x_label},{self.y_label}\n")
        for x, y in self.points:
            out.write(f"{x},{y}\n")
        return out.getvalue()

    def __len__(self) -> int:
        return len(self.points)


def _loop_point(args) -> Fraction:
    """One loop-series point; module-level so workers can pickle it."""
    shells, total = args
    from ..skeleton import system_throughput

    per_arc = [total // shells + (1 if i < total % shells else 0)
               for i in range(shells)]
    return system_throughput(ring(shells, relays_per_arc=per_arc))


def _imbalance_point(extra: int) -> Fraction:
    from ..skeleton import system_throughput

    return system_throughput(
        reconvergent(long_relays=(1 + extra, 1), short_relays=1))


def _transient_point(args) -> int:
    stages, relays = args
    from ..skeleton import transient_and_period

    transient, _period = transient_and_period(
        pipeline(stages, relays_per_hop=relays))
    return transient


def loop_series(shells: int = 2, max_relays: int = 8,
                *, jobs: int = 1) -> Series:
    """T = S/(S+R) measured by skeleton simulation, R = shells..max.

    Points are independent simulations; ``jobs > 1`` fans them across
    worker processes with an identical resulting series.
    """
    from ..exec import map_deterministic

    totals = list(range(shells, max_relays + 1))
    ys = map_deterministic(
        _loop_point, [(shells, total) for total in totals], jobs=jobs)
    return Series(
        name=f"loop S={shells}",
        x_label="relay stations R",
        y_label="throughput",
        points=list(zip(totals, ys)),
    )


def imbalance_series(max_extra: int = 5, *, jobs: int = 1) -> Series:
    """T = (m-i)/m measured as the long branch grows by i stations."""
    from ..exec import map_deterministic

    extras = list(range(max_extra + 1))
    ys = map_deterministic(_imbalance_point, extras, jobs=jobs)
    return Series(
        name="reconvergent imbalance",
        x_label="extra relay stations on the long branch",
        y_label="throughput",
        points=list(zip(extras, ys)),
    )


def transient_series(max_relays_per_hop: int = 5,
                     stages: int = 3, *, jobs: int = 1) -> Series:
    """Measured transient vs per-hop relay depth for a pipeline."""
    from ..exec import map_deterministic

    depths = list(range(1, max_relays_per_hop + 1))
    ys = map_deterministic(
        _transient_point, [(stages, relays) for relays in depths],
        jobs=jobs)
    return Series(
        name=f"pipeline transient ({stages} stages)",
        x_label="relay stations per hop",
        y_label="transient cycles",
        points=list(zip(depths, ys)),
    )


def stop_activity_series(
    variant: ProtocolVariant = DEFAULT_VARIANT,
    duty_steps: int = 4,
    cycles: int = 200,
) -> Series:
    """Stop assertions per cycle vs sink stop duty cycle.

    All duty points share one topology, so the whole curve is a single
    batched run through :func:`repro.skeleton.backend.select` — one
    instance per duty level.
    """
    from ..skeleton import select

    graph = reconvergent(long_relays=(2, 1), short_relays=1)
    patterns = [
        {"out": tuple(i < k for i in range(duty_steps))}
        for k in range(duty_steps + 1)
    ]
    handle = select(graph, variant, sink_patterns=patterns,
                    detect_ambiguity=False)
    handle.run_cycles(cycles)
    totals = handle.stop_assertion_counts()
    points: List[Tuple[object, object]] = [
        (Fraction(k, duty_steps), Fraction(int(totals[k]), cycles))
        for k in range(duty_steps + 1)
    ]
    return Series(
        name=f"stop activity ({variant})",
        x_label="sink stop duty cycle",
        y_label="stop assertions per cycle",
        points=points,
    )


def backpressure_series(
    duty_steps: int = 8,
    stages: int = 4,
    variant: ProtocolVariant = DEFAULT_VARIANT,
) -> Series:
    """Delivered throughput vs sink stop duty cycle, exact fractions.

    The design-space question the paper answers with skeleton sweeps:
    how much back pressure can the system absorb before the delivery
    rate drops?  One vectorized run covers every duty level.
    """
    from .throughput import throughput_sweep

    graph = pipeline(stages, relays_per_hop=1)
    patterns = [
        {"out": tuple(i < k for i in range(duty_steps))}
        for k in range(duty_steps)
    ]
    sweeps = throughput_sweep(graph, sink_patterns=patterns,
                              variant=variant)
    points: List[Tuple[object, object]] = [
        (Fraction(k, duty_steps), rates["out"])
        for k, rates in enumerate(sweeps)
    ]
    return Series(
        name=f"back-pressure sweep ({stages}-stage pipeline)",
        x_label="sink stop duty cycle",
        y_label="delivered throughput",
        points=points,
    )


#: Registry used by the CLI's ``series`` command.
SERIES_GENERATORS: dict = {
    "loop": loop_series,
    "imbalance": imbalance_series,
    "transient": transient_series,
    "stop-activity": stop_activity_series,
    "backpressure": backpressure_series,
}

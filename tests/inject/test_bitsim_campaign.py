"""Bit-parallel fault campaigns: byte-identity and verdict coverage.

The bitsim backend's contract with ``skeleton_campaign`` is stronger
than verdict agreement: the rendered :class:`CampaignReport` JSON must
be **byte-identical** to the scalar backend's (schema v2 keeps backend
provenance in the opt-in execution header, outside the default
payload), including when the fault list spills over one 64-bit machine
word and the engine stitches several plane groups, each with its own
golden plane 0.

The suite also pins that every one of the five verdict classes is
reachable through the bit-parallel path on a single topology.
"""

import json

import pytest

from repro.graph import figure2, pipeline
from repro.inject import FaultSpec, skeleton_campaign
from repro.lid.variant import ProtocolVariant

#: Hand-picked witnesses on pipeline(4, relays_per_hop=2); boundary
#: channels are "S3->out#11" (sink) and "src->S0#1" (source).
WITNESSES = [
    # Strict CASU: the wedged column's stops land on voids -> detected.
    FaultSpec("stop-stuck-1", "S3->out#11", 8, 0),
    # Forces the script's existing value -> masked.
    FaultSpec("stop-stuck-0", "S3->out#11", 8, 0),
    # Corrupted slot consumed at an accepting cycle -> silent-corruption.
    FaultSpec("payload", "S3->out#11", 30, 1),
    # Starves the pipeline for 8 presented slots -> timeout.
    FaultSpec("valid-stuck-0", "src->S0#1", 10, 8),
]


def _campaign(backend, *, strict=False, **overrides):
    kwargs = dict(cycles=100, faults=WITNESSES, backend=backend,
                  strict=strict, variant=ProtocolVariant.CASU)
    kwargs.update(overrides)
    return skeleton_campaign(pipeline(4, relays_per_hop=2), **kwargs)


class TestFiveVerdicts:
    """All five classes, through bit planes, equal to scalar."""

    @pytest.mark.parametrize("strict", [False, True],
                             ids=["lenient", "strict"])
    def test_verdicts_match_scalar(self, strict):
        scalar = _campaign("scalar", strict=strict)
        bitsim = _campaign("bitsim", strict=strict)
        assert bitsim.backend == "bitsim"
        assert [(r.spec.label(), r.verdict) for r in bitsim.results] \
            == [(r.spec.label(), r.verdict) for r in scalar.results]

    def test_all_five_classes_witnessed(self):
        lenient = {r.spec.label(): r.verdict
                   for r in _campaign("bitsim").results}
        strict = {r.spec.label(): r.verdict
                  for r in _campaign("bitsim", strict=True).results}
        stuck1 = "stop-stuck-1@S3->out#11@c8stuck"
        assert lenient[stuck1] == "deadlock"
        # Strict promotes the wedge: its excess stops-on-voids trip the
        # stop-shape rule before the deadlock classification is reached.
        assert strict[stuck1] == "detected"
        assert lenient["stop-stuck-0@S3->out#11@c8stuck"] == "masked"
        assert lenient["payload@S3->out#11@c30"] == "silent-corruption"
        assert lenient["valid-stuck-0@src->S0#1@c10+8"] == "timeout"
        assert set(lenient.values()) | set(strict.values()) == {
            "detected", "silent-corruption", "masked", "deadlock",
            "timeout"}

    def test_strict_is_noop_for_validity_blind_variant(self):
        """CARLONI has no stop-on-void invariant to violate."""
        lenient = _campaign("bitsim", variant=ProtocolVariant.CARLONI)
        strict = _campaign("bitsim", strict=True,
                           variant=ProtocolVariant.CARLONI)
        assert [r.verdict for r in lenient.results] \
            == [r.verdict for r in strict.results]
        assert "detected" not in {r.verdict for r in strict.results}


class TestByteIdentity:
    """to_json() bytes equal across backends, chunkings and reruns."""

    @pytest.mark.parametrize("strict", [False, True],
                             ids=["lenient", "strict"])
    def test_report_bytes_equal_scalar(self, strict):
        assert _campaign("bitsim", strict=strict).to_json() \
            == _campaign("scalar", strict=strict).to_json()

    def test_chunked_campaign_bytes_equal_all_backends(self):
        """>63 faults forces multiple bit-plane groups (plane_chunks);
        per-group golden columns replay identical dynamics, so the
        stitched report is byte-identical to the one-batch backends."""
        kwargs = dict(cycles=100, exhaustive=True, window=(0, 40),
                      classes=("stop", "void", "payload"))
        reports = {
            backend: skeleton_campaign(figure2(), backend=backend,
                                       **kwargs)
            for backend in ("scalar", "vectorized", "bitsim")
        }
        n_run = len(reports["bitsim"].results)
        assert n_run > 63, "need a fault list wider than one word"
        assert reports["bitsim"].to_json() == reports["scalar"].to_json()
        assert reports["bitsim"].to_json() \
            == reports["vectorized"].to_json()

    def test_double_run_is_deterministic(self):
        first = _campaign("bitsim", strict=True).to_json()
        second = _campaign("bitsim", strict=True).to_json()
        assert first == second

    def test_schema_v2_payload_shape(self):
        report = _campaign("bitsim", strict=True)
        payload = json.loads(report.to_json())
        assert payload["schema"] == "repro-inject-campaign/v2"
        assert payload["strict"] is True
        assert "backend" not in payload
        audited = report.to_payload(execution=True)
        assert audited["execution"]["backend"] == "bitsim"

"""Component base class for the cycle-accurate kernel.

A component is a synchronous block with:

* **registers** — internal state updated only on the clock edge;
* **Moore outputs** — signals driven from registers, constant within a
  cycle (published once at the start of the settle phase);
* **Mealy outputs** — signals computed combinationally from the
  component's inputs during the settle phase (in this package only the
  backward ``stop`` wires are Mealy, and they are monotone).

The scheduler drives the protocol::

    component.reset()                  # once, before cycle 0
    # each cycle:
    component.publish()                # Moore outputs from current state
    while not fixpoint:
        component.settle()             # Mealy outputs from inputs
    component.tick()                   # sample inputs, update registers
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import Simulator


class Component:
    """Base class for all simulatable blocks.

    Subclasses override :meth:`reset`, :meth:`publish`, :meth:`settle`
    and :meth:`tick`.  A purely Moore component (no combinational
    outputs) only needs :meth:`reset`, :meth:`publish` and :meth:`tick`.
    """

    def __init__(self, name: str):
        self.name = name
        self._sim: "Simulator | None" = None

    # -- lifecycle hooks -------------------------------------------------

    def attached(self, sim: "Simulator") -> None:
        """Called when the component is added to a simulator."""
        self._sim = sim

    def reset(self) -> None:
        """Initialize registers to their reset values."""

    def publish(self) -> None:
        """Drive Moore outputs from the current register state.

        Called exactly once per cycle, before any :meth:`settle` pass.
        """

    def settle(self) -> None:
        """Drive Mealy (combinational) outputs from current input values.

        May be called several times per cycle until the kernel reaches a
        fixpoint; implementations must be idempotent and, for backward
        stop logic, monotone (asserting a stop never deasserts another).
        """

    def tick(self) -> None:
        """Clock edge: sample settled inputs and update registers."""

    # -- conveniences ----------------------------------------------------

    @property
    def cycle(self) -> int:
        """Current cycle number (0 before the first tick)."""
        if self._sim is None:
            return 0
        return self._sim.cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"

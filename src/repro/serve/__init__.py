"""Campaign service: HTTP/JSON front end over the campaign engines.

``repro.serve`` turns the toolkit into a long-lived, cache-first
execution service (``repro-lid serve``): clients POST campaign
manifests; a scheduler funnels each request through the shared
content-addressed :class:`~repro.exec.ResultCache`, collapses
concurrent identical requests onto a single golden run
(:class:`AsyncSingleFlight`), applies token-bucket rate limiting and
bounded-queue backpressure, and shards cold work across a persistent
worker pool.  Served responses are byte-identical to the offline CLI
(`docs/serving.md` states the exact contract) and served runs land in
the same run ledger with the same content-addressed ids.

Layering: ``repro.serve`` sits above the engines and ``repro.exec`` /
``repro.obs`` and must never import ``repro.cli`` (enforced by
``tools/check_layering.py``); the CLI imports *this* package.
"""

from .app import (
    CampaignServer,
    ServerHandle,
    run_server,
    start_in_thread,
)
from .coalesce import AsyncSingleFlight
from .dispatch import (
    DispatchError,
    ServeOutcome,
    execute_manifest,
    manifest_fingerprint,
)
from .manifest import Manifest, ManifestError
from .ratelimit import RateLimiter, TokenBucket
from .scheduler import (
    DEFAULT_QUEUE_DEPTH,
    CampaignScheduler,
    ServeRejected,
    ServeStats,
)

__all__ = [
    "AsyncSingleFlight",
    "CampaignScheduler",
    "CampaignServer",
    "DEFAULT_QUEUE_DEPTH",
    "DispatchError",
    "Manifest",
    "ManifestError",
    "RateLimiter",
    "ServeOutcome",
    "ServeRejected",
    "ServeStats",
    "ServerHandle",
    "TokenBucket",
    "execute_manifest",
    "manifest_fingerprint",
    "run_server",
    "start_in_thread",
]

"""EXP-B1: bit-parallel fault campaigns beat the scalar engine >=10x.

The bit-plane backend packs one fault experiment per bit of a Python
integer and advances every experiment with the same handful of bitwise
operations per signal per cycle.  On the paper's feedback example
(figure 2) an exhaustive boundary campaign is ~160 columns; the scalar
backend pays one full simulation per column while bitsim pays one
word-level run per 63-experiment plane group.  Both backends classify
the identical precomputed fault list (fault-list generation is not
part of the claim), and the contract is twofold — both halves are
asserted, not just reported:

* the bitsim report is **byte-identical** to the scalar report (the
  whole point of the differential harness — speed without a second
  source of truth), and
* the campaign completes at least 10x faster than the scalar backend.

Emits ``BENCH_EXP-B1-bitsim-campaign.json`` with both wall times and
the measured speedup.
"""

from time import perf_counter

from repro.bench.tables import format_table
from repro.graph import figure2
from repro.inject import generate_faults, skeleton_campaign
from repro.inject.campaign import (_SINK_KINDS, _SOURCE_KINDS,
                                   endpoint_scripts)
from repro.lid.variant import ProtocolVariant

CYCLES = 400
WINDOW = (0, 40)
CLASSES = ("stop", "void", "payload")
MIN_FAULTS = 48
MIN_SPEEDUP = 10.0


def _boundary_faults():
    """Every expressible boundary fault in the window — the workload
    the bit-plane backend accelerates (interior wire faults are
    skipped identically by both backends, which would only dilute the
    measurement with shared bookkeeping)."""
    graph = figure2()
    sinks, sources = endpoint_scripts(graph, ProtocolVariant.CASU)
    faults = generate_faults(graph, classes=CLASSES, exhaustive=True,
                             window=WINDOW, cycles=CYCLES, seed=0)
    return [
        spec for spec in faults
        if (spec.kind in _SINK_KINDS and spec.target in sinks)
        or (spec.kind in _SOURCE_KINDS and spec.target in sources)
        or (spec.kind == "payload" and spec.target in sinks)
    ]


def _campaign(backend, faults):
    return skeleton_campaign(
        figure2(), variant=ProtocolVariant.CASU, cycles=CYCLES,
        strict=True, faults=faults, backend=backend)


def test_bench_bitsim_campaign(benchmark, emit):
    faults = _boundary_faults()
    # Warm both paths once so the timed runs compare steady state.
    _campaign("scalar", faults)
    _campaign("bitsim", faults)

    started = perf_counter()
    scalar = _campaign("scalar", faults)
    scalar_wall = perf_counter() - started
    started = perf_counter()
    bitsim = _campaign("bitsim", faults)
    bitsim_wall = perf_counter() - started
    benchmark.pedantic(_campaign, args=("bitsim", faults),
                       rounds=1, iterations=1)

    n_faults = len(bitsim.results)
    assert n_faults >= MIN_FAULTS, (
        f"exhaustive window produced only {n_faults} expressible "
        f"faults (expected >= {MIN_FAULTS})")
    assert bitsim.to_json() == scalar.to_json(), (
        "bitsim campaign report differs from the scalar report: the "
        "byte-identity contract regressed")

    speedup = scalar_wall / bitsim_wall if bitsim_wall else float("inf")
    assert speedup >= MIN_SPEEDUP, (
        f"bitsim only reached {speedup:.1f}x over the scalar backend "
        f"on {n_faults} faults (expected >= {MIN_SPEEDUP:.0f}x)")

    counts = bitsim.counts()
    rows = [
        ("scalar", f"{scalar_wall:.3f}", "1.0x"),
        ("bitsim", f"{bitsim_wall:.3f}", f"{speedup:.1f}x"),
    ]
    table = format_table(
        ("backend", "wall [s]", "speedup"),
        rows,
        title=f"EXP-B1: exhaustive boundary campaign on figure2 "
              f"({n_faults} faults, {CYCLES} cycles, strict Casu) — "
              f"bit-plane packing vs one scalar run per fault",
    )
    emit("EXP-B1-bitsim-campaign", table, rows=rows,
         wall_seconds=scalar_wall + bitsim_wall,
         params={"cycles": CYCLES, "window": list(WINDOW),
                 "classes": list(CLASSES), "topology": "figure2",
                 "strict": True, "exhaustive": True},
         counters={"faults": n_faults,
                   "scalar_wall_ms": round(scalar_wall * 1e3, 1),
                   "bitsim_wall_ms": round(bitsim_wall * 1e3, 1),
                   "speedup_x": round(speedup, 1),
                   **{f"verdict_{k}": v for k, v in counts.items()
                      if v}})

"""Mixed-level simulation: netlist stations inside live systems."""

import pytest

from repro import LidSystem, pearls
from repro.errors import ElaborationError
from repro.lid.reference import is_prefix
from repro.rtl import NetlistRelayStation, transplant_netlist_station


def mixed_system(kind="full", stop_script=None):
    system = LidSystem("mixed")
    src = system.add_source("src")
    a = system.add_shell("A", pearls.Identity(initial=1))
    b = system.add_shell("B", pearls.Identity(initial=2))
    sink = system.add_sink("out", stop_script=stop_script)
    system.connect(src, a)
    system.connect(a, b, relays=[kind])
    system.connect(b, sink)
    (name,) = system.relays
    station = transplant_netlist_station(system, name)
    return system, sink, station


class TestNetlistStation:
    def test_wrong_kind_rejected(self):
        with pytest.raises(ElaborationError):
            NetlistRelayStation("x", kind="quarter")

    def test_register_metadata(self):
        assert NetlistRelayStation("x", kind="full").registers == 2
        assert NetlistRelayStation("x2", kind="half").registers == 1

    def test_payload_width_enforced(self):
        station = NetlistRelayStation("x", kind="full", width=4)
        from repro.lid.token import Token

        with pytest.raises(ElaborationError, match="does not fit"):
            station._encode(Token(99))

    def test_non_integer_payload_rejected(self):
        station = NetlistRelayStation("x", kind="full", width=8)
        from repro.lid.token import Token

        with pytest.raises(ElaborationError):
            station._encode(Token("text"))


class TestMixedSimulation:
    @pytest.mark.parametrize("kind", ["full", "half"])
    def test_streams_like_behavioural(self, kind):
        system, sink, _station = mixed_system(kind)
        system.run(30)
        ref = system.reference_outputs(30)["out"]
        assert is_prefix(sink.payloads, ref)
        assert len(sink.payloads) > 25

    @pytest.mark.parametrize("kind", ["full", "half"])
    def test_backpressure_through_gates(self, kind):
        system, sink, station = mixed_system(
            kind, stop_script=lambda c: (c // 2) % 2 == 0)
        system.run(60)
        ref = system.reference_outputs(60)["out"]
        assert is_prefix(sink.payloads, ref)

    def test_occupancy_visible_from_gates(self):
        system, _sink, station = mixed_system(
            "full", stop_script=lambda c: True)
        system.run(8)
        assert station.occupancy == 2  # both gate-level slots filled

    def test_matches_behavioural_payloads_exactly(self):
        mixed, mixed_sink, _ = mixed_system("full",
                                            stop_script=lambda c: c % 3 == 0)
        mixed.run(50)

        behavioural = LidSystem("plain")
        src = behavioural.add_source("src")
        a = behavioural.add_shell("A", pearls.Identity(initial=1))
        b = behavioural.add_shell("B", pearls.Identity(initial=2))
        sink = behavioural.add_sink("out",
                                    stop_script=lambda c: c % 3 == 0)
        behavioural.connect(src, a)
        behavioural.connect(a, b, relays=1)
        behavioural.connect(b, sink)
        behavioural.run(50)

        assert mixed_sink.payloads == sink.payloads
        assert [c for c, _v in mixed_sink.received] == \
            [c for c, _v in sink.received]

    def test_transplant_rejects_non_station(self):
        system, _sink, _station = mixed_system("full")
        with pytest.raises(KeyError):
            transplant_netlist_station(system, "nonexistent")

"""Two-phase synchronous simulation scheduler.

The kernel models single-clock RTL with a *settle / edge* discipline:

1. **Publish** — every component drives its Moore outputs (register
   contents).  These are constant for the rest of the cycle.
2. **Settle** — components' combinational (Mealy) functions are evaluated
   repeatedly until no signal changes.  In a latency-insensitive design
   the only Mealy nets are the backward ``stop`` wires, whose equations
   are monotone; the fixpoint therefore exists and is reached in at most
   ``len(components)`` passes.  Failure to converge within the bound
   raises :class:`~repro.errors.ConvergenceError`.
3. **Edge** — every component samples the settled values and updates its
   registers simultaneously.

This discipline is semantics-preserving for the VHDL/event-driven
simulation the paper used, because all the paper's blocks are synchronous
FSMs on one clock (see DESIGN.md §2).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ConvergenceError
from .component import Component
from .signal import Signal


class Simulator:
    """Owns signals and components and advances time cycle by cycle."""

    def __init__(self, name: str = "sim"):
        self.name = name
        self.cycle = 0
        self._components: List[Component] = []
        self._signals: List[Signal] = []
        self._signal_index: Dict[str, Signal] = {}
        self._cycle_hooks: List[Callable[["Simulator"], None]] = []
        self._was_reset = False
        self.settle_passes_total = 0

    # -- construction ----------------------------------------------------

    def add_component(self, component: Component) -> Component:
        """Register a component; returns it for chaining."""
        self._components.append(component)
        component.attached(self)
        return component

    def signal(self, name: str, default=None, sticky: bool = False) -> Signal:
        """Create (or fetch, if it exists) a named signal."""
        existing = self._signal_index.get(name)
        if existing is not None:
            return existing
        sig = Signal(name, default=default, sticky=sticky)
        self._signals.append(sig)
        self._signal_index[name] = sig
        return sig

    def find_signal(self, name: str) -> Optional[Signal]:
        """Look up a signal by exact name, or ``None``."""
        return self._signal_index.get(name)

    def add_cycle_hook(self, hook: Callable[["Simulator"], None]) -> None:
        """Run *hook(sim)* after the settle phase of every cycle.

        Hooks see fully settled signal values before the clock edge; this
        is where traces and runtime protocol monitors sample.
        """
        self._cycle_hooks.append(hook)

    # -- execution -------------------------------------------------------

    def reset(self) -> None:
        """Reset all components; must be called before :meth:`step`."""
        self.cycle = 0
        for comp in self._components:
            comp.reset()
        self._was_reset = True

    def _settle(self) -> None:
        for sig in self._signals:
            sig.reset_for_settle()
        for comp in self._components:
            comp.publish()
        # Publishing counts as the initial assignment; clear change flags
        # so the fixpoint loop measures only Mealy activity.
        for sig in self._signals:
            sig.consume_changed()
        max_passes = len(self._components) + 2
        for _ in range(max_passes):
            for comp in self._components:
                comp.settle()
            self.settle_passes_total += 1
            if not any(sig.consume_changed() for sig in self._signals):
                return
        raise ConvergenceError(
            f"settle phase did not converge within {max_passes} passes at "
            f"cycle {self.cycle}; a combinational function is not monotone "
            f"or a combinational loop escaped the structural lint"
        )

    def step(self, cycles: int = 1) -> None:
        """Advance the simulation by *cycles* clock cycles."""
        if not self._was_reset:
            self.reset()
        for _ in range(cycles):
            self._settle()
            for hook in self._cycle_hooks:
                hook(self)
            for comp in self._components:
                comp.tick()
            self.cycle += 1

    def run_until(
        self,
        predicate: Callable[["Simulator"], bool],
        max_cycles: int = 100_000,
    ) -> int:
        """Step until *predicate(sim)* is true after a settle phase.

        Returns the cycle number at which the predicate first held.
        Raises ``TimeoutError`` if *max_cycles* elapse first.
        """
        if not self._was_reset:
            self.reset()
        for _ in range(max_cycles):
            self._settle()
            for hook in self._cycle_hooks:
                hook(self)
            hit = predicate(self)
            for comp in self._components:
                comp.tick()
            self.cycle += 1
            if hit:
                return self.cycle - 1
        raise TimeoutError(
            f"predicate not satisfied within {max_cycles} cycles of {self.name}"
        )

    # -- introspection ---------------------------------------------------

    @property
    def components(self) -> List[Component]:
        return list(self._components)

    @property
    def signals(self) -> List[Signal]:
        return list(self._signals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator({self.name!r}, cycle={self.cycle}, "
            f"components={len(self._components)}, signals={len(self._signals)})"
        )

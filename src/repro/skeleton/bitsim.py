"""Bit-parallel (SBFI-style) batch skeleton simulation.

The valid/stop skeleton is a pure boolean transition system, so a
whole fault campaign fits the classic single-bit-fault-injection trick:
pack one independent experiment per **bit plane** of a Python integer
and advance every plane with one bitwise AND/OR/NOT expression per
signal per cycle.  An EXP-R1-style campaign of N boundary faults turns
from N scalar simulations into ~N/64 engine runs (``repro.exec.
plane_chunks`` keeps batches word-sized; the engine itself accepts
arbitrary plane counts — Python integers are arbitrary-width).

Layout (see :mod:`repro.ir.planes` for the packing helpers):

* every hop valid, hop stop and protocol register is **one int** whose
  bit *p* is that signal's value in experiment plane *p*;
* plane 0 is conventionally the golden (fault-free) run of a campaign
  batch; verdicts are extracted per plane against it;
* per-plane counters (stop assertions, stops-on-voids, fires, accepts)
  are **vertical counters** — bit-sliced binary counters whose slice
  *i* holds bit *i* of every plane's count, so one ripple-carry ``add``
  per word keeps exact per-plane totals without a per-plane loop.

Bit-exactness against :class:`~repro.skeleton.sim.SkeletonSim` is the
contract: per plane, every update below evaluates the same monotone
equations in the same order as the scalar engine (a bitwise
Gauss-Seidel pass is the scalar pass applied to all planes at once, and
chaotic iteration of a monotone system from the same start converges to
the same least/greatest fixpoint), so registers, wires and counters
match cycle by cycle.  The three-way differential suite in
``tests/skeleton/test_backend_conformance.py`` enforces it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..graph.model import SystemGraph
from ..ir import (
    RS_FULL as _RS_FULL,
    RS_HALF as _RS_HALF,
    RS_HALF_REG as _RS_HALF_REG,
    SHELL as _SHELL,
    SRC as _SRC,
    LoweredSystem,
    lower,
    pack_planes,
)
from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant
from .sim import SkeletonResult

PatternMap = Mapping[str, Sequence[bool]]

__all__ = ["BitplaneSkeletonSim", "_VerticalCounter"]


class _VerticalCounter:
    """Bit-sliced per-plane counter (SBFI "vertical counter").

    ``slices[i]`` holds bit *i* of every plane's count.  ``add(word)``
    increments exactly the planes whose bit is set in *word* via a
    ripple carry across the slices — amortized O(1) integer ops per
    add (the classic binary-counter argument), never a per-plane loop.
    """

    __slots__ = ("slices",)

    def __init__(self):
        self.slices: List[int] = []

    def add(self, word: int) -> None:
        slices = self.slices
        for i in range(len(slices)):
            if not word:
                return
            carry = slices[i] & word
            slices[i] ^= word
            word = carry
        if word:
            slices.append(word)

    def value(self, plane: int) -> int:
        total = 0
        for i, word in enumerate(self.slices):
            if (word >> plane) & 1:
                total += 1 << i
        return total

    def values(self, planes: int) -> List[int]:
        return [self.value(p) for p in range(planes)]


class BitplaneSkeletonSim:
    """Simulate *batch* skeleton instances packed into bit planes.

    Same constructor surface as :class:`~repro.skeleton.vectorized.
    BatchSkeletonSim`: one sink/source script mapping per plane, both
    protocol variants, every relay-station kind, least/greatest
    fixpoints and ambiguity detection.
    """

    def __init__(
        self,
        graph: "SystemGraph | LoweredSystem",
        sink_patterns: Optional[Sequence[PatternMap]] = None,
        *,
        source_patterns: Optional[Sequence[PatternMap]] = None,
        batch: Optional[int] = None,
        variant: ProtocolVariant = DEFAULT_VARIANT,
        fixpoint: str = "least",
        detect_ambiguity: bool = True,
        telemetry=None,
    ):
        if fixpoint not in ("least", "greatest"):
            raise ValueError("fixpoint must be 'least' or 'greatest'")
        widths = {len(seq) for seq in (sink_patterns, source_patterns)
                  if seq is not None}
        if batch is not None:
            widths.add(batch)
        if len(widths) > 1:
            raise ValueError(f"inconsistent batch widths: {sorted(widths)}")
        if not widths:
            raise ValueError("need sink_patterns, source_patterns or batch")
        self.batch = widths.pop()
        if self.batch == 0:
            raise ValueError("need at least one instance")

        self.variant = variant
        self.fixpoint = fixpoint
        self.detect_ambiguity = detect_ambiguity
        self.telemetry = telemetry
        self._metrics_on = (telemetry is not None
                            and telemetry.metrics is not None)
        self._events_on = (telemetry is not None
                           and telemetry.events is not None)

        lowered = graph if isinstance(graph, LoweredSystem) else lower(graph)
        self.lowered = lowered.skeleton_view()
        if not self.lowered.single_clock:
            from ..errors import StructuralError

            raise StructuralError(
                f"{self.lowered.name}: the bitsim engine models "
                f"single-clock systems only (capability flags: "
                f"single_clock={self.lowered.single_clock}, "
                f"has_bridges={self.lowered.has_bridges}); use the "
                f"scalar or vectorized engine for GALS workloads")
        self.graph = self.lowered.graph
        self.shell_names = list(self.lowered.shell_names)
        self.source_names = list(self.lowered.source_names)
        self.sink_names = list(self.lowered.sink_names)
        self._build_tables()
        self._build_scripts(source_patterns, sink_patterns)
        self.reset()

    # -- construction -------------------------------------------------------

    def _build_tables(self) -> None:
        low = self.lowered
        self._n_hops = len(low.hops)
        self._n_shells = len(self.shell_names)
        self._is_casu = self.variant.discards_void_stops
        self._guard = self._n_hops + self._n_shells + 2
        self._may_be_ambiguous = low.may_be_ambiguous
        self._mask = (1 << self.batch) - 1

        self.shell_in_hops = [list(x) for x in low.shell_in_hops]
        self.src_out_hops = [list(x) for x in low.source_out_hops]
        self.sink_in_hop = list(low.sink_in_hop)
        rs_kinds = [r.tag for r in low.relays]
        self._n_rs = len(rs_kinds)
        rs_in = list(low.relay_in_hop)
        rs_out = list(low.relay_out_hop)

        # Same flat dispatch tables as the scalar engine.
        self._src_hops = [(h.index, h.producer_id) for h in low.hops
                          if h.producer_kind == _SRC]
        self._shellreg_hops = [(h.index, h.producer_reg) for h in low.hops
                               if h.producer_kind == _SHELL]
        self._rs_hops = [(h.index, h.producer_id) for h in low.hops
                         if h.producer_kind not in (_SRC, _SHELL)]
        self._full_fixed_hops = [
            (rs_id, rs_in[rs_id]) for rs_id, kind in enumerate(rs_kinds)
            if kind == _RS_FULL]
        self._halfreg_fixed_hops = [
            (rs_id, rs_in[rs_id]) for rs_id, kind in enumerate(rs_kinds)
            if kind == _RS_HALF_REG]
        self._sink_fixed_hops = [
            (sink_id, hop_in)
            for sink_id, hop_in in enumerate(self.sink_in_hop)
            if hop_in is not None]
        self._half_inout = [
            (rs_id, rs_in[rs_id], rs_out[rs_id])
            for rs_id, kind in enumerate(rs_kinds) if kind == _RS_HALF]
        self._rs_inout = [
            (rs_id, kind, rs_in[rs_id], rs_out[rs_id])
            for rs_id, kind in enumerate(rs_kinds)]
        self._shell_out_pairs = [
            [(hop_out, low.hops[hop_out].producer_reg)
             for hop_out in outs]
            for outs in low.shell_out_hops]
        self._n_regs = len(low.shell_regs)
        self._internal_hops = [
            h.index for h in low.hops
            if h.consumer_kind in (_SHELL, _RS_HALF)]

    def _build_scripts(self, source_patterns, sink_patterns) -> None:
        b = self.batch

        def _patterns(names, per_instance, default):
            """Per name: one script tuple per plane (validated)."""
            known = set(names)
            instances = ([(m or {}) for m in per_instance]
                         if per_instance is not None else [{}] * b)
            for mapping in instances:
                for name in mapping:
                    if name not in known:
                        raise ValueError(f"unknown script target {name!r}")
            table = []
            for name in names:
                planes = []
                for mapping in instances:
                    pattern = mapping.get(name)
                    if pattern is None:
                        planes.append(default)
                    else:
                        # Truthiness is all packing ever reads, so a
                        # plain tuple() keeps campaign-sized batches
                        # from paying a per-element bool() pass.
                        pattern = tuple(pattern)
                        if not pattern:
                            raise ValueError("empty script pattern")
                        planes.append(pattern)
                table.append(planes)
            return table

        self._src_pats = _patterns(self.source_names, source_patterns,
                                   (True,))
        self._sink_pats = _patterns(self.sink_names, sink_patterns,
                                    (False,))

        # Constant-source fast path: a length-1 pattern never advances
        # its phase, so the presented word is a compile-time constant.
        self._src_const: List[Optional[int]] = []
        for planes in self._src_pats:
            if all(len(p) == 1 for p in planes):
                self._src_const.append(
                    pack_planes([p[0] for p in planes]))
            else:
                self._src_const.append(None)

        # Sink stops are cycle-indexed: expand each sink's per-plane
        # schedule to one plane word per cycle over the lcm span (the
        # vectorized engine's gather, done once).  Fall back to a
        # per-cycle pack when the lcm is unreasonable.
        self._sink_sched: List[Optional[List[int]]] = []
        for planes in self._sink_pats:
            span = math.lcm(*(len(p) for p in planes))
            if span <= 4096:
                self._sink_sched.append([
                    pack_planes([p[c % len(p)] for p in planes])
                    for c in range(span)])
            else:
                self._sink_sched.append(None)

        # Per-plane sink phase modulus (mirrors scalar sink_phase_mod).
        self._sink_mod = [
            math.lcm(*(len(planes[p]) for planes in self._sink_pats))
            if self._sink_pats else 1
            for p in range(b)]

    # -- state --------------------------------------------------------------

    def reset(self) -> None:
        b = self.batch
        self.cycle = 0
        # Shell out registers start VALID (paper footnote 1); relay
        # stations start VOID — identical to the scalar engine.
        self.shell_reg = [self._mask] * self._n_regs
        self.rs_main = [0] * self._n_rs
        self.rs_aux = [0] * self._n_rs
        self.rs_stop_reg = [0] * self._n_rs
        self.src_phase = [[0] * b for _ in self.source_names]
        self.ambiguous_cycles: List[List[int]] = [[] for _ in range(b)]
        self._fire_history: List[List[int]] = []
        self._accept_history: List[List[int]] = []
        self.shell_fired = [_VerticalCounter() for _ in self.shell_names]
        self.sink_accepted = [_VerticalCounter() for _ in self.sink_names]
        self.stop_assertions = _VerticalCounter()
        self.stops_on_voids = _VerticalCounter()
        self.internal_stops_on_voids = _VerticalCounter()
        # Telemetry accumulators (updated only when metrics are on).
        self.hop_stall_cycles = [_VerticalCounter()
                                 for _ in range(self._n_hops)]
        self.rs_occupancy_counts = [
            [_VerticalCounter() for _level in range(3)]
            for _ in range(self._n_rs)]

    def state_keys(self) -> List[Tuple]:
        """One hashable snapshot per plane (mirrors scalar state())."""
        words = (self.shell_reg + self.rs_main + self.rs_aux
                 + self.rs_stop_reg)
        cycle = self.cycle
        keys = []
        for p in range(self.batch):
            packed = 0
            for word in words:
                packed = (packed << 1) | ((word >> p) & 1)
            keys.append((
                packed,
                tuple(phase[p] for phase in self.src_phase),
                cycle % self._sink_mod[p],
            ))
        return keys

    # -- per-cycle evaluation ------------------------------------------------

    def _presented_words(self) -> List[int]:
        presented = []
        for j, planes in enumerate(self._src_pats):
            const = self._src_const[j]
            if const is not None:
                presented.append(const)
                continue
            phases = self.src_phase[j]
            word = 0
            for p, pattern in enumerate(planes):
                if pattern[phases[p] % len(pattern)]:
                    word |= 1 << p
            presented.append(word)
        return presented

    def _sink_stop_word(self, sink_id: int) -> int:
        sched = self._sink_sched[sink_id]
        if sched is not None:
            return sched[self.cycle % len(sched)]
        cycle = self.cycle
        word = 0
        for p, pattern in enumerate(self._sink_pats[sink_id]):
            if pattern[cycle % len(pattern)]:
                word |= 1 << p
        return word

    def _forward_valids(self, presented: List[int]) -> List[int]:
        valid = [0] * self._n_hops
        for hop_id, src_id in self._src_hops:
            valid[hop_id] = presented[src_id]
        shell_reg = self.shell_reg
        for hop_id, reg in self._shellreg_hops:
            valid[hop_id] = shell_reg[reg]
        rs_main = self.rs_main
        for hop_id, rs_id in self._rs_hops:
            valid[hop_id] = rs_main[rs_id]
        return valid

    def _shell_fire_word(self, shell_id: int, valid: List[int],
                         stop: List[int]) -> int:
        word = self._mask
        for hop_in in self.shell_in_hops[shell_id]:
            word &= valid[hop_in]
        if not word:
            return 0
        shell_reg = self.shell_reg
        if self._is_casu:
            for hop_out, reg in self._shell_out_pairs[shell_id]:
                word &= ~(stop[hop_out] & shell_reg[reg])
        else:
            for hop_out, _reg in self._shell_out_pairs[shell_id]:
                word &= ~stop[hop_out]
        return word

    def _settle_stops(self, valid: List[int], mode: str) -> List[int]:
        """Per-plane fixpoint of the monotone stop equations.

        The scalar engine's in-place (Gauss-Seidel) pass, on plane
        words: every plane sees exactly the scalar update sequence, so
        each converges to the same least/greatest fixpoint within the
        same guard; planes that converge early are at a fixpoint and
        extra passes leave them unchanged.
        """
        mask = self._mask
        stop = [mask if mode == "greatest" else 0] * self._n_hops
        # Registered / scripted stops are fixed regardless of mode.
        rs_stop_reg = self.rs_stop_reg
        rs_main = self.rs_main
        for rs_id, hop_in in self._full_fixed_hops:
            stop[hop_in] = rs_stop_reg[rs_id]
        for rs_id, hop_in in self._halfreg_fixed_hops:
            stop[hop_in] = rs_main[rs_id]
        for sink_id, hop_in in self._sink_fixed_hops:
            stop[hop_in] = self._sink_stop_word(sink_id)

        changed = True
        guard = self._guard
        is_casu = self._is_casu
        half_inout = self._half_inout
        shell_in_hops = self.shell_in_hops
        shell_fire = self._shell_fire_word
        n_shells = self._n_shells
        while changed and guard > 0:
            changed = False
            guard -= 1
            # Transparent half relay stations.
            for rs_id, hop_in, hop_out in half_inout:
                if is_casu:
                    value = stop[hop_out] & rs_main[rs_id]
                else:
                    value = stop[hop_out]
                if stop[hop_in] != value:
                    stop[hop_in] = value
                    changed = True
            # Shells: stall propagates from outputs to all inputs.
            for shell_id in range(n_shells):
                stalled = shell_fire(shell_id, valid, stop) ^ mask
                for hop_in in shell_in_hops[shell_id]:
                    value = stalled & valid[hop_in] if is_casu else stalled
                    if stop[hop_in] != value:
                        stop[hop_in] = value
                        changed = True
        return stop

    def _apply_edge(self, valid: List[int], stop: List[int],
                    fires: List[int]) -> None:
        """Register updates (mirror SkeletonSim._apply_edge per plane)."""
        shell_reg = self.shell_reg
        for shell_id, fire in enumerate(fires):
            for hop_out, reg in self._shell_out_pairs[shell_id]:
                # fired -> True; else held = reg and stop.
                shell_reg[reg] = fire | (shell_reg[reg] & stop[hop_out])

        mask = self._mask
        rs_main = self.rs_main
        rs_aux = self.rs_aux
        rs_stop_reg = self.rs_stop_reg
        for rs_id, kind, hop_in, hop_out in self._rs_inout:
            stop_in = stop[hop_out]
            incoming = valid[hop_in]
            main = rs_main[rs_id]
            # slot_consumed(main, stop_in) per plane, both variants.
            consumed = (~main | ~stop_in) & mask
            not_consumed = consumed ^ mask
            if kind == _RS_FULL:
                aux = rs_aux[rs_id]
                stop_reg = rs_stop_reg[rs_id]
                accepted = incoming & ~stop_reg
                queued = aux | accepted
                rs_main[rs_id] = (consumed & queued) | (not_consumed & main)
                rs_aux[rs_id] = not_consumed & queued
                rs_stop_reg[rs_id] = not_consumed & (
                    stop_reg | (accepted & ~aux))
            else:  # half variants share the single-register update
                accepted = incoming & ~stop[hop_in]
                rs_main[rs_id] = ((consumed & accepted)
                                  | (not_consumed & main))

    def step(self) -> Tuple[List[int], List[int]]:
        """Advance all planes one cycle; returns (fire, accept) words."""
        presented = self._presented_words()
        valid = self._forward_valids(presented)
        stop = self._settle_stops(valid, self.fixpoint)
        if self.detect_ambiguity and self._may_be_ambiguous:
            other = "greatest" if self.fixpoint == "least" else "least"
            alt = self._settle_stops(valid, other)
            differs = 0
            for a, s in zip(alt, stop):
                differs |= a ^ s
            if differs:
                cycle = self.cycle
                for p in range(self.batch):
                    if (differs >> p) & 1:
                        self.ambiguous_cycles[p].append(cycle)
                if self._events_on:
                    self.telemetry.events.emit(
                        "fixpoint", "ambiguous", cycle,
                        instances=[p for p in range(self.batch)
                                   if (differs >> p) & 1])

        collect = self._metrics_on
        mask = self._mask
        stop_ctr = self.stop_assertions
        void_ctr = self.stops_on_voids
        stall_ctrs = self.hop_stall_cycles
        for hop_id, word in enumerate(stop):
            if word:
                stop_ctr.add(word)
                void_ctr.add(word & ~valid[hop_id] & mask)
            if collect:
                stall_ctrs[hop_id].add(word)
        internal_ctr = self.internal_stops_on_voids
        for hop_id in self._internal_hops:
            word = stop[hop_id] & ~valid[hop_id] & mask
            if word:
                internal_ctr.add(word)

        fires = [self._shell_fire_word(i, valid, stop)
                 for i in range(self._n_shells)]
        accepts = [
            (valid[hop] & ~stop[hop] & mask) if hop is not None else 0
            for hop in self.sink_in_hop
        ]

        self._apply_edge(valid, stop, fires)

        if collect:
            for rs_id in range(self._n_rs):
                main = self.rs_main[rs_id]
                aux = self.rs_aux[rs_id]
                counters = self.rs_occupancy_counts[rs_id]
                counters[0].add(~(main | aux) & mask)
                counters[1].add(main ^ aux)
                counters[2].add(main & aux)
        if self._events_on:
            # Aggregate (batch-wide) per-cycle counts, as the
            # vectorized engine does.
            events = self.telemetry.events
            events.emit("token", "fire", self.cycle,
                        count=sum(w.bit_count() for w in fires),
                        instances=self.batch)
            accepted_total = sum(w.bit_count() for w in accepts)
            if accepted_total:
                events.emit("token", "accept", self.cycle,
                            count=accepted_total)
            stalled_total = sum(w.bit_count() for w in stop)
            if stalled_total:
                events.emit("stall", "assert", self.cycle,
                            count=stalled_total)

        # Source phase advance: a presented-but-held token freezes the
        # phase (the environment must re-present it next cycle).
        for src_id, planes in enumerate(self._src_pats):
            if self._src_const[src_id] is not None:
                continue  # length-1 patterns never move their phase
            held = 0
            for hop in self.src_out_hops[src_id]:
                held |= stop[hop]
            advance = ~(presented[src_id] & held) & mask
            phases = self.src_phase[src_id]
            for p in range(self.batch):
                if (advance >> p) & 1:
                    phases[p] = (phases[p] + 1) % len(planes[p])

        for ctr, word in zip(self.shell_fired, fires):
            ctr.add(word)
        for ctr, word in zip(self.sink_accepted, accepts):
            ctr.add(word)
        self._fire_history.append(fires)
        self._accept_history.append(accepts)
        self.cycle += 1
        return fires, accepts

    def run(self, cycles: int) -> None:
        """Step all planes a fixed number of cycles."""
        for _ in range(cycles):
            self.step()

    def run_to_period(self, max_cycles: int = 10_000) \
            -> List[SkeletonResult]:
        """Simulate until every plane is periodic; one result each."""
        b = self.batch
        seen: List[Dict[Tuple, int]] = [dict() for _ in range(b)]
        transient: List[Optional[int]] = [None] * b
        period: List[Optional[int]] = [None] * b
        for p, key in enumerate(self.state_keys()):
            seen[p][key] = 0
        pending = set(range(b))
        for _ in range(max_cycles):
            if not pending:
                break
            self.step()
            keys = self.state_keys()
            for p in list(pending):
                key = keys[p]
                hit = seen[p].get(key)
                if hit is not None:
                    transient[p] = hit
                    period[p] = self.cycle - hit
                    pending.discard(p)
                else:
                    seen[p][key] = self.cycle
        if pending:
            raise TimeoutError(
                f"{self.graph.name}: instances {sorted(pending)} not "
                f"periodic within {max_cycles} cycles "
                f"(state space larger than expected)")

        results = []
        for p in range(b):
            lo, hi = transient[p], transient[p] + period[p]
            shell_fires = {
                name: sum((self._fire_history[c][j] >> p) & 1
                          for c in range(lo, hi))
                for j, name in enumerate(self.shell_names)
            }
            sink_accepts = {
                name: sum((self._accept_history[c][j] >> p) & 1
                          for c in range(lo, hi))
                for j, name in enumerate(self.sink_names)
            }
            deadlocked = bool(self.shell_names) and all(
                count == 0 for count in shell_fires.values())
            ambiguous = self.ambiguous_cycles[p]
            results.append(SkeletonResult(
                transient=transient[p],
                period=period[p],
                shell_fires=shell_fires,
                sink_accepts=sink_accepts,
                cycles_run=self.cycle,
                deadlocked=deadlocked,
                potential_deadlock_cycle=(ambiguous[0] if ambiguous
                                          else None),
            ))
        return results

    # -- per-plane extraction ------------------------------------------------

    def fire_count(self, shell: int, plane: int) -> int:
        return self.shell_fired[shell].value(plane)

    def accept_count(self, sink: int, plane: int) -> int:
        return self.sink_accepted[sink].value(plane)

    def accept_history(self):
        """(cycles, n_sinks, batch) boolean acceptance history."""
        import numpy as np

        history = np.zeros(
            (len(self._accept_history), len(self.sink_names), self.batch),
            dtype=bool)
        for c, words in enumerate(self._accept_history):
            for j, word in enumerate(words):
                if word:
                    for p in range(self.batch):
                        history[c, j, p] = (word >> p) & 1
        return history

    # -- telemetry ----------------------------------------------------------

    def metrics_snapshot(self, instance: int = 0) -> Dict[str, Dict]:
        """Canonical metrics snapshot for one plane.

        Bit-identical to :meth:`SkeletonSim.metrics_snapshot` with the
        same scripts (the conformance suite asserts this).
        """
        from ..obs import MetricsRegistry

        if not 0 <= instance < self.batch:
            raise IndexError(
                f"instance {instance} out of range for batch "
                f"{self.batch}")
        registry = MetricsRegistry()
        cycles = self.cycle
        registry.counter("skeleton/cycles").inc(cycles)
        for i, name in enumerate(self.shell_names):
            fires = self.shell_fired[i].value(instance)
            registry.counter(f"skeleton/shell/{name}/fires").inc(fires)
            registry.gauge(f"skeleton/shell/{name}/fire_rate").set(
                fires / cycles if cycles else 0.0)
        for i, name in enumerate(self.sink_names):
            registry.counter(f"skeleton/sink/{name}/accepts").inc(
                self.sink_accepted[i].value(instance))
        registry.counter("skeleton/stop/assertions").inc(
            self.stop_assertions.value(instance))
        registry.counter("skeleton/stop/on_voids").inc(
            self.stops_on_voids.value(instance))
        registry.counter("skeleton/stop/on_voids_internal").inc(
            self.internal_stops_on_voids.value(instance))
        registry.counter("skeleton/fixpoint/ambiguous").inc(
            len(self.ambiguous_cycles[instance]))
        if self._metrics_on:
            hop_names = self.lowered.hop_names
            for hop_id in range(self._n_hops):
                registry.counter(
                    f"skeleton/channel/{hop_names[hop_id]}"
                    f"/stall_cycles").inc(
                        self.hop_stall_cycles[hop_id].value(instance))
            rs_names = self.lowered.relay_names
            for rs_id in range(self._n_rs):
                hist = registry.histogram(
                    f"skeleton/relay/{rs_names[rs_id]}/occupancy")
                for level in range(3):
                    count = self.rs_occupancy_counts[rs_id][level] \
                        .value(instance)
                    if count:
                        hist.observe(level, count)
        return registry.snapshot()

"""Unit tests for the metrics registry and the profiler."""

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Profiler,
    flatten_snapshot,
)


class TestInstruments:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge(self):
        gauge = Gauge()
        gauge.set(0.5)
        gauge.set(0.25)
        assert gauge.value == 0.25

    def test_histogram_exact_buckets(self):
        hist = Histogram()
        hist.observe(0, count=3)
        hist.observe(2)
        hist.observe(2)
        assert hist.total == 5
        assert hist.mean() == (0 * 3 + 2 * 2) / 5


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_is_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.counter("b/count").inc(2)
        registry.gauge("a/rate").set(0.5)
        registry.histogram("c/occ").observe(1, count=3)
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)
        assert snapshot["b/count"] == {"type": "counter", "value": 2}
        assert snapshot["a/rate"] == {"type": "gauge", "value": 0.5}
        assert snapshot["c/occ"]["type"] == "histogram"
        assert snapshot["c/occ"]["counts"] == {"1": 3}
        assert snapshot["c/occ"]["total"] == 3

    def test_merge_snapshot_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(7)
        registry.histogram("h").observe(0, count=2)
        other = MetricsRegistry()
        other.merge_snapshot(registry.snapshot())
        assert other.snapshot() == registry.snapshot()

    def test_clear(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        registry.clear()
        assert registry.snapshot() == {}

    def test_flatten_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(2)
        registry.gauge("g").set(1.5)
        flat = flatten_snapshot(registry.snapshot())
        assert flat["n"] == 2
        assert flat["g"] == 1.5


class TestProfiler:
    def test_phase_accumulation(self):
        profiler = Profiler()
        profiler.add("settle", 0.25, calls=10)
        profiler.add("settle", 0.75, calls=10)
        profiler.add("edge", 1.0, calls=20)
        assert profiler.total_seconds == pytest.approx(2.0)
        phases = dict((name, (calls, seconds))
                      for name, calls, seconds in profiler.phases())
        assert phases["settle"] == (20, pytest.approx(1.0))

    def test_context_manager_measures(self):
        profiler = Profiler()
        with profiler.phase("work"):
            pass
        (name, calls, seconds), = profiler.phases()
        assert name == "work"
        assert calls == 1
        assert seconds >= 0.0

    def test_report_shape(self):
        profiler = Profiler()
        profiler.add("edge", 0.5, calls=100)
        profiler.note_cycles(100)
        profiler.note_events(400)
        report = profiler.report()
        assert report["cycles"] == 100
        assert report["events"] == 400
        assert report["phases"]["edge"]["share"] == pytest.approx(1.0)
        assert "edge" in profiler.format_table()

"""Tiny table formatter shared by the benchmark harness and the CLI."""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


def format_table(
    header: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)

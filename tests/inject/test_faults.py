"""Fault vocabulary: specs, class resolution, deterministic lists."""

import pytest

from repro.errors import InjectionError
from repro.graph import figure2, ring
from repro.inject import (
    ALL_KINDS,
    FAULT_CLASSES,
    FaultSpec,
    STATE_KINDS,
    WIRE_KINDS,
    enumerate_targets,
    generate_faults,
    resolve_classes,
)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(InjectionError, match="unknown fault kind"):
            FaultSpec("gamma-ray", "c", 0)

    def test_negative_cycle_rejected(self):
        with pytest.raises(InjectionError, match="cycle must be >= 0"):
            FaultSpec("stop-glitch", "c", -1)

    def test_negative_duration_rejected(self):
        with pytest.raises(InjectionError, match="duration must be >= 0"):
            FaultSpec("stop-glitch", "c", 0, duration=-1)

    def test_phase_split(self):
        for kind in WIRE_KINDS:
            assert FaultSpec(kind, "c", 0).phase == "wire"
        for kind in STATE_KINDS:
            assert FaultSpec(kind, "c", 0).phase == "state"

    def test_stuck_active_to_end(self):
        spec = FaultSpec("stop-stuck-1", "c", 5, duration=0)
        assert spec.stuck
        assert not spec.active(4)
        assert spec.active(5) and spec.active(10_000)

    def test_windowed_active(self):
        spec = FaultSpec("stop-glitch", "c", 5, duration=2)
        assert [spec.active(c) for c in range(4, 8)] == [
            False, True, True, False]

    def test_label_stable(self):
        assert FaultSpec("stop-glitch", "a->b#1", 7).label() == \
            "stop-glitch@a->b#1@c7"
        assert FaultSpec("stop-stuck-1", "a->b#1", 7, 0).label() == \
            "stop-stuck-1@a->b#1@c7stuck"
        assert FaultSpec("payload", "a->b#1", 7, 3).label() == \
            "payload@a->b#1@c7+3"


class TestResolveClasses:
    def test_class_expansion(self):
        assert resolve_classes(["stop"]) == FAULT_CLASSES["stop"]

    def test_concrete_kind_passthrough(self):
        assert resolve_classes(["payload"]) == ("payload",)
        assert resolve_classes(["relay-drop"]) == ("relay-drop",)

    def test_dedup_preserves_order(self):
        kinds = resolve_classes(["stop", "stop-glitch", "void"])
        assert kinds == FAULT_CLASSES["stop"] + FAULT_CLASSES["void"]

    def test_unknown_class_rejected(self):
        with pytest.raises(InjectionError, match="unknown fault class"):
            resolve_classes(["cosmic"])

    def test_every_class_maps_to_known_kinds(self):
        for kinds in FAULT_CLASSES.values():
            assert set(kinds) <= set(ALL_KINDS)


class TestEnumerateTargets:
    def test_figure2_targets(self):
        targets = enumerate_targets(figure2())
        assert targets.shells == ("S0", "S1")
        assert len(targets.channels) == 5
        # Both ring stations are full (two-register) stations.
        assert targets.full_relays == targets.relays

    def test_half_relays_excluded_from_duplicate(self):
        graph = ring(2, relays_per_arc=[["full"], ["half"]])
        targets = enumerate_targets(graph)
        assert set(targets.full_relays) < set(targets.relays)


class TestGenerateFaults:
    def test_sampled_list_deterministic(self):
        a = generate_faults(figure2(), cycles=50, samples=16, seed=3)
        b = generate_faults(figure2(), cycles=50, samples=16, seed=3)
        assert a == b
        assert len(a) == 16

    def test_seed_changes_sample(self):
        a = generate_faults(figure2(), cycles=50, samples=16, seed=3)
        b = generate_faults(figure2(), cycles=50, samples=16, seed=4)
        assert a != b

    def test_exhaustive_window(self):
        faults = generate_faults(
            figure2(), classes=("stop-glitch",), cycles=50,
            window=(10, 12), exhaustive=True)
        # 5 channels x 2 cycles, stable order.
        assert len(faults) == 10
        assert all(f.kind == "stop-glitch" for f in faults)
        assert {f.cycle for f in faults} == {10, 11}

    def test_stuck_kinds_get_zero_duration(self):
        faults = generate_faults(
            figure2(), classes=("stop", "delayed-stop"), cycles=20,
            exhaustive=True)
        for fault in faults:
            if "stuck" in fault.kind or fault.kind == "delayed-stop":
                assert fault.duration == 0
            else:
                assert fault.duration == 1

    def test_bad_window_rejected(self):
        with pytest.raises(InjectionError, match="bad cycle window"):
            generate_faults(figure2(), cycles=50, window=(40, 60))

    def test_empty_classes_rejected(self):
        with pytest.raises(InjectionError, match="no fault kinds"):
            generate_faults(figure2(), classes=())

    def test_sample_larger_than_universe_returns_universe(self):
        faults = generate_faults(
            figure2(), classes=("stop-glitch",), cycles=50,
            window=(0, 2), samples=10_000)
        assert len(faults) == 10

"""Tests for the netlist substrate."""

import pytest

from repro.errors import ElaborationError
from repro.rtl import Netlist, NetlistSimulator


def half_adder():
    nl = Netlist("half_adder")
    a = nl.add_input("a")
    b = nl.add_input("b")
    nl.add_output("s")
    nl.add_output("c")
    nl.cell("XOR2", "u_x", a=a, b=b, y="s")
    nl.cell("AND2", "u_a", a=a, b=b, y="c")
    return nl


class TestConstruction:
    def test_unknown_cell_type(self):
        nl = Netlist("x")
        with pytest.raises(ElaborationError):
            nl.cell("NAND9", "u", a="a", y="y")

    def test_duplicate_cell_name(self):
        nl = half_adder()
        with pytest.raises(ElaborationError):
            nl.cell("NOT", "u_x", a="a", y="z")

    def test_two_drivers_rejected(self):
        nl = Netlist("x")
        nl.add_input("a")
        nl.cell("NOT", "u1", a="a", y="y")
        with pytest.raises(ElaborationError, match="two drivers"):
            nl.cell("BUF", "u2", a="a", y="y")

    def test_width_conflict(self):
        nl = Netlist("x")
        nl.net("d", width=8)
        with pytest.raises(ElaborationError, match="redeclared"):
            nl.net("d", width=4)

    def test_undriven_net_caught(self):
        nl = Netlist("x")
        nl.net("floating")
        with pytest.raises(ElaborationError, match="undriven"):
            nl.validate()

    def test_wrong_pins_rejected(self):
        nl = Netlist("x")
        nl.add_input("a")
        with pytest.raises(ElaborationError):
            nl.cell("NOT", "u", a="a")  # missing y

    def test_register_counts_bits(self):
        nl = Netlist("x")
        nl.add_input("d")
        nl.g_reg("d", "q8", width=8)
        nl.add_input("d1")
        nl.g_reg("d1", "q1")
        assert nl.register_count() == 9

    def test_gate_count_excludes_registers(self):
        nl = half_adder()
        assert nl.gate_count() == 2
        assert nl.register_count() == 0


class TestSimulation:
    def test_half_adder_truth_table(self):
        sim = NetlistSimulator(half_adder())
        for a in (0, 1):
            for b in (0, 1):
                outs = sim.settle({"a": a, "b": b})
                assert outs["s"] == a ^ b
                assert outs["c"] == a & b

    def test_mux(self):
        nl = Netlist("m")
        nl.add_input("a", 8)
        nl.add_input("b", 8)
        nl.add_input("sel")
        nl.add_output("y", 8)
        nl.cell("MUX2", "u", a="a", b="b", sel="sel", y="y", width=8)
        sim = NetlistSimulator(nl)
        assert sim.settle({"a": 11, "b": 22, "sel": 0})["y"] == 11
        assert sim.settle({"a": 11, "b": 22, "sel": 1})["y"] == 22

    def test_register_holds_until_tick(self):
        nl = Netlist("r")
        nl.add_input("d")
        nl.add_output("q")
        nl.g_reg("d", "qreg", init=0)
        nl.cell("BUF", "u", a="qreg", y="q")
        sim = NetlistSimulator(nl)
        assert sim.settle({"d": 1})["q"] == 0
        sim.tick()
        assert sim.settle({"d": 0})["q"] == 1

    def test_register_enable(self):
        nl = Netlist("r")
        nl.add_input("d")
        nl.add_input("en")
        nl.add_output("q")
        nl.g_reg("d", "qreg", en="en", init=7)
        nl.cell("BUF", "u", a="qreg", y="q")
        sim = NetlistSimulator(nl)
        assert sim.step({"d": 1, "en": 0})["q"] == 7
        assert sim.step({"d": 1, "en": 1})["q"] == 7
        assert sim.settle({"d": 0, "en": 0})["q"] == 1

    def test_register_initial_value(self):
        nl = Netlist("r")
        nl.add_input("d", 8)
        nl.add_output("q", 8)
        nl.g_reg("d", "qreg", init=42, width=8)
        nl.cell("BUF", "u", a="qreg", y="q", width=8)
        sim = NetlistSimulator(nl)
        assert sim.settle({"d": 0})["q"] == 42

    def test_reset_restores_initials(self):
        nl = Netlist("r")
        nl.add_input("d")
        nl.add_output("q")
        nl.g_reg("d", "qreg", init=1)
        nl.cell("BUF", "u", a="qreg", y="q")
        sim = NetlistSimulator(nl)
        sim.step({"d": 0})
        sim.reset()
        assert sim.settle({"d": 0})["q"] == 1

    def test_combinational_loop_detected(self):
        nl = Netlist("loop")
        nl.cell("NOT", "u1", a="b", y="a")
        nl.cell("NOT", "u2", a="a", y="b")
        with pytest.raises(ElaborationError, match="combinational loop"):
            NetlistSimulator(nl)

    def test_unknown_input_rejected(self):
        sim = NetlistSimulator(half_adder())
        with pytest.raises(ElaborationError):
            sim.settle({"zzz": 1})

    def test_chain_evaluation_order_independent(self):
        # Build a NOT chain declared in reverse order.
        nl = Netlist("chain")
        nl.add_input("a")
        nl.add_output("y")
        nl.cell("NOT", "u3", a="n2", y="y")
        nl.cell("NOT", "u2", a="n1", y="n2")
        nl.cell("NOT", "u1", a="a", y="n1")
        sim = NetlistSimulator(nl)
        assert sim.settle({"a": 0})["y"] == 1

"""Property-based tests: analysis layers must agree with each other.

Three independently implemented oracles — the paper's closed formulas,
the minimum-cycle-ratio analyzer and the skeleton simulator — are run on
randomized topologies and required to coincide.
"""

import pytest

from fractions import Fraction

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import min_cycle_ratio_throughput, static_system_throughput
from repro.graph import equalize, random_dag, random_loopy, reconvergent, ring
from repro.skeleton import system_throughput

pytestmark = pytest.mark.slow

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(seed=st.integers(0, 10_000))
@settings(**SETTINGS)
def test_mcr_equals_simulation_on_dags(seed):
    graph = random_dag(seed, shells=5)
    assert min_cycle_ratio_throughput(graph).throughput == \
        system_throughput(graph)


@given(seed=st.integers(0, 10_000))
@settings(**SETTINGS)
def test_mcr_equals_simulation_on_loops(seed):
    graph = random_loopy(seed, shells=4)
    assert min_cycle_ratio_throughput(graph).throughput == \
        system_throughput(graph)


@given(shells=st.integers(1, 4), extra=st.integers(0, 4))
@settings(**SETTINGS)
def test_ring_formula_triangle(shells, extra):
    relays = shells + extra  # at least one per arc (the lint rule)
    per_arc = [relays // shells + (1 if i < relays % shells else 0)
               for i in range(shells)]
    graph = ring(shells, relays_per_arc=per_arc)
    expected = Fraction(shells, shells + relays)
    assert system_throughput(graph) == expected
    assert min_cycle_ratio_throughput(graph).throughput == expected


@given(
    long_a=st.integers(1, 3), long_b=st.integers(1, 3),
    short=st.integers(1, 3),
)
@settings(**SETTINGS)
def test_reconvergent_formula_triangle(long_a, long_b, short):
    graph = reconvergent(long_relays=(long_a, long_b),
                         short_relays=short)
    sim = system_throughput(graph)
    mcr = min_cycle_ratio_throughput(graph).throughput
    formulas = static_system_throughput(graph)
    assert sim == mcr == formulas


@given(
    long_a=st.integers(1, 3), long_b=st.integers(1, 3),
    short=st.integers(1, 3),
)
@settings(**SETTINGS)
def test_equalization_always_restores_one(long_a, long_b, short):
    graph = reconvergent(long_relays=(long_a, long_b),
                         short_relays=short)
    assert system_throughput(equalize(graph)) == 1


@given(seed=st.integers(0, 10_000))
@settings(**SETTINGS)
def test_throughput_bounded_by_one(seed):
    graph = random_loopy(seed, shells=3)
    rate = system_throughput(graph)
    assert 0 < rate <= 1

"""Vectorized batch skeleton simulation with numpy.

The scalar :class:`~repro.skeleton.sim.SkeletonSim` is exact and
general; this engine trades generality for throughput by simulating
**many independent instances of the same topology at once** — columns of
a bit matrix — which is how a designer sweeps back-pressure scenarios
("which sink scripts ever stall the system?") at negligible cost, the
paper's stated use of skeleton simulation.

Restrictions (checked at construction): refined (CASU) protocol, full
relay stations only, always-ready sources.  Per-instance sink stop
patterns are the sweep dimension.  The engine is validated against the
scalar simulator in ``tests/skeleton/test_vectorized.py`` and benched in
``benchmarks/bench_skeleton_cost.py``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..errors import StructuralError
from ..graph.model import SystemGraph
from ..lid.variant import ProtocolVariant
from .sim import SkeletonSim, _SHELL, _SRC


class BatchSkeletonSim:
    """Simulate *batch* copies of one topology's skeleton in parallel.

    Parameters
    ----------
    graph:
        The topology (full relay stations only).
    sink_patterns:
        One mapping per instance: sink name -> bool stop pattern.
    """

    def __init__(self, graph: SystemGraph,
                 sink_patterns: Sequence[Dict[str, Sequence[bool]]]):
        for edge in graph.edges:
            if any(spec != "full" for spec in edge.relays):
                raise StructuralError(
                    "BatchSkeletonSim supports full relay stations only"
                )
        self.graph = graph
        self.batch = len(sink_patterns)
        if self.batch == 0:
            raise ValueError("need at least one instance")

        # Reuse the scalar builder for the wiring tables.
        self._scalar = SkeletonSim(graph, variant=ProtocolVariant.CASU,
                                   detect_ambiguity=False)
        s = self._scalar
        self.shell_names = s.shell_names
        self.sink_names = s.sink_names
        n_hops = len(s.hops)
        b = self.batch

        # Sink stop schedules, padded to a common hyper-period.
        lengths = []
        for mapping in sink_patterns:
            for pattern in mapping.values():
                lengths.append(len(tuple(pattern)))
        period = int(np.lcm.reduce(lengths)) if lengths else 1
        self._stop_schedule = np.zeros((period, n_hops, b), dtype=bool)
        for col, mapping in enumerate(sink_patterns):
            for name, pattern in mapping.items():
                sink_id = self.sink_names.index(name)
                hop = s.sink_in_hop[sink_id]
                pattern = tuple(bool(x) for x in pattern)
                for t in range(period):
                    self._stop_schedule[t, hop, col] = \
                        pattern[t % len(pattern)]
        self._period = period

        self.reset()

    def reset(self) -> None:
        s = self._scalar
        b = self.batch
        self.cycle = 0
        self.shell_reg = np.ones((len(s.shell_reg_owner), b), dtype=bool)
        self.rs_main = np.zeros((len(s.rs_kinds), b), dtype=bool)
        self.rs_aux = np.zeros((len(s.rs_kinds), b), dtype=bool)
        self.rs_stop = np.zeros((len(s.rs_kinds), b), dtype=bool)
        self.shell_fired = np.zeros((len(s.shell_names), b), dtype=np.int64)
        self.sink_accepted = np.zeros((len(s.sink_names), b),
                                      dtype=np.int64)

    # -- one synchronous step over the whole batch -------------------------

    def step(self) -> None:
        s = self._scalar
        b = self.batch
        n_hops = len(s.hops)

        valid = np.zeros((n_hops, b), dtype=bool)
        for hop_id, hop in enumerate(s.hops):
            if hop.producer_kind == _SRC:
                valid[hop_id] = True
            elif hop.producer_kind == _SHELL:
                valid[hop_id] = self.shell_reg[hop.producer_edge]
            else:
                valid[hop_id] = self.rs_main[hop.producer_id]

        stop = self._stop_schedule[self.cycle % self._period].copy()
        for rs_id in range(len(s.rs_kinds)):
            stop[s.rs_in_hop[rs_id]] = self.rs_stop[rs_id]

        # Settle the shell stop network (full RS registered stops are
        # fixed, so only shell-origin stops iterate; with a relay
        # station on every shell-shell edge there are no chains and a
        # single pass suffices — asserted by the lint at build time).
        fires = np.empty((len(s.shell_names), b), dtype=bool)
        for _pass in range(len(s.shell_names) + 1):
            changed = False
            for shell_id in range(len(s.shell_names)):
                fire = np.ones(b, dtype=bool)
                for hop in s.shell_in_hops[shell_id]:
                    fire &= valid[hop]
                for hop in s.shell_out_hops[shell_id]:
                    reg = s.hops[hop].producer_edge
                    fire &= ~(stop[hop] & self.shell_reg[reg])
                fires[shell_id] = fire
                for hop in s.shell_in_hops[shell_id]:
                    new = ~fire & valid[hop]
                    if np.any(new & ~stop[hop]):
                        stop[hop] |= new
                        changed = True
            if not changed:
                break

        # Register updates — shells.
        for shell_id in range(len(s.shell_names)):
            fire = fires[shell_id]
            for hop in s.shell_out_hops[shell_id]:
                reg = s.hops[hop].producer_edge
                held = self.shell_reg[reg] & stop[hop]
                self.shell_reg[reg] = fire | (~fire & held)
            self.shell_fired[shell_id] += fire

        # Register updates — full relay stations.
        for rs_id in range(len(s.rs_kinds)):
            hop_in = s.rs_in_hop[rs_id]
            hop_out = s.rs_out_hop[rs_id]
            stop_in = stop[hop_out]
            incoming = valid[hop_in]
            accepted = incoming & ~self.rs_stop[rs_id]
            consumed = ~self.rs_main[rs_id] | ~stop_in
            aux = self.rs_aux[rs_id]

            new_main = np.where(
                aux, np.where(consumed, True, self.rs_main[rs_id]),
                np.where(consumed, accepted, self.rs_main[rs_id]))
            new_aux = np.where(
                aux, np.where(consumed, False, True),
                np.where(consumed, False, accepted))
            new_stop = np.where(
                aux, np.where(consumed, False, True),
                np.where(consumed, False, accepted))
            self.rs_main[rs_id] = new_main
            self.rs_aux[rs_id] = new_aux
            self.rs_stop[rs_id] = new_stop

        # Sink accounting.
        for sink_id, hop in enumerate(s.sink_in_hop):
            if hop is None:
                continue
            self.sink_accepted[sink_id] += valid[hop] & ~stop[hop]

        self.cycle += 1

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    # -- results -----------------------------------------------------------

    def shell_rates(self) -> Dict[str, np.ndarray]:
        """Firing rate per shell, per instance."""
        if self.cycle == 0:
            raise ValueError("run() first")
        return {
            name: self.shell_fired[i] / self.cycle
            for i, name in enumerate(self.shell_names)
        }

    def sink_rates(self) -> Dict[str, np.ndarray]:
        if self.cycle == 0:
            raise ValueError("run() first")
        return {
            name: self.sink_accepted[i] / self.cycle
            for i, name in enumerate(self.sink_names)
        }

    def stalled_instances(self, threshold: float = 1e-9) -> List[int]:
        """Instances in which some shell never fires (deadlock sweep)."""
        rates = self.shell_fired / max(self.cycle, 1)
        dead = np.any(rates <= threshold, axis=0)
        return [int(i) for i in np.nonzero(dead)[0]]

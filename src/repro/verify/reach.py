"""Explicit-state reachability: the BFS engine behind every check.

A *checked system* is anything exposing ``initial_states()`` and
``successors(state)``; successors raise
:class:`~repro.verify.monitors.Violation` when a safety monitor trips.
The engine explores breadth-first (so counterexamples are minimal),
keeps a predecessor map, and reconstructs the full trace on violation.

This replaces the paper's use of Cadence SMV: the block state spaces
are tiny (hundreds to a few thousand product states with the abstract
payload alphabet), so exhaustive enumeration is both complete and fast.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from .monitors import Violation


@dataclasses.dataclass
class Counterexample:
    """A minimal trace from reset to a property violation."""

    steps: List[Tuple[str, Hashable]]
    reason: str

    def render(self) -> str:
        lines = [f"violation: {self.reason}"]
        for i, (label, state) in enumerate(self.steps):
            lines.append(f"  cycle {i}: {label}  ->  {state}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.steps)


@dataclasses.dataclass
class ReachResult:
    """Outcome of an exhaustive exploration."""

    holds: bool
    states_explored: int
    counterexample: Optional[Counterexample] = None

    def __bool__(self) -> bool:
        return self.holds


def explore(
    initial_states: Iterable[Hashable],
    successors: Callable[[Hashable], Iterable[Tuple[str, Hashable]]],
    max_states: int = 200_000,
) -> ReachResult:
    """Breadth-first exhaustive exploration.

    *successors* yields ``(transition label, next state)`` pairs and may
    raise :class:`Violation`.  Returns the verdict; on violation the
    counterexample lists the labelled transitions from an initial state.
    """
    queue: deque = deque()
    # predecessor: state -> (previous state, label)  (None for initials)
    pred: Dict[Hashable, Optional[Tuple[Hashable, str]]] = {}
    for state in initial_states:
        if state not in pred:
            pred[state] = None
            queue.append(state)

    explored = 0
    while queue:
        state = queue.popleft()
        explored += 1
        if explored > max_states:
            raise MemoryError(
                f"state space exceeded {max_states} states; "
                f"raise max_states or shrink the payload alphabet"
            )
        try:
            for label, nxt in successors(state):
                if nxt not in pred:
                    pred[nxt] = (state, label)
                    queue.append(nxt)
        except Violation as violation:
            trace = _reconstruct(pred, state)
            trace.append(("(violating step)", state))
            return ReachResult(
                holds=False,
                states_explored=explored,
                counterexample=Counterexample(
                    steps=trace, reason=str(violation)
                ),
            )
    return ReachResult(holds=True, states_explored=explored)


def _reconstruct(
    pred: Dict[Hashable, Optional[Tuple[Hashable, str]]],
    state: Hashable,
) -> List[Tuple[str, Hashable]]:
    trace: List[Tuple[str, Hashable]] = []
    cursor: Optional[Hashable] = state
    while cursor is not None:
        entry = pred[cursor]
        if entry is None:
            trace.append(("(reset)", cursor))
            cursor = None
        else:
            prev, label = entry
            trace.append((label, cursor))
            cursor = prev
    trace.reverse()
    return trace


def reachable_states(
    initial_states: Iterable[Hashable],
    successors: Callable[[Hashable], Iterable[Tuple[str, Hashable]]],
    max_states: int = 200_000,
) -> List[Hashable]:
    """All reachable states (no monitors expected to fire)."""
    seen: Dict[Hashable, None] = {}
    queue: deque = deque()
    for state in initial_states:
        if state not in seen:
            seen[state] = None
            queue.append(state)
    while queue:
        state = queue.popleft()
        if len(seen) > max_states:
            raise MemoryError(f"more than {max_states} reachable states")
        for _label, nxt in successors(state):
            if nxt not in seen:
                seen[nxt] = None
                queue.append(nxt)
    return list(seen)

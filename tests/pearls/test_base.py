"""Unit tests for the pearl base classes."""

import pytest

from repro.pearls import FunctionPearl, MultiOutputPearl, Pearl


class TestPearlBase:
    def test_abstract_hooks_raise(self):
        pearl = Pearl()
        with pytest.raises(NotImplementedError):
            pearl.reset()
        with pytest.raises(NotImplementedError):
            pearl.step({})


class TestFunctionPearl:
    def test_single_input(self):
        pearl = FunctionPearl(lambda a: a * 2)
        assert pearl.reset() == {"out": 0}
        assert pearl.step({"a": 3}) == {"out": 6}

    def test_two_inputs_port_order(self):
        pearl = FunctionPearl(lambda a, b: a - b, inputs=("a", "b"))
        pearl.reset()
        assert pearl.step({"a": 10, "b": 4}) == {"out": 6}

    def test_custom_output_name(self):
        pearl = FunctionPearl(lambda x: x, inputs=("x",), output="y",
                              initial=5)
        assert pearl.output_ports == ("y",)
        assert pearl.reset() == {"y": 5}

    def test_stateless_across_steps(self):
        pearl = FunctionPearl(lambda a: a + 1)
        pearl.reset()
        assert pearl.step({"a": 1}) == {"out": 2}
        assert pearl.step({"a": 1}) == {"out": 2}


class TestMultiOutputPearl:
    def test_two_outputs(self):
        pearl = MultiOutputPearl(
            lambda a: {"q": a // 3, "r": a % 3},
            inputs=("a",), outputs=("q", "r"))
        pearl.reset()
        assert pearl.step({"a": 7}) == {"q": 2, "r": 1}

    def test_default_initials_are_zero(self):
        pearl = MultiOutputPearl(lambda a: {"x": a, "y": a},
                                 inputs=("a",), outputs=("x", "y"))
        assert pearl.reset() == {"x": 0, "y": 0}

    def test_missing_output_raises(self):
        pearl = MultiOutputPearl(lambda a: {"x": a},
                                 inputs=("a",), outputs=("x", "y"))
        pearl.reset()
        with pytest.raises(ValueError, match="did not produce"):
            pearl.step({"a": 1})

    def test_extra_outputs_filtered(self):
        pearl = MultiOutputPearl(lambda a: {"x": a, "junk": 1},
                                 inputs=("a",), outputs=("x",))
        pearl.reset()
        assert pearl.step({"a": 2}) == {"x": 2}

    def test_custom_initials(self):
        pearl = MultiOutputPearl(lambda a: {"x": a}, inputs=("a",),
                                 outputs=("x",), initial={"x": 42})
        assert pearl.reset() == {"x": 42}


class TestInSystem:
    def test_function_pearl_in_pipeline(self):
        from repro import LidSystem

        system = LidSystem("fp")
        src = system.add_source("src")
        double = system.add_shell(
            "D", FunctionPearl(lambda a: a * 2, initial=-1))
        sink = system.add_sink("out")
        system.connect(src, double)
        system.connect(double, sink, relays=1)
        system.run(10)
        assert sink.payloads == [-1] + [2 * i for i in range(8)]

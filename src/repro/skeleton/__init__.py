"""Skeleton (valid/stop-only) simulation, periodicity and deadlock tools."""

from .backend import (
    ScalarBackend,
    VectorizedBackend,
    select,
    vectorized_supported,
)
from .deadlock import DeadlockVerdict, check_deadlock, is_deadlock_free_class
from .fast import CostComparison, compare_cost, measure_throughput, system_throughput
from .periodicity import (
    detect_period,
    transient_and_period,
    transient_bound,
    transient_estimate,
)
from .sim import SkeletonResult, SkeletonSim
from .vectorized import BatchSkeletonSim

__all__ = [
    "BatchSkeletonSim",
    "CostComparison",
    "DeadlockVerdict",
    "ScalarBackend",
    "SkeletonResult",
    "SkeletonSim",
    "VectorizedBackend",
    "check_deadlock",
    "compare_cost",
    "detect_period",
    "is_deadlock_free_class",
    "measure_throughput",
    "select",
    "system_throughput",
    "transient_and_period",
    "transient_bound",
    "transient_estimate",
    "vectorized_supported",
]

"""Service registry: the one sanctioned inversion point between layers.

The layering contract (enforced by ``tools/check_layering.py``) says
``repro.graph`` and ``repro.ir`` never import ``repro.lid``,
``repro.skeleton`` or ``repro.cli`` — the topology/IR layer must stay
buildable and analyzable without pulling in any simulation backend.
Two operations genuinely need to call *upward* anyway:

* ``LoweredSystem.elaborate`` builds a :class:`repro.lid.system.LidSystem`;
* ``repro.graph.transform.cure_deadlock`` consults the skeleton
  deadlock checker to decide whether a cure is needed;
* ``repro.graph.floorplan.apply_floorplan`` measures the annotated
  graph's throughput with the skeleton engine for its report.

Both go through this registry: a string key mapped to a
``"module:attr"`` target resolved lazily via :mod:`importlib`.  The
defaults below are the only upward edges in the codebase; tests (or an
embedding application) can :func:`register` substitutes — e.g. a stub
checker — without monkeypatching modules.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, Union

#: Default service targets.  Keep this table tiny: every entry is an
#: upward call that the layering lint would otherwise reject, and each
#: one must be justified in docs/ir.md.
_DEFAULTS: Dict[str, str] = {
    "lid.build_system": "repro.lid.elaborate:build_system",
    "skeleton.check_deadlock": "repro.skeleton.deadlock:check_deadlock",
    "skeleton.system_throughput": "repro.skeleton.fast:system_throughput",
}

_OVERRIDES: Dict[str, Union[str, Callable[..., Any]]] = {}


def register(key: str, target: Union[str, Callable[..., Any]]) -> None:
    """Override a service: *target* is a callable or ``"module:attr"``."""
    _OVERRIDES[key] = target


def unregister(key: str) -> None:
    """Drop an override, restoring the default target."""
    _OVERRIDES.pop(key, None)


def resolve(key: str) -> Callable[..., Any]:
    """Return the callable registered (or defaulted) under *key*."""
    target = _OVERRIDES.get(key, _DEFAULTS.get(key))
    if target is None:
        raise KeyError(
            f"no service registered under {key!r} "
            f"(known: {sorted(_DEFAULTS)})")
    if callable(target):
        return target
    module_name, _, attr = target.partition(":")
    return getattr(importlib.import_module(module_name), attr)

"""Tests for the LTL layer."""

import pytest

from repro.lid.variant import ProtocolVariant
from repro.verify.ltl import (
    And,
    Implies,
    Not,
    Or,
    Prop,
    TransitionSystem,
    block_transition_system,
    eventually_emits,
    held_token_reappears,
)


def counter_ts(modulus):
    return TransitionSystem(
        [0], lambda s: [(s + 1) % modulus])


class TestConnectives:
    even = Prop("even", lambda s: s % 2 == 0)
    small = Prop("small", lambda s: s < 3)

    def test_not(self):
        assert Not(self.even)(1)
        assert not Not(self.even)(2)

    def test_and_or(self):
        both = And(self.even, self.small)
        assert both(2) and not both(4) and not both(1)
        either = Or(self.even, self.small)
        assert either(1) and either(4) and not either(5)

    def test_implies(self):
        imp = Implies(self.even, self.small)
        assert imp(1)      # antecedent false
        assert imp(2)      # both hold
        assert not imp(4)  # 4 even but not small

    def test_repr_readable(self):
        assert "even" in repr(And(self.even, self.small))


class TestCheckers:
    def test_G_holds(self):
        ts = counter_ts(5)
        result = ts.check_G(Prop("lt5", lambda s: s < 5))
        assert result.holds
        assert result.states_explored == 5

    def test_G_fails_with_witness(self):
        ts = counter_ts(5)
        result = ts.check_G(Prop("lt4", lambda s: s < 4))
        assert not result.holds
        assert result.witness == [4]

    def test_G_implies_X(self):
        ts = counter_ts(4)
        # After state 1 always comes state 2.
        result = ts.check_G_implies_X(
            Prop("is1", lambda s: s == 1), Prop("is2", lambda s: s == 2))
        assert result.holds

    def test_G_implies_X_fails(self):
        ts = counter_ts(4)
        result = ts.check_G_implies_X(
            Prop("is1", lambda s: s == 1), Prop("is3", lambda s: s == 3))
        assert not result.holds
        assert result.witness == [1, 2]

    def test_GF_holds_on_cycle_through_p(self):
        ts = counter_ts(6)
        result = ts.check_GF(Prop("is0", lambda s: s == 0))
        assert result.holds

    def test_GF_fails_on_avoiding_cycle(self):
        # Two components: from 0 we can enter a 2-3 cycle avoiding 0.
        def succ(s):
            return {0: [1], 1: [2], 2: [3], 3: [2]}[s]

        ts = TransitionSystem([0], succ)
        result = ts.check_GF(Prop("is0", lambda s: s == 0))
        assert not result.holds
        assert set(result.witness) <= {2, 3}

    def test_state_budget(self):
        ts = TransitionSystem([0], lambda s: [s + 1])
        with pytest.raises(MemoryError):
            ts.check_G(Prop("t", lambda s: True), max_states=50)


class TestBlockProperties:
    @pytest.mark.parametrize("kind", ["full", "half", "half-registered"])
    def test_hold_in_ltl(self, kind):
        result = held_token_reappears(kind)
        assert result.holds, result.witness

    @pytest.mark.parametrize("kind", ["full", "half", "half-registered"])
    def test_recurrent_emission(self, kind):
        result = eventually_emits(kind)
        assert result.holds, result.witness

    def test_block_transition_system_explores(self):
        ts = block_transition_system("full")
        result = ts.check_G(Prop(
            "occupancy<=2", lambda s: s[0].occupancy <= 2))
        assert result.holds

    def test_carloni_blocks_also_pass(self):
        for kind in ("full", "half"):
            assert held_token_reappears(
                kind, ProtocolVariant.CARLONI).holds

    def test_mutated_block_fails_hold(self, monkeypatch):
        from repro.verify import fsm

        original = fsm.full_rs_step

        def broken(state, in_tok, stop_in, variant=None):
            nxt = original(state, in_tok, stop_in,
                           variant or ProtocolVariant.CASU)
            if stop_in and nxt.main is not None:
                import dataclasses

                return dataclasses.replace(
                    nxt, main=(nxt.main + 1) % 8)  # corrupt held token
            return nxt

        monkeypatch.setattr(fsm, "full_rs_step", broken)
        assert not held_token_reappears("full").holds

"""VHDL emission for netlists.

The paper validated its blocks with *"a VHDL description of all blocks
and an event-driven simulator"*.  This emitter renders any
:class:`~repro.rtl.netlist.Netlist` as a synthesizable-style VHDL
entity/architecture pair — one concurrent statement per combinational
cell, one clocked process for the registers — so the reproduced blocks
can be taken back into a real HDL flow.
"""

from __future__ import annotations

import io

from .netlist import Netlist


def _type_of(width: int) -> str:
    if width == 1:
        return "std_logic"
    return f"unsigned({width - 1} downto 0)"


def _literal(value: int, width: int) -> str:
    if width == 1:
        return f"'{value & 1}'"
    return f'to_unsigned({value}, {width})'


def emit_vhdl(netlist: Netlist) -> str:
    """Render *netlist* as VHDL text."""
    netlist.validate()
    out = io.StringIO()
    out.write("library ieee;\n")
    out.write("use ieee.std_logic_1164.all;\n")
    out.write("use ieee.numeric_std.all;\n\n")

    # Entity ---------------------------------------------------------------
    out.write(f"entity {netlist.name} is\n  port (\n")
    ports = ["    clk : in std_logic;", "    rst : in std_logic;"]
    for name in netlist.inputs:
        width = netlist.nets[name].width
        ports.append(f"    {name} : in {_type_of(width)};")
    for name in netlist.outputs:
        width = netlist.nets[name].width
        ports.append(f"    {name} : out {_type_of(width)};")
    out.write("\n".join(ports).rstrip(";") + "\n  );\n")
    out.write(f"end entity {netlist.name};\n\n")

    # Architecture -----------------------------------------------------------
    out.write(f"architecture rtl of {netlist.name} is\n")
    port_names = set(netlist.inputs) | set(netlist.outputs)
    for net in netlist.nets.values():
        if net.name in port_names:
            continue
        out.write(f"  signal {net.name} : {_type_of(net.width)};\n")
    out.write("begin\n")

    regs = []
    for cell in netlist.cells.values():
        p = cell.pins
        if cell.kind == "REG":
            regs.append(cell)
        elif cell.kind == "AND2":
            out.write(f"  {p['y']} <= {p['a']} and {p['b']};\n")
        elif cell.kind == "OR2":
            out.write(f"  {p['y']} <= {p['a']} or {p['b']};\n")
        elif cell.kind == "XOR2":
            out.write(f"  {p['y']} <= {p['a']} xor {p['b']};\n")
        elif cell.kind == "NOT":
            out.write(f"  {p['y']} <= not {p['a']};\n")
        elif cell.kind == "BUF":
            out.write(f"  {p['y']} <= {p['a']};\n")
        elif cell.kind == "MUX2":
            out.write(
                f"  {p['y']} <= {p['b']} when {p['sel']} = '1' "
                f"else {p['a']};\n"
            )
        elif cell.kind == "CONST":
            width = netlist.nets[p["y"]].width
            value = cell.params.get("value", 0)
            out.write(f"  {p['y']} <= {_literal(value, width)};\n")

    if regs:
        out.write("\n  registers : process (clk)\n  begin\n")
        out.write("    if rising_edge(clk) then\n")
        out.write("      if rst = '1' then\n")
        for cell in regs:
            width = cell.params.get("width", 1)
            init = cell.params.get("init", 0)
            out.write(
                f"        {cell.pins['q']} <= {_literal(init, width)};\n"
            )
        out.write("      else\n")
        for cell in regs:
            en = cell.pins["en"]
            out.write(
                f"        if {en} = '1' then {cell.pins['q']} <= "
                f"{cell.pins['d']}; end if;\n"
            )
        out.write("      end if;\n    end if;\n  end process;\n")

    out.write(f"end architecture rtl;\n")
    return out.getvalue()


def write_vhdl(netlist: Netlist, path: str) -> None:
    """Write the VHDL rendering of *netlist* to *path*."""
    with open(path, "w", encoding="ascii") as fh:
        fh.write(emit_vhdl(netlist))

"""Unit tests for the VCD writer."""

import pytest

from repro.kernel.component import Component
from repro.kernel.scheduler import Simulator
from repro.kernel.trace import Trace
from repro.kernel.vcd import _identifier, dumps_vcd, write_vcd


class Stepper(Component):
    def __init__(self, name, sig, values):
        super().__init__(name)
        self.sig = sig
        self.values = values
        self.index = 0

    def reset(self):
        self.index = 0

    def publish(self):
        self.sig.set(self.values[min(self.index, len(self.values) - 1)])

    def tick(self):
        self.index += 1


def traced_sim(values):
    sim = Simulator()
    sig = sim.signal("wire")
    sim.add_component(Stepper("st", sig, values))
    trace = Trace(sim, [sig])
    return sim, trace


class TestIdentifier:
    def test_distinct(self):
        ids = [_identifier(i) for i in range(500)]
        assert len(set(ids)) == 500

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            _identifier(-1)


class TestDumpsVcd:
    def test_header_sections(self):
        sim, trace = traced_sim([1, 2])
        sim.step(2)
        text = dumps_vcd(trace)
        assert "$timescale" in text
        assert "$enddefinitions" in text
        assert "$var wire" in text

    def test_change_only_encoding(self):
        sim, trace = traced_sim([5, 5, 7])
        sim.step(3)
        text = dumps_vcd(trace)
        # value 5 emitted once (cycle 0), 7 once (cycle 2), nothing at #1
        assert "#0" in text
        assert "#1" not in text
        assert "#2" in text

    def test_bool_rendering(self):
        sim, trace = traced_sim([True, False])
        sim.step(2)
        text = dumps_vcd(trace)
        lines = text.splitlines()
        assert any(line.startswith("1") and "#" not in line for line in lines)
        assert any(line.startswith("0") and "#" not in line for line in lines)

    def test_none_renders_as_x(self):
        sim, trace = traced_sim([None, 3])
        sim.step(2)
        text = dumps_vcd(trace)
        assert "bx " in text

    def test_string_payload(self):
        sim, trace = traced_sim(["hello world", "bye"])
        sim.step(2)
        text = dumps_vcd(trace)
        assert "shello_world" in text

    def test_module_name_sanitized(self):
        sim, trace = traced_sim([1])
        sim.step(1)
        text = dumps_vcd(trace, module="my design")
        assert "$scope module my_design" in text


class TestWriteVcd:
    def test_writes_file(self, tmp_path):
        sim, trace = traced_sim([1, 2, 3])
        sim.step(3)
        path = tmp_path / "out.vcd"
        write_vcd(trace, str(path))
        assert path.read_text().startswith("$timescale")

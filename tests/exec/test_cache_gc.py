"""Disk-layer garbage collection of the result cache (satellite of the
campaign-service PR): mtime-ordered eviction under a byte budget."""

import os

import pytest

from repro.exec import ResultCache, cache_max_bytes
from repro.exec.cache import DEFAULT_CACHE_MAX_BYTES, GC_WRITE_INTERVAL


def fill(cache, n, size=1000, start=0):
    """Write n entries of roughly *size* bytes each, oldest first."""
    for i in range(start, start + n):
        cache.put(cache.key("gc-test", i), b"x" * size)


def entry_files(directory):
    return sorted(f for f in os.listdir(directory)
                  if f.endswith(".pkl"))


class TestBudgetEnv:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_LID_CACHE_MAX_BYTES", raising=False)
        assert cache_max_bytes() == DEFAULT_CACHE_MAX_BYTES

    def test_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_LID_CACHE_MAX_BYTES", "12345")
        assert cache_max_bytes() == 12345

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_LID_CACHE_MAX_BYTES", "0")
        assert cache_max_bytes() == 0

    def test_negative_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_LID_CACHE_MAX_BYTES", "-5")
        assert cache_max_bytes() == 0

    def test_malformed_warns_and_defaults(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LID_CACHE_MAX_BYTES", "lots")
        assert cache_max_bytes() == DEFAULT_CACHE_MAX_BYTES
        assert "REPRO_LID_CACHE_MAX_BYTES" in capsys.readouterr().err

    def test_constructor_reads_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LID_CACHE_MAX_BYTES", "777")
        cache = ResultCache.disk(str(tmp_path))
        assert cache.max_bytes == 777

    def test_explicit_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LID_CACHE_MAX_BYTES", "777")
        cache = ResultCache.disk(str(tmp_path), max_bytes=555)
        assert cache.max_bytes == 555


class TestGc:
    def test_under_budget_is_a_no_op(self, tmp_path):
        cache = ResultCache.disk(str(tmp_path), max_bytes=10**9)
        fill(cache, 5)
        assert cache.gc() == (0, 0)
        assert len(entry_files(tmp_path)) == 5
        assert cache.stats.to_dict().get("gc_files") is None

    def test_trims_oldest_first(self, tmp_path):
        cache = ResultCache.disk(str(tmp_path), max_bytes=0)
        fill(cache, 6)
        files = entry_files(tmp_path)
        assert len(files) == 6
        # Age the first three entries far into the past.
        old = {cache._path(cache.key("gc-test", i)) for i in range(3)}
        for i, path in enumerate(sorted(old)):
            os.utime(path, (1000 + i, 1000 + i))
        usage = cache.disk_usage()
        per_entry = usage // 6
        removed, freed = cache.gc(max_bytes=usage - 3 * per_entry + 1)
        assert removed == 3
        survivors = {os.path.join(str(tmp_path), f)
                     for f in entry_files(tmp_path)}
        assert survivors.isdisjoint(old), "oldest entries evicted"
        assert cache.disk_usage() <= usage - 3 * per_entry + 1
        assert freed == usage - cache.disk_usage()

    def test_stats_accumulate_and_surface(self, tmp_path):
        cache = ResultCache.disk(str(tmp_path), max_bytes=0)
        fill(cache, 4)
        removed, freed = cache.gc(max_bytes=1)
        assert removed == 4 and freed > 0
        stats = cache.stats.to_dict()
        assert stats["gc_files"] == 4
        assert stats["gc_bytes"] == freed

    def test_stats_absent_when_clean(self, tmp_path):
        cache = ResultCache.disk(str(tmp_path))
        fill(cache, 2)
        cache.get(cache.key("gc-test", 0))
        assert set(cache.stats.to_dict()) == {"hits", "misses",
                                              "evictions"}

    def test_disabled_budget_never_collects(self, tmp_path):
        cache = ResultCache.disk(str(tmp_path), max_bytes=0)
        fill(cache, GC_WRITE_INTERVAL + 5, size=10_000)
        assert cache.gc() == (0, 0)
        assert len(entry_files(tmp_path)) == GC_WRITE_INTERVAL + 5

    def test_put_triggers_periodic_gc(self, tmp_path):
        """Every GC_WRITE_INTERVAL-th disk write sweeps the directory
        back inside the budget without an explicit gc() call."""
        cache = ResultCache.disk(str(tmp_path), max_bytes=20_000)
        fill(cache, GC_WRITE_INTERVAL, size=1000)
        usage = cache.disk_usage()
        assert usage <= 20_000
        assert cache.stats.gc_files > 0
        assert len(entry_files(tmp_path)) < GC_WRITE_INTERVAL

    def test_memory_only_cache_ignores_gc(self):
        cache = ResultCache.memory()
        cache.put("k", "v")
        assert cache.gc(max_bytes=1) == (0, 0)
        assert cache.disk_usage() == 0

    def test_evicted_entry_is_a_clean_miss(self, tmp_path):
        cache = ResultCache.disk(str(tmp_path), max_bytes=0, maxsize=1)
        fill(cache, 3)
        cache.gc(max_bytes=1)
        # Memory LRU (maxsize=1) also forgot the early keys: a read of
        # an evicted entry is a miss, not an error.
        assert cache.get(cache.key("gc-test", 0)) is None

    def test_vanished_file_tolerated(self, tmp_path, monkeypatch):
        cache = ResultCache.disk(str(tmp_path), max_bytes=0)
        fill(cache, 3)
        victim = entry_files(tmp_path)[0]

        real_unlink = os.unlink

        def racing_unlink(path, *args, **kwargs):
            if os.path.basename(path) == victim:
                raise OSError("vanished")
            return real_unlink(path, *args, **kwargs)

        monkeypatch.setattr(os, "unlink", racing_unlink)
        removed, _freed = cache.gc(max_bytes=1)
        assert removed == 2, "the vanished file is skipped, not fatal"

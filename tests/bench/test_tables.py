"""Tests for the table formatter."""

from repro.bench.tables import format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("a", "bb"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len({line.index("  ") for line in lines if "  " in line})

    def test_title_underlined(self):
        text = format_table(("x",), [(1,)], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_float_formatting(self):
        text = format_table(("v",), [(0.123456,)])
        assert "0.1235" in text

    def test_bool_formatting(self):
        text = format_table(("ok",), [(True,), (False,)])
        assert "yes" in text and "no" in text

    def test_empty_rows(self):
        text = format_table(("a", "b"), [])
        assert "a" in text and "b" in text

    def test_column_count_consistent(self):
        text = format_table(("a", "b", "c"), [(1, 2, 3)])
        header, sep, row = text.splitlines()
        assert header.count("  ") >= 2

#!/usr/bin/env python3
"""Original protocol vs the paper's refinement, head to head.

"In previous works the stop signal is back-propagated regardless of the
signals validity, in our implementation stops on invalid signals are
discarded.  The overall computation can get a significant speedup."

We replay the same workloads — bursty sources, impatient sinks, and an
area-optimized chain of half relay stations — under both disciplines
and count delivered tokens.

Run:  python examples/variant_comparison.py
"""

from repro.bench.tables import format_table
from repro.graph import figure1, pipeline, reconvergent
from repro.lid.variant import ProtocolVariant
from repro.skeleton import SkeletonSim


def delivered(graph, variant, cycles, sinks=None, sources=None):
    sim = SkeletonSim(graph, variant=variant, sink_patterns=sinks,
                      source_patterns=sources, detect_ambiguity=False)
    total = 0
    for _ in range(cycles):
        _fires, accepts = sim.step()
        total += sum(accepts)
    return total


def half_relay_chain(stages):
    graph = pipeline(stages)
    for edge in graph.edges:
        if edge.relays:
            edge.relays = ("half",) * len(edge.relays)
    graph.name = f"half_chain_{stages}"
    return graph


def main() -> None:
    cycles = 300
    bursty_sink = {"out": (False, False, True, True)}
    gappy_source = {"src": (True, True, False)}

    scenarios = [
        ("figure-1 system, smooth traffic", figure1(), None, None),
        ("figure-1 system, sink stops 1 in 4",
         figure1(), {"out": (False, False, False, True)}, None),
        ("unbalanced reconvergence, bursty ends",
         reconvergent(long_relays=(2, 1), short_relays=1),
         bursty_sink, gappy_source),
        ("half-relay chain, impatient sink",
         half_relay_chain(3), bursty_sink, None),
    ]

    rows = []
    for label, graph, sinks, sources in scenarios:
        original = delivered(graph, ProtocolVariant.CARLONI, cycles,
                             sinks, sources)
        refined = delivered(graph, ProtocolVariant.CASU, cycles,
                            sinks, sources)
        gain = refined / original if original else float("inf")
        rows.append((label, original, refined, f"{gain:.2f}x"))

    print(format_table(
        ("scenario", "original", "refined", "speedup"), rows,
        title=f"Tokens delivered in {cycles} cycles"))

    print()
    print("Reading the table:")
    print(" - on clean steady traffic the two protocols tie: the")
    print("   refinement is about stop/void interactions, which only")
    print("   occur during transients and under back pressure;")
    print(" - discarding stops on voids wins whenever voids and stops")
    print("   coexist (bursty rows);")
    print(" - one-register (half) relay stations *require* the refined")
    print("   rule: under the original discipline a waiting consumer's")
    print("   stop freezes the empty station and the chain wedges —")
    print("   the paper's minimum-memory argument seen live.")


if __name__ == "__main__":
    main()

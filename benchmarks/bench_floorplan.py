"""EXP-A2 (extension): floorplan-driven relay insertion.

The paper's motivating scenario, quantified: place a design on a die,
let wire lengths force relay stations, and measure what each process
shrink (shorter per-cycle reach) costs.  Feed-forward fabric re-balances
to full rate; loops pay S/(S+R) — so the cost of scaling is exactly the
loop content of the design.
"""

from fractions import Fraction

import pytest

from repro.bench.tables import format_table
from repro.graph import (
    Placement,
    apply_floorplan,
    figure2,
    layered_placement,
    shrink_sweep,
    tree,
)


def test_bench_shrink_sweep_table(benchmark, emit):
    graph = tree(3)
    placement = layered_placement(graph, row_pitch=2.0,
                                  column_pitch=3.0)

    def run():
        return shrink_sweep(graph, placement, [6.0, 3.0, 1.5, 0.75])

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ("reach (units/cycle)", "relay stations", "throughput"),
        [(reach, count, str(rate)) for reach, count, rate in rows],
        title="Process shrink on a balanced tree: stations multiply, "
              "throughput stays 1 (EXP-A2)",
    )
    emit("EXP-A2-floorplan-tree", table)
    counts = [count for _r, count, _t in rows]
    assert counts == sorted(counts)
    assert all(rate == 1 for _r, _c, rate in rows)


def test_bench_loop_pays_for_distance(benchmark, emit):
    graph = figure2()

    def run():
        rows = []
        for distance in (1, 2, 4, 8):
            placement = Placement({
                "S0": (0, 0), "S1": (distance, 0),
                "out": (distance + 1, 0),
            })
            report = apply_floorplan(graph, placement, reach=1.0)
            rows.append((distance, report.graph.relay_count(),
                         str(report.throughput)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ("loop span (units)", "relay stations", "throughput"),
        rows,
        title="Stretching a feedback loop across the die: "
              "T = S/(S+R) prices every unit of distance (EXP-A2)",
    )
    emit("EXP-A2-floorplan-loop", table)
    rates = [Fraction(rate) for _d, _c, rate in rows]
    assert rates == sorted(rates, reverse=True)


def test_bench_floorplan_application_speed(benchmark):
    graph = tree(3, relays_per_hop=1)
    placement = layered_placement(graph)

    def run():
        return apply_floorplan(graph, placement, reach=0.5)

    report = benchmark(run)
    assert report.throughput == 1

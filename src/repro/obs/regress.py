"""Performance-regression tracking over bench records and the ledger.

Two trajectory sources feed the same detector:

* **bench records** — directories of ``BENCH_*.json``
  (``repro-bench-record/v1``), one directory per trajectory position
  (e.g. CI artifacts from successive commits);
* **the run ledger** — successive records of the same span
  (kind + fingerprint + variant + params) carry ``meta.wall_seconds``
  across commits.

Each source yields :class:`TrendPoint` series keyed by
``(label, metric)``.  :func:`find_regressions` compares the newest
point of each series against a baseline (first or best prior point)
and flags moves beyond a threshold ratio, honouring metric direction:
wall/seconds metrics regress *upward*, rate metrics (``cycles/s``,
``*_per_sec``, ``speedup``) regress *downward*.

``repro-lid obs regress`` is the CLI; it exits 1 iff any regression is
flagged, so CI can gate on it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Default tolerated ratio before a move counts as a regression.
DEFAULT_THRESHOLD = 1.5

_LOWER_BETTER_HINTS = ("seconds", "wall", "time", "latency", "overhead")
_HIGHER_BETTER_HINTS = ("per_sec", "per_second", "cycles_per_sec", "rate",
                        "speedup", "throughput", "hits")


def metric_direction(metric: str) -> Optional[str]:
    """``"lower"``/``"higher"``-is-better, or None if undecidable."""
    name = metric.lower()
    # Rate hints win when both match (e.g. "wall_cycles_per_sec").
    if any(h in name for h in _HIGHER_BETTER_HINTS):
        return "higher"
    if any(h in name for h in _LOWER_BETTER_HINTS):
        return "lower"
    return None


@dataclass(frozen=True)
class TrendPoint:
    """One observation of one metric at one trajectory position."""

    label: str          # series identity, e.g. bench id or ledger span
    metric: str         # e.g. "wall_seconds", "cycles_per_sec"
    value: float
    source: str         # file / ledger ref the value came from
    position: int       # 0-based trajectory index (older = smaller)


@dataclass(frozen=True)
class Regression:
    """A flagged move of one series beyond the threshold."""

    label: str
    metric: str
    direction: str              # "lower" or "higher" (what better means)
    baseline_value: float
    baseline_source: str
    current_value: float
    current_source: str
    ratio: float                # slowdown factor, always >= 1 when flagged

    def describe(self) -> str:
        arrow = ("rose" if self.direction == "lower" else "fell")
        return (f"{self.label} {self.metric} {arrow} "
                f"{self.baseline_value:.6g} -> {self.current_value:.6g} "
                f"({self.ratio:.2f}x, baseline {self.baseline_source})")


def bench_trend(directories: Sequence[str]) -> List[TrendPoint]:
    """Trajectory points from ``BENCH_*.json`` directories, in order.

    Each directory is one trajectory position.  Every record
    contributes its ``wall_seconds`` plus any numeric counters.
    Reading is tolerant (``read_records`` skips bad files).
    """
    from ..bench.runner import read_records

    points: List[TrendPoint] = []
    for position, directory in enumerate(directories):
        for record in read_records(directory):
            name = record.get("bench", "?")
            source = os.path.join(directory, f"BENCH_{name}.json")
            wall = record.get("wall_seconds")
            if isinstance(wall, (int, float)):
                points.append(TrendPoint(name, "wall_seconds",
                                         float(wall), source, position))
            counters = record.get("counters") or {}
            for metric in sorted(counters):
                value = counters[metric]
                if isinstance(value, (int, float)) \
                        and not isinstance(value, bool):
                    points.append(TrendPoint(name, metric, float(value),
                                             source, position))
    return points


def ledger_trend(records: Sequence[Dict[str, Any]]) -> List[TrendPoint]:
    """Trajectory points from ledger records, grouped by span.

    Successive records of the same span (same kind + design + params)
    form one series; ``meta.wall_seconds`` is the tracked metric.
    Trajectory position is the per-span occurrence index, so ledgers
    mixing many spans still compare like with like.
    """
    points: List[TrendPoint] = []
    occurrence: Dict[str, int] = {}
    for index, record in enumerate(records):
        payload = record.get("payload", {}) or {}
        meta = record.get("meta", {}) or {}
        span = payload.get("span")
        wall = meta.get("wall_seconds")
        if span is None or not isinstance(wall, (int, float)):
            continue
        label = f"{payload.get('kind', '?')}:{span}"
        position = occurrence.get(label, 0)
        occurrence[label] = position + 1
        points.append(TrendPoint(label, "wall_seconds", float(wall),
                                 f"@{index}", position))
    return points


def find_regressions(
    points: Iterable[TrendPoint],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    baseline: str = "first",
) -> List[Regression]:
    """Flag series whose newest point regressed beyond *threshold*.

    *baseline* is ``"first"`` (oldest point) or ``"best"`` (best prior
    point — strictest).  Series with a single point, unknown metric
    direction, or a non-positive baseline are skipped.
    """
    if baseline not in ("first", "best"):
        raise ValueError(f"baseline must be 'first' or 'best', "
                         f"not {baseline!r}")
    series: Dict[Tuple[str, str], List[TrendPoint]] = {}
    for point in points:
        series.setdefault((point.label, point.metric), []).append(point)
    regressions: List[Regression] = []
    for (label, metric) in sorted(series):
        trajectory = sorted(series[(label, metric)],
                            key=lambda p: p.position)
        if len(trajectory) < 2:
            continue
        direction = metric_direction(metric)
        if direction is None:
            continue
        current = trajectory[-1]
        prior = trajectory[:-1]
        if baseline == "first":
            base = prior[0]
        else:
            base = (min(prior, key=lambda p: p.value)
                    if direction == "lower"
                    else max(prior, key=lambda p: p.value))
        if base.value <= 0 or current.value <= 0:
            continue
        ratio = (current.value / base.value if direction == "lower"
                 else base.value / current.value)
        if ratio > threshold:
            regressions.append(Regression(
                label=label, metric=metric, direction=direction,
                baseline_value=base.value, baseline_source=base.source,
                current_value=current.value, current_source=current.source,
                ratio=ratio))
    return regressions


def format_report(regressions: Sequence[Regression],
                  *, threshold: float = DEFAULT_THRESHOLD) -> str:
    """Human rendering for ``obs regress``."""
    if not regressions:
        return f"no regressions beyond {threshold:.2f}x"
    lines = [f"{len(regressions)} regression(s) beyond {threshold:.2f}x:"]
    for regression in regressions:
        lines.append("  " + regression.describe())
    return "\n".join(lines)

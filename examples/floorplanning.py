#!/usr/bin/env python3
"""From floorplan to protocol: the paper's methodology, end to end.

"The performance of future Systems-on-Chip will be limited by the
latency of long interconnects requiring more than one clock cycle for
the signals to propagate."  This example takes a zero-delay DSP design,
places it on a die, lets the wire lengths dictate the relay stations,
and watches the protocol absorb three successive technology shrinks.

Run:  python examples/floorplanning.py
"""

from repro import pearls
from repro.bench.tables import format_table
from repro.graph import (
    Placement,
    SystemGraph,
    apply_floorplan,
    shrink_sweep,
)
from repro.lid.reference import is_prefix
from repro.skeleton import system_throughput


def build_design() -> SystemGraph:
    """A zero-delay design: sample conditioning feeding a filter bank
    whose two paths reconverge in a comparator, with a feedback
    smoother at the output."""
    g = SystemGraph("dsp_die")
    g.add_source("adc")
    g.add_shell("cond", pearls.Identity)
    g.add_shell("fir", lambda: pearls.FirFilter((1, 2, 1)))
    g.add_shell("peak", lambda: pearls.Maximum())
    g.add_shell("smooth", lambda: pearls.Fibonacci(seed=0))
    g.add_sink("dac")
    g.add_edge("adc", "cond")
    g.add_edge("cond", "fir", dst_port="a")
    g.add_edge("fir", "peak", dst_port="a")
    g.add_edge("cond", "peak", dst_port="b")
    g.add_edge("peak", "smooth", dst_port="ext")
    g.add_edge("smooth", "smooth", relays=1, src_port="out",
               dst_port="loop_in")
    g.add_edge("smooth", "dac", src_port="out")
    return g


def main() -> None:
    design = build_design()
    print(f"zero-delay design: {len(design.shells())} blocks, "
          f"{design.relay_count()} relay stations, "
          f"T = {system_throughput(design.copy('probe'))} "
          f"(wires assumed instantaneous)\n")

    # The floorplanner scattered the blocks; the filter sits far out.
    placement = Placement({
        "adc": (0, 0),
        "cond": (1, 0),
        "fir": (4, 3),      # the far corner of the die
        "peak": (2, 0),
        "smooth": (3, 1),
        "dac": (4, 1),
    })

    report = apply_floorplan(design, placement, reach=2.0)
    print("floorplan at reach 2.0 grid-units/cycle:")
    print(format_table(
        ("wire", "length", "relay stations"),
        report.rows()))
    print(f"\nstations forced by wire length: {report.relays_added}; "
          f"spare stations for path balance: "
          f"{report.spare_for_balance}")
    print(f"system throughput after placement: {report.throughput}")

    # Correctness is untouched by any of this — the protocol's whole
    # point.  Check the streamed behaviour against the zero-delay
    # reference.
    system = report.graph.elaborate()
    system.run(80)
    ref = system.reference_outputs(80)["dac"]
    assert is_prefix(system.sinks["dac"].payloads, ref)
    print(f"latency equivalence holds over 80 cycles "
          f"({len(system.sinks['dac'].payloads)} samples delivered)\n")

    # Technology sweep: same die, faster clocks -> shorter reach.
    rows = [
        (reach, stations, str(rate))
        for reach, stations, rate in shrink_sweep(
            design, placement, [4.0, 2.0, 1.0, 0.5])
    ]
    print(format_table(
        ("reach (units/cycle)", "relay stations", "throughput"),
        rows,
        title="Shrink sweep: wires get slower in clock terms"))
    print("\nreading: the feed-forward fabric keeps its rate (balancing")
    print("is free bandwidth-wise); only the feedback smoother pays —")
    print("its loop obeys S/(S+R) no matter how many stations the")
    print("die forces onto it.  Floorplan the loops tight.")


if __name__ == "__main__":
    main()

"""A small LTL layer over the explicit-state engine.

The paper phrases its obligations informally ("any relay station keeps
its output on asserted stops").  This module lets such properties be
written as temporal-logic formulas and checked over the *lasso* paths
of a finite transition system — the standard semantics for
finite-state LTL model checking:

* safety formulas (``G p``, ``G (p -> X q)``) are checked over every
  reachable transition;
* liveness formulas (``G F p``) are checked over every reachable cycle
  (a cycle in which ``p`` never holds is a counterexample lasso).

Formulas are built from atoms (named predicates over states) with
``Not / And / Or / Implies / X / G / F / GF``.  The checker supports
the fragment that covers the paper's properties: invariants, one-step
implications (next), and recurrence — not full LTL-to-Büchi
translation, which the block-sized state spaces here do not warrant.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Hashable, Iterable, List, Optional

Atom = Callable[[Hashable], bool]


@dataclasses.dataclass(frozen=True)
class Prop:
    """Atomic proposition: a named predicate over states."""

    name: str
    test: Atom

    def __call__(self, state) -> bool:
        return bool(self.test(state))

    def __repr__(self) -> str:
        return self.name


def Not(p):      # noqa: N802 - logic-style constructor names
    return Prop(f"!{p!r}", lambda s: not p(s))


def And(p, q):   # noqa: N802
    return Prop(f"({p!r} & {q!r})", lambda s: p(s) and q(s))


def Or(p, q):    # noqa: N802
    return Prop(f"({p!r} | {q!r})", lambda s: p(s) or q(s))


def Implies(p, q):  # noqa: N802
    return Prop(f"({p!r} -> {q!r})", lambda s: (not p(s)) or q(s))


@dataclasses.dataclass
class LtlResult:
    """Verdict of an LTL check."""

    holds: bool
    formula: str
    states_explored: int
    witness: Optional[List[Hashable]] = None

    def __bool__(self) -> bool:
        return self.holds


class TransitionSystem:
    """A finite transition system: initial states + successor function."""

    def __init__(self, initial_states: Iterable[Hashable],
                 successors: Callable[[Hashable], Iterable[Hashable]]):
        self.initial_states = list(initial_states)
        self.successors = successors

    def _explore(self, max_states: int) -> Dict[Hashable, List[Hashable]]:
        graph: Dict[Hashable, List[Hashable]] = {}
        stack = list(self.initial_states)
        while stack:
            state = stack.pop()
            if state in graph:
                continue
            if len(graph) >= max_states:
                raise MemoryError(f"more than {max_states} states")
            nxt = list(self.successors(state))
            graph[state] = nxt
            stack.extend(nxt)
        return graph

    # -- checkers ---------------------------------------------------------

    def check_G(self, p: Prop, max_states: int = 200_000) -> LtlResult:
        """G p — *p* holds in every reachable state."""
        graph = self._explore(max_states)
        for state in graph:
            if not p(state):
                return LtlResult(False, f"G {p!r}", len(graph),
                                 witness=[state])
        return LtlResult(True, f"G {p!r}", len(graph))

    def check_G_implies_X(self, p: Prop, q: Prop,
                          max_states: int = 200_000) -> LtlResult:
        """G (p -> X q) — after any *p*-state, every successor satisfies
        *q*.  This is the shape of the paper's hold-on-stop property."""
        graph = self._explore(max_states)
        formula = f"G ({p!r} -> X {q!r})"
        for state, succs in graph.items():
            if p(state):
                for nxt in succs:
                    if not q(nxt):
                        return LtlResult(False, formula, len(graph),
                                         witness=[state, nxt])
        return LtlResult(True, formula, len(graph))

    def check_GF(self, p: Prop, max_states: int = 200_000) -> LtlResult:
        """G F p — *p* holds infinitely often on every infinite path.

        Violated iff some reachable cycle contains no *p*-state: we
        remove all *p*-states and look for a cycle in the remainder.
        """
        graph = self._explore(max_states)
        formula = f"G F {p!r}"
        allowed = {s for s in graph if not p(s)}
        WHITE, GREY, BLACK = 0, 1, 2
        color: Dict[Hashable, int] = {}

        def find_cycle(node, path):
            color[node] = GREY
            path.append(node)
            for nxt in graph[node]:
                if nxt not in allowed:
                    continue
                state = color.get(nxt, WHITE)
                if state == GREY:
                    return path[path.index(nxt):] + [nxt]
                if state == WHITE:
                    found = find_cycle(nxt, path)
                    if found is not None:
                        return found
            path.pop()
            color[node] = BLACK
            return None

        for node in allowed:
            if color.get(node, WHITE) == WHITE:
                lasso = find_cycle(node, [])
                if lasso is not None:
                    return LtlResult(False, formula, len(graph),
                                     witness=lasso)
        return LtlResult(True, formula, len(graph))


def block_transition_system(kind: str, variant=None) -> TransitionSystem:
    """Transition system of one relay station under its legal environment.

    States are ``(block_state, upstream_state, last_io)`` where
    ``last_io = (out_token, stop_in, stop_out)`` records the observable
    I/O of the transition that *led here* — so atoms can speak about
    both state and signals.
    """
    from ..lid.variant import DEFAULT_VARIANT
    from . import fsm
    from .env import DownstreamState, UpstreamState

    variant = variant or DEFAULT_VARIANT
    registered = kind == "half-registered"
    is_full = kind == "full"

    if is_full:
        initial = (fsm.FullRsState(), UpstreamState(), None)
    else:
        initial = (fsm.HalfRsState(), UpstreamState(), None)

    def successors(state):
        rs, up, _last = state
        for present in up.choices():
            for stop_in in DownstreamState.choices():
                if is_full:
                    out_tok, stop_out = fsm.full_rs_outputs(rs)
                    next_rs = fsm.full_rs_step(rs, present, stop_in,
                                               variant)
                else:
                    out_tok = rs.main
                    stop_out = fsm.half_rs_stop_out(rs, stop_in, variant,
                                                    registered)
                    next_rs = fsm.half_rs_step(rs, present, stop_in,
                                               variant, registered)
                next_up = up.after(present, stop_out)
                yield (next_rs, next_up, (out_tok, stop_in, stop_out))

    return TransitionSystem([initial], successors)


# -- the paper's properties as LTL atoms --------------------------------------


def _io(state):
    return state[2]


OUTPUT_STOPPED = Prop(
    "valid_out & stop_in",
    lambda s: _io(s) is not None and _io(s)[0] is not None and _io(s)[1],
)


def held_token_reappears(kind: str, variant=None) -> LtlResult:
    """G (valid_out & stop_in -> X same_out): hold-on-stop, in LTL.

    The successor's ``last_io`` records the output *presented after*
    the stopped cycle, which must carry the same payload.
    """
    ts = block_transition_system(kind, variant)

    graph = ts._explore(200_000)
    formula = "G (valid_out & stop_in -> X out_unchanged)"
    for state, succs in graph.items():
        io = _io(state)
        if io is None or io[0] is None or not io[1]:
            continue
        held_payload = io[0]
        for nxt in succs:
            nxt_io = _io(nxt)
            if nxt_io is None or nxt_io[0] != held_payload:
                return LtlResult(False, formula, len(graph),
                                 witness=[state, nxt])
    return LtlResult(True, formula, len(graph))


def eventually_emits(kind: str, variant=None) -> LtlResult:
    """G F (output consumable): on every infinite run, tokens keep
    getting through — the recurrence reading of liveness.

    True for the environment that includes stop-forever paths only if
    we restrict to *fair* paths; here we check the weaker but still
    informative statement on the cooperative-downstream system.
    """
    from ..lid.variant import DEFAULT_VARIANT
    from . import fsm
    from .env import EagerUpstream

    variant = variant or DEFAULT_VARIANT
    registered = kind == "half-registered"
    is_full = kind == "full"

    if is_full:
        initial = (fsm.FullRsState(), EagerUpstream(), None)
    else:
        initial = (fsm.HalfRsState(), EagerUpstream(), None)

    def successors(state):
        rs, up, _last = state
        present = up.choices()[0]
        stop_in = False
        if is_full:
            out_tok, stop_out = fsm.full_rs_outputs(rs)
            next_rs = fsm.full_rs_step(rs, present, stop_in, variant)
        else:
            out_tok = rs.main
            stop_out = fsm.half_rs_stop_out(rs, stop_in, variant,
                                            registered)
            next_rs = fsm.half_rs_step(rs, present, stop_in, variant,
                                       registered)
        yield (next_rs, up.after(present, stop_out),
               (out_tok, stop_in, stop_out))

    ts = TransitionSystem([initial], successors)
    emits = Prop("emits",
                 lambda s: _io(s) is not None and _io(s)[0] is not None
                 and not _io(s)[1])
    return ts.check_GF(emits)

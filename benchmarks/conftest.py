"""Shared helpers for the benchmark suite.

Every bench regenerates one paper artifact (DESIGN.md §5).  Tables are
written to ``benchmarks/results/`` so a ``pytest benchmarks/
--benchmark-only`` run leaves the full reproduction on disk, and also
echoed to the terminal when ``-s`` is passed.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def emit():
    """Write (and echo) a regenerated table."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _emit(experiment_id: str, table: str) -> None:
        path = os.path.join(RESULTS_DIR, f"{experiment_id}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(table + "\n")
        print(f"\n[{experiment_id}]\n{table}")

    return _emit

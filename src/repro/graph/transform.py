"""Topology transforms: the paper's deadlock cures and relay edits.

The paper's remedy for a system whose skeleton simulation injects a
deadlock: *"the cases that inject deadlocks can be 'cured' by low
intrusive changes (adding/substituting few relay stations)"*.  This
module implements those low-intrusive edits:

* :func:`promote_half_relays` — replace half relay stations with full
  ones (optionally only those on loops, which is where the hazard is);
* :func:`insert_relay` — add a relay station on a chosen edge;
* :func:`cure_deadlock` — the automated recipe: promote the half relay
  stations on loops until the skeleton simulation runs clean.

All transforms return modified copies; the input graph is untouched.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..errors import AnalysisError, StructuralError
from .model import SystemGraph


def _edges_on_loops(graph: SystemGraph) -> Set[int]:
    """Indices (into ``graph.edges``) of edges lying on some cycle."""
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(graph.nodes)
    for edge in graph.edges:
        g.add_edge(edge.src, edge.dst)
    on_loop: Set[int] = set()
    sccs = [c for c in nx.strongly_connected_components(g) if len(c) > 1]
    loop_nodes = set().union(*sccs) if sccs else set()
    # Self loops:
    loop_nodes |= {e.src for e in graph.edges if e.src == e.dst}
    for idx, edge in enumerate(graph.edges):
        if edge.src in loop_nodes and edge.dst in loop_nodes:
            # Edge is on a cycle iff both ends share a component.
            for comp in sccs:
                if edge.src in comp and edge.dst in comp:
                    on_loop.add(idx)
                    break
            if edge.src == edge.dst:
                on_loop.add(idx)
    return on_loop


def desugar_queues(graph: SystemGraph,
                   name: Optional[str] = None) -> SystemGraph:
    """Rewrite queued shells as plain shells behind relay stations.

    A depth-2 input FIFO with registered stop is token-flow equivalent
    to a full relay station feeding a plain shell (both are 2-slot skid
    stages; the equivalence is asserted empirically in
    ``benchmarks/bench_memory_placement.py``).  Each queued input is
    therefore desugared into ``(depth // 2)`` full stations plus
    ``(depth % 2)`` registered-stop half stations appended to its
    incoming chain.  The resulting graph contains only constructs the
    skeleton simulator and the MCR analyzer model natively, which is
    how both support queued shells.
    """
    plain = graph.copy(name or f"{graph.name}_desugared")
    queued = {
        node.name: node.queue_depth
        for node in plain.nodes.values()
        if node.queue_depth is not None
    }
    for node_name in queued:
        plain.nodes[node_name].queue_depth = None
    for edge in plain.edges:
        depth = queued.get(edge.dst)
        if depth is None:
            continue
        extra = ("full",) * (depth // 2) + \
            ("half-registered",) * (depth % 2)
        edge.relays = edge.relays + extra
    return plain


def promote_half_relays(
    graph: SystemGraph,
    only_loops: bool = True,
    name: Optional[str] = None,
) -> SystemGraph:
    """Replace half relay stations with full ones.

    With ``only_loops=True`` (the paper's minimal cure) only half relay
    stations sitting on cycles are promoted; feed-forward half stations
    are harmless and stay.
    """
    cured = graph.copy(name or f"{graph.name}_promoted")
    targets = _edges_on_loops(graph) if only_loops else set(
        range(len(graph.edges)))
    for idx, edge in enumerate(cured.edges):
        if idx in targets:
            edge.relays = tuple(
                "full" if spec.startswith("half") else spec
                for spec in edge.relays
            )
    return cured


def insert_relay(
    graph: SystemGraph,
    src: str,
    dst: str,
    spec: str = "full",
    position: int = 0,
    name: Optional[str] = None,
) -> SystemGraph:
    """Insert one relay station at *position* on the edge *src* -> *dst*.

    When several parallel edges exist the first is edited.  Raises
    :class:`StructuralError` if no such edge exists.
    """
    edited = graph.copy(name or f"{graph.name}_plus_rs")
    for edge in edited.edges:
        if edge.src == src and edge.dst == dst:
            chain = list(edge.relays)
            position = max(0, min(position, len(chain)))
            chain.insert(position, spec)
            edge.relays = tuple(chain)
            return edited
    raise StructuralError(f"no edge {src!r} -> {dst!r} to insert into")


def half_relays_on_loops(graph: SystemGraph) -> List[Tuple[str, str, int]]:
    """Locate loop-resident half relay stations: (src, dst, chain index).

    This is the paper's deadlock-hazard census: *"Any LID with full and
    half relay stations has potential deadlocks iff half relay stations
    are present in loops"*.
    """
    hazards: List[Tuple[str, str, int]] = []
    for idx in sorted(_edges_on_loops(graph)):
        edge = graph.edges[idx]
        for k, spec in enumerate(edge.relays):
            if spec.startswith("half"):
                hazards.append((edge.src, edge.dst, k))
    return hazards


def cure_deadlock(
    graph: SystemGraph,
    max_cycles: int = 10_000,
    name: Optional[str] = None,
) -> Tuple[SystemGraph, List[Tuple[str, str, int]]]:
    """Promote loop-resident half relay stations until the skeleton is clean.

    Returns ``(cured_graph, promotions)`` where *promotions* lists the
    stations that were upgraded.  If the graph already skeleton-simulates
    without deadlock it is returned unchanged (with an empty list) —
    the paper notes many hazardous-looking systems never actually inject
    their deadlock, so the cure is applied only when needed.
    """
    from .._registry import resolve

    check_deadlock = resolve("skeleton.check_deadlock")
    verdict = check_deadlock(graph, max_cycles=max_cycles)
    if not verdict.deadlocked and not verdict.potential:
        return graph, []
    hazards = half_relays_on_loops(graph)
    if not hazards:
        raise AnalysisError(
            f"{graph.name}: deadlock detected but no loop-resident half "
            f"relay stations to promote; manual restructuring required"
        )
    cured = promote_half_relays(graph, only_loops=True, name=name)
    verdict = check_deadlock(cured, max_cycles=max_cycles)
    if verdict.deadlocked:
        raise AnalysisError(
            f"{graph.name}: deadlock persists after promoting all "
            f"loop-resident half relay stations"
        )
    return cured, hazards

"""Relay stations: pipelined channel repeaters.

Relay stations are the paper's answer to multi-cycle wires: internally
pipelined blocks inserted on long channels that comply with the protocol
(*produce outputs in order, skip no valid output, hold their output on
asserted stop*).  Two flavours are implemented:

**Full relay station** (:class:`RelayStation`) — two data registers
(``main`` presented at the output, ``aux`` as the skid slot) and a
*registered* stop output.  When a downstream stop is first seen there is
always one token legitimately in flight (the upstream only learns of the
stop one cycle later, through the registered stop); the ``aux`` register
absorbs exactly that token.  This is the minimum-memory argument the
paper makes: a registered stop requires two registers.

**Half relay station** (:class:`HalfRelayStation`) — a single data
register and a *combinationally transparent* stop
(``stop_out = stop_in AND occupied``; under the original Carloni variant
simply ``stop_out = stop_in``).  It is safe and full-throughput, but it
extends the combinational stop chain, so it cannot break stop cycles —
which is why the paper finds potential deadlock exactly when half relay
stations sit in loops.  The ``registered_stop=True`` ablation shows the
alternative: registering the stop of a one-register stage is safe only
if the station advertises stop whenever occupied, halving its peak
throughput (bench EXP-T6/ablation; see DESIGN.md §7).

Both flavours reset with **void** contents (paper: relay stations are
initialized with non-valid outputs that drain toward the primary
outputs during the transient).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import StructuralError
from ..kernel.component import Component
from .channel import Channel
from .token import Token, VOID
from .variant import DEFAULT_VARIANT, ProtocolVariant


class _RelayBase(Component):
    """Shared wiring and accounting for relay station flavours."""

    def __init__(self, name: str, variant: ProtocolVariant = DEFAULT_VARIANT):
        super().__init__(name)
        self.variant = variant
        self.input: Optional[Channel] = None
        self.output: Optional[Channel] = None
        self.valid_out_cycles: List[int] = []

    def connect(self, input_channel: Channel, output_channel: Channel) -> None:
        """Wire the station between *input_channel* and *output_channel*."""
        if self.input is not None or self.output is not None:
            raise StructuralError(f"{self.name}: already connected")
        input_channel.bind_consumer(self.name)
        output_channel.bind_producer(self.name)
        self.input = input_channel
        self.output = output_channel

    def check_wiring(self) -> None:
        if self.input is None or self.output is None:
            raise StructuralError(f"{self.name}: relay station not connected")

    def throughput(self, cycles: int) -> float:
        """Fraction of the first *cycles* cycles with a valid output."""
        if cycles <= 0:
            return 0.0
        return sum(1 for c in self.valid_out_cycles if c < cycles) / cycles

    def _trace_occupancy(self, before: int) -> None:
        """Emit a ``relay/occupancy`` event when the fill level moved."""
        telemetry = self._sim.telemetry if self._sim else None
        if telemetry is None or telemetry.events is None:
            return
        occupancy = self.occupancy
        if occupancy != before:
            telemetry.events.emit("relay", "occupancy", self.cycle,
                                  relay=self.name, occupancy=occupancy)

    @property
    def registers(self) -> int:
        """Number of data registers (2 for full, 1 for half)."""
        raise NotImplementedError

    # -- fault injection ---------------------------------------------------

    def inject_drop(self) -> bool:
        """Erase one buffered token (SEU: a data register loses its
        validity bit).  Returns whether a token was actually lost.

        Legal only from a scheduler *state*-injection hook (after the
        edge phase); see :mod:`repro.inject`.
        """
        raise NotImplementedError

    def inject_duplicate(self) -> bool:
        """Re-arm the station so the current token is emitted twice.

        Returns whether a duplicate was actually created.  Only the
        two-register full station can express this fault; the half
        station raises :class:`~repro.errors.InjectionError`.
        """
        from ..errors import InjectionError

        raise InjectionError(
            f"{self.name}: a one-register station has no slot to "
            f"duplicate into"
        )


class RelayStation(_RelayBase):
    """Full relay station: two registers, registered stop output."""

    def __init__(self, name: str, variant: ProtocolVariant = DEFAULT_VARIANT):
        super().__init__(name, variant)
        self._main: Token = VOID
        self._aux: Token = VOID
        self._stop_reg: bool = False

    @property
    def registers(self) -> int:
        return 2

    @property
    def occupancy(self) -> int:
        """Number of valid tokens currently buffered (0, 1 or 2)."""
        return int(self._main.valid) + int(self._aux.valid)

    def reset(self) -> None:
        self._main = VOID
        self._aux = VOID
        self._stop_reg = False
        self.valid_out_cycles = []

    def publish(self) -> None:
        self.output.drive(self._main)
        if self._stop_reg:
            self.input.set_stop(True)

    def tick(self) -> None:
        occupancy_before = self.occupancy
        stop_in = self.output.stop_asserted()
        if self._main.valid and not stop_in:
            # A token actually departs this cycle (valid and unstopped).
            self.valid_out_cycles.append(self.cycle)
        incoming = self.input.read()
        accepted = incoming.valid and not self._stop_reg
        consumed = self.variant.slot_consumed(self._main.valid, stop_in)

        if self._aux.valid:
            # FULL: the registered stop guarantees nothing arrives now.
            if consumed:
                self._main = self._aux
                self._aux = VOID
                self._stop_reg = False
            # else hold both; stop stays asserted.
        elif consumed:
            self._main = incoming if accepted else VOID
            self._stop_reg = False
        else:
            # main is blocked; a token arriving right now is the one
            # in-flight datum the aux register exists to absorb.
            if accepted:
                self._aux = incoming
                self._stop_reg = True
            # else keep waiting with one buffered token, stop low.
        self._trace_occupancy(occupancy_before)

    # -- fault injection ---------------------------------------------------

    def inject_drop(self) -> bool:
        if self._aux.valid:
            # Lose the older token; the skid-slot survivor moves up and
            # the registered stop deasserts (the station believes it
            # has room again).
            self._main = self._aux
            self._aux = VOID
            self._stop_reg = False
            return True
        if self._main.valid:
            self._main = VOID
            return True
        return False

    def inject_duplicate(self) -> bool:
        if self._main.valid and not self._aux.valid:
            # The skid slot re-captures the token currently presented:
            # downstream will see the same payload twice, and the
            # registered stop back-pressures as if a real token had
            # been absorbed.
            self._aux = self._main
            self._stop_reg = True
            return True
        return False


class HalfRelayStation(_RelayBase):
    """Half relay station: one register, combinationally transparent stop.

    Parameters
    ----------
    registered_stop:
        If true, use the ablation design whose stop output is a register
        asserted whenever the station is occupied.  Safe, but at most one
        token every two cycles can cross it (DESIGN.md §7 explains why
        this illustrates the two-register minimum of the full station).
    """

    def __init__(
        self,
        name: str,
        variant: ProtocolVariant = DEFAULT_VARIANT,
        registered_stop: bool = False,
    ):
        super().__init__(name, variant)
        self.registered_stop = registered_stop
        self._main: Token = VOID

    @property
    def registers(self) -> int:
        return 1

    @property
    def occupancy(self) -> int:
        """Number of valid tokens currently buffered (0 or 1)."""
        return int(self._main.valid)

    def reset(self) -> None:
        self._main = VOID
        self.valid_out_cycles = []

    def publish(self) -> None:
        self.output.drive(self._main)
        if self.registered_stop and self._main.valid:
            # Conservative registered stop: advertise whenever occupied.
            self.input.set_stop(True)

    def settle(self) -> None:
        if self.registered_stop:
            return
        stop_in = self.output.stop_asserted()
        if self.variant is ProtocolVariant.CASU:
            stop_out = stop_in and self._main.valid
        else:
            # Original protocol: stop back-propagated regardless of
            # the validity of the datum it lands on.
            stop_out = stop_in
        if stop_out:
            self.input.set_stop(True)

    def tick(self) -> None:
        occupancy_before = self.occupancy
        stop_in = self.output.stop_asserted()
        if self._main.valid and not stop_in:
            self.valid_out_cycles.append(self.cycle)
        incoming = self.input.read()
        consumed = self.variant.slot_consumed(self._main.valid, stop_in)
        # The acceptance decision reads the *settled* stop on the
        # station's own input — which includes the stop this station
        # itself propagated combinationally during settle (transparent
        # mode) or published (registered-stop ablation).  Ticks always
        # run after the settle fixpoint, so the accessor sees the final
        # value; see the same-cycle-stop regression in
        # tests/lid/test_relay.py.
        accepted = incoming.valid and not self.input.stop_asserted()

        if consumed:
            self._main = incoming if accepted else VOID
        # else: hold; the transparent (or occupied-registered) stop has
        # already told the upstream to hold as well, so nothing is lost.
        self._trace_occupancy(occupancy_before)

    # -- fault injection ---------------------------------------------------

    def inject_drop(self) -> bool:
        if self._main.valid:
            self._main = VOID
            return True
        return False

"""Property-based tests on tokens and projections."""

import pytest

from hypothesis import given, strategies as st

from repro.lid.token import Token, VOID, payloads, valid_stream

pytestmark = pytest.mark.slow

payload = st.one_of(st.integers(), st.text(max_size=5))
maybe_payload = st.one_of(st.none(), payload)


@given(payload)
def test_valid_token_roundtrip(value):
    tok = Token(value)
    assert tok.valid and tok.value == value


@given(payload, payload)
def test_equality_iff_same_payload(a, b):
    assert (Token(a) == Token(b)) == (a == b)


@given(payload)
def test_hash_consistent_with_eq(value):
    assert hash(Token(value)) == hash(Token(value))


@given(st.lists(payload))
def test_valid_stream_projection_identity(values):
    assert payloads(valid_stream(values)) == values


@given(st.lists(maybe_payload))
def test_projection_drops_exactly_the_voids(pattern):
    toks = [VOID if v is None else Token(v) for v in pattern]
    assert payloads(toks) == [v for v in pattern if v is not None]


@given(st.lists(maybe_payload), st.lists(maybe_payload))
def test_projection_is_homomorphic_over_concat(a, b):
    toks_a = [VOID if v is None else Token(v) for v in a]
    toks_b = [VOID if v is None else Token(v) for v in b]
    assert payloads(toks_a + toks_b) == payloads(toks_a) + payloads(toks_b)


@given(st.lists(maybe_payload))
def test_void_insertion_invariance(pattern):
    """Inserting voids anywhere never changes the projection — the
    algebraic heart of latency insensitivity."""
    toks = [VOID if v is None else Token(v) for v in pattern]
    padded = []
    for tok in toks:
        padded.append(VOID)
        padded.append(tok)
    padded.append(VOID)
    assert payloads(padded) == payloads(toks)

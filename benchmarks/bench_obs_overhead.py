"""EXP-O2: cross-run observability overhead on a fault campaign.

The run ledger and live progress reporting are side channels: they must
not noticeably tax the campaign they observe.  The bound mirrors
EXP-O1's telemetry contract — a campaign with ledger append + progress
reporting enabled must stay within **1.5x** of the bare campaign.  CI
reads the emitted ``BENCH_EXP-O2-obs-overhead.json`` and fails
(non-blocking) if ``overhead_ratio`` exceeds the bound.
"""

import io
import os
import tempfile
from time import perf_counter

from repro.bench.tables import format_table
from repro.graph import figure2
from repro.inject import run_campaign
from repro.obs import ProgressReporter, append_record, make_record

CYCLES = 64
SAMPLES = 24
BOUND = 1.5


def _campaign(progress=None):
    graph = figure2()
    report = run_campaign(graph, cycles=CYCLES, samples=SAMPLES, seed=0,
                          progress=progress)
    return graph, report


def _run_disabled():
    started = perf_counter()
    _campaign()
    return perf_counter() - started


def _run_enabled(ledger_path):
    started = perf_counter()
    progress = ProgressReporter(0, "bench", out=io.StringIO(),
                                interval=0.0)
    _graph, report = _campaign(progress=progress)
    append_record(ledger_path, make_record(
        "inject-campaign",
        topology="feedback",
        fingerprint="bench",
        variant="casu",
        params={"cycles": CYCLES, "samples": SAMPLES, "seed": 0},
        verdict=dict(report.counts()),
        git_rev="bench",
        meta={"wall_seconds": perf_counter() - started}))
    return perf_counter() - started


def test_bench_obs_overhead(benchmark, emit):
    fd, ledger_path = tempfile.mkstemp(suffix=".jsonl")
    os.close(fd)
    os.unlink(ledger_path)
    try:
        disabled = min(_run_disabled() for _ in range(3))
        enabled = min(_run_enabled(ledger_path) for _ in range(3))
    finally:
        if os.path.exists(ledger_path):
            os.unlink(ledger_path)
    ratio = enabled / disabled if disabled else float("inf")
    benchmark.pedantic(_run_disabled, rounds=1, iterations=1)
    rows = [
        ("disabled", f"{disabled * 1e3:.2f} ms", "1.00x"),
        ("enabled (ledger+progress)", f"{enabled * 1e3:.2f} ms",
         f"{ratio:.2f}x"),
    ]
    table = format_table(
        ("observability", f"wall ({SAMPLES}-fault campaign)",
         "vs disabled"),
        rows,
        title=f"Run-ledger + progress overhead on a figure2 fault "
              f"campaign (bound: enabled <= {BOUND}x disabled)",
    )
    emit("EXP-O2-obs-overhead", table, rows=rows,
         wall_seconds=disabled + enabled,
         params={"cycles": CYCLES, "samples": SAMPLES, "bound": BOUND},
         counters={"disabled_seconds": disabled,
                   "enabled_seconds": enabled,
                   "overhead_ratio": ratio})

"""Gate-level shell wrapper.

The structural counterpart of :class:`repro.lid.shell.Shell` for a
pearl with N inputs and M output channels.  The pearl itself is kept
abstract: the netlist exposes ``pearl_out_<j>`` input ports (what the
pearl would produce this cycle) and a ``fire`` output (the clock-enable
the shell would hand to the pearl) so any datapath can be bolted on;
for self-contained simulation :func:`identity_shell_netlist` wires
pearl output 0 straight to input 0.

Control equations (refined protocol):

* ``fire = AND_k(in_valid_k) AND NOT OR_j(stop_j AND out_valid_j)``
* ``stop_to_input_k = NOT fire AND in_valid_k``
* per output channel: ``out_valid' = fire OR (out_valid AND stop)``,
  ``out_data' = fire ? pearl_out : out_data``

Under the original protocol the two validity qualifications drop away.
"""

from __future__ import annotations

from typing import List

from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant
from .netlist import Netlist


def shell_netlist(
    n_inputs: int = 1,
    n_outputs: int = 1,
    width: int = 8,
    variant: ProtocolVariant = DEFAULT_VARIANT,
    init_valid: bool = True,
    name: str = "shell",
) -> Netlist:
    """Structural shell control + output registers (pearl abstract)."""
    nl = Netlist(name)
    in_valids: List[str] = []
    for k in range(n_inputs):
        nl.add_input(f"in_data_{k}", width)
        in_valids.append(nl.add_input(f"in_valid_{k}"))
    stops: List[str] = [nl.add_input(f"stop_{j}") for j in range(n_outputs)]
    pearl_outs: List[str] = [
        nl.add_input(f"pearl_out_{j}", width) for j in range(n_outputs)
    ]
    fire = nl.add_output("fire")
    for k in range(n_inputs):
        nl.add_output(f"stop_to_input_{k}")
    for j in range(n_outputs):
        nl.add_output(f"out_data_{j}", width)
        nl.add_output(f"out_valid_{j}")

    # all_valid = AND over input valids
    acc = in_valids[0]
    for k, valid in enumerate(in_valids[1:], start=1):
        acc = nl.g_and(acc, valid, f"valid_and_{k}")
    all_valid = nl.cell("BUF", "u_allv", a=acc, y=nl.net("all_valid")) \
        .pins["y"]

    # blocked = OR over output channels of the variant's blocking term
    blocked = None
    for j in range(n_outputs):
        out_valid_q = nl.net(f"out_valid_q_{j}")
        if variant is ProtocolVariant.CASU:
            term = nl.g_and(stops[j], out_valid_q, f"block_{j}")
        else:
            term = nl.g_or(stops[j], stops[j], f"block_{j}")  # plain stop
        blocked = term if blocked is None else nl.g_or(
            blocked, term, f"block_acc_{j}")
    not_blocked = nl.g_not(blocked, "not_blocked")
    nl.g_and(all_valid, not_blocked, "fire_net")
    nl.cell("BUF", "u_fire", a="fire_net", y=fire)

    stalled = nl.g_not("fire_net", "stalled")
    for k in range(n_inputs):
        if variant is ProtocolVariant.CASU:
            nl.g_and(stalled, in_valids[k], f"stop_to_input_{k}_net")
        else:
            nl.cell("BUF", f"u_stopin_{k}", a=stalled,
                    y=nl.net(f"stop_to_input_{k}_net"))
        nl.cell("BUF", f"u_stopout_{k}", a=f"stop_to_input_{k}_net",
                y=f"stop_to_input_{k}")

    for j in range(n_outputs):
        out_valid_q = f"out_valid_q_{j}"
        out_data_q = nl.net(f"out_data_q_{j}", width)
        held = nl.g_and(out_valid_q, stops[j], f"held_{j}")
        valid_next = nl.g_or("fire_net", held, f"out_valid_next_{j}")
        nl.g_reg(valid_next, out_valid_q, init=int(init_valid))
        data_next = nl.g_mux(out_data_q, pearl_outs[j], "fire_net",
                             f"out_data_next_{j}", width)
        nl.g_reg(data_next, out_data_q, width=width)
        nl.cell("BUF", f"u_odata_{j}", a=out_data_q, y=f"out_data_{j}",
                width=width)
        nl.cell("BUF", f"u_ovalid_{j}", a=out_valid_q, y=f"out_valid_{j}")

    nl.validate()
    return nl


def identity_shell_netlist(
    width: int = 8,
    variant: ProtocolVariant = DEFAULT_VARIANT,
    name: str = "identity_shell",
) -> Netlist:
    """A 1-in/1-out shell whose pearl is the identity function.

    Self-contained: ``pearl_out_0`` is driven internally from
    ``in_data_0``, so the netlist simulates with just the channel wires.
    """
    nl = Netlist(name)
    in_data = nl.add_input("in_data_0", width)
    in_valid = nl.add_input("in_valid_0")
    stop = nl.add_input("stop_0")
    nl.add_output("fire")
    nl.add_output("stop_to_input_0")
    nl.add_output("out_data_0", width)
    nl.add_output("out_valid_0")

    out_valid_q = nl.net("out_valid_q")
    out_data_q = nl.net("out_data_q", width)

    if variant is ProtocolVariant.CASU:
        blocked = nl.g_and(stop, out_valid_q, "blocked")
    else:
        blocked = nl.cell("BUF", "u_blk", a=stop, y=nl.net("blocked")) \
            .pins["y"]
    not_blocked = nl.g_not(blocked, "not_blocked")
    fire = nl.g_and(in_valid, not_blocked, "fire_net")
    nl.cell("BUF", "u_fire", a=fire, y="fire")

    stalled = nl.g_not(fire, "stalled")
    if variant is ProtocolVariant.CASU:
        nl.g_and(stalled, in_valid, "stop_up")
    else:
        nl.cell("BUF", "u_stup", a=stalled, y=nl.net("stop_up"))
    nl.cell("BUF", "u_stupo", a="stop_up", y="stop_to_input_0")

    held = nl.g_and(out_valid_q, stop, "held")
    valid_next = nl.g_or(fire, held, "out_valid_next")
    nl.g_reg(valid_next, out_valid_q, init=1)
    data_next = nl.g_mux(out_data_q, in_data, fire, "out_data_next", width)
    nl.g_reg(data_next, out_data_q, width=width)
    nl.cell("BUF", "u_od", a=out_data_q, y="out_data_0", width=width)
    nl.cell("BUF", "u_ov", a=out_valid_q, y="out_valid_0")
    nl.validate()
    return nl

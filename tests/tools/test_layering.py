"""The layering lint: the tree is clean and the lint can actually see.

The second half matters as much as the first: a lint that silently
fails to resolve relative or function-level imports would report the
tree clean forever, so the detection machinery gets its own tests.
"""

import importlib.util
import os
import textwrap

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
TOOL_PATH = os.path.abspath(
    os.path.join(REPO_ROOT, "tools", "check_layering.py"))

spec = importlib.util.spec_from_file_location("check_layering", TOOL_PATH)
check_layering = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_layering)


class TestRepoIsClean:
    def test_no_violations_in_src(self):
        assert check_layering.check() == []


class TestResolution:
    def test_relative_import_resolution(self):
        resolve = check_layering._resolve_relative
        assert resolve("repro.graph.model", 1, "topologies") == \
            "repro.graph.topologies"
        assert resolve("repro.graph.model", 2, "ir") == "repro.ir"
        assert resolve("repro.graph.model", 2, "") == "repro"

    def test_prefix_matching_is_component_wise(self):
        matches = check_layering._matches
        assert matches("repro.cli", "repro.cli")
        assert matches("repro.cli.main", "repro.cli")
        assert not matches("repro.client", "repro.cli")


class TestDetection:
    def _imports_of(self, tmp_path, module, source):
        path = tmp_path / "mod.py"
        path.write_text(textwrap.dedent(source))
        return {name for _line, name in
                check_layering._imports(str(path), module)}

    def test_sees_function_level_and_relative_imports(self, tmp_path):
        found = self._imports_of(tmp_path, "repro.graph.transform", """\
            from ..skeleton import deadlock

            def late():
                from repro.cli import main
                import repro.lid.elaborate
            """)
        assert "repro.skeleton" in found
        assert "repro.skeleton.deadlock" in found
        assert "repro.cli.main" in found
        assert "repro.lid.elaborate" in found

    def test_from_dot_import_submodule(self, tmp_path):
        # "from . import skeleton" pulls in the sibling submodule.
        found = self._imports_of(tmp_path, "repro.graph.model",
                                 "from .. import skeleton\n")
        assert "repro.skeleton" in found


class TestCodegenRule:
    """codegen may consume repro.ir and repro.exec.cache — nothing else
    from the layers around it; the lint must catch a deliberate slip."""

    def _violations(self, tmp_path, source):
        path = tmp_path / "codegen.py"
        path.write_text(textwrap.dedent(source))
        return check_layering.check_file(str(path),
                                         "repro.skeleton.codegen")

    def test_allowed_imports_are_clean(self, tmp_path):
        assert self._violations(tmp_path, """\
            from ..ir import LoweredSystem
            from .sim import SkeletonSim
            from repro.exec.cache import ResultCache
            """) == []

    def test_lid_import_is_flagged(self, tmp_path):
        found = self._violations(tmp_path, """\
            def late():
                from repro.lid.variant import DEFAULT_VARIANT
            """)
        assert len(found) >= 1
        assert "repro.lid" in found[0]

    def test_exec_outside_cache_is_flagged(self, tmp_path):
        found = self._violations(tmp_path,
                                 "from repro.exec.pool import "
                                 "map_deterministic\n")
        assert found and "repro.exec" in found[0]

    def test_shipped_codegen_module_is_clean(self):
        src = os.path.join(REPO_ROOT, "src", "repro", "skeleton",
                           "codegen.py")
        assert check_layering.check_file(
            src, "repro.skeleton.codegen") == []

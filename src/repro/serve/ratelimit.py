"""Per-client token-bucket rate limiting for the campaign service.

A classic token bucket: each client key (peer address, or the
``X-Repro-Client`` header when present — useful behind a proxy) owns a
bucket holding up to *burst* tokens that refills continuously at *rate*
tokens/second.  Each request spends one token; an empty bucket means
HTTP 429 with a ``Retry-After`` hint of one refill interval.

The bucket map is LRU-bounded so an open service cannot be grown
without limit by spraying distinct client keys; evicting a stale
client merely hands it a fresh (full) bucket on return, which errs on
the side of admitting traffic.

``rate <= 0`` disables limiting entirely (the default: the service is
a localhost lab tool first).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Hashable, Optional

#: Default ceiling on distinct per-client buckets kept live.
DEFAULT_MAX_CLIENTS = 1024


class TokenBucket:
    """One client's budget: capacity *burst*, refill *rate*/second."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float,
                 now: Optional[float] = None) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = time.monotonic() if now is None else now

    def allow(self, now: Optional[float] = None) -> bool:
        """Spend one token if available; refill lazily on each call."""
        if now is None:
            now = time.monotonic()
        elapsed = max(now - self.updated, 0.0)
        self.updated = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class RateLimiter:
    """LRU-bounded map of client key -> :class:`TokenBucket`."""

    def __init__(self, rate: float, burst: Optional[float] = None,
                 max_clients: int = DEFAULT_MAX_CLIENTS) -> None:
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(
            2.0 * self.rate, 1.0)
        self.max_clients = max(int(max_clients), 1)
        self._buckets: "OrderedDict[Hashable, TokenBucket]" = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def allow(self, client: Hashable,
              now: Optional[float] = None) -> bool:
        """True if *client* may proceed (always true when disabled)."""
        if not self.enabled:
            return True
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, now)
            self._buckets[client] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client)
        return bucket.allow(now)

    def retry_after(self) -> float:
        """Seconds until one token exists again (the 429 hint)."""
        return 1.0 / self.rate if self.rate > 0 else 0.0

"""EXP-D3: transient length is predictable up front.

Paper: "the transient length is related to the number of relay stations
and shells, and can be predicted upfront" — which is what makes the
simulate-to-extinction deadlock strategy cheap and terminating.
"""

import pytest

from repro.bench.runner import run_transients
from repro.graph import pipeline, reconvergent, ring, tree
from repro.skeleton import transient_and_period, transient_bound


def test_bench_transient_table(benchmark, emit):
    table, rows = benchmark.pedantic(run_transients, rounds=1,
                                     iterations=1)
    emit("EXP-D3-transients", table)
    assert all(row[-1] for row in rows)  # every measurement within bound


@pytest.mark.parametrize("graph,label", [
    (tree(3), "tree"),
    (figure := reconvergent(long_relays=(2, 2), short_relays=1),
     "reconvergent"),
    (ring(3, relays_per_arc=2), "ring"),
    (pipeline(6, relays_per_hop=2), "pipeline"),
])
def test_bench_periodicity_detection(benchmark, graph, label):
    def run():
        return transient_and_period(graph)

    transient, period = benchmark(run)
    assert period >= 1
    assert transient <= transient_bound(graph)


def test_bench_transient_grows_with_storage(benchmark):
    """More relay stations -> longer drain -> longer transient."""

    def sweep():
        measured = []
        for relays in (1, 2, 4):
            graph = pipeline(3, relays_per_hop=relays)
            transient, _period = transient_and_period(graph)
            measured.append(transient)
        return measured

    measured = benchmark(sweep)
    assert measured == sorted(measured)

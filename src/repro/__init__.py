"""repro — reproduction of Casu & Macchiarulo, *Issues in Implementing
Latency Insensitive Protocols* (DATE 2004).

A latency-insensitive design (LID) toolkit: protocol blocks (shells,
full and half relay stations), a cycle-accurate simulation kernel, a
topology/analysis layer implementing the paper's throughput and
transient formulas, a skeleton (valid/stop-only) simulator for deadlock
prediction, and an explicit-state model checker for the paper's safety
properties.

Quickstart::

    from repro import LidSystem, pearls

    sys_ = LidSystem("pipe")
    src = sys_.add_source("src")
    a = sys_.add_shell("A", pearls.Identity())
    sink = sys_.add_sink("out")
    sys_.connect(src, a)
    sys_.connect(a, sink, relays=2)   # a 2-cycle interconnect
    sys_.run(20)
    print(sink.payloads)
"""

from . import pearls
from ._version import __version__
from .errors import (
    AnalysisError,
    CombinationalLoopError,
    ConvergenceError,
    DeadlockError,
    ElaborationError,
    ProtocolViolationError,
    ReproError,
    StructuralError,
    VerificationError,
)
from .kernel import Simulator, Trace
from .lid import (
    VOID,
    Channel,
    HalfRelayStation,
    LidSystem,
    ProtocolVariant,
    RelayStation,
    Shell,
    Sink,
    Source,
    Token,
)

__all__ = [
    "AnalysisError",
    "Channel",
    "CombinationalLoopError",
    "ConvergenceError",
    "DeadlockError",
    "ElaborationError",
    "HalfRelayStation",
    "LidSystem",
    "ProtocolVariant",
    "ProtocolViolationError",
    "RelayStation",
    "ReproError",
    "Shell",
    "Simulator",
    "Sink",
    "Source",
    "StructuralError",
    "Token",
    "Trace",
    "VOID",
    "VerificationError",
    "__version__",
    "pearls",
]

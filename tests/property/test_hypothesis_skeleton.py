"""Property-based tests tying the three simulation engines together.

The scalar skeleton, the vectorized batch skeleton and the full
data-carrying simulator implement the same semantics three times over;
hypothesis hunts for inputs where they disagree.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph import pipeline, random_dag, tree
from repro.skeleton import BatchSkeletonSim, SkeletonSim

pytestmark = pytest.mark.slow

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

stop_patterns = st.lists(st.booleans(), min_size=1, max_size=5).map(tuple)
source_patterns = st.lists(st.booleans(), min_size=1, max_size=4).map(
    lambda bits: tuple(bits) if any(bits) else (True,))


@given(pattern=stop_patterns)
@settings(**SETTINGS)
def test_batch_matches_scalar_on_pipeline(pattern):
    graph = pipeline(3, relays_per_hop=2)
    cycles = 120
    batch = BatchSkeletonSim(graph, [{"out": pattern}])
    batch.run(cycles)
    scalar = SkeletonSim(graph, sink_patterns={"out": pattern},
                         detect_ambiguity=False)
    accepted = 0
    for _ in range(cycles):
        _f, acc = scalar.step()
        accepted += sum(acc)
    assert int(batch.sink_accepted[0][0]) == accepted


@given(seed=st.integers(0, 5_000), pattern=stop_patterns)
@settings(**SETTINGS)
def test_batch_matches_scalar_on_random_dags(seed, pattern):
    graph = random_dag(seed, shells=4, half_probability=0.0)
    sinks = [n.name for n in graph.sinks()]
    cycles = 80
    batch = BatchSkeletonSim(graph, [{sinks[0]: pattern}])
    batch.run(cycles)
    scalar = SkeletonSim(graph, sink_patterns={sinks[0]: pattern},
                         detect_ambiguity=False)
    fires = [0] * len(scalar.shell_names)
    for _ in range(cycles):
        f, _acc = scalar.step()
        for i, fired in enumerate(f):
            fires[i] += fired
    for i, name in enumerate(scalar.shell_names):
        j = batch.shell_names.index(name)
        assert int(batch.shell_fired[j][0]) == fires[i], name


@given(src=source_patterns, sink=stop_patterns)
@settings(**SETTINGS)
def test_scalar_matches_full_simulation(src, sink):
    """Skeleton token counts equal the elaborated system's delivery."""
    graph = tree(2)
    sources = {n.name: src for n in graph.sources()}
    cycles = 90
    scalar = SkeletonSim(graph, source_patterns=sources,
                         sink_patterns={"out": sink},
                         detect_ambiguity=False)
    accepted = 0
    for _ in range(cycles):
        _f, acc = scalar.step()
        accepted += sum(acc)

    # Full simulation with matching scripts.
    from repro.lid.token import Token, VOID

    def stream_factory(pattern=src):
        def gen():
            k = 0
            while True:
                for offered in pattern:
                    if offered:
                        yield Token(k)
                        k += 1
                    else:
                        yield VOID
        return gen()

    for node in graph.sources():
        node.stream_factory = stream_factory
    graph.nodes["out"].stop_script = (
        lambda c, pattern=sink: pattern[c % len(pattern)])
    system = graph.elaborate()
    system.run(cycles)
    assert len(system.sinks["out"].received) == accepted


@given(seed=st.integers(0, 5_000))
@settings(**SETTINGS)
def test_stops_on_voids_vanish_under_refinement(seed):
    """The refinement's locality claim, fuzzed (EXP-T7).

    Neither total stop counts nor total stops-on-voids are monotone
    between the variants — the refined system makes different progress,
    so scripted sink stops land on different cycles (hypothesis found
    counterexamples to both naive formulations).  The precise invariant
    is: under the refinement, **no protocol-generated stop ever lands
    on a void** — all residual stops-on-voids are on sink channels,
    where a script, not the protocol, asserted them.
    """
    from repro.lid.variant import ProtocolVariant

    graph = random_dag(seed, shells=4)
    sinks = {n.name: (False, True) for n in graph.sinks()}
    sim = SkeletonSim(graph, variant=ProtocolVariant.CASU,
                      sink_patterns=sinks, detect_ambiguity=False)
    for _ in range(100):
        sim.step()
    assert sim.internal_stops_on_voids_total == 0

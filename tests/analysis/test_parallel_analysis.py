"""jobs-invariance of the analysis layer: sweeps, liveness, benches.

Every entry point that accepts ``jobs`` must return exactly what the
serial path returns — parallelism is a wall-clock knob, nothing else.
"""

import filecmp
import os

from repro.analysis.report import analyze
from repro.analysis.sweep import (
    imbalance_series,
    loop_series,
    transient_series,
)
from repro.analysis.throughput import throughput_sweep
from repro.exec import GraphRef, ResultCache
from repro.graph import figure2, pipeline, ring
from repro.lid.variant import ProtocolVariant
from repro.skeleton import check_deadlock


class TestSeriesJobsInvariance:
    def test_loop_series(self):
        assert loop_series(jobs=3).points == loop_series().points

    def test_imbalance_series(self):
        assert imbalance_series(jobs=2).points == imbalance_series().points

    def test_transient_series(self):
        assert transient_series(jobs=2).points == transient_series().points


class TestThroughputSweepJobs:
    def test_chunked_sweep_matches_serial(self):
        graph = pipeline(3, relays_per_hop=1)
        patterns = [{"out": tuple(i < k for i in range(6))}
                    for k in range(6)]
        serial = throughput_sweep(graph, sink_patterns=patterns)
        parallel = throughput_sweep(graph, sink_patterns=patterns, jobs=3)
        assert parallel == serial

    def test_explicit_graph_ref(self):
        graph = pipeline(3, relays_per_hop=1)
        patterns = [{"out": (True,)}, {"out": (False,)}]
        ref = GraphRef.from_spec("pipeline:stages=3,relays=1")
        assert (throughput_sweep(graph, sink_patterns=patterns, jobs=2,
                                 graph_ref=ref)
                == throughput_sweep(graph, sink_patterns=patterns))


class TestDeadlockJobs:
    # The one topology class that actually runs both probes: a half
    # relay station on a loop (ambiguous stop network possible).
    def _graph(self):
        return ring(2, relays_per_arc=[["half"], ["full"]])

    def test_parallel_probes_match_serial(self):
        for variant in (ProtocolVariant.CASU, ProtocolVariant.CARLONI):
            serial = check_deadlock(self._graph(), variant=variant)
            parallel = check_deadlock(self._graph(), variant=variant,
                                      jobs=2)
            assert parallel == serial

    def test_unambiguous_graph_stays_serial_and_agrees(self):
        serial = check_deadlock(figure2())
        assert check_deadlock(figure2(), jobs=4) == serial

    def test_verdict_cache_hits_and_agrees(self):
        cache = ResultCache.memory()
        first = check_deadlock(self._graph(), cache=cache)
        assert cache.stats.to_dict() == {"hits": 0, "misses": 1,
                                         "evictions": 0}
        second = check_deadlock(self._graph(), cache=cache)
        assert cache.stats.hits == 1
        assert second == first

    def test_analyze_forwards_jobs(self):
        serial = analyze(figure2())
        parallel = analyze(figure2(), jobs=2,
                           graph_ref=GraphRef.from_spec("figure2"))
        assert parallel == serial


class TestWriteResultsJobs:
    def test_artifact_files_identical(self, tmp_path):
        from repro.bench.runner import write_results

        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial_paths = write_results(str(serial_dir))
        parallel_paths = write_results(str(parallel_dir), jobs=2)
        serial_names = sorted(os.path.basename(p) for p in serial_paths)
        parallel_names = sorted(os.path.basename(p)
                                for p in parallel_paths)
        assert serial_names == parallel_names
        # Tables must match byte-for-byte; JSON records differ only in
        # measured wall seconds, so compare just the .txt artifacts.
        # EXP-D2's table embeds wall-clock timings (it is a speed
        # benchmark), so it is nondeterministic even serial-vs-serial.
        tables = [n for n in serial_names
                  if n.endswith(".txt") and n != "EXP-D2.txt"]
        assert tables
        match, mismatch, errors = filecmp.cmpfiles(
            str(serial_dir), str(parallel_dir), tables, shallow=False)
        assert not mismatch and not errors

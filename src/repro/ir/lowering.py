"""Lowering: one canonical construction path from graph to backends.

Every backend used to re-walk the :class:`~repro.graph.model.SystemGraph`
and re-expand relay chains with private logic — lid elaboration, the
scalar skeleton, the vectorized skeleton and the analysis walkers each
had their own copy of "edge -> relay chain -> wire segments".  A
:class:`LoweredSystem` is that expansion done once: frozen,
integer-indexed node/edge/relay/hop tables, produced by the single
:func:`lower` entry point and consumed by all four paths.

The tables replicate the historical scalar-builder expansion *exactly*
(edge order, relay-station names ``"A->B.rs0"``, hop names ``"A->B[0]"``
with ``~n`` duplicate suffixes, shell out-register allocation order), so
switching a backend from its private walk to the IR is bit-invisible:
the differential conformance suite and the golden-result tests hold to
the byte.

A lowering also carries a canonical, content-addressed **structural
fingerprint** (see :func:`structural_fingerprint`): nodes and edges in
sorted canonical order, independent of pickle details or declaration
order, stable across Python versions.  ``repro.exec`` keys its result
cache and by-value :class:`~repro.exec.graphs.GraphRef` identity on it.

Lowerings are memoized per graph object, guarded by a cheap structural
signature — mutating a graph in place (e.g. editing ``edge.relays``)
invalidates the memo on the next :func:`lower` call.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from fractions import Fraction
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import StructuralError
from ..graph.model import (
    DEFAULT_DOMAIN,
    SystemGraph,
    validate_bridge_spec,
    validate_relay_spec,
)

__all__ = [
    "SRC",
    "SHELL",
    "SINK",
    "RS_FULL",
    "RS_HALF",
    "RS_HALF_REG",
    "RS_BRIDGE",
    "RS_KIND_TAG",
    "IRNode",
    "IREdge",
    "IRRelay",
    "IRHop",
    "IRDomain",
    "IRBridge",
    "LoweredSystem",
    "LowerStats",
    "STATS",
    "firing_schedule",
    "lower",
    "structural_fingerprint",
]

#: Element kind tags, kept as small ints for compact state tuples.
#: The numbering is part of the conformance contract: the skeleton
#: engines store these in their dispatch tables and state snapshots.
#: ``RS_BRIDGE`` is the bisynchronous-FIFO clock-domain bridge — a
#: relay-like hop element that appears only on domain-crossing edges.
SRC, SHELL, SINK, RS_FULL, RS_HALF, RS_HALF_REG, RS_BRIDGE = range(7)

RS_KIND_TAG = {
    "full": RS_FULL,
    "half": RS_HALF,
    "half-registered": RS_HALF_REG,
}


def firing_schedule(rate: Fraction, hyperperiod: int) -> Tuple[bool, ...]:
    """Which base cycles a domain at *rate* ticks on, over *hyperperiod*.

    A domain at rate ``p/q`` is enabled on base cycle ``c`` iff
    ``floor((c+1)*p/q) > floor(c*p/q)`` — the canonical evenly-spread
    rational schedule (``q`` must divide *hyperperiod*).  Rate 1 is
    enabled everywhere, so single-clock systems degenerate exactly to
    the pre-GALS semantics.
    """
    p, q = rate.numerator, rate.denominator
    return tuple(
        ((c + 1) * p) // q > (c * p) // q for c in range(hyperperiod))

#: Version tag folded into every structural fingerprint.  Bump when the
#: canonical serialization below changes meaning.
IR_FINGERPRINT_VERSION = "repro-ir/v1"

#: Name of the per-graph memo attribute (excluded from graph pickling
#: by ``SystemGraph.__getstate__``).
_MEMO_ATTR = "_lowered_cache"


@dataclasses.dataclass
class LowerStats:
    """Process-wide lowering counters (plan-reuse instrumentation)."""

    lowerings: int = 0
    memo_hits: int = 0

    def reset(self) -> None:
        self.lowerings = 0
        self.memo_hits = 0


#: Global counters: how often a full lowering ran vs. was served from
#: the per-graph memo.  ``benchmarks/bench_ir_plan_reuse.py`` uses this
#: to show campaigns build one plan, not one per fault.
STATS = LowerStats()


@dataclasses.dataclass(frozen=True)
class IRNode:
    """One block of the lowered system (index = position in the table)."""

    index: int
    name: str
    kind: str  # "shell" | "source" | "sink"
    queue_depth: Optional[int] = None
    pearl_factory: Optional[Callable[[], Any]] = None
    stream_factory: Optional[Callable[[], Any]] = None
    stop_script: Optional[Callable[[int], bool]] = None


@dataclasses.dataclass(frozen=True)
class IREdge:
    """One connection with its (validated) relay chain.

    ``src``/``dst`` are node-table indices; the names and ports are
    carried alongside so consumers never need the source graph.
    """

    index: int
    src: int
    dst: int
    src_name: str
    dst_name: str
    src_port: Optional[str]
    dst_port: Optional[str]
    relays: Tuple[str, ...]
    #: Bridge-table index for domain-crossing edges, else ``None``.
    bridge: Optional[int] = None

    @property
    def relay_count(self) -> int:
        return len(self.relays)


@dataclasses.dataclass(frozen=True)
class IRRelay:
    """One expanded relay station on an edge's chain."""

    index: int
    edge: int      # IREdge index
    pos: int       # position on the chain, producer side first
    spec: str
    tag: int       # RS_FULL | RS_HALF | RS_HALF_REG
    name: str      # "A->B.rs0" — telemetry / diagnostics key


@dataclasses.dataclass(frozen=True)
class IRHop:
    """One producer->consumer wire segment of an expanded channel.

    ``producer_id``/``consumer_id`` index the kind-specific ordinal
    tables (shell ordinal, source ordinal, relay index, sink ordinal).
    ``producer_reg`` is the shell out-register id for segment-0 hops
    driven by a shell, else ``-1``.
    """

    index: int
    edge: int      # IREdge index
    seg: int       # segment position on the edge's chain
    name: str      # "A->B[0]" (+ "~n" duplicate suffix) — telemetry key
    producer_kind: int
    producer_id: int
    producer_reg: int
    consumer_kind: int
    consumer_id: int


@dataclasses.dataclass(frozen=True)
class IRDomain:
    """One clock domain: a rational rate and its firing schedule.

    ``schedule`` spans the system hyperperiod (lcm of all rate
    denominators); ``schedule[c % hyperperiod]`` says whether the
    domain ticks on base cycle ``c``.
    """

    index: int
    name: str
    rate: Fraction
    schedule: Tuple[bool, ...]


@dataclasses.dataclass(frozen=True)
class IRBridge:
    """One expanded bisynchronous-FIFO bridge on a domain-crossing edge.

    The bridge is the last element of the edge's hop chain (after any
    relay stations, directly before the consumer).  Its write port is
    clocked by ``src_domain``, its read port by ``dst_domain``
    (domain-table indices).
    """

    index: int
    edge: int          # IREdge index
    depth: int
    src_domain: int
    dst_domain: int
    name: str          # "A->B.bridge" — telemetry / fault-target key


@dataclasses.dataclass(frozen=True)
class LoweredSystem:
    """Frozen, normalized tables for one system graph.

    All sequence fields are tuples (of tuples) — a lowering is shared
    between backends and must never be mutated.  Derived structures
    (block digraph, desugared skeleton view) are computed lazily and
    cached on the instance.
    """

    name: str
    graph: SystemGraph                  # source graph (not part of identity)
    nodes: Tuple[IRNode, ...]
    edges: Tuple[IREdge, ...]
    relays: Tuple[IRRelay, ...]
    hops: Tuple[IRHop, ...]
    # Node-table indices per kind, in insertion order.
    shell_ids: Tuple[int, ...]
    source_ids: Tuple[int, ...]
    sink_ids: Tuple[int, ...]
    # Convenience name tables (ordinal-indexed, matching *_ids).
    shell_names: Tuple[str, ...]
    source_names: Tuple[str, ...]
    sink_names: Tuple[str, ...]
    relay_names: Tuple[str, ...]
    hop_names: Tuple[str, ...]
    # Port tables: hop ids per shell/source ordinal; one hop (or None)
    # per sink ordinal; one in/out hop per relay.
    shell_in_hops: Tuple[Tuple[int, ...], ...]
    shell_out_hops: Tuple[Tuple[int, ...], ...]
    source_out_hops: Tuple[Tuple[int, ...], ...]
    sink_in_hop: Tuple[Optional[int], ...]
    relay_in_hop: Tuple[int, ...]
    relay_out_hop: Tuple[int, ...]
    # Shell out registers, one per shell-driven edge, in allocation
    # order: (shell ordinal, edge index).
    shell_regs: Tuple[Tuple[int, int], ...]
    # Static capability / hazard flags.
    may_be_ambiguous: bool
    all_full_relays: bool
    has_queued_shells: bool
    #: Capability strings this system needs from a backend/variant
    #: (e.g. "relay-half", "queued-shell").
    requirements: frozenset
    #: Canonical content-addressed structural fingerprint (hex sha256).
    fingerprint: str
    # -- GALS clock-domain tables (degenerate for single-clock graphs) --
    #: Clock domains in first-use order; ``domains[0]`` need not be the
    #: default domain.
    domains: Tuple[IRDomain, ...] = ()
    #: Domain-table index per node-table index.
    node_domain: Tuple[int, ...] = ()
    #: lcm of all domain-rate denominators (1 for single-clock).
    hyperperiod: int = 1
    #: Expanded bisynchronous-FIFO bridges, one per crossing edge.
    bridges: Tuple[IRBridge, ...] = ()
    bridge_names: Tuple[str, ...] = ()
    #: Hop feeding each bridge's write port / driven by its read port.
    bridge_in_hop: Tuple[int, ...] = ()
    bridge_out_hop: Tuple[int, ...] = ()
    #: Capability flags backends key on: ``single_clock`` (every domain
    #: at base rate, no bridges) and ``has_bridges``.
    single_clock: bool = True
    has_bridges: bool = False

    # -- derived views (lazy, cached) -----------------------------------

    def skeleton_view(self) -> "LoweredSystem":
        """The lowering the skeleton/MCR consumers simulate.

        Queued shells are not modelled natively by the skeleton
        engines; they simulate the relay-station desugaring (see
        :func:`repro.graph.transform.desugar_queues`).  Returns ``self``
        when there is nothing to desugar.
        """
        if not self.has_queued_shells:
            return self
        cached = self.__dict__.get("_skeleton_view")
        if cached is None:
            from ..graph.transform import desugar_queues

            cached = lower(desugar_queues(self.graph))
            object.__setattr__(self, "_skeleton_view", cached)
        return cached

    def block_digraph(self):
        """Block-level ``nx.DiGraph`` (names as nodes). Treat read-only."""
        cached = self.__dict__.get("_block_digraph")
        if cached is None:
            import networkx as nx

            cached = nx.DiGraph()
            cached.add_nodes_from(n.name for n in self.nodes)
            for edge in self.edges:
                cached.add_edge(edge.src_name, edge.dst_name)
            object.__setattr__(self, "_block_digraph", cached)
        return cached

    # -- lookups ---------------------------------------------------------

    def node(self, name: str) -> IRNode:
        index = self._node_index().get(name)
        if index is None:
            raise StructuralError(f"{self.name}: no node named {name!r}")
        return self.nodes[index]

    def _node_index(self) -> Dict[str, int]:
        cached = self.__dict__.get("_name_to_index")
        if cached is None:
            cached = {n.name: n.index for n in self.nodes}
            object.__setattr__(self, "_name_to_index", cached)
        return cached

    def in_edges(self, name: str) -> List[IREdge]:
        return [e for e in self.edges if e.dst_name == name]

    def out_edges(self, name: str) -> List[IREdge]:
        return [e for e in self.edges if e.src_name == name]

    def relay_count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.relays)
        return sum(1 for r in self.relays if r.spec == kind)

    # -- graph walkers (shared by the analysis layer) --------------------

    def shell_cycles(self) -> List[List[str]]:
        """Simple cycles of the block graph (each a list of node names)."""
        import networkx as nx

        return [list(c) for c in nx.simple_cycles(nx.DiGraph(
            (e.src_name, e.dst_name) for e in self.edges))]

    def is_feedforward(self) -> bool:
        """True when the block graph is acyclic."""
        cached = self.__dict__.get("_feedforward")
        if cached is None:
            cached = not self.shell_cycles()
            object.__setattr__(self, "_feedforward", cached)
        return cached

    def loop_census(self, cycle: Sequence[str]) -> Tuple[int, int]:
        """``(S, R)`` for one cycle: shells and relay stations on it.

        With parallel edges between consecutive nodes the chain with
        the fewest relay stations is counted (tokens can take any).
        """
        shells = sum(1 for n in cycle if self.node(n).kind == "shell")
        relays = 0
        for i, name in enumerate(cycle):
            nxt = cycle[(i + 1) % len(cycle)]
            candidates = [
                e.relay_count for e in self.edges
                if e.src_name == name and e.dst_name == nxt
            ]
            if not candidates:
                raise StructuralError(
                    f"no edge {name!r} -> {nxt!r} along claimed cycle")
            relays += min(candidates)
        return shells, relays

    # -- construction paths ---------------------------------------------

    def elaborate(self, variant=None, strict: bool = True):
        """Build a runnable :class:`~repro.lid.system.LidSystem`.

        Resolved through :mod:`repro._registry` — the IR layer never
        imports the lid layer (see docs/ir.md on layering).
        """
        if self.has_bridges or not self.single_clock:
            raise StructuralError(
                f"{self.name}: lid elaboration models single-clock "
                f"systems only (single_clock={self.single_clock}, "
                f"has_bridges={self.has_bridges}); GALS graphs run on "
                f"the skeleton engines — use "
                f"repro.skeleton.select(graph, backend='scalar'|"
                f"'vectorized')")
        from .._registry import resolve

        return resolve("lid.build_system")(
            self, variant=variant, strict=strict)

    def unsupported_specs(self, variant) -> List[str]:
        """Relay specs this *variant* does not support (normally empty).

        *variant* may be a :class:`~repro.lid.variant.ProtocolVariant`
        or its string value; the support table lives next to
        ``VALID_RELAY_SPECS`` in :mod:`repro.graph.model`.
        """
        from ..graph.model import RELAY_SPEC_SUPPORT

        variant_name = getattr(variant, "value", str(variant))
        return sorted({
            r.spec for r in self.relays
            if variant_name not in RELAY_SPEC_SUPPORT.get(r.spec, ())
        })


# -- fingerprint ---------------------------------------------------------


def structural_fingerprint(graph: SystemGraph) -> str:
    """Canonical sha256 of a graph's structure.

    Serialization (version-tagged ``repro-ir/v1``): nodes sorted by
    name as ``|node:<name>:<kind>:<queue_depth>``, then edges sorted by
    ``(src, src_port, dst, dst_port, relays)`` as
    ``|edge:<src>[<src_port>]-><dst>[<dst_port>]:<relay,specs>``.
    Declaration order, pickle bytes, attached callables and the graph's
    display *name* do not participate — two independently built
    identical topologies share a fingerprint, and the copy-renaming
    transforms (``"<name>_equalized"`` etc.) only register as changes
    when they actually touch structure (behavioural callables are
    hashed separately by :func:`repro.exec.cache.graph_fingerprint`).
    """
    return lower(graph).fingerprint


def _fingerprint(nodes: Tuple[IRNode, ...],
                 edges: Tuple[IREdge, ...],
                 domain_entries: Tuple[str, ...] = (),
                 bridge_entries: Tuple[str, ...] = ()) -> str:
    """Canonical sha256; GALS entries are appended only when present.

    ``domain_entries``/``bridge_entries`` are empty for single-clock
    graphs, so every pre-GALS fingerprint — and with it the exec cache
    keys and GraphRef identities — stays byte-identical under the
    unchanged ``repro-ir/v1`` tag.
    """
    hasher = hashlib.sha256()
    hasher.update(IR_FINGERPRINT_VERSION.encode())
    for node in sorted(nodes, key=lambda n: n.name):
        hasher.update(
            f"|node:{node.name}:{node.kind}:{node.queue_depth}".encode())
    def _edge_key(e: IREdge):
        return (e.src_name, e.src_port or "", e.dst_name,
                e.dst_port or "", e.relays)
    for edge in sorted(edges, key=_edge_key):
        hasher.update(
            f"|edge:{edge.src_name}[{edge.src_port}]->"
            f"{edge.dst_name}[{edge.dst_port}]:"
            f"{','.join(edge.relays)}".encode())
    for entry in sorted(domain_entries):
        hasher.update(entry.encode())
    for entry in sorted(bridge_entries):
        hasher.update(entry.encode())
    return hasher.hexdigest()


# -- lowering ------------------------------------------------------------


def _structure_signature(graph: SystemGraph) -> Tuple:
    """Cheap O(V+E) identity guard for the per-graph memo.

    Behavioural callables participate (by identity): the lowered
    :class:`IRNode` tables capture ``pearl_factory``/``stream_factory``/
    ``stop_script``, so swapping one in place must invalidate the memo
    exactly like an ``edge.relays`` edit — otherwise a later
    ``elaborate()`` builds endpoints from stale callables.  The
    *structural* fingerprint deliberately keeps excluding them (see
    :func:`structural_fingerprint`).
    """
    return (
        graph.name,
        tuple(sorted(getattr(graph, "domains", {}).items())),
        tuple((n.name, n.kind, n.queue_depth, n.pearl_factory,
               n.stream_factory, n.stop_script,
               getattr(n, "domain", DEFAULT_DOMAIN))
              for n in graph.nodes.values()),
        tuple((e.src, e.dst, e.src_port, e.dst_port, tuple(e.relays),
               getattr(e, "bridge", None))
              for e in graph.edges),
    )


def lower(graph: SystemGraph) -> LoweredSystem:
    """Lower *graph* to its canonical table form (memoized per object).

    The memo is guarded by a structural signature, so in-place edits
    (``edge.relays = ...``) are picked up on the next call; it is kept
    out of graph pickles by ``SystemGraph.__getstate__``.  Passing an
    existing :class:`LoweredSystem` returns it unchanged.
    """
    if isinstance(graph, LoweredSystem):
        return graph
    signature = _structure_signature(graph)
    cached = getattr(graph, _MEMO_ATTR, None)
    if cached is not None and cached[0] == signature:
        STATS.memo_hits += 1
        return cached[1]
    lowered = _lower_uncached(graph)
    STATS.lowerings += 1
    try:
        setattr(graph, _MEMO_ATTR, (signature, lowered))
    except Exception:  # pragma: no cover - exotic graph subclasses
        pass
    return lowered


def _lower_uncached(graph: SystemGraph) -> LoweredSystem:
    nodes = tuple(
        IRNode(i, n.name, n.kind, n.queue_depth, n.pearl_factory,
               n.stream_factory, n.stop_script)
        for i, n in enumerate(graph.nodes.values())
    )
    node_index = {n.name: n.index for n in nodes}

    # Clock-domain tables.  Domains enter in node first-use order;
    # graphs (or pickles) predating the GALS layer default everything
    # to the base-rate domain, making all of this degenerate.
    graph_domains = getattr(graph, "domains", None) or {}
    node_domain_names = [
        getattr(n, "domain", DEFAULT_DOMAIN)
        for n in graph.nodes.values()
    ]
    domain_order: List[str] = []
    for dom in node_domain_names:
        if dom not in domain_order:
            domain_order.append(dom)
    if not domain_order:
        domain_order = [DEFAULT_DOMAIN]
    rates = {
        dom: Fraction(graph_domains.get(dom, Fraction(1)))
        for dom in domain_order
    }
    hyperperiod = math.lcm(
        *(rates[dom].denominator for dom in domain_order))
    domains = tuple(
        IRDomain(i, dom, rates[dom],
                 firing_schedule(rates[dom], hyperperiod))
        for i, dom in enumerate(domain_order))
    domain_ord = {dom: i for i, dom in enumerate(domain_order)}
    node_domain = tuple(domain_ord[dom] for dom in node_domain_names)
    shell_ids = tuple(n.index for n in nodes if n.kind == "shell")
    source_ids = tuple(n.index for n in nodes if n.kind == "source")
    sink_ids = tuple(n.index for n in nodes if n.kind == "sink")
    shell_ord = {nodes[i].name: j for j, i in enumerate(shell_ids)}
    source_ord = {nodes[i].name: j for j, i in enumerate(source_ids)}
    sink_ord = {nodes[i].name: j for j, i in enumerate(sink_ids)}

    edges: List[IREdge] = []
    relays: List[IRRelay] = []
    hops: List[IRHop] = []
    hop_name_seen: Dict[str, int] = {}
    shell_in: List[List[int]] = [[] for _ in shell_ids]
    shell_out: List[List[int]] = [[] for _ in shell_ids]
    source_out: List[List[int]] = [[] for _ in source_ids]
    sink_in: List[Optional[int]] = [None] * len(sink_ids)
    relay_in: List[int] = []
    relay_out: List[int] = []
    shell_regs: List[Tuple[int, int]] = []
    bridges: List[IRBridge] = []
    bridge_in: List[int] = []
    bridge_out: List[int] = []

    # The expansion below mirrors the historical scalar builder walk
    # exactly (edge list order, chain order, naming) — bit-exactness of
    # every backend that consumes these tables depends on it.
    for e_idx, edge in enumerate(graph.edges):
        src_node = graph.nodes[edge.src]
        dst_node = graph.nodes[edge.dst]
        for spec in edge.relays:
            # Single validation point for the whole system: edge
            # construction validates too, but in-place chain edits
            # (transform passes, tests) land here first.
            validate_relay_spec(
                spec, where=f"edge {edge.src}->{edge.dst}")

        # Bridge validation mirrors the relay-spec discipline: edge
        # construction checks at build time, this catches in-place
        # domain/bridge edits.
        where = f"edge {edge.src}->{edge.dst}"
        src_dom = domain_ord[node_domain_names[node_index[edge.src]]]
        dst_dom = domain_ord[node_domain_names[node_index[edge.dst]]]
        bridge_spec = getattr(edge, "bridge", None)
        bridge_id: Optional[int] = None
        if bridge_spec is not None:
            bridge_spec = validate_bridge_spec(bridge_spec, where=where)
            if src_dom == dst_dom:
                raise StructuralError(
                    f"{where} stays inside clock domain "
                    f"{domains[src_dom].name!r}; bridges belong only "
                    f"on domain-crossing edges")
            bridge_id = len(bridges)
            bridges.append(IRBridge(
                bridge_id, e_idx, bridge_spec.depth, src_dom, dst_dom,
                f"{edge.src}->{edge.dst}.bridge"))
            bridge_in.append(-1)
            bridge_out.append(-1)
        elif src_dom != dst_dom:
            raise StructuralError(
                f"{where} crosses clock domains "
                f"{domains[src_dom].name!r} -> {domains[dst_dom].name!r} "
                f"without a bisynchronous FIFO bridge (set edge.bridge "
                f"or rebuild via add_edge(..., bridge=...))")
        edges.append(IREdge(
            e_idx, node_index[edge.src], node_index[edge.dst],
            edge.src, edge.dst, edge.src_port, edge.dst_port,
            tuple(edge.relays), bridge=bridge_id))

        if src_node.kind == "shell":
            reg_id = len(shell_regs)
            shell_regs.append((shell_ord[edge.src], e_idx))
            producer_ref = (SHELL, shell_ord[edge.src])
            producer_reg = reg_id
        else:
            producer_ref = (SRC, source_ord[edge.src])
            producer_reg = -1

        chain: List[int] = []
        for pos, spec in enumerate(edge.relays):
            rs_id = len(relays)
            relays.append(IRRelay(
                rs_id, e_idx, pos, spec, RS_KIND_TAG[spec],
                f"{edge.src}->{edge.dst}.rs{pos}"))
            relay_in.append(-1)
            relay_out.append(-1)
            chain.append(rs_id)

        if dst_node.kind == "shell":
            dst_ref = (SHELL, shell_ord[edge.dst])
        else:
            dst_ref = (SINK, sink_ord[edge.dst])

        bridge_ref = ([(RS_BRIDGE, bridge_id)]
                      if bridge_id is not None else [])
        producers = ([producer_ref] + [(relays[r].tag, r) for r in chain]
                     + bridge_ref)
        consumers = ([(relays[r].tag, r) for r in chain] + bridge_ref
                     + [dst_ref])
        for seg, ((p_kind, p_id), (c_kind, c_id)) in enumerate(
                zip(producers, consumers)):
            hop_id = len(hops)
            name = f"{edge.src}->{edge.dst}[{seg}]"
            dup = hop_name_seen.get(name, 0)
            hop_name_seen[name] = dup + 1
            if dup:
                name = f"{name}~{dup}"
            hops.append(IRHop(
                hop_id, e_idx, seg, name, p_kind, p_id,
                producer_reg if seg == 0 else -1, c_kind, c_id))
            if p_kind == SRC:
                source_out[p_id].append(hop_id)
            elif p_kind == SHELL:
                shell_out[p_id].append(hop_id)
            elif p_kind == RS_BRIDGE:
                bridge_out[p_id] = hop_id
            else:
                relay_out[p_id] = hop_id
            if c_kind == SHELL:
                shell_in[c_id].append(hop_id)
            elif c_kind == SINK:
                sink_in[c_id] = hop_id
            elif c_kind == RS_BRIDGE:
                bridge_in[c_id] = hop_id
            else:
                relay_in[c_id] = hop_id

    may_be_ambiguous = any(r.tag == RS_HALF for r in relays) or any(
        h.producer_kind == SHELL and h.consumer_kind == SHELL
        for h in hops)
    specs_used = {r.spec for r in relays}
    has_queues = any(n.queue_depth is not None for n in nodes)
    requirements = frozenset(
        {f"relay-{spec}" for spec in specs_used}
        | ({"queued-shell"} if has_queues else set()))

    edges_t = tuple(edges)
    nodes_t = nodes
    single_clock = (not bridges
                    and all(d.rate == 1 for d in domains))
    domain_entries = tuple(
        f"|domain:{nodes[i].name}:{domains[node_domain[i]].name}:"
        f"{domains[node_domain[i]].rate}"
        for i in range(len(nodes))
        if domains[node_domain[i]].name != DEFAULT_DOMAIN)
    bridge_entries = tuple(
        f"|bridge:{e.src_name}[{e.src_port}]->"
        f"{e.dst_name}[{e.dst_port}]:{bridges[e.bridge].depth}:"
        f"{domains[bridges[e.bridge].src_domain].rate}->"
        f"{domains[bridges[e.bridge].dst_domain].rate}"
        for e in edges_t if e.bridge is not None)
    return LoweredSystem(
        name=graph.name,
        graph=graph,
        nodes=nodes_t,
        edges=edges_t,
        relays=tuple(relays),
        hops=tuple(hops),
        shell_ids=shell_ids,
        source_ids=source_ids,
        sink_ids=sink_ids,
        shell_names=tuple(nodes[i].name for i in shell_ids),
        source_names=tuple(nodes[i].name for i in source_ids),
        sink_names=tuple(nodes[i].name for i in sink_ids),
        relay_names=tuple(r.name for r in relays),
        hop_names=tuple(h.name for h in hops),
        shell_in_hops=tuple(tuple(x) for x in shell_in),
        shell_out_hops=tuple(tuple(x) for x in shell_out),
        source_out_hops=tuple(tuple(x) for x in source_out),
        sink_in_hop=tuple(sink_in),
        relay_in_hop=tuple(relay_in),
        relay_out_hop=tuple(relay_out),
        shell_regs=tuple(shell_regs),
        may_be_ambiguous=may_be_ambiguous,
        all_full_relays=all(r.tag == RS_FULL for r in relays),
        has_queued_shells=has_queues,
        requirements=requirements,
        fingerprint=_fingerprint(nodes_t, edges_t,
                                 domain_entries, bridge_entries),
        domains=domains,
        node_domain=node_domain,
        hyperperiod=hyperperiod,
        bridges=tuple(bridges),
        bridge_names=tuple(b.name for b in bridges),
        bridge_in_hop=tuple(bridge_in),
        bridge_out_hop=tuple(bridge_out),
        single_clock=single_clock,
        has_bridges=bool(bridges),
    )

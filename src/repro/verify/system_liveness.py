"""Exhaustive system-level liveness: the claim the paper could not check.

Paper: *"Since liveness is topology dependent, we couldn't verify
formally the protocol as such"* — they fell back to skeleton simulation
of specific input scripts.  For concrete (small) topologies we can do
better: explore the skeleton's register state space under **every**
environment behaviour — each cycle every source nondeterministically
offers or withholds a token (honouring the hold-on-stop contract) and
every sink nondeterministically stops or accepts — and check that no
reachable state is a trap.

Liveness notion (weak fairness, the standard one for back-pressured
systems): a state is **stuck** if, even with a fully cooperative
environment from then on (all sources offering, no sink stopping),
no shell ever fires again.  A hostile environment can always *pause* a
finite-buffer system, so demanding progress under hostility would be
vacuous; demanding recovery once the hostility ends is exactly
deadlock-freedom.

``verify_system_liveness(graph)`` returns a verdict with the reachable
state count and, on failure, a stuck state reachable by some
environment — upgrading the paper's per-script simulation into a proof
over all environments for that topology.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import List, Optional, Set, Tuple

from ..graph.model import SystemGraph
from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant
from ..skeleton.sim import SkeletonSim

#: Explorer state: (register snapshot, per-source committed flags).
_State = Tuple[Tuple, Tuple[bool, ...]]


@dataclasses.dataclass
class SystemLivenessResult:
    """Outcome of an exhaustive liveness exploration.

    ``ambiguous_states`` counts reachable states in which some
    environment choice makes the combinational stop network admit more
    than one fixpoint — the paper's *potential* deadlock, here checked
    over every reachable state instead of along one simulated script.
    """

    live: bool
    reachable_states: int
    transitions: int
    stuck_state: Optional[_State] = None
    ambiguous_states: int = 0

    @property
    def potential_deadlock_free(self) -> bool:
        return self.live and self.ambiguous_states == 0

    def __bool__(self) -> bool:
        return self.live


def verify_system_liveness(
    graph: SystemGraph,
    variant: ProtocolVariant = DEFAULT_VARIANT,
    max_states: int = 100_000,
    recovery_bound: Optional[int] = None,
) -> SystemLivenessResult:
    """Prove (or refute) deadlock-freedom over all environments.

    *recovery_bound* limits how many cooperative cycles a state gets to
    produce a firing before being declared stuck; the default is twice
    the system's storage count plus two, which covers any drain.
    """
    sim = SkeletonSim(graph, variant=variant, detect_ambiguity=False)
    n_src = len(sim.source_names)
    n_sink = len(sim.sink_names)
    has_shells = bool(sim.shell_names)
    if recovery_bound is None:
        storage = (len(sim.shell_reg) + 2 * len(sim.rs_kinds)
                   + len(sim.rs_kinds))
        recovery_bound = 2 * storage + 2

    all_offers = list(itertools.product((False, True), repeat=n_src))
    all_stops = list(itertools.product((False, True), repeat=n_sink))
    may_be_ambiguous = sim._may_be_ambiguous
    ambiguous: Set[_State] = set()

    def successors(state: _State):
        regs, committed = state
        for offers in all_offers:
            # The environment contract: a source stopped while offering
            # must keep offering the same token.
            if any(c and not o for c, o in zip(committed, offers)):
                continue
            for stops in all_stops:
                if may_be_ambiguous and state not in ambiguous:
                    # Probe both stop fixpoints before stepping.
                    sim.set_register_state(regs)
                    sim._src_override = list(offers)
                    sim._sink_override = list(stops)
                    valid = sim._forward_valids()
                    least = sim._settle_stops(valid, "least")
                    greatest = sim._settle_stops(valid, "greatest")
                    sim._src_override = None
                    sim._sink_override = None
                    if least != greatest:
                        ambiguous.add(state)
                sim.set_register_state(regs)
                _fires, _accepts, src_stops = sim.external_step(
                    offers, stops)
                next_committed = tuple(
                    o and s for o, s in zip(offers, src_stops))
                yield (sim.register_state(), next_committed)

    def recovers(state: _State) -> bool:
        """Cooperative closure: does any shell fire within the bound?"""
        if not has_shells:
            return True
        regs, _committed = state
        sim.set_register_state(regs)
        offers = (True,) * n_src
        stops = (False,) * n_sink
        for _ in range(recovery_bound):
            fires, _accepts, _src_stops = sim.external_step(offers, stops)
            if any(fires):
                return True
        return False

    initial_regs = SkeletonSim(graph, variant=variant,
                               detect_ambiguity=False).register_state()
    initial: _State = (initial_regs, (False,) * n_src)

    seen: Set[_State] = {initial}
    frontier: List[_State] = [initial]
    transitions = 0
    while frontier:
        state = frontier.pop()
        if not recovers(state):
            return SystemLivenessResult(
                live=False,
                reachable_states=len(seen),
                transitions=transitions,
                stuck_state=state,
                ambiguous_states=len(ambiguous),
            )
        for nxt in successors(state):
            transitions += 1
            if nxt not in seen:
                if len(seen) >= max_states:
                    raise MemoryError(
                        f"{graph.name}: more than {max_states} reachable "
                        f"states; shrink the topology or raise the budget"
                    )
                seen.add(nxt)
                frontier.append(nxt)
    return SystemLivenessResult(
        live=True,
        reachable_states=len(seen),
        transitions=transitions,
        ambiguous_states=len(ambiguous),
    )

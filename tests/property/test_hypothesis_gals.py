"""Property-based fuzzing of random rational clock rates.

Random GALS topologies (chain and ring families, random rational
rates, random bridge depths) checked against the scalar reference:

* the vectorized engine reproduces scalar firing counts, sink accepts
  and bridge occupancy exactly;
* feed-forward chains sustain exactly ``min_d rate_d``;
* the static GALS bound always dominates the simulated rate.
"""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import simulated_throughput, static_system_throughput
from repro.graph import gals_chain, gals_ring
from repro.lid.variant import ProtocolVariant
from repro.skeleton import BatchSkeletonSim, SkeletonSim

pytestmark = pytest.mark.slow

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Rational rates with small denominators (hyperperiod stays modest).
rates = st.builds(
    Fraction,
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=5),
).map(lambda f: min(f, Fraction(1)))

rate_lists = st.lists(rates, min_size=2, max_size=3)
variants = st.sampled_from([ProtocolVariant.CASU,
                            ProtocolVariant.CARLONI])


def _scalar_run(graph, variant, cycles):
    sim = SkeletonSim(graph, variant=variant, detect_ambiguity=False)
    fires = [0] * len(sim.shell_names)
    accepted = 0
    for _ in range(cycles):
        f, acc = sim.step()
        for i, fired in enumerate(f):
            fires[i] += fired
        accepted += sum(acc)
    return sim, fires, accepted


@given(rate_list=rate_lists, depth=st.integers(1, 3), variant=variants)
@settings(**SETTINGS)
def test_vectorized_matches_scalar_on_random_chains(rate_list, depth,
                                                    variant):
    graph = gals_chain(rates=rate_list, depth=depth)
    cycles = 90
    scalar, fires, accepted = _scalar_run(graph, variant, cycles)
    batch = BatchSkeletonSim(graph, [{}], variant=variant,
                             detect_ambiguity=False)
    batch.run(cycles)
    for i, name in enumerate(scalar.shell_names):
        j = batch.shell_names.index(name)
        assert int(batch.shell_fired[j][0]) == fires[i], name
    assert int(batch.sink_accepted.sum()) == accepted
    assert tuple(int(batch.bridge_occ[b][0])
                 for b in range(len(scalar.bridge_occ))) \
        == tuple(scalar.bridge_occ)


@given(rate_list=rate_lists, shells=st.integers(1, 2),
       depth=st.integers(1, 3), variant=variants)
@settings(**SETTINGS)
def test_vectorized_matches_scalar_on_random_rings(rate_list, shells,
                                                   depth, variant):
    graph = gals_ring(rates=rate_list, shells_per_domain=shells,
                      depth=depth)
    cycles = 90
    scalar, fires, accepted = _scalar_run(graph, variant, cycles)
    batch = BatchSkeletonSim(graph, [{}], variant=variant,
                             detect_ambiguity=False)
    batch.run(cycles)
    for i, name in enumerate(scalar.shell_names):
        j = batch.shell_names.index(name)
        assert int(batch.shell_fired[j][0]) == fires[i], name
    assert int(batch.sink_accepted.sum()) == accepted


@given(rate_list=rate_lists, depth=st.integers(2, 3))
@settings(**SETTINGS)
def test_chain_throughput_is_min_rate(rate_list, depth):
    """Feed-forward GALS with depth >= 2 bridges: formula is exact.

    Depth-1 bridges are excluded by construction: a single-slot bridge
    cannot read and write in the same cycle, so transfers alternate
    and the rate drops below ``min_d rate_d`` (caught by this very
    fuzz test; pinned in ``test_depth_one_bridge_bound``).
    """
    graph = gals_chain(rates=rate_list, depth=depth)
    expected = min(rate_list)
    assert static_system_throughput(graph) == expected
    assert simulated_throughput(graph) == expected


@given(rate_list=rate_lists)
@settings(**SETTINGS)
def test_depth_one_bridge_bound(rate_list):
    """Depth-1 bridges: the alternation cap 1/2 still dominates."""
    graph = gals_chain(rates=rate_list, depth=1)
    bound = static_system_throughput(graph)
    exact = simulated_throughput(graph)
    assert bound == min(min(rate_list), Fraction(1, 2))
    assert Fraction(0) < exact <= bound


@given(rate_list=rate_lists, shells=st.integers(1, 2))
@settings(**SETTINGS)
def test_ring_bound_dominates_simulation(rate_list, shells):
    """Cyclic GALS: the static bound is never violated."""
    graph = gals_ring(rates=rate_list, shells_per_domain=shells)
    bound = static_system_throughput(graph)
    exact = simulated_throughput(graph)
    assert Fraction(0) < exact <= bound

"""Differential conformance: vectorized backend vs scalar reference.

The vectorized engine's contract is **bit-exactness**: for every
instance of a batch, every register, wire, firing decision and
instrumentation counter must equal a scalar :class:`SkeletonSim` run
with the same scripts, cycle by cycle.  This suite drives both engines
in lockstep over the full feature matrix — protocol variants x relay
kinds x fixpoints x scripted sources/sinks — and through the unified
``repro.skeleton.backend.select`` API.
"""

import numpy as np
import pytest

from repro.graph import figure1, figure2, pipeline, ring, tree
from repro.graph.random_gen import random_dag, random_loopy
from repro.lid.variant import ProtocolVariant
from repro.obs import Telemetry
from repro.skeleton import (
    BatchSkeletonSim,
    ScalarBackend,
    SkeletonSim,
    VectorizedBackend,
    select,
    vectorized_supported,
)

VARIANTS = [ProtocolVariant.CASU, ProtocolVariant.CARLONI]


def _all_relays(graph, kind):
    for edge in graph.edges:
        if edge.relays:
            edge.relays = (kind,) * len(edge.relays)
    return graph


def _graph_matrix():
    return [
        pipeline(3, relays_per_hop=2),
        figure1(),
        figure2(),
        tree(2),
        ring(3, relays_per_arc=[["full"], ["half"],
                                ["half-registered"]]),
        _all_relays(pipeline(3), "half"),
        _all_relays(pipeline(3), "half-registered"),
        random_dag(seed=7, shells=5, half_probability=0.5),
        random_loopy(seed=3, shells=4),
    ]


def _scripts_for(graph):
    """A few sink/source script pairs adapted to the graph's names."""
    sinks = [n.name for n in graph.sinks()]
    sources = [n.name for n in graph.sources()]
    combos = [({}, {})]
    if sinks:
        combos.append(({sinks[0]: (False, False, True, True)}, {}))
    if sources:
        combos.append(({}, {sources[0]: (True, False, True)}))
    if sinks and sources:
        combos.append(({sinks[0]: (True, False)},
                       {sources[0]: (False, True)}))
    return combos


def _lockstep(graph, variant, fixpoint, sink_map, source_map,
              cycles=60):
    """Drive both engines and compare all observable state per cycle."""
    scalar = SkeletonSim(graph, sink_patterns=sink_map,
                         source_patterns=source_map, variant=variant,
                         fixpoint=fixpoint,
                         telemetry=Telemetry.metrics_only())
    batch = BatchSkeletonSim(graph, [sink_map],
                             source_patterns=[source_map],
                             variant=variant, fixpoint=fixpoint,
                             telemetry=Telemetry.metrics_only())
    for cycle in range(cycles):
        s_fires, s_accepts = scalar.step()
        b_fires, b_accepts = batch.step()
        ctx = (graph.name, variant.name, fixpoint, cycle)
        assert tuple(b_fires[:, 0]) == s_fires, ("fires", ctx)
        assert tuple(b_accepts[:, 0]) == s_accepts, ("accepts", ctx)
        assert np.array_equal(batch.shell_reg[:, 0],
                              np.array(scalar.shell_reg)), ("reg", ctx)
        assert np.array_equal(batch.rs_main[:, 0],
                              np.array(scalar.rs_main)), ("main", ctx)
        assert np.array_equal(batch.rs_aux[:, 0],
                              np.array(scalar.rs_aux)), ("aux", ctx)
        assert np.array_equal(
            batch.rs_stop_reg[:, 0],
            np.array(scalar.rs_stop_reg)), ("stop_reg", ctx)
        assert (int(batch.stop_assertions_total[0])
                == scalar.stop_assertions_total), ("assertions", ctx)
        assert (int(batch.stops_on_voids_total[0])
                == scalar.stops_on_voids_total), ("voids", ctx)
        assert (int(batch.internal_stops_on_voids_total[0])
                == scalar.internal_stops_on_voids_total), \
            ("internal voids", ctx)
    assert batch.ambiguous_cycles[0] == scalar.ambiguous_cycles, \
        (graph.name, variant.name, fixpoint)
    # Telemetry parity: the canonical metric snapshots (counters,
    # gauges and occupancy histograms) must be equal dicts — not
    # merely close; same keys, same integers, same derived floats.
    assert batch.metrics_snapshot(0) == scalar.metrics_snapshot(), \
        ("metrics", graph.name, variant.name, fixpoint)


class TestLockstepMatrix:
    """Registers, wires and counters identical, cycle by cycle."""

    @pytest.mark.parametrize("graph", _graph_matrix(),
                             ids=lambda g: g.name)
    @pytest.mark.parametrize("variant", VARIANTS,
                             ids=lambda v: v.name.lower())
    def test_least_fixpoint(self, graph, variant):
        for sink_map, source_map in _scripts_for(graph):
            _lockstep(graph, variant, "least", sink_map, source_map)

    @pytest.mark.parametrize("variant", VARIANTS,
                             ids=lambda v: v.name.lower())
    def test_greatest_fixpoint_on_ambiguous_graphs(self, variant):
        """Latch-up semantics must also match where fixpoints differ."""
        for graph in (_all_relays(pipeline(3), "half"),
                      ring(2, relays_per_arc=[["half"], ["half"]])):
            for sink_map, source_map in _scripts_for(graph):
                _lockstep(graph, variant, "greatest", sink_map,
                          source_map)


class TestRunToPeriod:
    """Transient/period extraction must agree with SkeletonSim.run()."""

    @pytest.mark.parametrize("graph", _graph_matrix(),
                             ids=lambda g: g.name)
    def test_periodicity_matches(self, graph):
        combos = _scripts_for(graph)
        sink_patterns = [sk for sk, _so in combos]
        source_patterns = [so for _sk, so in combos]
        batch = BatchSkeletonSim(graph, sink_patterns,
                                 source_patterns=source_patterns)
        results = batch.run_to_period()
        for (sink_map, source_map), result in zip(combos, results):
            ref = SkeletonSim(graph, sink_patterns=sink_map,
                              source_patterns=source_map).run()
            assert result.transient == ref.transient, graph.name
            assert result.period == ref.period, graph.name
            assert result.shell_fires == ref.shell_fires, graph.name
            assert result.sink_accepts == ref.sink_accepts, graph.name
            assert result.deadlocked == ref.deadlocked, graph.name
            assert (result.potential_deadlock_cycle
                    == ref.potential_deadlock_cycle), graph.name


class TestBackendApi:
    """select() must hide the engine choice without changing results."""

    def test_selection_policy(self):
        graph = pipeline(2)
        assert isinstance(select(graph, batch=1), ScalarBackend)
        assert isinstance(select(graph, batch=4), VectorizedBackend)
        assert isinstance(select(graph, batch=4, backend="scalar"),
                          ScalarBackend)
        assert isinstance(select(graph, batch=1, backend="vectorized"),
                          VectorizedBackend)

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_unknown_script_target_rejected_by_both(self, backend):
        """Input validation must not depend on the engine picked."""
        with pytest.raises(ValueError, match="unknown script target"):
            select(pipeline(2), sink_patterns=[{"nope": (True,)}],
                   backend=backend)
        with pytest.raises(ValueError, match="unknown script target"):
            select(pipeline(2), source_patterns=[{"nope": (True,)}],
                   backend=backend)

    def test_supported_reports_capability(self):
        ok, reason = vectorized_supported(pipeline(2),
                                          ProtocolVariant.CASU)
        assert ok, reason

    @pytest.mark.parametrize("variant", VARIANTS,
                             ids=lambda v: v.name.lower())
    def test_backends_agree_through_select(self, variant):
        graph = figure1()
        patterns = [{}, {"out": (False, True)},
                    {"out": (False, False, True)}]
        counts = {}
        for backend in ("scalar", "vectorized"):
            handle = select(graph, variant, sink_patterns=patterns,
                            backend=backend)
            results = handle.run()
            handle2 = select(graph, variant, sink_patterns=patterns,
                             backend=backend)
            handle2.run_cycles(300)
            counts[backend] = (
                [(r.transient, r.period, r.shell_fires,
                  r.sink_accepts) for r in results],
                np.asarray(handle2.fire_counts()).tolist(),
                np.asarray(handle2.accept_counts()).tolist(),
                np.asarray(handle2.stop_assertion_counts()).tolist(),
            )
        assert counts["scalar"] == counts["vectorized"]

    def test_scripted_sources_through_select(self):
        graph = pipeline(2)
        handle = select(graph, batch=2,
                        source_patterns=[{}, {"src": (True, False)}])
        results = handle.run()
        rates = [r.shell_fires["S0"] / r.period for r in results]
        assert rates[0] == 1
        assert rates[1] == 0.5


class TestMetricsParity:
    """metrics_snapshots() must be engine-independent, per instance."""

    @pytest.mark.parametrize("graph", _graph_matrix(),
                             ids=lambda g: g.name)
    @pytest.mark.parametrize("variant", VARIANTS,
                             ids=lambda v: v.name.lower())
    def test_snapshots_identical_through_select(self, graph, variant):
        combos = _scripts_for(graph)
        sink_patterns = [sk for sk, _so in combos]
        source_patterns = [so for _sk, so in combos]
        snapshots = {}
        for backend in ("scalar", "vectorized"):
            handle = select(graph, variant,
                            sink_patterns=sink_patterns,
                            source_patterns=source_patterns,
                            backend=backend,
                            telemetry=Telemetry.metrics_only())
            handle.run_cycles(80)
            snapshots[backend] = handle.metrics_snapshots()
        assert snapshots["scalar"] == snapshots["vectorized"], graph.name

    def test_snapshot_without_telemetry_keeps_core_counters(self):
        """Even uninstrumented runs expose the cheap counters."""
        sim = SkeletonSim(figure1())
        for _ in range(30):
            sim.step()
        snapshot = sim.metrics_snapshot()
        assert snapshot["skeleton/cycles"]["value"] == 30
        assert any(key.startswith("skeleton/shell/") for key in snapshot)
        # Per-channel stalls and occupancy histograms need telemetry.
        assert not any(key.startswith("skeleton/channel/")
                       for key in snapshot)

    def test_instrumented_snapshot_has_channel_and_relay_metrics(self):
        sim = SkeletonSim(figure1(), telemetry=Telemetry.metrics_only(),
                          sink_patterns={"out": (False, False, True)})
        for _ in range(30):
            sim.step()
        snapshot = sim.metrics_snapshot()
        stalls = {k: v for k, v in snapshot.items()
                  if k.startswith("skeleton/channel/")}
        hists = {k: v for k, v in snapshot.items()
                 if k.startswith("skeleton/relay/")}
        assert stalls and hists
        assert sum(v["value"] for v in stalls.values()) > 0
        for hist in hists.values():
            assert hist["type"] == "histogram"
            assert hist["total"] == 30


class TestInjectCampaignParity:
    """Batched fault campaigns must classify identically per backend."""

    @pytest.mark.parametrize("variant", VARIANTS,
                             ids=lambda v: v.name.lower())
    def test_skeleton_campaign_backend_parity(self, variant):
        from repro.inject import skeleton_campaign

        graph = figure2()
        kwargs = dict(variant=variant, classes=("stop", "void"),
                      cycles=64, samples=24, seed=11)
        scalar = skeleton_campaign(graph, backend="scalar", **kwargs)
        vector = skeleton_campaign(graph, backend="vectorized",
                                   **kwargs)
        assert scalar.backend == "scalar"
        assert vector.backend == "vectorized"
        scalar_verdicts = [(r.spec.label(), r.verdict)
                           for r in scalar.results]
        vector_verdicts = [(r.spec.label(), r.verdict)
                           for r in vector.results]
        assert scalar_verdicts == vector_verdicts
        assert scalar.skipped == vector.skipped
        # The full JSON payloads differ only in the backend field.
        a, b = scalar.to_payload(), vector.to_payload()
        a.pop("backend"), b.pop("backend")
        assert a == b

    def test_engines_model_the_fault_at_different_points(self):
        """The two engines express the *same spec* at different points,
        and the split is part of the contract: the LID engine forces
        the wire after settle (the sink's own behaviour is untouched,
        so a stuck stop makes it re-read the held token — duplication),
        while the skeleton perturbs the sink's script itself (producer
        and consumer coherently stop — back-pressure wedges the ring).
        A no-op fault must be masked identically on both."""
        from repro.inject import (
            FaultSpec,
            run_campaign,
            skeleton_campaign,
        )

        graph = figure2()
        faults = [FaultSpec("stop-stuck-1", "S0->out#5", 8, 0),
                  FaultSpec("stop-stuck-0", "S0->out#5", 8, 0)]
        kwargs = dict(variant=ProtocolVariant.CASU, cycles=64,
                      faults=faults)
        lid = run_campaign(graph, monitors=False, **kwargs)
        skel = skeleton_campaign(graph, backend="vectorized", **kwargs)
        lid_verdicts = {r.spec.label(): r.verdict for r in lid.results}
        skel_verdicts = {r.spec.label(): r.verdict
                         for r in skel.results}
        assert set(lid_verdicts) == set(skel_verdicts)
        stuck1 = "stop-stuck-1@S0->out#5@c8stuck"
        stuck0 = "stop-stuck-0@S0->out#5@c8stuck"
        assert lid_verdicts[stuck1] == "silent-corruption"
        assert skel_verdicts[stuck1] == "deadlock"
        assert lid_verdicts[stuck0] == skel_verdicts[stuck0] == "masked"

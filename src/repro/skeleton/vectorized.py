"""Generalized vectorized batch skeleton simulation with numpy.

The scalar :class:`~repro.skeleton.sim.SkeletonSim` is exact and
general; this engine keeps the exact semantics but simulates **many
independent instances of the same topology at once** — columns of a bit
matrix — which is how a designer sweeps back-pressure and availability
scenarios ("which sink scripts ever stall the system?") at negligible
cost, the paper's stated use of skeleton simulation.

Unlike the first-generation engine (refined protocol, full relay
stations, always-ready sources only) this one covers the scalar
simulator's whole feature matrix:

* both protocol variants (``CASU`` refinement and original ``CARLONI``);
* full, transparent-half and registered-half relay stations;
* scripted (non-always-ready) sources, per instance;
* per-instance sink stop scripts;
* least/greatest stop fixpoints and ambiguous-fixpoint (potential
  deadlock) detection;
* the stop-locality instrumentation counters;
* run-to-periodicity with per-instance transient/period extraction.

Bit-exactness against :class:`SkeletonSim` is the contract: the
differential suite in ``tests/skeleton/test_backend_conformance.py``
compares every register, wire and counter cycle by cycle.  The stop
network is a monotone equation system, so a synchronous (Jacobi)
iteration from the same starting point reaches the same least/greatest
fixpoint as the scalar engine's in-place iteration.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..graph.model import SystemGraph
from ..ir import (
    RS_BRIDGE as _RS_BRIDGE,
    RS_FULL as _RS_FULL,
    RS_HALF as _RS_HALF,
    RS_HALF_REG as _RS_HALF_REG,
    SHELL as _SHELL,
    SRC as _SRC,
    LoweredSystem,
    lower,
)
from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant
from .sim import SkeletonResult

PatternMap = Mapping[str, Sequence[bool]]


def _as_pattern(bits: Sequence[bool]) -> Tuple[bool, ...]:
    pattern = tuple(bool(b) for b in bits)
    if not pattern:
        raise ValueError("empty script pattern")
    return pattern


class _Segments:
    """Ragged index lists flattened for segmented boolean reductions.

    ``reduceat`` mis-handles empty segments (it returns the element at
    the clipped offset), so empty segments are dropped up front and
    their outputs patched with the reduction identity.
    """

    def __init__(self, lists: Sequence[Sequence[int]]):
        self.n = len(lists)
        counts = np.array([len(x) for x in lists], dtype=np.intp)
        self.counts = counts
        self.flat = np.array([h for sub in lists for h in sub],
                             dtype=np.intp)
        offsets = np.zeros(self.n, dtype=np.intp)
        if self.n:
            offsets[1:] = np.cumsum(counts)[:-1]
        self.nonempty = counts > 0
        self.offsets_nonempty = offsets[self.nonempty]
        # With one hop per segment (pipelines, rings) both operations
        # are the identity; skipping reduceat/repeat matters in the
        # per-cycle hot path.
        self.uniform = bool(self.n) and bool((counts == 1).all())

    def reduce(self, op, flat_vals: np.ndarray,
               identity: bool) -> np.ndarray:
        """Per-segment reduction of (len(flat), b) values."""
        if self.uniform:
            return flat_vals
        out = np.full((self.n,) + flat_vals.shape[1:], identity,
                      dtype=bool)
        if len(self.offsets_nonempty):
            out[self.nonempty] = op.reduceat(
                flat_vals, self.offsets_nonempty, axis=0)
        return out

    def spread(self, per_segment: np.ndarray) -> np.ndarray:
        """Repeat one (n, b) row per segment out to the flat layout."""
        if self.uniform:
            return per_segment
        return np.repeat(per_segment, self.counts, axis=0)


class BatchSkeletonSim:
    """Simulate *batch* copies of one topology's skeleton in parallel.

    Parameters
    ----------
    graph:
        The topology (any relay-station mix; queued shells are desugared
        exactly as the scalar engine does).
    sink_patterns:
        One mapping per instance: sink name -> bool stop pattern
        (cycle-indexed, as in the scalar engine).  ``None`` entries or a
        missing mapping mean "never stop".
    source_patterns:
        One mapping per instance: source name -> bool availability
        pattern (phase-indexed: a held token freezes the phase, exactly
        like the scalar engine).  Default: always ready.
    batch:
        Explicit instance count; required only when neither pattern
        sequence is given.
    """

    def __init__(
        self,
        graph: SystemGraph,
        sink_patterns: Optional[Sequence[PatternMap]] = None,
        *,
        source_patterns: Optional[Sequence[PatternMap]] = None,
        batch: Optional[int] = None,
        variant: ProtocolVariant = DEFAULT_VARIANT,
        fixpoint: str = "least",
        detect_ambiguity: bool = True,
        telemetry=None,
    ):
        if fixpoint not in ("least", "greatest"):
            raise ValueError("fixpoint must be 'least' or 'greatest'")
        widths = {len(seq) for seq in (sink_patterns, source_patterns)
                  if seq is not None}
        if batch is not None:
            widths.add(batch)
        if len(widths) > 1:
            raise ValueError(f"inconsistent batch widths: {sorted(widths)}")
        if not widths:
            raise ValueError("need sink_patterns, source_patterns or batch")
        self.batch = widths.pop()
        if self.batch == 0:
            raise ValueError("need at least one instance")

        self.variant = variant
        self.fixpoint = fixpoint
        self.detect_ambiguity = detect_ambiguity
        # Telemetry: metrics are accumulated vectorized (bit-identical
        # to the scalar engine per column); events are aggregate —
        # batch-wide per-cycle counts rather than one event per
        # instance (use the scalar engine for per-instance traces).
        self.telemetry = telemetry
        self._metrics_on = (telemetry is not None
                            and telemetry.metrics is not None)
        self._events_on = (telemetry is not None
                           and telemetry.events is not None)

        # Wiring tables come from the same canonical lowering the
        # scalar engine consumes (the skeleton view desugars queued
        # shells exactly as the scalar engine does).
        lowered = graph if isinstance(graph, LoweredSystem) else lower(graph)
        self.lowered = lowered.skeleton_view()
        self.graph = self.lowered.graph
        self.shell_names = list(self.lowered.shell_names)
        self.source_names = list(self.lowered.source_names)
        self.sink_names = list(self.lowered.sink_names)
        self._build_tables()
        self._build_scripts(source_patterns, sink_patterns)
        self.reset()

    # -- construction -------------------------------------------------------

    def _build_tables(self) -> None:
        low = self.lowered
        n_hops = len(low.hops)
        self._n_hops = n_hops
        self._is_casu = self.variant.discards_void_stops
        self._guard = n_hops + len(self.shell_names) + 2
        self._may_be_ambiguous = low.may_be_ambiguous

        # Hops driven by each producer class.
        src_hops = [(h.index, h.producer_id) for h in low.hops
                    if h.producer_kind == _SRC]
        rs_hops = [(h.index, h.producer_id) for h in low.hops
                   if h.producer_kind not in (_SRC, _SHELL, _RS_BRIDGE)]
        bridge_hops = [(h.index, h.producer_id) for h in low.hops
                       if h.producer_kind == _RS_BRIDGE]
        self._src_hop_ids = np.array(
            [h for h, _src in src_hops], dtype=np.intp)
        self._src_hop_owner = np.array(
            [src for _h, src in src_hops], dtype=np.intp)
        self._rs_drive_hops = np.array(
            [h for h, _rs in rs_hops], dtype=np.intp)
        self._rs_drive_ids = np.array(
            [rs for _h, rs in rs_hops], dtype=np.intp)
        self._bridge_drive_hops = np.array(
            [h for h, _b in bridge_hops], dtype=np.intp)
        self._bridge_drive_ids = np.array(
            [bid for _h, bid in bridge_hops], dtype=np.intp)
        # Shell out-register <-> hop bijection (one register per edge).
        n_regs = len(low.shell_regs)
        self._n_regs = n_regs
        self._reg_hop = np.zeros(n_regs, dtype=np.intp)
        self._reg_owner = np.zeros(n_regs, dtype=np.intp)
        for hop in low.hops:
            if hop.producer_kind == _SHELL:
                self._reg_hop[hop.producer_reg] = hop.index
                self._reg_owner[hop.producer_reg] = hop.producer_id

        # Ragged shell port lists, flattened for segmented reductions.
        self._sh_in = _Segments(low.shell_in_hops)
        self._sh_out = _Segments(low.shell_out_hops)
        self._sh_out_reg = np.array(
            [low.hops[h].producer_reg for h in self._sh_out.flat],
            dtype=np.intp)
        self._src_out = _Segments(low.source_out_hops)

        # Relay stations by kind.
        kinds = np.array([r.tag for r in low.relays], dtype=np.intp)
        self._n_rs = len(kinds)
        self._rs_in = np.array(low.relay_in_hop, dtype=np.intp)
        self._rs_out = np.array(low.relay_out_hop, dtype=np.intp)
        self._rs_is_full = kinds == _RS_FULL
        self._full_ids = np.nonzero(kinds == _RS_FULL)[0]
        self._half_ids = np.nonzero(kinds == _RS_HALF)[0]
        self._hreg_ids = np.nonzero(kinds == _RS_HALF_REG)[0]
        self._half_in = self._rs_in[self._half_ids]
        self._half_out = self._rs_out[self._half_ids]
        self._full_in = self._rs_in[self._full_ids]
        self._hreg_in = self._rs_in[self._hreg_ids]
        self._cols = np.arange(self.batch)

        # Sinks (some graphs may have unconnected sinks -> None hop).
        pairs = [(k, h) for k, h in enumerate(low.sink_in_hop)
                 if h is not None]
        self._sink_ids = np.array([k for k, _h in pairs], dtype=np.intp)
        self._sink_hops = np.array([h for _k, h in pairs], dtype=np.intp)

        # "Internal" consumers for the stop-locality counters: shells
        # and transparent half stations (scalar semantics).
        self._internal_hops = np.array(
            [h.index for h in low.hops
             if h.consumer_kind in (_SHELL, _RS_HALF)], dtype=np.intp)

        # Without transparent half stations or direct shell-to-shell
        # hops the stop equations have no combinational chains: every
        # shell's stall is a function of fixed (registered/scripted)
        # stops only, so a single settle pass is exact and the two
        # fixpoints coincide (same criterion as the scalar engine's
        # ambiguity analysis).  Bridge stops are state-derived (fixed
        # during settle), so bridges never add combinational chains.
        self._single_pass = not low.may_be_ambiguous
        self._all_full = bool(self._rs_is_full.all())

        # -- GALS clock-domain tables --------------------------------
        # ``_gals`` keeps the hot loops on the exact pre-refactor path
        # for single-clock systems; enablement masks are row-indexed by
        # ``cycle % hyperperiod`` (one (H, n) bool matrix per element
        # class), matching the scalar engine's per-element schedules.
        self._gals = not low.single_clock
        self._hyperperiod = low.hyperperiod
        self._n_bridges = len(low.bridges)
        self._bridge_depth = np.array(
            [br.depth for br in low.bridges], dtype=np.int64)
        self._bridge_in = np.array(low.bridge_in_hop, dtype=np.intp)
        self._bridge_out = np.array(low.bridge_out_hop, dtype=np.intp)
        if self._gals:
            schedules = [d.schedule for d in low.domains]
            node_dom = low.node_domain
            hp = self._hyperperiod

            def _mask(ids):
                return np.array(
                    [[schedules[node_dom[i]][c] for i in ids]
                     for c in range(hp)], dtype=bool)

            self._shell_en = _mask(low.shell_ids)
            self._src_en = _mask(low.source_ids)
            self._sink_en = _mask(low.sink_ids)
            # Relays are clocked by their edge's source (write-side)
            # domain; bridges write in the source domain and read in
            # the destination domain.
            edge_src_dom = [node_dom[e.src] for e in low.edges]
            self._rs_en = np.array(
                [[schedules[edge_src_dom[r.edge]][c]
                  for r in low.relays]
                 for c in range(hp)], dtype=bool)
            self._bridge_wen = np.array(
                [[schedules[br.src_domain][c] for br in low.bridges]
                 for c in range(hp)], dtype=bool)
            self._bridge_ren = np.array(
                [[schedules[br.dst_domain][c] for br in low.bridges]
                 for c in range(hp)], dtype=bool)

    def _build_scripts(self, source_patterns, sink_patterns) -> None:
        b = self.batch

        def _table(names, per_instance, default):
            """Per name: (max_len, b) value table + (b,) length array."""
            tables, lengths = [], []
            known = set(names)
            instances = ([(m or {}) for m in per_instance]
                         if per_instance is not None else [{}] * b)
            for mapping in instances:
                for name in mapping:
                    if name not in known:
                        raise ValueError(f"unknown script target {name!r}")
            for name in names:
                cols = []
                for mapping in instances:
                    pattern = mapping.get(name)
                    cols.append(_as_pattern(pattern)
                                if pattern is not None else default)
                max_len = max(len(p) for p in cols)
                tab = np.zeros((max_len, b), dtype=bool)
                for i, pattern in enumerate(cols):
                    for t in range(max_len):
                        tab[t, i] = pattern[t % len(pattern)]
                tables.append(tab)
                lengths.append(np.array([len(p) for p in cols],
                                        dtype=np.int64))
            return tables, lengths

        self._src_tab, self._src_len = _table(
            self.source_names, source_patterns, (True,))
        self._sink_tab, self._sink_len = _table(
            self.sink_names, sink_patterns, (False,))

        # Sink stops are cycle-indexed, so the whole per-instance
        # schedule can be expanded to a (lcm, b) table indexed by
        # ``cycle % lcm`` — one gather per sink per cycle instead of a
        # 2-d fancy index.  Fall back when the lcm is unreasonable.
        # lcm in Python ints: np.lcm over int64 silently overflows for
        # big pattern-length mixes (the scalar engine's math.lcm is
        # arbitrary-precision, and the state-key modulus must match it).
        self._sink_sched: List[Optional[np.ndarray]] = []
        for k in range(len(self.sink_names)):
            span = math.lcm(*(int(x) for x in self._sink_len[k]))
            if span <= 4096:
                rows = np.arange(span)[:, None] % self._sink_len[k]
                self._sink_sched.append(
                    self._sink_tab[k][rows, np.arange(b)])
            else:
                self._sink_sched.append(None)

        # Per-instance sink phase modulus (scalar: lcm of that
        # instance's sink pattern lengths; 1 when there are none).
        # Python ints again — the lcm of one instance's lengths can
        # exceed int64 even though ``cycle % mod`` never does.
        self._sink_mod = [
            math.lcm(*(int(lengths[i]) for lengths in self._sink_len))
            if self._sink_len else 1
            for i in range(b)
        ]
        # State-key phase modulus folds the clock-domain hyperperiod in
        # exactly as the scalar engine's state() does (1 when
        # single-clock, so keys are unchanged for pre-GALS workloads).
        self._key_mod = [
            math.lcm(mod, self._hyperperiod) for mod in self._sink_mod
        ]
        self._src_len_mat = (np.stack(self._src_len)
                             if self._src_len
                             else np.zeros((0, b), dtype=np.int64))

    # -- state --------------------------------------------------------------

    def reset(self) -> None:
        b = self.batch
        self.cycle = 0
        # Shell out registers start VALID (paper footnote 1); relay
        # stations start VOID — identical to the scalar engine.
        self.shell_reg = np.ones((self._n_regs, b), dtype=bool)
        self.rs_main = np.zeros((self._n_rs, b), dtype=bool)
        self.rs_aux = np.zeros((self._n_rs, b), dtype=bool)
        self.rs_stop_reg = np.zeros((self._n_rs, b), dtype=bool)
        # Bisynchronous-FIFO bridges start empty.
        self.bridge_occ = np.zeros((self._n_bridges, b), dtype=np.int64)
        # Scheduled occupancy perturbations (see poke_bridge).
        self._bridge_pokes: List[Tuple[int, int, int, int, int]] = []
        self.src_phase = np.zeros((len(self.source_names), b),
                                  dtype=np.int64)
        self.shell_fired = np.zeros((len(self.shell_names), b),
                                    dtype=np.int64)
        self.sink_accepted = np.zeros((len(self.sink_names), b),
                                      dtype=np.int64)
        self.stop_assertions_total = np.zeros(b, dtype=np.int64)
        self.stops_on_voids_total = np.zeros(b, dtype=np.int64)
        self.internal_stops_on_voids_total = np.zeros(b, dtype=np.int64)
        # Telemetry accumulators (updated only when metrics are on),
        # mirroring SkeletonSim.hop_stall_cycles / rs_occupancy_counts.
        self.hop_stall_cycles = np.zeros((self._n_hops, b),
                                         dtype=np.int64)
        self.rs_occupancy_counts = np.zeros((3, self._n_rs, b),
                                            dtype=np.int64)
        max_depth = (int(self._bridge_depth.max())
                     if self._n_bridges else 0)
        self.bridge_occupancy_counts = np.zeros(
            (max_depth + 1, self._n_bridges, b), dtype=np.int64)
        self.ambiguous_cycles: List[List[int]] = [[] for _ in range(b)]
        self._fire_history: List[np.ndarray] = []
        self._accept_history: List[np.ndarray] = []
        # Reusable scratch: every hop has exactly one producer, so the
        # valid buffer is fully rewritten each cycle; in single-pass
        # mode the same holds for the stop buffer (each hop's stop is
        # either fixed or a shell input written by the single pass).
        self._valid_buf = np.empty((self._n_hops, b), dtype=bool)
        self._stop_buf = np.empty((self._n_hops, b), dtype=bool)

    def state_keys(self) -> List[bytes]:
        """One hashable snapshot per instance (mirrors scalar state())."""
        b = self.batch
        bits = [self.shell_reg, self.rs_main, self.rs_aux,
                self.rs_stop_reg]
        stacked = np.concatenate([a for a in bits if a.size] or
                                 [np.zeros((1, b), dtype=bool)], axis=0)
        packed = np.packbits(stacked, axis=0)
        cycle = self.cycle
        keys = []
        for i in range(b):
            keys.append(packed[:, i].tobytes()
                        + self.bridge_occ[:, i].tobytes()
                        + self.src_phase[:, i].tobytes()
                        + (cycle % self._key_mod[i]).to_bytes(
                            8, "little"))
        return keys

    def poke_bridge(self, instance: int, bridge, cycle: int,
                    delta: int, duration: int = 1) -> None:
        """Schedule a bridge occupancy perturbation for one column.

        Mirrors :meth:`SkeletonSim.poke_bridge` with an explicit
        *instance* (batch column): on each cycle in ``[cycle, cycle +
        duration)`` the bridge's occupancy in that column is nudged by
        *delta* after the normal update, clamped to ``[0, depth]``.
        """
        if not 0 <= instance < self.batch:
            raise IndexError(
                f"instance {instance} out of range for batch "
                f"{self.batch}")
        names = list(self.lowered.bridge_names)
        if isinstance(bridge, str):
            try:
                b_id = names.index(bridge)
            except ValueError:
                raise KeyError(
                    f"no bridge named {bridge!r} "
                    f"(bridges: {names})") from None
        else:
            b_id = bridge
            if not 0 <= b_id < self._n_bridges:
                raise KeyError(f"no bridge with index {b_id}")
        self._bridge_pokes.append(
            (b_id, instance, cycle, cycle + duration, delta))

    # -- per-cycle evaluation ------------------------------------------------

    def _forward_valids(self) -> np.ndarray:
        b = self.batch
        valid = self._valid_buf
        if len(self._src_hop_ids):
            presented = np.empty((len(self.source_names), b), dtype=bool)
            for j in range(len(self.source_names)):
                # Phases are kept in range by the advance in step().
                presented[j] = self._src_tab[j][self.src_phase[j],
                                                self._cols]
            if self._gals:
                # A source in a domain that does not tick this base
                # cycle presents void (its phase is frozen in step()).
                presented &= self._src_en[
                    self.cycle % self._hyperperiod][:, None]
            self._presented = presented
            valid[self._src_hop_ids] = presented[self._src_hop_owner]
        else:
            self._presented = np.zeros((0, b), dtype=bool)
        if self._n_regs:
            valid[self._reg_hop] = self.shell_reg
        if len(self._rs_drive_hops):
            valid[self._rs_drive_hops] = self.rs_main[self._rs_drive_ids]
        if len(self._bridge_drive_hops):
            # A bridge presents its head-of-FIFO: valid iff non-empty.
            valid[self._bridge_drive_hops] = (
                self.bridge_occ[self._bridge_drive_ids] > 0)
        return valid

    def _shell_fires(self, valid: np.ndarray,
                     stop: np.ndarray) -> np.ndarray:
        """fire = all inputs valid AND no output blocked (scalar rule)."""
        in_ok = self._sh_in.reduce(np.logical_and,
                                   valid[self._sh_in.flat], True)
        if self._is_casu:
            blocked_bits = (stop[self._sh_out.flat]
                            & self.shell_reg[self._sh_out_reg])
        else:
            blocked_bits = stop[self._sh_out.flat]
        blocked = self._sh_out.reduce(np.logical_or, blocked_bits,
                                      False)
        fires = in_ok & ~blocked
        if self._gals:
            # A shell whose domain does not tick this base cycle is
            # stalled (cannot fire), exactly like the scalar engine.
            fires &= self._shell_en[
                self.cycle % self._hyperperiod][:, None]
        return fires

    def _settle_stops(self, valid: np.ndarray,
                      mode: str) -> Tuple[np.ndarray, np.ndarray]:
        """Solve the stop equations; returns (stop wires, shell fires)."""
        b = self.batch
        if self._single_pass:
            stop = self._stop_buf
        else:
            make = np.ones if mode == "greatest" else np.zeros
            stop = make((self._n_hops, b), dtype=bool)
        # Registered / scripted stops are fixed regardless of mode.
        if len(self._full_ids):
            stop[self._full_in] = self.rs_stop_reg[self._full_ids]
        if len(self._hreg_ids):
            stop[self._hreg_in] = self.rs_main[self._hreg_ids]
        if len(self._sink_hops):
            for k, hop in zip(self._sink_ids, self._sink_hops):
                sched = self._sink_sched[k]
                if sched is not None:
                    stop[hop] = sched[self.cycle % len(sched)]
                else:
                    row = self.cycle % self._sink_len[k]
                    stop[hop] = self._sink_tab[k][row, self._cols]
        if self._gals:
            # A sink whose domain does not tick cannot accept: it
            # asserts stop unconditionally.  The bridge write port
            # asserts stop while the FIFO is full — state-derived,
            # hence fixed during settle (like registered stops).
            sink_en = self._sink_en[self.cycle % self._hyperperiod]
            for k, hop in zip(self._sink_ids, self._sink_hops):
                if not sink_en[k]:
                    stop[hop] = True
            if self._n_bridges:
                stop[self._bridge_in] = (
                    self.bridge_occ >= self._bridge_depth[:, None])

        if self._single_pass:
            # No combinational stop chains: every shell out-hop stop is
            # one of the fixed values above, so one pass is exact and
            # the two fixpoints coincide.
            fires = self._shell_fires(valid, stop)
            if len(self._sh_in.flat):
                stalled = self._sh_in.spread(~fires)
                if self._is_casu:
                    stop[self._sh_in.flat] = (stalled
                                              & valid[self._sh_in.flat])
                else:
                    stop[self._sh_in.flat] = stalled
            return stop, fires

        # Synchronous (Jacobi) iteration of the monotone stop equations:
        # every update reads the previous iterate, so iterates ascend
        # from bottom (least mode) / descend from top (greatest mode)
        # monotonically and converge to the same fixpoint the scalar
        # engine's in-place iteration reaches, within the same guard.
        # The fixed hops above are never rewritten (their consumers are
        # full stations, registered-half stations or sinks; the loop
        # only writes hops consumed by shells and transparent halves),
        # so the two buffers only ever differ on mutable hops — all of
        # which are rewritten on every pass, making the swap safe.
        cur = stop.copy()
        for _ in range(self._guard):
            if len(self._half_ids):
                if self._is_casu:
                    cur[self._half_in] = (stop[self._half_out]
                                          & self.rs_main[self._half_ids])
                else:
                    cur[self._half_in] = stop[self._half_out]
            fires = self._shell_fires(valid, stop)
            if len(self._sh_in.flat):
                stalled = self._sh_in.spread(~fires)
                if self._is_casu:
                    cur[self._sh_in.flat] = (stalled
                                             & valid[self._sh_in.flat])
                else:
                    cur[self._sh_in.flat] = stalled
            if np.array_equal(cur, stop):
                break
            stop, cur = cur, stop
        return cur, fires

    def _apply_edge(self, valid: np.ndarray, stop: np.ndarray,
                    fires: np.ndarray) -> None:
        """Register updates (mirror SkeletonSim._apply_edge exactly).

        In GALS mode an element whose clock domain does not tick this
        base cycle holds all of its registers; bridge occupancies move
        by (write in the source domain) minus (read in the destination
        domain), each gated on its own port's schedule.
        """
        gals = self._gals
        phase = self.cycle % self._hyperperiod if gals else 0
        if self._n_regs:
            fired = fires[self._reg_owner]
            held = self.shell_reg & stop[self._reg_hop]
            new_reg = fired | (~fired & held)
            if gals:
                en = self._shell_en[phase][self._reg_owner][:, None]
                new_reg = np.where(en, new_reg, self.shell_reg)
            self.shell_reg = new_reg

        if self._n_rs:
            stop_out = stop[self._rs_out]
            incoming = valid[self._rs_in]
            consumed = ~self.rs_main | ~stop_out
            aux = self.rs_aux
            if self._all_full and not gals:
                accepted = incoming & ~self.rs_stop_reg
                queued = aux | accepted
                not_consumed = ~consumed
                self.rs_main = np.where(consumed, queued, self.rs_main)
                self.rs_aux = not_consumed & queued
                self.rs_stop_reg = not_consumed & (
                    self.rs_stop_reg | (~aux & accepted))
            else:
                # Full stations: two slots plus a registered stop.
                accepted_full = incoming & ~self.rs_stop_reg
                new_main_full = np.where(
                    consumed, np.where(aux, True, accepted_full),
                    self.rs_main)
                new_aux_full = ~consumed & (aux | accepted_full)
                new_stop_full = ~consumed & (
                    self.rs_stop_reg | (~aux & accepted_full))
                # Half stations (transparent or registered): one slot.
                accepted_half = incoming & ~stop[self._rs_in]
                new_main_half = np.where(consumed, accepted_half,
                                         self.rs_main)
                is_full = self._rs_is_full[:, None]
                new_main = np.where(is_full, new_main_full,
                                    new_main_half)
                new_aux = np.where(is_full, new_aux_full, aux)
                new_stop = np.where(is_full, new_stop_full,
                                    self.rs_stop_reg)
                if gals:
                    en = self._rs_en[phase][:, None]
                    new_main = np.where(en, new_main, self.rs_main)
                    new_aux = np.where(en, new_aux, self.rs_aux)
                    new_stop = np.where(en, new_stop, self.rs_stop_reg)
                self.rs_main = new_main
                self.rs_aux = new_aux
                self.rs_stop_reg = new_stop

        if self._n_bridges:
            occ = self.bridge_occ
            wrote = (self._bridge_wen[phase][:, None]
                     & valid[self._bridge_in]
                     & (occ < self._bridge_depth[:, None]))
            read = (self._bridge_ren[phase][:, None]
                    & (occ > 0)
                    & ~stop[self._bridge_out])
            self.bridge_occ = occ + wrote - read
            if self._bridge_pokes:
                cycle = self.cycle
                for b_id, col, lo, hi, delta in self._bridge_pokes:
                    if lo <= cycle < hi:
                        nudged = int(self.bridge_occ[b_id, col]) + delta
                        depth = int(self._bridge_depth[b_id])
                        self.bridge_occ[b_id, col] = min(
                            max(nudged, 0), depth)

    def step(self) -> Tuple[np.ndarray, np.ndarray]:
        """Advance all instances one cycle; returns (fires, accepts)."""
        valid = self._forward_valids()
        stop, fires = self._settle_stops(valid, self.fixpoint)
        if self.detect_ambiguity and self._may_be_ambiguous:
            other = "greatest" if self.fixpoint == "least" else "least"
            alt, _alt_fires = self._settle_stops(valid, other)
            differs = np.any(alt != stop, axis=0)
            if np.any(differs):
                for i in np.nonzero(differs)[0]:
                    self.ambiguous_cycles[int(i)].append(self.cycle)
                if self._events_on:
                    self.telemetry.events.emit(
                        "fixpoint", "ambiguous", self.cycle,
                        instances=[int(i)
                                   for i in np.nonzero(differs)[0]])

        if self._metrics_on:
            self.hop_stall_cycles += stop
        self.stop_assertions_total += stop.sum(axis=0)
        voids = stop & ~valid
        self.stops_on_voids_total += voids.sum(axis=0)
        self.internal_stops_on_voids_total += \
            voids[self._internal_hops].sum(axis=0)

        accepts = np.zeros((len(self.sink_names), self.batch),
                           dtype=bool)
        if len(self._sink_hops):
            accepts[self._sink_ids] = (valid[self._sink_hops]
                                       & ~stop[self._sink_hops])

        self._apply_edge(valid, stop, fires)

        # Source phase advance: a presented-but-held token freezes the
        # phase (the environment must re-present it next cycle).
        if len(self.source_names):
            held_any = self._src_out.reduce(
                np.logical_or, stop[self._src_out.flat], False)
            held = self._presented & held_any
            advance = ~held
            if self._gals:
                # A source whose domain does not tick keeps its
                # pattern phase frozen (scalar semantics).
                advance &= self._src_en[
                    self.cycle % self._hyperperiod][:, None]
            self.src_phase = np.where(
                advance, (self.src_phase + 1) % self._src_len_mat,
                self.src_phase)

        self.shell_fired += fires
        self.sink_accepted += accepts
        self._fire_history.append(fires)
        self._accept_history.append(accepts)
        if self._metrics_on and self._n_rs:
            # End-of-cycle relay fill level, as in the scalar engine.
            occupancy = (self.rs_main.astype(np.int8)
                         + self.rs_aux.astype(np.int8))
            for level in range(3):
                self.rs_occupancy_counts[level] += occupancy == level
        if self._metrics_on and self._n_bridges:
            for level in range(self.bridge_occupancy_counts.shape[0]):
                self.bridge_occupancy_counts[level] += (
                    self.bridge_occ == level)
        if self._events_on:
            # Aggregate (batch-wide) per-cycle counts; per-instance
            # event streams come from the scalar engine.
            self.telemetry.events.emit(
                "token", "fire", self.cycle,
                count=int(fires.sum()), instances=self.batch)
            accepted_total = int(accepts.sum())
            if accepted_total:
                self.telemetry.events.emit(
                    "token", "accept", self.cycle, count=accepted_total)
            stalled_total = int(stop.sum())
            if stalled_total:
                self.telemetry.events.emit(
                    "stall", "assert", self.cycle, count=stalled_total)
        self.cycle += 1
        return fires, accepts

    def run(self, cycles: int) -> None:
        """Step all instances a fixed number of cycles."""
        for _ in range(cycles):
            self.step()

    def run_to_period(self, max_cycles: int = 10_000) \
            -> List[SkeletonResult]:
        """Simulate until every instance is periodic; one result each.

        Mirrors :meth:`SkeletonSim.run`: the composite register state of
        each instance is finite, so each column's trajectory must enter
        a cycle; transient/period and the steady-state firing counts are
        extracted per instance.
        """
        b = self.batch
        seen: List[Dict[bytes, int]] = [dict() for _ in range(b)]
        transient = [None] * b
        period = [None] * b
        for i, key in enumerate(self.state_keys()):
            seen[i][key] = 0
        pending = set(range(b))
        for _ in range(max_cycles):
            if not pending:
                break
            self.step()
            keys = self.state_keys()
            for i in list(pending):
                key = keys[i]
                hit = seen[i].get(key)
                if hit is not None:
                    transient[i] = hit
                    period[i] = self.cycle - hit
                    pending.discard(i)
                else:
                    seen[i][key] = self.cycle
        if pending:
            raise TimeoutError(
                f"{self.graph.name}: instances {sorted(pending)} not "
                f"periodic within {max_cycles} cycles "
                f"(state space larger than expected)")

        fire_hist = (np.stack(self._fire_history, axis=0)
                     if self._fire_history
                     else np.zeros((0, len(self.shell_names), b),
                                   dtype=bool))
        accept_hist = (np.stack(self._accept_history, axis=0)
                       if self._accept_history
                       else np.zeros((0, len(self.sink_names), b),
                                     dtype=bool))
        results = []
        for i in range(b):
            lo, hi = transient[i], transient[i] + period[i]
            window = fire_hist[lo:hi, :, i]
            shell_fires = {
                name: int(window[:, j].sum())
                for j, name in enumerate(self.shell_names)
            }
            accept_window = accept_hist[lo:hi, :, i]
            sink_accepts = {
                name: int(accept_window[:, j].sum())
                for j, name in enumerate(self.sink_names)
            }
            deadlocked = bool(self.shell_names) and all(
                count == 0 for count in shell_fires.values())
            ambiguous = self.ambiguous_cycles[i]
            results.append(SkeletonResult(
                transient=transient[i],
                period=period[i],
                shell_fires=shell_fires,
                sink_accepts=sink_accepts,
                cycles_run=self.cycle,
                deadlocked=deadlocked,
                potential_deadlock_cycle=(ambiguous[0] if ambiguous
                                          else None),
            ))
        return results

    # -- telemetry ----------------------------------------------------------

    def metrics_snapshot(self, instance: int = 0) -> Dict[str, Dict]:
        """Canonical metrics snapshot for one batch column.

        Bit-identical to :meth:`SkeletonSim.metrics_snapshot` run with
        the same scripts — keys, integer counters and float gauges all
        match exactly (the conformance suite asserts this).
        """
        from ..obs import MetricsRegistry

        if not 0 <= instance < self.batch:
            raise IndexError(
                f"instance {instance} out of range for batch "
                f"{self.batch}")
        registry = MetricsRegistry()
        cycles = self.cycle
        registry.counter("skeleton/cycles").inc(cycles)
        for i, name in enumerate(self.shell_names):
            fires = int(self.shell_fired[i, instance])
            registry.counter(f"skeleton/shell/{name}/fires").inc(fires)
            registry.gauge(f"skeleton/shell/{name}/fire_rate").set(
                fires / cycles if cycles else 0.0)
        for i, name in enumerate(self.sink_names):
            registry.counter(f"skeleton/sink/{name}/accepts").inc(
                int(self.sink_accepted[i, instance]))
        registry.counter("skeleton/stop/assertions").inc(
            int(self.stop_assertions_total[instance]))
        registry.counter("skeleton/stop/on_voids").inc(
            int(self.stops_on_voids_total[instance]))
        registry.counter("skeleton/stop/on_voids_internal").inc(
            int(self.internal_stops_on_voids_total[instance]))
        registry.counter("skeleton/fixpoint/ambiguous").inc(
            len(self.ambiguous_cycles[instance]))
        if self._metrics_on:
            hop_names = self.lowered.hop_names
            for hop_id in range(self._n_hops):
                registry.counter(
                    f"skeleton/channel/{hop_names[hop_id]}"
                    f"/stall_cycles").inc(
                        int(self.hop_stall_cycles[hop_id, instance]))
            rs_names = self.lowered.relay_names
            for rs_id in range(self._n_rs):
                hist = registry.histogram(
                    f"skeleton/relay/{rs_names[rs_id]}/occupancy")
                for level in range(3):
                    count = int(
                        self.rs_occupancy_counts[level, rs_id, instance])
                    if count:
                        hist.observe(level, count)
            bridge_names = self.lowered.bridge_names
            for b_id in range(self._n_bridges):
                hist = registry.histogram(
                    f"skeleton/bridge/{bridge_names[b_id]}/occupancy")
                for level in range(int(self._bridge_depth[b_id]) + 1):
                    count = int(self.bridge_occupancy_counts[
                        level, b_id, instance])
                    if count:
                        hist.observe(level, count)
        return registry.snapshot()

    # -- results -----------------------------------------------------------

    def shell_rates(self) -> Dict[str, np.ndarray]:
        """Firing rate per shell, per instance."""
        if self.cycle == 0:
            raise ValueError("run() first")
        return {
            name: self.shell_fired[i] / self.cycle
            for i, name in enumerate(self.shell_names)
        }

    def sink_rates(self) -> Dict[str, np.ndarray]:
        if self.cycle == 0:
            raise ValueError("run() first")
        return {
            name: self.sink_accepted[i] / self.cycle
            for i, name in enumerate(self.sink_names)
        }

    def accept_history(self) -> np.ndarray:
        """(cycles, n_sinks, batch) boolean acceptance history."""
        if not self._accept_history:
            return np.zeros((0, len(self.sink_names), self.batch),
                            dtype=bool)
        return np.stack(self._accept_history, axis=0)

    def stalled_instances(self, threshold: float = 1e-9) -> List[int]:
        """Instances in which some shell never fires (deadlock sweep)."""
        rates = self.shell_fired / max(self.cycle, 1)
        dead = np.any(rates <= threshold, axis=0)
        return [int(i) for i in np.nonzero(dead)[0]]

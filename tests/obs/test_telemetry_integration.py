"""End-to-end telemetry: lid system, monitors, scheduler profiler."""

import pytest

from repro.errors import ProtocolViolationError
from repro.graph import figure1
from repro.kernel.component import Component
from repro.lid.channel import Channel
from repro.lid.monitor import ChannelMonitor, watch_system
from repro.lid.token import Token
from repro.obs import Telemetry

from ..conftest import build_pipeline


def _run_figure1(telemetry, cycles=50):
    system = figure1().elaborate()
    system.attach_telemetry(telemetry)
    watch_system(system)
    system.run(cycles)
    return system


class TestLidEvents:
    def test_full_run_emits_token_and_relay_events(self):
        telemetry = Telemetry.full()
        _run_figure1(telemetry)
        counts = telemetry.events.counts_by_category()
        assert counts.get("token", 0) > 0
        assert counts.get("relay", 0) > 0
        fires = telemetry.events.select("token", "fire")
        assert {ev.fields["block"] for ev in fires} >= {"A", "C"}

    def test_stall_events_under_back_pressure(self):
        telemetry = Telemetry.full()
        system, _sink = build_pipeline(
            stages=2, relays=1, stop_script=lambda c: c % 2 == 0)
        system.attach_telemetry(telemetry)
        system.run(40)
        stalls = telemetry.events.select("stall", "assert")
        assert stalls
        assert all("channel" in ev.fields for ev in stalls)


class TestLidMetrics:
    def test_snapshot_has_channel_shell_and_relay_metrics(self):
        telemetry = Telemetry.metrics_only()
        system, _sink = build_pipeline(
            stages=2, relays=1, stop_script=lambda c: c % 3 == 0)
        system.attach_telemetry(telemetry)
        system.run(60)
        snapshot = system.metrics_snapshot()
        assert snapshot["lid/cycles"]["value"] == 60
        assert any(k.startswith("lid/shell/") and k.endswith("/fires")
                   for k in snapshot)
        assert any(k.startswith("lid/channel/") for k in snapshot)
        hists = [v for k, v in snapshot.items()
                 if k.startswith("lid/relay/")]
        assert hists
        for hist in hists:
            assert hist["total"] == 60

    def test_fire_rate_between_zero_and_one(self):
        telemetry = Telemetry.metrics_only()
        system = _run_figure1(telemetry)
        snapshot = system.metrics_snapshot()
        rates = [v["value"] for k, v in snapshot.items()
                 if k.endswith("/fire_rate")]
        assert rates
        assert all(0.0 <= rate <= 1.0 for rate in rates)


class TestSchedulerProfiler:
    def test_phases_recorded(self):
        telemetry = Telemetry.profile_only()
        _run_figure1(telemetry, cycles=30)
        names = {name for name, _c, _s in telemetry.profiler.phases()}
        assert {"publish+settle", "hooks", "edge"} <= names
        report = telemetry.profiler.report()
        assert report["cycles"] == 30

    def test_no_profiler_no_phase_records(self):
        telemetry = Telemetry.metrics_only()
        _run_figure1(telemetry, cycles=10)
        assert telemetry.profiler is None


class TestMonitorViolations:
    def _misbehaving_system(self, telemetry):
        """A harness whose channel monitor sees a hold violation."""
        from repro.kernel.scheduler import Simulator

        class HoldBreaker(Component):
            """Changes a stopped token: the classic hold violation."""

            def __init__(self, name, chan):
                super().__init__(name)
                self.chan = chan
                self.counter = 0

            def reset(self):
                self.counter = 0

            def publish(self):
                self.chan.drive(Token(self.counter))

            def tick(self):
                self.counter += 1  # advances even while stopped

        class Stopper(Component):
            def __init__(self, name, chan, stop_at):
                super().__init__(name)
                self.chan = chan
                self.stop_at = stop_at

            def publish(self):
                if self.cycle in self.stop_at:
                    self.chan.set_stop(True)

            def tick(self):
                pass

        sim = Simulator()
        chan = Channel.create(sim, "ch")
        sim.add_component(HoldBreaker("bad", chan))
        sim.add_component(Stopper("stop", chan, stop_at={3}))
        ChannelMonitor(chan).attach(sim)
        if telemetry is not None:
            sim.attach_telemetry(telemetry)
        return sim

    def test_violation_error_carries_details(self):
        telemetry = Telemetry.full()
        sim = self._misbehaving_system(telemetry)
        with pytest.raises(ProtocolViolationError) as excinfo:
            sim.step(5)
        error = excinfo.value
        assert error.invariant == "hold"
        assert error.channel == "ch"
        assert error.cycle is not None
        details = error.details()
        assert details["invariant"] == "hold"
        assert details["channel"] == "ch"

    def test_violation_emits_structured_event(self):
        telemetry = Telemetry.full()
        sim = self._misbehaving_system(telemetry)
        with pytest.raises(ProtocolViolationError):
            sim.step(5)
        violations = telemetry.events.select("monitor", "violation")
        assert violations
        event = violations[0]
        assert event.fields["invariant"] == "hold"
        assert event.fields["channel"] == "ch"
        counters = telemetry.metrics.snapshot()
        assert counters["lid/monitor/hold/violations"]["value"] >= 1

"""FSM extraction: the relay stations as explicit state machines.

The paper describes its blocks as RTL FSMs (with the details in the
FMGALS'03 companion).  This module *derives* those state machines
mechanically from the verified spec functions: enumerate the control
states (validity/stop bits — payloads abstracted away), apply every
input combination, and tabulate transitions and outputs.  The result is
the paper's FSM documentation, guaranteed consistent with the
implementation because it is computed from it.

Full relay station control states (the classic three, plus the paper's
footnote that the stop is registered):

* ``EMPTY``  — no token buffered;
* ``HALF``   — one token (in ``main``), stop low;
* ``FULL``   — two tokens (``main`` + skid), stop high.

Half relay station: ``EMPTY`` / ``FULL`` with a transparent stop.
"""

from __future__ import annotations

import dataclasses
import io
from typing import Dict, List, Optional, Tuple

from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant
from ..verify import fsm

#: (in_valid, stop_in) input alphabet.
_INPUTS = [(False, False), (False, True), (True, False), (True, True)]


@dataclasses.dataclass(frozen=True)
class FsmTransition:
    """One row of an extracted transition table."""

    state: str
    in_valid: bool
    stop_in: bool
    next_state: str
    out_valid: bool
    stop_out: bool


def _full_state_name(state: fsm.FullRsState) -> str:
    if state.aux is not None:
        return "FULL"
    if state.main is not None:
        return "HALF"
    return "EMPTY"


def _half_state_name(state: fsm.HalfRsState) -> str:
    return "FULL" if state.main is not None else "EMPTY"


def extract_full_rs_fsm(
    variant: ProtocolVariant = DEFAULT_VARIANT,
) -> List[FsmTransition]:
    """Transition table of the full relay station's control FSM.

    Payloads are abstracted: a fresh token id is injected on every
    accepted input, and only the validity structure is reported.  The
    table is complete and deterministic (one row per state x input).
    """
    # Canonical representative per control state.
    representatives: Dict[str, fsm.FullRsState] = {
        "EMPTY": fsm.FullRsState(),
        "HALF": fsm.FullRsState(main=0),
        "FULL": fsm.FullRsState(main=0, aux=1, stop_reg=True),
    }
    rows: List[FsmTransition] = []
    for name, state in representatives.items():
        for in_valid, stop_in in _INPUTS:
            out_tok, stop_out = fsm.full_rs_outputs(state)
            nxt = fsm.full_rs_step(
                state, 7 if in_valid else None, stop_in, variant)
            rows.append(FsmTransition(
                state=name,
                in_valid=in_valid,
                stop_in=stop_in,
                next_state=_full_state_name(nxt),
                out_valid=out_tok is not None,
                stop_out=stop_out,
            ))
    return rows


def extract_half_rs_fsm(
    variant: ProtocolVariant = DEFAULT_VARIANT,
    registered_stop: bool = False,
) -> List[FsmTransition]:
    """Transition table of the half relay station's control FSM."""
    representatives: Dict[str, fsm.HalfRsState] = {
        "EMPTY": fsm.HalfRsState(),
        "FULL": fsm.HalfRsState(main=0),
    }
    rows: List[FsmTransition] = []
    for name, state in representatives.items():
        for in_valid, stop_in in _INPUTS:
            stop_out = fsm.half_rs_stop_out(state, stop_in, variant,
                                            registered_stop)
            nxt = fsm.half_rs_step(
                state, 7 if in_valid else None, stop_in, variant,
                registered_stop)
            rows.append(FsmTransition(
                state=name,
                in_valid=in_valid,
                stop_in=stop_in,
                next_state=_half_state_name(nxt),
                out_valid=state.main is not None,
                stop_out=stop_out,
            ))
    return rows


def format_fsm_table(rows: List[FsmTransition],
                     title: Optional[str] = None) -> str:
    """Render a transition table as aligned text."""
    from ..bench.tables import format_table

    return format_table(
        ("state", "in_valid", "stop_in", "next", "out_valid",
         "stop_out"),
        [(r.state, int(r.in_valid), int(r.stop_in), r.next_state,
          int(r.out_valid), int(r.stop_out)) for r in rows],
        title=title,
    )


def fsm_to_dot(rows: List[FsmTransition], name: str = "relay_fsm") -> str:
    """Render the state machine as a Graphviz digraph.

    Parallel transitions between the same pair of states are merged
    into one edge with stacked labels.
    """
    edges: Dict[Tuple[str, str], List[str]] = {}
    for r in rows:
        label = (f"v={int(r.in_valid)},s={int(r.stop_in)}"
                 f" / o={int(r.out_valid)},p={int(r.stop_out)}")
        edges.setdefault((r.state, r.next_state), []).append(label)
    out = io.StringIO()
    out.write(f'digraph "{name}" {{\n  rankdir=LR;\n')
    for state in {r.state for r in rows}:
        out.write(f'  "{state}" [shape=circle];\n')
    for (src, dst), labels in sorted(edges.items()):
        text = "\\n".join(labels)
        out.write(f'  "{src}" -> "{dst}" [label="{text}"];\n')
    out.write("}\n")
    return out.getvalue()

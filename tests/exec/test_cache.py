"""Tests for the content-addressed result cache and graph fingerprint."""

import os

import pytest

from repro.exec import (
    GraphRef,
    ResultCache,
    atomic_write_bytes,
    default_cache_dir,
    graph_fingerprint,
)
from repro.graph import figure2, ring


class TestResultCache:
    def test_memory_hit_and_miss_counters(self):
        cache = ResultCache.memory()
        key = cache.key("golden", "abc", 100)
        assert cache.get(key) is None
        cache.put(key, {"period": 5})
        assert cache.get(key) == {"period": 5}
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_disk_roundtrip_across_instances(self, tmp_path):
        directory = str(tmp_path / "cache")
        first = ResultCache.disk(directory)
        key = first.key("golden", "fingerprint", 200)
        first.put(key, [1, 2, 3])
        # A fresh instance (fresh process, conceptually) reads the disk
        # layer and promotes the entry into its memory layer.
        second = ResultCache.disk(directory)
        assert second.get(key) == [1, 2, 3]
        assert second.stats.hits == 1
        assert second.get(key) == [1, 2, 3]  # now served from memory

    def test_cached_none_counts_as_hit(self, tmp_path):
        cache = ResultCache.disk(str(tmp_path / "cache"))
        key = cache.key("maybe")
        cache.put(key, None)
        fresh = ResultCache.disk(str(tmp_path / "cache"))
        assert fresh.get(key) is None
        assert fresh.stats.hits == 1 and fresh.stats.misses == 0

    def test_poisoned_entry_warns_misses_and_unlinks(self, tmp_path,
                                                    capsys):
        directory = str(tmp_path / "cache")
        cache = ResultCache.disk(directory)
        key = cache.key("golden")
        cache.put(key, {"big": list(range(100))})
        path = cache._path(key)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])  # truncate: torn write sim

        fresh = ResultCache.disk(directory)
        assert fresh.get(key) is None
        assert fresh.stats.misses == 1
        assert "poisoned cache entry" in capsys.readouterr().err
        assert not os.path.exists(path)
        # A subsequent read is a clean (silent) miss, not a re-warning.
        again = ResultCache.disk(directory)
        assert again.get(key) is None
        assert "poisoned" not in capsys.readouterr().err

    def test_unwritable_directory_degrades_to_memory(self, tmp_path,
                                                     capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the cache dir should be")
        cache = ResultCache(directory=str(blocker / "cache"))
        key = cache.key("x")
        cache.put(key, 41)
        assert "continuing without the disk layer" in (
            capsys.readouterr().err)
        assert cache.get(key) == 41  # memory layer still works
        cache.put(cache.key("y"), 42)  # second put warns at most once
        assert "continuing" not in capsys.readouterr().err

    def test_key_depends_on_parts(self):
        cache = ResultCache.memory()
        assert cache.key("golden", 1) != cache.key("golden", 2)
        assert cache.key("golden", 1) == cache.key("golden", 1)

    def test_default_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LID_CACHE_DIR", str(tmp_path / "env"))
        assert default_cache_dir() == str(tmp_path / "env")


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = str(tmp_path / "sub" / "file.bin")
        atomic_write_bytes(path, b"one")
        atomic_write_bytes(path, b"two")
        assert open(path, "rb").read() == b"two"
        # No stray temp files left behind.
        assert os.listdir(os.path.dirname(path)) == ["file.bin"]


class TestGraphFingerprint:
    def test_deterministic_across_builds(self):
        assert graph_fingerprint(figure2()) == graph_fingerprint(figure2())

    def test_structure_sensitive(self):
        assert (graph_fingerprint(ring(2, relays_per_arc=1))
                != graph_fingerprint(ring(2, relays_per_arc=2)))
        assert (graph_fingerprint(figure2())
                != graph_fingerprint(ring(2, relays_per_arc=1)))


class TestGraphRef:
    def test_spec_ref_materializes_and_memoizes(self):
        ref = GraphRef.from_spec("ring:shells=2,relays=2")
        graph = ref.materialize()
        assert ref.materialize() is graph  # per-process memo
        assert graph_fingerprint(graph) == graph_fingerprint(
            ring(2, relays_per_arc=2))

    def test_factory_ref(self):
        ref = GraphRef.from_factory("repro.graph:figure2")
        assert graph_fingerprint(ref.materialize()) == graph_fingerprint(
            figure2())

    def test_picklable_graph_roundtrips_by_value(self):
        ref = GraphRef.from_graph(figure2())
        assert graph_fingerprint(ref.materialize()) == graph_fingerprint(
            figure2())

    def test_unpicklable_graph_gets_actionable_error(self):
        from repro.errors import ExecutionError

        graph = figure2()
        sink = next(n for n in graph.nodes
                    if graph.nodes[n].kind == "sink")
        object.__setattr__(graph.nodes[sink], "stop_script",
                           lambda c: False)
        with pytest.raises(ExecutionError, match="from_spec"):
            GraphRef.from_graph(graph)

"""Round-trip and schema tests for the trace exporters."""

import io
import json

import pytest

from repro.obs import (
    EventStream,
    Profiler,
    Telemetry,
    export_stream,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


def _stream():
    stream = EventStream()
    stream.emit("token", "fire", 0, block="A")
    stream.emit("stall", "assert", 1, channel="A->B", valid=True)
    stream.emit("relay", "occupancy", 2, relay="rs0", occupancy=2)
    stream.emit("monitor", "violation", 3, channel="A->B",
                invariant="hold", variant="casu")
    return stream


class TestJsonl:
    def test_round_trip_via_file(self, tmp_path):
        stream = _stream()
        path = str(tmp_path / "trace.jsonl")
        assert write_jsonl(stream, path) == 4
        assert read_jsonl(path) == stream.events()

    def test_round_trip_via_file_object(self):
        stream = _stream()
        buffer = io.StringIO()
        write_jsonl(stream, buffer)
        buffer.seek(0)
        assert read_jsonl(buffer) == stream.events()

    def test_lines_are_flat_json_objects(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(_stream(), path)
        with open(path, encoding="utf-8") as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
        # 4 events + the trailing eventstream meta record.
        assert len(lines) == 5
        for record in lines[:-1]:
            assert {"cycle", "category", "name"} <= set(record)
            assert all(not isinstance(v, (dict, list))
                       for v in record.values())

    def test_trailing_meta_record(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(_stream(), path)
        with open(path, encoding="utf-8") as fh:
            last = json.loads(fh.readlines()[-1])
        assert last == {"meta": "eventstream", "emitted": 4,
                        "dropped": 0, "retained": 4}

    def test_meta_record_reports_drops(self, tmp_path):
        stream = EventStream(capacity=2)
        for cycle in range(5):
            stream.emit("token", "fire", cycle)
        path = str(tmp_path / "trace.jsonl")
        assert write_jsonl(stream, path) == 2
        with open(path, encoding="utf-8") as fh:
            last = json.loads(fh.readlines()[-1])
        assert last["emitted"] == 5
        assert last["dropped"] == 3
        assert last["retained"] == 2

    def test_round_trip_non_ascii(self, tmp_path):
        stream = EventStream()
        stream.emit("token", "fire", 0, block="ψ-shell",
                    note="naïve→café")
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(stream, path)
        events = read_jsonl(path)
        assert events == stream.events()
        assert events[0].fields["block"] == "ψ-shell"
        assert events[0].fields["note"] == "naïve→café"


class TestChromeTrace:
    def test_schema(self):
        payload = to_chrome_trace(_stream().events())
        assert set(payload) == {"traceEvents", "displayTimeUnit",
                                "otherData"}
        instants = [e for e in payload["traceEvents"]
                    if e.get("ph") == "i"]
        assert len(instants) == 4
        for entry in instants:
            assert {"name", "cat", "ph", "ts", "pid", "tid",
                    "args"} <= set(entry)
        # Distinct categories land on distinct tracks.
        assert len({e["tid"] for e in instants}) == 4

    def test_metadata_names_tracks(self):
        payload = to_chrome_trace(_stream().events())
        names = {e["args"]["name"] for e in payload["traceEvents"]
                 if e.get("ph") == "M" and e["name"] == "thread_name"}
        assert {"token", "stall", "relay", "monitor"} <= names

    def test_profiler_slices(self):
        profiler = Profiler()
        profiler.add("settle", 0.002, calls=10)
        profiler.add("edge", 0.001, calls=10)
        payload = to_chrome_trace(_stream().events(), profiler=profiler)
        slices = [e for e in payload["traceEvents"]
                  if e.get("ph") == "X"]
        assert [s["name"] for s in slices] == ["settle", "edge"]
        assert slices[0]["dur"] == pytest.approx(2000.0)
        # Slices are laid end to end on one dedicated track.
        assert slices[1]["ts"] == pytest.approx(slices[0]["dur"])
        assert len({s["tid"] for s in slices}) == 1

    def test_write_is_valid_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(_stream().events(), path)
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["traceEvents"]

    def test_empty_stream_is_valid_trace(self, tmp_path):
        """An empty EventStream still exports a loadable Chrome trace."""
        stream = EventStream()
        payload = to_chrome_trace(stream)
        assert set(payload) == {"traceEvents", "displayTimeUnit",
                                "otherData"}
        assert not [e for e in payload["traceEvents"]
                    if e.get("ph") == "i"]
        assert payload["otherData"]["emitted"] == 0
        assert payload["otherData"]["dropped"] == 0
        path = str(tmp_path / "empty.json")
        write_chrome_trace(stream, path)
        with open(path, encoding="utf-8") as fh:
            assert json.load(fh)["displayTimeUnit"] == "ms"

    def test_stream_counts_in_other_data(self):
        stream = _stream()
        payload = to_chrome_trace(stream)
        assert payload["otherData"]["emitted"] == 4
        assert payload["otherData"]["dropped"] == 0


class TestExportStream:
    def test_dispatch(self, tmp_path):
        stream = _stream()
        jsonl_path = str(tmp_path / "t.jsonl")
        chrome_path = str(tmp_path / "t.json")
        export_stream(stream, jsonl_path, "jsonl")
        export_stream(stream, chrome_path, "chrome")
        assert read_jsonl(jsonl_path) == stream.events()
        with open(chrome_path, encoding="utf-8") as fh:
            assert json.load(fh)["traceEvents"]

    def test_unknown_format_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            export_stream(_stream(), str(tmp_path / "t"), "vcd")


class TestTelemetryBundle:
    def test_factories(self):
        full = Telemetry.full()
        assert full.events is not None
        assert full.metrics is not None
        assert full.profiler is not None
        metrics_only = Telemetry.metrics_only()
        assert metrics_only.events is None
        assert metrics_only.metrics is not None
        assert metrics_only.profiler is None
        profile_only = Telemetry.profile_only()
        assert profile_only.profiler is not None
        assert profile_only.metrics is None

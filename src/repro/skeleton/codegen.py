"""Compiled skeleton backend: specialize the cycle loop per topology.

The scalar engine interprets the lowered tables every cycle — list
indexing, kind dispatch, method calls.  For a *fixed* topology all of
that is constant: which hop reads which register, the Gauss–Seidel
sweep order of the stop network, which relay updates are registered
(and therefore fixed before the sweep even starts).  This module bakes
those constants into straight-line Python source — every hop, register
and script phase a local variable, no per-cycle dispatch or dict
lookups — compiled once via ``compile()``/``exec()`` and reused for
every simulator instance that shares the plan.

Two entry points are generated from one body emitter:

* ``cycle(sim)`` — advance one cycle, state written back each call
  (drives the inherited ``step()``/``run()`` periodicity detection);
* ``run_cycles(sim, n)`` — the campaign fast path: state loaded into
  locals once, the unrolled body looped ``n`` times, written back once
  (histories and telemetry still accumulate per cycle).

Bit-exactness is structural, not incidental: the generated source
replicates :meth:`repro.skeleton.sim.SkeletonSim.step` operation for
operation (same fixed-stop partition, same sweep order, same guard
counter, same register-update expressions), and
:class:`CodegenSkeletonSim` subclasses ``SkeletonSim`` so that state
layout, ``run()`` periodicity detection, ``metrics_snapshot()`` and
``external_step()`` are *shared code*, not parallel implementations.
The differential conformance suite (``tests/skeleton/
test_backend_conformance.py``) holds all four engines to the byte.

Plans are cached at two levels:

* **in-process** — a module dict keyed by ``(structural fingerprint,
  variant, fixpoint, detect_ambiguity, telemetry flags)``; building a
  thousand simulators over one topology compiles once (see
  :data:`STATS`, the EXP-C1 bench asserts this);
* **on disk (optional)** — pass ``compile_cache=`` a
  :class:`repro.exec.cache.ResultCache`: the generated *source text*
  is stored under the exec-cache key discipline (schema + git_rev +
  plan key), so a second process skips generation and recompiles from
  the cached source.  Code objects are process-bound; source is the
  durable artifact.

Scripts and patterns stay **runtime data** (read from the sim instance
each batch), so one compiled plan serves every script combination of a
campaign — the plan key deliberately excludes them.

Layering: this module may import ``repro.ir`` and ``repro.exec.cache``
only (enforced by ``tools/check_layering.py``); the protocol variant is
consumed duck-typed (``discards_void_stops`` + ``str()``), never via a
``repro.lid`` import.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..ir import RS_FULL, RS_HALF, RS_HALF_REG, SHELL, SINK, SRC, LoweredSystem
from .sim import SkeletonSim

__all__ = [
    "CODEGEN_SCHEMA",
    "CodegenSkeletonSim",
    "CodegenStats",
    "CompiledPlan",
    "STATS",
    "clear_plan_cache",
    "generate_source",
    "plan_for",
]

#: Folded into every disk-cache key; bump when the generated source's
#: meaning changes in a way the structural plan key cannot see.
CODEGEN_SCHEMA = "repro-codegen/v1"


@dataclasses.dataclass
class CodegenStats:
    """Process-wide plan counters (compile-reuse instrumentation)."""

    compiles: int = 0
    plan_hits: int = 0
    disk_hits: int = 0

    def reset(self) -> None:
        self.compiles = 0
        self.plan_hits = 0
        self.disk_hits = 0


#: Global counters: how often a plan was generated+compiled vs. served
#: from the in-process cache vs. recompiled from disk-cached source.
#: ``benchmarks/bench_codegen.py`` uses this to show one compile serves
#: many runs.
STATS = CodegenStats()


@dataclasses.dataclass(frozen=True)
class CompiledPlan:
    """One compiled plan: the cycle functions plus their provenance."""

    key: Tuple
    source: str
    cycle: Callable
    run_cycles: Callable


#: In-process plan cache; plans are tiny (two code objects each) and
#: keyed per topology, so no bound is needed here — the *disk* layer
#: reuses ResultCache, which carries the LRU bound.
_PLAN_CACHE: Dict[Tuple, CompiledPlan] = {}


def clear_plan_cache() -> None:
    """Drop every in-process plan (tests and benchmarks)."""
    _PLAN_CACHE.clear()


# -- source generation ----------------------------------------------------


def _tuple_expr(items: List[str]) -> str:
    if not items:
        return "()"
    if len(items) == 1:
        return f"({items[0]},)"
    return "(" + ", ".join(items) + ")"


def _accum_lines(out: List[str], name: str, terms: List[str]) -> None:
    """``name += (t0 + t1 + ...)`` wrapped to readable line widths."""
    if not terms:
        return
    out.append(f"{name} += (")
    for i in range(0, len(terms), 6):
        chunk = " + ".join(terms[i:i + 6])
        tail = " +" if i + 6 < len(terms) else ""
        out.append(f"    {chunk}{tail}")
    out.append(")")


def generate_source(
    low: LoweredSystem,
    *,
    is_casu: bool,
    fixpoint: str,
    detect_ambiguity: bool,
    metrics_on: bool,
    events_on: bool,
) -> str:
    """Emit the specialized module source for *low*.

    *low* must already be the :meth:`~repro.ir.LoweredSystem.
    skeleton_view` (queued shells desugared) — exactly what
    ``SkeletonSim.lowered`` holds.  The emitted ``cycle``/``run_cycles``
    functions advance the sim with the same observable effects as
    ``SkeletonSim.step`` called once / ``n`` times.
    """
    hops = low.hops
    n_hops = len(hops)
    n_shells = len(low.shell_names)
    n_sources = len(low.source_names)
    n_regs = len(low.shell_regs)
    rs_kinds = [r.tag for r in low.relays]
    n_rs = len(rs_kinds)
    shell_in = [list(x) for x in low.shell_in_hops]
    shell_out_pairs = [
        [(hop_out, hops[hop_out].producer_reg) for hop_out in outs]
        for outs in low.shell_out_hops
    ]
    src_out = [list(x) for x in low.source_out_hops]
    sink_in = list(low.sink_in_hop)
    rs_in = list(low.relay_in_hop)
    rs_out = list(low.relay_out_hop)

    # The same derived partitions SkeletonSim._build computes: which
    # in-hop stops are fixed before the sweep, which are settled.
    full_fixed = [(i, rs_in[i]) for i, k in enumerate(rs_kinds)
                  if k == RS_FULL]
    halfreg_fixed = [(i, rs_in[i]) for i, k in enumerate(rs_kinds)
                     if k == RS_HALF_REG]
    sink_fixed = [(j, h) for j, h in enumerate(sink_in) if h is not None]
    half_inout = [(i, rs_in[i], rs_out[i])
                  for i, k in enumerate(rs_kinds) if k == RS_HALF]
    hop_internal = [h.consumer_kind in (SHELL, RS_HALF) for h in hops]
    ambiguity = detect_ambiguity and low.may_be_ambiguous
    guard = n_hops + n_shells + 2

    def fire_expr(shell_id: int, sv: str) -> str:
        terms = [f"v{h}" for h in shell_in[shell_id]]
        for hop_out, reg in shell_out_pairs[shell_id]:
            if is_casu:
                terms.append(f"not ({sv}{hop_out} and r{reg})")
            else:
                terms.append(f"not {sv}{hop_out}")
        return " and ".join(terms) if terms else "True"

    # -- prologue: load state and cached refs into locals ----------------
    prologue: List[str] = []
    pro = prologue.append
    pro("cycle_no = sim.cycle")
    if n_regs:
        tail = "," if n_regs == 1 else ""
        pro(", ".join(f"r{g}" for g in range(n_regs))
            + f"{tail} = sim.shell_reg")
    if n_rs:
        tail = "," if n_rs == 1 else ""
        pro(", ".join(f"m{i}" for i in range(n_rs)) + f"{tail} = sim.rs_main")
        pro(", ".join(f"a{i}" for i in range(n_rs)) + f"{tail} = sim.rs_aux")
        pro(", ".join(f"q{i}" for i in range(n_rs))
            + f"{tail} = sim.rs_stop_reg")
    for s in range(n_sources):
        pro(f"_p{s} = sim.src_pattern[{s}]")
        pro(f"ph{s} = sim.src_phase[{s}]")
    for sink_id, _hop in sink_fixed:
        pro(f"_k{sink_id} = sim.sink_pattern[{sink_id}]")
    pro("_fire_hist = sim.fire_history")
    pro("_accept_hist = sim.accept_history")
    if ambiguity:
        pro("_amb = sim.ambiguous_cycles")
    pro("_stops_t = 0")
    pro("_voids_t = 0")
    pro("_internal_t = 0")
    if metrics_on:
        pro("_hs = sim.hop_stall_cycles")
        if n_rs:
            pro("_occ = sim.rs_occupancy_counts")
    if events_on:
        pro("_ev = sim.telemetry.events")

    # -- body: one cycle over locals only --------------------------------
    body: List[str] = []
    emit = body.append
    for s in range(n_sources):
        emit(f"pv{s} = _p{s}[ph{s} % len(_p{s})]")
    for sink_id, _hop in sink_fixed:
        emit(f"sp{sink_id} = _k{sink_id}[cycle_no % len(_k{sink_id})]")

    emit("# forward valids: one local per hop")
    for h, hop in enumerate(hops):
        if hop.producer_kind == SRC:
            emit(f"v{h} = pv{hop.producer_id}")
        elif hop.producer_kind == SHELL:
            emit(f"v{h} = r{hop.producer_reg}")
        else:
            emit(f"v{h} = m{hop.producer_id}")

    def emit_settle(sv: str, mode: str) -> None:
        pessimistic = mode == "greatest"
        fixed_hops = set()
        for rs_id, hop_in in full_fixed:
            emit(f"{sv}{hop_in} = q{rs_id}")
            fixed_hops.add(hop_in)
        for rs_id, hop_in in halfreg_fixed:
            emit(f"{sv}{hop_in} = m{rs_id}")
            fixed_hops.add(hop_in)
        for sink_id, hop_in in sink_fixed:
            emit(f"{sv}{hop_in} = sp{sink_id}")
            fixed_hops.add(hop_in)
        for h in range(n_hops):
            if h not in fixed_hops:
                emit(f"{sv}{h} = {pessimistic}")
        if not half_inout and not any(shell_in):
            return  # nothing to settle: every stop is fixed/scripted
        emit("_changed = True")
        emit(f"_guard = {guard}")
        emit("while _changed and _guard > 0:")
        emit("    _changed = False")
        emit("    _guard -= 1")
        for rs_id, hop_in, hop_out in half_inout:
            if is_casu:
                emit(f"    _n = {sv}{hop_out} and m{rs_id}")
            else:
                emit(f"    _n = {sv}{hop_out}")
            emit(f"    if {sv}{hop_in} != _n:")
            emit(f"        {sv}{hop_in} = _n")
            emit("        _changed = True")
        for i in range(n_shells):
            if not shell_in[i]:
                continue  # a stall with no inputs presses on nothing
            emit(f"    _st = not ({fire_expr(i, sv)})")
            for hop_in in shell_in[i]:
                if is_casu:
                    emit(f"    _n = _st and v{hop_in}")
                else:
                    emit("    _n = _st")
                emit(f"    if {sv}{hop_in} != _n:")
                emit(f"        {sv}{hop_in} = _n")
                emit("        _changed = True")

    emit(f"# settle the monotone stop network ({fixpoint} fixpoint, "
         "Gauss-Seidel)")
    emit_settle("s", fixpoint)
    if ambiguity:
        alt = "greatest" if fixpoint == "least" else "least"
        emit(f"# ambiguity probe: settle again under the {alt} fixpoint")
        emit_settle("t", alt)
        s_tuple = _tuple_expr([f"s{h}" for h in range(n_hops)])
        t_tuple = _tuple_expr([f"t{h}" for h in range(n_hops)])
        emit(f"if {t_tuple} != {s_tuple}:")
        emit("    _amb.append(cycle_no)")
        if events_on:
            emit("    _ev.emit('fixpoint', 'ambiguous', cycle_no)")

    # Paper-claim counters (accumulated in locals, written back once).
    _accum_lines(body, "_stops_t", [f"s{h}" for h in range(n_hops)])
    _accum_lines(body, "_voids_t",
                 [f"(s{h} and not v{h})" for h in range(n_hops)])
    _accum_lines(body, "_internal_t",
                 [f"(s{h} and not v{h})" for h in range(n_hops)
                  if hop_internal[h]])
    if metrics_on:
        for h in range(n_hops):
            emit(f"if s{h}:")
            emit(f"    _hs[{h}] += 1")

    for i in range(n_shells):
        emit(f"f{i} = {fire_expr(i, 's')}")
    for j, hop in enumerate(sink_in):
        if hop is None:
            emit(f"ac{j} = False")
        else:
            emit(f"ac{j} = v{hop} and not s{hop}")

    emit("# edge: shell out-registers and relay stations")
    for i in range(n_shells):
        for hop_out, reg in shell_out_pairs[i]:
            emit(f"nr{reg} = True if f{i} else (r{reg} and s{hop_out})")
    new_main: List[str] = []
    new_aux: List[str] = []
    new_stop: List[str] = []
    for rs_id, kind in enumerate(rs_kinds):
        hop_in, hop_out = rs_in[rs_id], rs_out[rs_id]
        if kind == RS_FULL:
            emit(f"_acc = v{hop_in} and not q{rs_id}")
            emit(f"_con = (not m{rs_id}) or (not s{hop_out})")
            emit(f"if a{rs_id}:")
            emit("    if _con:")
            emit(f"        nm{rs_id} = a{rs_id}")
            emit(f"        na{rs_id} = False")
            emit(f"        nq{rs_id} = False")
            emit("    else:")
            emit(f"        nm{rs_id} = m{rs_id}")
            emit(f"        na{rs_id} = a{rs_id}")
            emit(f"        nq{rs_id} = q{rs_id}")
            emit("elif _con:")
            emit(f"    nm{rs_id} = _acc")
            emit(f"    na{rs_id} = a{rs_id}")
            emit(f"    nq{rs_id} = False")
            emit("elif _acc:")
            emit(f"    nm{rs_id} = m{rs_id}")
            emit(f"    na{rs_id} = True")
            emit(f"    nq{rs_id} = True")
            emit("else:")
            emit(f"    nm{rs_id} = m{rs_id}")
            emit(f"    na{rs_id} = a{rs_id}")
            emit(f"    nq{rs_id} = q{rs_id}")
            new_main.append(f"nm{rs_id}")
            new_aux.append(f"na{rs_id}")
            new_stop.append(f"nq{rs_id}")
        else:  # half variants share the single-register update
            emit(f"if (not m{rs_id}) or (not s{hop_out}):")
            emit(f"    nm{rs_id} = v{hop_in} and not s{hop_in}")
            emit("else:")
            emit(f"    nm{rs_id} = m{rs_id}")
            new_main.append(f"nm{rs_id}")
            new_aux.append(f"a{rs_id}")
            new_stop.append(f"q{rs_id}")

    if metrics_on and n_rs:
        for rs_id in range(n_rs):
            emit(f"_occ[{rs_id}][(1 if {new_main[rs_id]} else 0)"
                 f" + (1 if {new_aux[rs_id]} else 0)] += 1")
    if events_on:
        for i, name in enumerate(low.shell_names):
            emit(f"if f{i}:")
            emit(f"    _ev.emit('token', 'fire', cycle_no, block={name!r})")
        for j, name in enumerate(low.sink_names):
            emit(f"if ac{j}:")
            emit(f"    _ev.emit('token', 'accept', cycle_no, sink={name!r})")
        for h in range(n_hops):
            emit(f"if s{h}:")
            emit(f"    _ev.emit('stall', 'assert', cycle_no, "
                 f"channel={low.hop_names[h]!r}, valid=v{h})")

    # Source script phases (a held presented token is re-presented).
    for s in range(n_sources):
        if src_out[s]:
            held = " or ".join(f"s{h}" for h in src_out[s])
            emit(f"if not (pv{s} and ({held})):")
            emit(f"    ph{s} = (ph{s} + 1) % len(_p{s})")
        else:
            emit(f"ph{s} = (ph{s} + 1) % len(_p{s})")

    # Commit the edge: rebind register locals to their new values.
    for g in range(n_regs):
        emit(f"r{g} = nr{g}")
    for rs_id in range(n_rs):
        if new_main[rs_id] != f"m{rs_id}":
            emit(f"m{rs_id} = {new_main[rs_id]}")
        if new_aux[rs_id] != f"a{rs_id}":
            emit(f"a{rs_id} = {new_aux[rs_id]}")
        if new_stop[rs_id] != f"q{rs_id}":
            emit(f"q{rs_id} = {new_stop[rs_id]}")
    emit(f"_fires = {_tuple_expr([f'f{i}' for i in range(n_shells)])}")
    emit(f"_accepts = {_tuple_expr([f'ac{j}' for j in range(len(sink_in))])}")
    emit("_fire_hist.append(_fires)")
    emit("_accept_hist.append(_accepts)")
    emit("cycle_no += 1")

    # -- epilogue: write state back to the sim ---------------------------
    epilogue: List[str] = []
    epi = epilogue.append
    epi("sim.shell_reg = [" + ", ".join(f"r{g}" for g in range(n_regs))
        + "]")
    epi("sim.rs_main = [" + ", ".join(f"m{i}" for i in range(n_rs)) + "]")
    epi("sim.rs_aux = [" + ", ".join(f"a{i}" for i in range(n_rs)) + "]")
    epi("sim.rs_stop_reg = [" + ", ".join(f"q{i}" for i in range(n_rs))
        + "]")
    for s in range(n_sources):
        epi(f"sim.src_phase[{s}] = ph{s}")
    epi("sim.cycle = cycle_no")
    epi("sim.stop_assertions_total += _stops_t")
    epi("sim.stops_on_voids_total += _voids_t")
    epi("sim.internal_stops_on_voids_total += _internal_t")

    # -- assemble the module ---------------------------------------------
    out: List[str] = []
    put = out.append
    put('"""Generated by repro.skeleton.codegen — do not edit.')
    put("")
    put(f"topology: {low.name}  fingerprint: {low.fingerprint}")
    put(f"variant: {'casu' if is_casu else 'carloni'}  "
        f"fixpoint: {fixpoint}  ambiguity: {ambiguity}  "
        f"metrics: {metrics_on}  events: {events_on}")
    put('"""')
    put("")
    put("")
    put("def cycle(sim):")
    for line in prologue:
        put("    " + line)
    for line in body:
        put("    " + line)
    for line in epilogue:
        put("    " + line)
    put("    return _fires, _accepts")
    put("")
    put("")
    put("def run_cycles(sim, n):")
    for line in prologue:
        put("    " + line)
    put("    for _ in range(n):")
    for line in body:
        put("        " + line)
    for line in epilogue:
        put("    " + line)
    put("")
    return "\n".join(out)


# -- plan cache -----------------------------------------------------------


def _compile(source: str, tag: str) -> Tuple[Callable, Callable]:
    namespace: Dict[str, Any] = {}
    code = compile(source, f"<repro-codegen:{tag}>", "exec")
    exec(code, namespace)
    return namespace["cycle"], namespace["run_cycles"]


def plan_for(
    low: LoweredSystem,
    variant,
    *,
    fixpoint: str,
    detect_ambiguity: bool,
    metrics_on: bool,
    events_on: bool,
    disk_cache=None,
) -> CompiledPlan:
    """Compiled plan for *(low, variant, engine options)*, cached.

    *low* must be a skeleton view.  *variant* is duck-typed: anything
    with ``discards_void_stops`` and a stable ``str()`` works (the
    layering rules keep ``repro.lid`` out of this module).
    *disk_cache* is an optional :class:`repro.exec.cache.ResultCache`;
    the generated source text (not the code object) is what persists.
    """
    is_casu = bool(variant.discards_void_stops)
    key = (
        low.fingerprint,
        str(variant),
        is_casu,
        fixpoint,
        bool(detect_ambiguity),
        bool(metrics_on),
        bool(events_on),
    )
    plan = _PLAN_CACHE.get(key)
    if plan is not None:
        STATS.plan_hits += 1
        return plan

    source: Optional[str] = None
    from_disk = False
    cache_key = None
    if disk_cache is not None:
        cache_key = disk_cache.key(CODEGEN_SCHEMA, *key)
        hit = disk_cache.get(cache_key)
        if isinstance(hit, str):
            source = hit
            from_disk = True
    if source is None:
        source = generate_source(
            low,
            is_casu=is_casu,
            fixpoint=fixpoint,
            detect_ambiguity=detect_ambiguity,
            metrics_on=metrics_on,
            events_on=events_on,
        )
    cycle, run_cycles = _compile(source, low.fingerprint[:12])
    if from_disk:
        STATS.disk_hits += 1
    else:
        STATS.compiles += 1
        if disk_cache is not None:
            disk_cache.put(cache_key, source)
    plan = CompiledPlan(key=key, source=source, cycle=cycle,
                        run_cycles=run_cycles)
    _PLAN_CACHE[key] = plan
    return plan


# -- the simulator --------------------------------------------------------


class CodegenSkeletonSim(SkeletonSim):
    """A :class:`SkeletonSim` whose ``step`` is compiled, not interpreted.

    Construction runs the normal scalar ``_build``/``reset`` (state
    layout, script binding and every accessor are inherited — shared
    code, not a re-implementation), then binds the compiled plan for
    this topology/variant/option combination.  ``run()``,
    ``metrics_snapshot()`` and ``reset()`` come from the base class;
    ``external_step()`` drives the inherited scalar internals (the
    exhaustive liveness explorer owns the environment there, a path
    that does not benefit from specialization).

    ``detect_ambiguity`` and the telemetry flags are baked into the
    plan at construction; mutating them afterwards has no effect on
    :meth:`step` (the scalar engine re-reads them each cycle — do not
    rely on that either).

    *compile_cache* (optional): a :class:`repro.exec.cache.ResultCache`
    persisting generated source across processes.  *variant* defaults
    to the package default when ``None`` (resolved by the base class).
    """

    def __init__(
        self,
        graph,
        variant=None,
        fixpoint: str = "least",
        source_patterns=None,
        sink_patterns=None,
        detect_ambiguity: bool = True,
        telemetry=None,
        compile_cache=None,
    ):
        kwargs = dict(
            fixpoint=fixpoint,
            source_patterns=source_patterns,
            sink_patterns=sink_patterns,
            detect_ambiguity=detect_ambiguity,
            telemetry=telemetry,
        )
        if variant is not None:
            kwargs["variant"] = variant
        super().__init__(graph, **kwargs)
        if not self.lowered.single_clock:
            from ..errors import StructuralError

            raise StructuralError(
                f"{self.lowered.name}: the codegen engine models "
                f"single-clock systems only (capability flags: "
                f"single_clock={self.lowered.single_clock}, "
                f"has_bridges={self.lowered.has_bridges}); use the "
                f"scalar or vectorized engine for GALS workloads")
        self._plan = plan_for(
            self.lowered,
            self.variant,
            fixpoint=self.fixpoint,
            detect_ambiguity=self.detect_ambiguity,
            metrics_on=self._metrics_on,
            events_on=self._events_on,
            disk_cache=compile_cache,
        )

    @property
    def plan_source(self) -> str:
        """The generated Python source backing this simulator."""
        return self._plan.source

    def step(self) -> Tuple[Tuple[bool, ...], Tuple[bool, ...]]:
        """Advance one cycle via the compiled plan."""
        return self._plan.cycle(self)

    def run_cycles(self, cycles: int) -> None:
        """Advance *cycles* cycles with state held in locals throughout.

        Observably identical to calling :meth:`step` *cycles* times —
        the batched entry point only skips the per-cycle state
        load/writeback, which no outside observer can see between
        cycles of an uninterrupted run.
        """
        self._plan.run_cycles(self, cycles)
